//! The SBL ("sampling Beame–Luby") algorithm — Algorithm 1 of the paper and
//! its headline contribution (Theorem 1).
//!
//! The idea: a general hypergraph may have huge edges, which Beame–Luby cannot
//! handle, but a random vertex sample of density `p = n^{-α}` contains a huge
//! edge *entirely* only with tiny probability. SBL therefore repeats:
//!
//! 1. sample each undecided vertex independently with probability `p`;
//! 2. let `H' = (V', E')` be the sampled vertices together with the edges that
//!    are **fully** sampled; if some edge of `H'` exceeds the dimension cap
//!    `d = log log n / (4 log log log n)` the round FAILs and is retried with
//!    fresh randomness;
//! 3. run BL on `H'`; its blue vertices join the global independent set and
//!    the other sampled vertices become red — this is the *permanent* coloring
//!    of `V'`;
//! 4. every edge touching a red vertex can never become fully blue and is
//!    dropped; the remaining edges lose their blue vertices;
//! 5. once fewer than `1/p²` vertices remain, the residual instance is handed
//!    to a linear-time sweep (or the KUW baseline).
//!
//! The blue set is a maximal independent set of the *original* hypergraph
//! (Section 2.1 of the paper); [`crate::verify::verify_mis`] re-checks this at
//! the end of every test.

use hypergraph::degree::MAX_ENUMERABLE_DIMENSION;
use hypergraph::params::SblParams;
use hypergraph::{ActiveEngine, ActiveHypergraph, Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;
use rand::Rng;

use crate::bl::{bl_on_active_in, bl_on_active_scratch, BlConfig, BlScratch};
use crate::coloring::Coloring;
use crate::greedy::greedy_on_active_in;
use crate::kuw::kuw_on_active_in;
use crate::trace::{SblRoundStats, SblTrace, TailAlgorithm};

/// Which algorithm SBL uses on the residual instance (fewer than `1/p²`
/// vertices).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TailChoice {
    /// The sequential greedy sweep ("time linear in the number of vertices").
    Greedy,
    /// The Karp–Upfal–Wigderson style parallel search.
    Kuw,
}

/// Configuration of an SBL run.
#[derive(Debug, Clone, PartialEq)]
pub struct SblConfig {
    /// Sampling probability override; defaults to the paper's
    /// `p = n^{-α}` (practically clamped, see
    /// [`SblParams::practical_default`]).
    pub p: Option<f64>,
    /// Dimension cap override; defaults to the paper's
    /// `d = log log n / (4 log log log n)` (practically clamped).
    pub dimension_cap: Option<usize>,
    /// Residual-size threshold override; defaults to `1/p²`.
    pub tail_threshold: Option<usize>,
    /// How many times a round may be resampled after a dimension-check
    /// failure before the cap is raised to the observed sample dimension
    /// (so the algorithm always terminates; the paper simply "starts over").
    pub max_round_retries: usize,
    /// Which algorithm finishes the residual instance.
    pub tail: TailChoice,
    /// Configuration passed to every BL subroutine call.
    pub bl: BlConfig,
    /// Safety cap on the number of outer rounds.
    pub max_rounds: usize,
}

impl Default for SblConfig {
    fn default() -> Self {
        SblConfig {
            p: None,
            dimension_cap: None,
            tail_threshold: None,
            max_round_retries: 64,
            tail: TailChoice::Greedy,
            bl: BlConfig::default(),
            max_rounds: 100_000,
        }
    }
}

/// Result of an SBL run.
#[derive(Debug, Clone)]
pub struct SblOutcome {
    /// The maximal independent set (blue vertices), sorted.
    pub independent_set: Vec<VertexId>,
    /// The full red/blue coloring of the vertex set.
    pub coloring: Coloring,
    /// Per-round instrumentation.
    pub trace: SblTrace,
    /// Work–depth accounting across all rounds, BL subcalls and the tail.
    pub cost: CostTracker,
    /// The parameters the run actually used.
    pub params: ResolvedParams,
}

/// The concrete parameter values an SBL run resolved to (after applying the
/// paper formulas and any overrides).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ResolvedParams {
    /// Sampling probability `p`.
    pub p: f64,
    /// Dimension cap `d` passed to the BL subroutine.
    pub dimension_cap: usize,
    /// Residual-size threshold (`1/p²` by default).
    pub tail_threshold: usize,
}

/// Runs SBL with the default (paper-shaped, practically clamped) parameters.
pub fn sbl_mis<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> SblOutcome {
    sbl_mis_with(h, rng, &SblConfig::default())
}

/// Runs SBL with an explicit configuration on the default (flat) engine.
pub fn sbl_mis_with<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
) -> SblOutcome {
    sbl_mis_with_engine::<ActiveHypergraph, R>(h, rng, config)
}

/// Runs SBL with a caller-owned [`Workspace`], reusing its buffers and
/// parked engines (the main active engine *and* the per-round sampled
/// sub-engine) across solves — the zero-reallocation batch path. Identical
/// results to [`sbl_mis_with`] for the same seed, whether the workspace is
/// fresh or warm.
pub fn sbl_mis_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
    ws: &mut Workspace,
) -> SblOutcome {
    sbl_mis_with_engine_in::<ActiveHypergraph, R>(h, rng, config, ws)
}

/// Runs SBL with an explicit configuration and an explicit [`ActiveEngine`]
/// (used by the differential suites and the bench regression guard). The RNG
/// consumption order depends only on the engine-observable state (alive
/// vertices ascending, live edges in arrival order), so two correct engines
/// produce identical outcomes for the same seed. Thin wrapper owning a fresh
/// workspace.
pub fn sbl_mis_with_engine<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
) -> SblOutcome {
    sbl_mis_with_engine_in::<E, R>(h, rng, config, &mut Workspace::new())
}

/// Engine-generic, workspace-reusing SBL entry point.
pub fn sbl_mis_with_engine_in<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
    ws: &mut Workspace,
) -> SblOutcome {
    let mut active: E = match ws.take_any::<E>("mis.sbl.engine") {
        Some(mut engine) => {
            engine.reset_from(h);
            engine
        }
        None => E::from_hypergraph(h),
    };
    // The sub-engine slot is taken lazily at first induce (inside
    // `sbl_run`): a solve that never reaches the sampling loop (direct BL,
    // or the tail threshold already covers the instance) must not probe the
    // pool for a slot it never fills — that probe would count as a fresh
    // allocation on every such solve and break the zero-reallocation
    // contract.
    let mut sub_slot: Option<E> = None;
    let outcome = sbl_run(h, rng, config, ws, &mut active, &mut sub_slot);
    ws.put_any("mis.sbl.engine", active);
    if let Some(sub) = sub_slot {
        ws.put_any("mis.sbl.sub", sub);
    }
    outcome
}

/// Runs SBL through the **rebuild pipeline**: the pre-workspace execution
/// path, preserved verbatim as the cold baseline. Every solve constructs a
/// fresh engine, every sampling round materializes its sub-instance with the
/// allocating [`ActiveEngine::induced_by`] (so sampled sub-engines carry no
/// incidence index and trim via the full-scan path), and every BL subcall
/// owns fresh flag scratch.
///
/// Outcomes are identical to [`sbl_mis_with`] / [`sbl_mis_in`] for the same
/// seed — the batch experiment and the determinism suite assert this — and
/// the *only* difference is lifecycle: rebuild-from-scratch versus
/// buffer-reuse.
///
/// # Stability
///
/// This is the **frozen cold baseline** every amortization number
/// (`BENCH_batch.json`, `BENCH_serve.json`) is measured against. It must not
/// be optimised: no workspace, no parked engines, no incidence-equipped
/// induction, no scratch reuse of any kind — any "improvement" here silently
/// deflates every reported speedup. Accordingly its signature takes **no
/// [`Workspace`]** (a test pins the workspace-free signature), and the body
/// below must keep allocating per call. If you think you are fixing a
/// performance bug in this function, you are breaking the baseline.
pub fn sbl_mis_rebuild<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
) -> SblOutcome {
    sbl_mis_rebuild_with_engine::<ActiveHypergraph, R>(h, rng, config)
}

/// Engine-generic [`sbl_mis_rebuild`] (the pre-workspace pipeline).
pub fn sbl_mis_rebuild_with_engine<E: ActiveEngine, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
) -> SblOutcome {
    use crate::bl::bl_on_active;
    use crate::greedy::greedy_on_active;
    use crate::kuw::kuw_on_active;

    let n = h.n_vertices();
    let params = SblParams::practical_default(n.max(2));
    let p = config.p.unwrap_or(params.p).clamp(1e-9, 1.0);
    let dimension_cap = config
        .dimension_cap
        .unwrap_or_else(|| params.d_cap())
        .clamp(1, MAX_ENUMERABLE_DIMENSION);
    let tail_threshold = config
        .tail_threshold
        .unwrap_or_else(|| params.tail_threshold.ceil() as usize)
        .max(1);
    let resolved = ResolvedParams {
        p,
        dimension_cap,
        tail_threshold,
    };

    let mut cost = CostTracker::new();
    let mut coloring = Coloring::new(n);
    let mut independent_set: Vec<VertexId> = Vec::new();
    let mut trace = SblTrace::default();
    let mut active = E::from_hypergraph(h);

    if h.dimension() <= dimension_cap {
        let (added, bl_trace) = bl_on_active(&mut active, rng, &config.bl, &mut cost);
        for &v in &added {
            coloring.set_blue(v);
        }
        for v in 0..n as VertexId {
            if !added.contains(&v) {
                coloring.set_red(v);
            }
        }
        independent_set = added;
        trace.direct_bl = true;
        trace.tail = TailAlgorithm::None;
        trace.rounds.push(SblRoundStats {
            round: 0,
            n_alive: n,
            m: h.n_edges(),
            p: 1.0,
            sampled: n,
            sample_dimension: h.dimension(),
            dimension_failures: 0,
            sample_edges: h.n_edges(),
            added: independent_set.len(),
            rejected: n - independent_set.len(),
            edges_discarded: h.n_edges(),
            bl_stages: bl_trace.n_stages(),
        });
        return SblOutcome {
            independent_set,
            coloring,
            trace,
            cost,
            params: resolved,
        };
    }

    let mut round = 0usize;
    let mut marked = vec![false; active.id_space()];
    let mut blue_flags = vec![false; active.id_space()];
    let mut red_flags = vec![false; active.id_space()];
    while active.n_alive() >= tail_threshold
        && active.n_live_edges() > 0
        && round < config.max_rounds
    {
        let n_alive = active.n_alive();
        let m = active.n_live_edges();
        let alive = active.alive_vertices();
        let total_live = active.total_live_size() as u64;

        let mut failures = 0usize;
        let mut effective_cap = dimension_cap;
        let (sampled, sub) = loop {
            let mut sampled = Vec::new();
            for &v in &alive {
                if rng.gen_bool(p) {
                    marked[v as usize] = true;
                    sampled.push(v);
                }
            }
            cost.record(Cost::parallel_step(n_alive as u64));
            let sub = active.induced_by(&marked);
            for &v in &sampled {
                marked[v as usize] = false;
            }
            cost.record(Cost::parallel_step(total_live));
            if sub.dimension() <= effective_cap {
                break (sampled, sub);
            }
            failures += 1;
            if failures > config.max_round_retries {
                effective_cap = sub.dimension().min(MAX_ENUMERABLE_DIMENSION);
                if sub.dimension() <= effective_cap {
                    break (sampled, sub);
                }
            }
        };

        let mut sub = sub;
        let sample_dimension = sub.dimension();
        let sample_edges = sub.n_live_edges();
        let (blues, bl_trace) = bl_on_active(&mut sub, rng, &config.bl, &mut cost);

        for &v in &blues {
            blue_flags[v as usize] = true;
            coloring.set_blue(v);
        }
        let mut reds: Vec<VertexId> = Vec::new();
        for &v in &sampled {
            if !blue_flags[v as usize] {
                red_flags[v as usize] = true;
                coloring.set_red(v);
                reds.push(v);
            }
        }
        let rejected = reds.len();
        independent_set.extend(blues.iter().copied());

        active.kill_vertices(&sampled);
        let edges_discarded = active.discard_edges_touching(&red_flags, &reds);
        let emptied = active.shrink_edges_by(&blue_flags, &blues);
        assert_eq!(
            emptied, 0,
            "an edge became entirely blue — BL returned a non-independent set"
        );
        cost.record(Cost::parallel_step(m as u64));
        cost.bump_round();

        for &v in &sampled {
            blue_flags[v as usize] = false;
            red_flags[v as usize] = false;
        }

        trace.rounds.push(SblRoundStats {
            round,
            n_alive,
            m,
            p,
            sampled: sampled.len(),
            sample_dimension,
            dimension_failures: failures,
            sample_edges,
            added: blues.len(),
            rejected,
            edges_discarded,
            bl_stages: bl_trace.n_stages(),
        });
        round += 1;
    }

    let tail_vertices = active.n_alive();
    if tail_vertices > 0 {
        let added = match config.tail {
            TailChoice::Greedy => greedy_on_active(&active, &mut cost),
            TailChoice::Kuw => {
                let (added, kuw_trace) = kuw_on_active(&mut active, rng, &mut cost);
                let _ = kuw_trace;
                added
            }
        };
        trace.tail = match config.tail {
            TailChoice::Greedy => TailAlgorithm::Greedy,
            TailChoice::Kuw => TailAlgorithm::Kuw,
        };
        for &v in &added {
            coloring.set_blue(v);
        }
        for v in 0..n as VertexId {
            if coloring.get(v) == crate::coloring::Color::Undecided {
                coloring.set_red(v);
            }
        }
        independent_set.extend(added);
    } else {
        trace.tail = TailAlgorithm::None;
        for v in 0..n as VertexId {
            if coloring.get(v) == crate::coloring::Color::Undecided {
                coloring.set_red(v);
            }
        }
    }
    trace.tail_vertices = tail_vertices;

    independent_set.sort_unstable();
    independent_set.dedup();
    SblOutcome {
        independent_set,
        coloring,
        trace,
        cost,
        params: resolved,
    }
}

/// The SBL body, operating on a caller-provided engine and sub-engine slot.
fn sbl_run<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &SblConfig,
    ws: &mut Workspace,
    active: &mut E,
    sub_slot: &mut Option<E>,
) -> SblOutcome {
    let n = h.n_vertices();
    let params = SblParams::practical_default(n.max(2));
    let p = config.p.unwrap_or(params.p).clamp(1e-9, 1.0);
    let dimension_cap = config
        .dimension_cap
        .unwrap_or_else(|| params.d_cap())
        .clamp(1, MAX_ENUMERABLE_DIMENSION);
    let tail_threshold = config
        .tail_threshold
        .unwrap_or_else(|| params.tail_threshold.ceil() as usize)
        .max(1);
    let resolved = ResolvedParams {
        p,
        dimension_cap,
        tail_threshold,
    };

    let mut cost = CostTracker::new();
    let mut coloring = Coloring::new(n);
    let mut independent_set: Vec<VertexId> = Vec::new();
    let mut trace = SblTrace::default();

    // Line 3 / 26 of Algorithm 1: if every edge is already within the
    // dimension cap, a single BL call suffices.
    if h.dimension() <= dimension_cap {
        let (added, bl_trace) = bl_on_active_in(active, rng, &config.bl, &mut cost, ws);
        for &v in &added {
            coloring.set_blue(v);
        }
        for v in 0..n as VertexId {
            if !added.contains(&v) {
                coloring.set_red(v);
            }
        }
        independent_set = added;
        trace.direct_bl = true;
        trace.tail = TailAlgorithm::None;
        // Record the single BL call as one round so round counts stay
        // comparable across branches.
        trace.rounds.push(SblRoundStats {
            round: 0,
            n_alive: n,
            m: h.n_edges(),
            p: 1.0,
            sampled: n,
            sample_dimension: h.dimension(),
            dimension_failures: 0,
            sample_edges: h.n_edges(),
            added: independent_set.len(),
            rejected: n - independent_set.len(),
            edges_discarded: h.n_edges(),
            bl_stages: bl_trace.n_stages(),
        });
        return SblOutcome {
            independent_set,
            coloring,
            trace,
            cost,
            params: resolved,
        };
    }

    // Main sampling loop (lines 4–22). The per-round flag buffers are reused
    // across rounds (and, through the workspace, across runs) and cleared
    // through the round's sampled list.
    let id_space = active.id_space();
    let mut round = 0usize;
    // Trusted clean takes (no O(id_space) re-zeroing): every round unwinds
    // its marks/colors through the round's sampled list before putting the
    // buffers back, so they are all-false between solves (debug-asserted).
    let mut marked = ws.take_flags_clean("mis.sbl.marked", id_space);
    let mut blue_flags = ws.take_flags_clean("mis.sbl.blue", id_space);
    let mut red_flags = ws.take_flags_clean("mis.sbl.red", id_space);
    let mut alive = ws.take_u32("mis.sbl.alive");
    let mut sampled: Vec<VertexId> = ws.take_u32("mis.sbl.sampled");
    let mut reds: Vec<VertexId> = ws.take_u32("mis.sbl.reds");
    // One BL scratch for every per-round subcall: taken (and re-zeroed)
    // once per solve, kept clean between rounds by BL's own stage unwinding.
    let mut bl_scratch = BlScratch::take(ws, id_space);
    while active.n_alive() >= tail_threshold
        && active.n_live_edges() > 0
        && round < config.max_rounds
    {
        let n_alive = active.n_alive();
        let m = active.n_live_edges();
        // The alive set and the live edges do not change across retries of
        // the same round, so hoist them out of the retry loop.
        active.alive_into(&mut alive);
        let total_live = active.total_live_size() as u64;

        // Sample until the dimension check passes (FAIL/retry), up to the
        // configured retry budget. The sub-engine slot is re-induced in
        // place on every retry (first use allocates it).
        let mut failures = 0usize;
        let mut effective_cap = dimension_cap;
        loop {
            sampled.clear();
            for &v in &alive {
                if rng.gen_bool(p) {
                    marked[v as usize] = true;
                    sampled.push(v);
                }
            }
            cost.record(Cost::parallel_step(n_alive as u64));
            let sub: &E = match sub_slot {
                Some(sub) => {
                    active.induced_by_into(&marked, &sampled, sub);
                    sub
                }
                None => {
                    // First induce of this solve: recycle a parked sub-engine
                    // from the workspace if one exists, else build fresh.
                    *sub_slot = Some(match ws.take_any::<E>("mis.sbl.sub") {
                        Some(mut sub) => {
                            active.induced_by_into(&marked, &sampled, &mut sub);
                            sub
                        }
                        None => active.induced_by(&marked),
                    });
                    sub_slot.as_ref().expect("just set")
                }
            };
            // Reset the mark scratch for the next retry / round.
            for &v in &sampled {
                marked[v as usize] = false;
            }
            cost.record(Cost::parallel_step(total_live));
            if sub.dimension() <= effective_cap {
                break;
            }
            failures += 1;
            if failures > config.max_round_retries {
                // Accept the sample anyway with a raised cap (the paper would
                // restart from scratch; raising the cap keeps termination
                // deterministic and only weakens the round's time bound).
                effective_cap = sub.dimension().min(MAX_ENUMERABLE_DIMENSION);
                if sub.dimension() <= effective_cap {
                    break;
                }
            }
        }

        // Run BL on the sampled sub-hypergraph.
        let sub = sub_slot.as_mut().expect("induced at least once");
        let sample_dimension = sub.dimension();
        let sample_edges = sub.n_live_edges();
        let (blues, bl_trace) =
            bl_on_active_scratch(sub, rng, &config.bl, &mut cost, ws, &mut bl_scratch);

        // Permanent coloring of V' (invariant of line 5).
        for &v in &blues {
            blue_flags[v as usize] = true;
            coloring.set_blue(v);
        }
        reds.clear();
        for &v in &sampled {
            if !blue_flags[v as usize] {
                red_flags[v as usize] = true;
                coloring.set_red(v);
                reds.push(v);
            }
        }
        let rejected = reds.len();
        independent_set.extend(blues.iter().copied());

        // Update H (lines 12–20): V <- V \ V', drop edges touching red,
        // shrink the rest by the blue vertices.
        active.kill_vertices(&sampled);
        let edges_discarded = active.discard_edges_touching(&red_flags, &reds);
        let emptied = active.shrink_edges_by(&blue_flags, &blues);
        assert_eq!(
            emptied, 0,
            "an edge became entirely blue — BL returned a non-independent set"
        );
        cost.record(Cost::parallel_step(m as u64));
        cost.bump_round();

        // Every set flag belongs to a sampled vertex; reset for the next
        // round.
        for &v in &sampled {
            blue_flags[v as usize] = false;
            red_flags[v as usize] = false;
        }

        trace.rounds.push(SblRoundStats {
            round,
            n_alive,
            m,
            p,
            sampled: sampled.len(),
            sample_dimension,
            dimension_failures: failures,
            sample_edges,
            added: blues.len(),
            rejected,
            edges_discarded,
            bl_stages: bl_trace.n_stages(),
        });
        round += 1;
    }

    ws.put_flags("mis.sbl.marked", marked);
    ws.put_flags("mis.sbl.blue", blue_flags);
    ws.put_flags("mis.sbl.red", red_flags);
    ws.put_u32("mis.sbl.alive", alive);
    ws.put_u32("mis.sbl.sampled", sampled);
    ws.put_u32("mis.sbl.reds", reds);
    bl_scratch.put(ws);

    // Tail (line 23): finish the residual instance.
    let tail_vertices = active.n_alive();
    if tail_vertices > 0 {
        let added = match config.tail {
            TailChoice::Greedy => greedy_on_active_in(active, &mut cost, ws),
            TailChoice::Kuw => {
                let (added, kuw_trace) = kuw_on_active_in(active, rng, &mut cost, ws);
                let _ = kuw_trace;
                added
            }
        };
        trace.tail = match config.tail {
            TailChoice::Greedy => TailAlgorithm::Greedy,
            TailChoice::Kuw => TailAlgorithm::Kuw,
        };
        for &v in &added {
            coloring.set_blue(v);
        }
        for v in 0..n as VertexId {
            if coloring.get(v) == crate::coloring::Color::Undecided {
                coloring.set_red(v);
            }
        }
        independent_set.extend(added);
    } else {
        trace.tail = TailAlgorithm::None;
        // Any vertex never sampled and never decided is impossible here
        // (n_alive == 0), but the coloring may still contain undecided slots
        // when the id space had vertices that were killed as part of BL's
        // internal cleanup; mark them red for completeness.
        for v in 0..n as VertexId {
            if coloring.get(v) == crate::coloring::Color::Undecided {
                coloring.set_red(v);
            }
        }
    }
    trace.tail_vertices = tail_vertices;

    independent_set.sort_unstable();
    independent_set.dedup();
    SblOutcome {
        independent_set,
        coloring,
        trace,
        cost,
        params: resolved,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::{is_valid_mis, verify_mis};
    use hypergraph::builder::hypergraph_from_edges;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn sbl_on_toy_is_valid() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let out = sbl_mis(&h, &mut rng(1));
        assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
        assert!(out.coloring.is_complete());
        assert_eq!(out.coloring.blues(), out.independent_set);
    }

    #[test]
    fn sbl_small_dimension_goes_straight_to_bl() {
        let mut r = rng(2);
        let h = generate::d_uniform(&mut r, 40, 80, 3);
        let out = sbl_mis(&h, &mut r);
        assert!(out.trace.direct_bl);
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn sbl_general_hypergraph_uses_sampling_rounds() {
        let mut r = rng(3);
        // Edge sizes up to 12 exceed the practical dimension cap (3), so the
        // sampling loop must engage.
        let h = generate::paper_regime(&mut r, 600, 80, 12);
        assert!(h.dimension() > 3);
        let out = sbl_mis(&h, &mut r);
        assert!(!out.trace.direct_bl);
        assert!(out.trace.n_rounds() >= 1);
        assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
        assert!(out.coloring.is_complete());
    }

    #[test]
    fn sbl_respects_explicit_parameters() {
        let mut r = rng(4);
        let h = generate::paper_regime(&mut r, 400, 60, 10);
        let cfg = SblConfig {
            p: Some(0.25),
            dimension_cap: Some(4),
            tail_threshold: Some(20),
            ..SblConfig::default()
        };
        let out = sbl_mis_with(&h, &mut r, &cfg);
        assert_eq!(out.params.p, 0.25);
        assert_eq!(out.params.dimension_cap, 4);
        assert_eq!(out.params.tail_threshold, 20);
        assert!(is_valid_mis(&h, &out.independent_set));
        // Every round's accepted sample respected the (possibly raised) cap;
        // with retries available the recorded dimension should usually be
        // within the configured cap.
        for round in &out.trace.rounds {
            assert!(round.sample_dimension <= h.dimension());
        }
    }

    #[test]
    fn sbl_with_kuw_tail_is_valid() {
        let mut r = rng(5);
        let h = generate::paper_regime(&mut r, 500, 70, 10);
        let cfg = SblConfig {
            tail: TailChoice::Kuw,
            ..SblConfig::default()
        };
        let out = sbl_mis_with(&h, &mut r, &cfg);
        assert!(is_valid_mis(&h, &out.independent_set));
        if out.trace.tail_vertices > 0 {
            assert_eq!(out.trace.tail, TailAlgorithm::Kuw);
        }
    }

    #[test]
    fn sbl_deterministic_for_fixed_seed() {
        let h = generate::paper_regime(&mut rng(6), 400, 60, 10);
        let a = sbl_mis(&h, &mut rng(10));
        let b = sbl_mis(&h, &mut rng(10));
        assert_eq!(a.independent_set, b.independent_set);
        assert_eq!(a.trace.n_rounds(), b.trace.n_rounds());
    }

    #[test]
    fn sbl_valid_across_many_seeds_and_shapes() {
        for seed in 0..6u64 {
            let mut r = rng(200 + seed);
            let h = match seed % 3 {
                0 => generate::paper_regime(&mut r, 300, 50, 10),
                1 => generate::mixed_dimension(&mut r, 200, 300, &[2, 3, 4, 5, 6, 7]),
                _ => generate::d_uniform(&mut r, 150, 300, 5),
            };
            let out = sbl_mis(&h, &mut r);
            assert_eq!(
                verify_mis(&h, &out.independent_set),
                Ok(()),
                "seed {seed} failed"
            );
        }
    }

    #[test]
    fn sbl_on_edgeless_and_tiny_inputs() {
        let h = hypergraph_from_edges::<Vec<u32>>(5, vec![]);
        let out = sbl_mis(&h, &mut rng(7));
        assert_eq!(out.independent_set, vec![0, 1, 2, 3, 4]);

        let h = hypergraph_from_edges::<Vec<u32>>(0, vec![]);
        let out = sbl_mis(&h, &mut rng(8));
        assert!(out.independent_set.is_empty());

        let h = hypergraph_from_edges(1, vec![vec![0]]);
        let out = sbl_mis(&h, &mut rng(9));
        assert!(out.independent_set.is_empty());
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn sbl_round_progress_shrinks_instance() {
        let mut r = rng(12);
        let h = generate::paper_regime(&mut r, 800, 100, 12);
        let cfg = SblConfig {
            p: Some(0.2),
            dimension_cap: Some(5),
            tail_threshold: Some(25),
            ..SblConfig::default()
        };
        let out = sbl_mis_with(&h, &mut r, &cfg);
        assert!(is_valid_mis(&h, &out.independent_set));
        // Alive counts must be strictly decreasing whenever something was
        // sampled.
        let alive: Vec<usize> = out.trace.rounds.iter().map(|r| r.n_alive).collect();
        for w in alive.windows(2) {
            assert!(w[1] <= w[0]);
        }
        // And the number of rounds should be far below n (the point of the
        // algorithm).
        assert!(out.trace.n_rounds() < 200);
    }
}
