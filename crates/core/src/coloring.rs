//! The red/blue coloring model used to reason about SBL's correctness
//! (Section 2.1 of the paper).
//!
//! SBL colors vertices round by round: vertices that join the independent set
//! are *blue*, vertices that are decided out are *red*, the rest are
//! *undecided*. The correctness argument is entirely in terms of this
//! coloring — "the set of blue vertices forms an MIS in the original
//! hypergraph" — so the implementation carries it explicitly, and the
//! verification helpers in [`crate::verify`] check exactly the two properties
//! the paper proves: no edge ever becomes fully blue, and every red vertex has
//! a witnessing edge that would become fully blue if it were flipped.

use hypergraph::VertexId;

/// The color of a vertex during (or after) an algorithm run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Color {
    /// Not yet decided.
    #[default]
    Undecided,
    /// In the independent set.
    Blue,
    /// Decided out of the independent set.
    Red,
}

/// A coloring of the vertex id space `0..n`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Coloring {
    colors: Vec<Color>,
}

impl Coloring {
    /// All-undecided coloring over `n` vertices.
    pub fn new(n: usize) -> Self {
        Coloring {
            colors: vec![Color::Undecided; n],
        }
    }

    /// Number of vertices in the id space.
    pub fn len(&self) -> usize {
        self.colors.len()
    }

    /// `true` if the id space is empty.
    pub fn is_empty(&self) -> bool {
        self.colors.is_empty()
    }

    /// Color of vertex `v`.
    pub fn get(&self, v: VertexId) -> Color {
        self.colors[v as usize]
    }

    /// Colors `v` blue (joins the independent set).
    ///
    /// # Panics
    /// Panics if `v` was already colored red (algorithms never flip colors).
    pub fn set_blue(&mut self, v: VertexId) {
        assert_ne!(
            self.colors[v as usize],
            Color::Red,
            "vertex {v} was red and cannot become blue"
        );
        self.colors[v as usize] = Color::Blue;
    }

    /// Colors `v` red (decided out).
    ///
    /// # Panics
    /// Panics if `v` was already colored blue.
    pub fn set_red(&mut self, v: VertexId) {
        assert_ne!(
            self.colors[v as usize],
            Color::Blue,
            "vertex {v} was blue and cannot become red"
        );
        self.colors[v as usize] = Color::Red;
    }

    /// The blue vertices, in increasing order.
    pub fn blues(&self) -> Vec<VertexId> {
        self.collect(Color::Blue)
    }

    /// The red vertices, in increasing order.
    pub fn reds(&self) -> Vec<VertexId> {
        self.collect(Color::Red)
    }

    /// The undecided vertices, in increasing order.
    pub fn undecided(&self) -> Vec<VertexId> {
        self.collect(Color::Undecided)
    }

    /// Number of vertices with the given color.
    pub fn count(&self, color: Color) -> usize {
        self.colors.iter().filter(|&&c| c == color).count()
    }

    /// `true` once every vertex is decided.
    pub fn is_complete(&self) -> bool {
        !self.colors.contains(&Color::Undecided)
    }

    fn collect(&self, color: Color) -> Vec<VertexId> {
        self.colors
            .iter()
            .enumerate()
            .filter(|(_, &c)| c == color)
            .map(|(i, _)| i as VertexId)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn coloring_lifecycle() {
        let mut c = Coloring::new(5);
        assert_eq!(c.len(), 5);
        assert!(!c.is_complete());
        assert_eq!(c.count(Color::Undecided), 5);
        c.set_blue(0);
        c.set_red(1);
        c.set_blue(2);
        assert_eq!(c.get(0), Color::Blue);
        assert_eq!(c.get(1), Color::Red);
        assert_eq!(c.blues(), vec![0, 2]);
        assert_eq!(c.reds(), vec![1]);
        assert_eq!(c.undecided(), vec![3, 4]);
        c.set_red(3);
        c.set_blue(4);
        assert!(c.is_complete());
    }

    #[test]
    fn recoloring_same_color_is_idempotent() {
        let mut c = Coloring::new(2);
        c.set_blue(0);
        c.set_blue(0);
        assert_eq!(c.count(Color::Blue), 1);
    }

    #[test]
    #[should_panic(expected = "cannot become red")]
    fn blue_cannot_turn_red() {
        let mut c = Coloring::new(2);
        c.set_blue(1);
        c.set_red(1);
    }

    #[test]
    #[should_panic(expected = "cannot become blue")]
    fn red_cannot_turn_blue() {
        let mut c = Coloring::new(2);
        c.set_red(0);
        c.set_blue(0);
    }

    #[test]
    fn empty_coloring() {
        let c = Coloring::new(0);
        assert!(c.is_empty());
        assert!(c.is_complete());
        assert!(c.blues().is_empty());
    }
}
