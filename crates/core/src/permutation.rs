//! The permutation-based Beame–Luby algorithm (the second algorithm of \[2\],
//! analysed further by Shachnai–Srinivasan \[9\]), conjectured to be RNC for
//! general hypergraphs.
//!
//! The algorithm draws a uniformly random permutation `π` of the vertices and
//! commits to the *lexicographically-first* MIS with respect to `π`: a vertex
//! joins the independent set unless some edge through it would become fully
//! blue using only vertices earlier in `π`. Sequentially this is just greedy
//! in a random order; the parallel interest is that long prefixes of `π` can
//! be decided simultaneously because most early vertices have no mutual
//! constraints.
//!
//! This module provides both views:
//!
//! * [`permutation_mis`] — the exact random-order greedy (the distribution the
//!   conjecture is about), used as a baseline and as a differential-testing
//!   oracle;
//! * [`permutation_rounds_mis`] — a round-structured execution that processes
//!   the permutation in chunks, deciding each chunk in one parallel round the
//!   way an implementation on a PRAM would, and reporting the number of rounds
//!   used. The chunk schedule doubles, mirroring the prefix-doubling schedule
//!   Shachnai–Srinivasan analyse.

use hypergraph::{Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::greedy::greedy_mis_in;

/// Result of a permutation-MIS run.
#[derive(Debug, Clone)]
pub struct PermutationOutcome {
    /// The maximal independent set found (sorted).
    pub independent_set: Vec<VertexId>,
    /// The permutation used (vertex ids in processing order).
    pub permutation: Vec<VertexId>,
    /// Number of parallel rounds used (1 chunk = 1 round); equals `1` for the
    /// purely sequential view.
    pub rounds: usize,
    /// Work–depth accounting.
    pub cost: CostTracker,
}

/// The lexicographically-first MIS under a uniformly random permutation
/// (random-order greedy).
pub fn permutation_mis<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> PermutationOutcome {
    permutation_mis_in(h, rng, &mut Workspace::new())
}

/// Workspace-reusing variant of [`permutation_mis`]: the greedy scan's
/// scratch comes from (and returns to) `ws`. Identical results for the same
/// seed. (The permutation itself is part of the outcome and is always
/// freshly allocated.)
pub fn permutation_mis_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    ws: &mut Workspace,
) -> PermutationOutcome {
    let mut order: Vec<VertexId> = (0..h.n_vertices() as u32).collect();
    order.shuffle(rng);
    let out = greedy_mis_in(h, Some(&order), ws);
    PermutationOutcome {
        independent_set: out.independent_set,
        permutation: order,
        rounds: 1,
        cost: out.cost,
    }
}

/// Round-structured execution of the permutation algorithm: the permutation is
/// split into doubling chunks (1, 2, 4, …); each chunk is decided in one
/// parallel round against the already-decided prefix. The committed set is
/// identical to [`permutation_mis`] run with the same permutation — the chunk
/// structure only changes the *cost accounting*, which is the quantity the
/// open question about this algorithm concerns.
pub fn permutation_rounds_mis<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> PermutationOutcome {
    permutation_rounds_mis_in(h, rng, &mut Workspace::new())
}

/// Workspace-reusing variant of [`permutation_rounds_mis`]. Identical
/// results for the same seed.
pub fn permutation_rounds_mis_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    ws: &mut Workspace,
) -> PermutationOutcome {
    let n = h.n_vertices();
    let mut order: Vec<VertexId> = (0..n as u32).collect();
    order.shuffle(rng);

    let mut cost = CostTracker::new();
    let mut in_set = ws.take_flags("mis.perm.in_set", n);
    let mut missing = ws.take_u32("mis.perm.missing");
    missing.extend((0..h.n_edges()).map(|e| h.edge_len(e as u32) as u32));
    let mut set = Vec::new();

    let mut start = 0usize;
    let mut chunk = 1usize;
    let mut rounds = 0usize;
    while start < n {
        let end = (start + chunk).min(n);
        // One parallel round: every vertex of the chunk is examined against
        // the state at the start of the chunk *plus* earlier vertices of the
        // same chunk (the intra-chunk dependency chain is what the analysis
        // of this algorithm has to bound; we account its depth as the chunk's
        // longest prefix, i.e. charge log-depth for the scan plus the chain).
        let mut chunk_work = 0u64;
        for &v in &order[start..end] {
            let inc = h.incident_edges(v);
            chunk_work += 1 + inc.len() as u64;
            let blocked = inc.iter().any(|&e| missing[e as usize] == 1);
            if !blocked {
                in_set[v as usize] = true;
                set.push(v);
                for &e in inc {
                    missing[e as usize] -= 1;
                }
            }
        }
        cost.record(Cost::parallel_step(chunk_work));
        cost.bump_round();
        rounds += 1;
        start = end;
        chunk *= 2;
    }

    set.sort_unstable();
    ws.put_flags("mis.perm.in_set", in_set);
    ws.put_u32("mis.perm.missing", missing);
    PermutationOutcome {
        independent_set: set,
        permutation: order,
        rounds,
        cost,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_mis;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn permutation_mis_is_valid() {
        let mut r = rng(1);
        let h = generate::mixed_dimension(&mut r, 60, 120, &[2, 3, 4]);
        let out = permutation_mis(&h, &mut r);
        assert!(is_valid_mis(&h, &out.independent_set));
        assert_eq!(out.rounds, 1);
        assert_eq!(out.permutation.len(), 60);
    }

    #[test]
    fn round_structured_version_matches_sequential_semantics() {
        // Same seed → same permutation → identical committed set.
        let h = generate::d_uniform(&mut rng(2), 50, 100, 3);
        let a = permutation_mis(&h, &mut rng(33));
        let b = permutation_rounds_mis(&h, &mut rng(33));
        assert_eq!(a.permutation, b.permutation);
        assert_eq!(a.independent_set, b.independent_set);
        assert!(b.rounds >= 1);
        // Doubling chunks: rounds ≈ log2(n) + 1.
        assert!(b.rounds <= (50f64.log2().ceil() as usize) + 2);
    }

    #[test]
    fn works_on_hypergraphs_with_large_edges() {
        let mut r = rng(3);
        let h = generate::paper_regime(&mut r, 200, 40, 12);
        let out = permutation_rounds_mis(&h, &mut r);
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn different_seeds_can_give_different_sets() {
        let h = generate::d_uniform(&mut rng(4), 40, 80, 2);
        let a = permutation_mis(&h, &mut rng(1)).independent_set;
        let b = permutation_mis(&h, &mut rng(2)).independent_set;
        // Both valid; with overwhelming probability they differ.
        assert!(is_valid_mis(&h, &a));
        assert!(is_valid_mis(&h, &b));
    }
}
