//! The Beame–Luby algorithm (Algorithm 2 of the paper, originally from
//! "Parallel search for maximal independence given minimal dependence",
//! SODA 1990), with the instrumentation the Theorem-2 experiments need.
//!
//! One *stage* of the algorithm:
//!
//! 1. compute `d = dim(H)` and `Δ(H)` and set the marking probability
//!    `p = 1/(2^{d+1} Δ(H))`;
//! 2. mark every vertex independently with probability `p`;
//! 3. for every edge that is fully marked, unmark **all** of its vertices;
//! 4. add the surviving marked vertices `I'` to the independent set, delete
//!    them from the vertex set and from every edge;
//! 5. cleanup: drop edges that now contain another edge (dominated), and drop
//!    singleton edges together with their vertex (which can never join the
//!    independent set).
//!
//! Stages repeat until no undecided vertex remains. Kelsen proved an
//! `O((log n)^{(d+4)!})` stage bound for constant `d`; the paper's Theorem 2
//! extends it to `d ≤ log log n / (4 log log log n)`. The instrumentation
//! records per-stage degree profiles so experiments E6/E7 can confront the
//! migration bounds and potential functions with observed behaviour.

use hypergraph::degree::{beame_luby_probability, DegreeTable, MAX_ENUMERABLE_DIMENSION};
use hypergraph::{ActiveEngine, ActiveHypergraph, Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;
use rand::Rng;

use crate::greedy::greedy_on_active_in;
use crate::trace::{BlStageStats, BlTrace};

/// Tuning knobs for a Beame–Luby run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BlConfig {
    /// Record `Δ_i(H)` for every dimension `i` at the start of every stage
    /// (needed by the migration / potential experiments; costs one extra
    /// degree-table scan per stage).
    pub track_potentials: bool,
    /// Hard cap on the number of stages; if reached, the remaining vertices
    /// are finished off with a sequential greedy sweep so the result is still
    /// a correct MIS. The cap exists purely as a safety net — the
    /// probabilistic stage bounds make reaching it astronomically unlikely.
    pub max_stages: usize,
}

impl Default for BlConfig {
    fn default() -> Self {
        BlConfig {
            track_potentials: false,
            max_stages: 100_000,
        }
    }
}

/// Result of a Beame–Luby run.
#[derive(Debug, Clone)]
pub struct BlOutcome {
    /// The maximal independent set found (vertex ids of the input hypergraph).
    pub independent_set: Vec<VertexId>,
    /// Per-stage instrumentation.
    pub trace: BlTrace,
    /// Work–depth accounting.
    pub cost: CostTracker,
}

/// Runs Beame–Luby on a full hypergraph with the default (flat) engine.
///
/// # Panics
/// Panics if the hypergraph dimension exceeds
/// [`MAX_ENUMERABLE_DIMENSION`] — BL is only meant for small dimensions; use
/// [`crate::sbl::sbl_mis`] for general hypergraphs.
pub fn bl_mis<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R, config: &BlConfig) -> BlOutcome {
    bl_mis_with_engine::<ActiveHypergraph, R>(h, rng, config)
}

/// Runs Beame–Luby with a caller-owned [`Workspace`], reusing its buffers
/// and parked engine across solves (the zero-reallocation batch path).
/// Identical results to [`bl_mis`] for the same seed, whether the workspace
/// is fresh or warm.
pub fn bl_mis_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &BlConfig,
    ws: &mut Workspace,
) -> BlOutcome {
    bl_mis_with_engine_in::<ActiveHypergraph, R>(h, rng, config, ws)
}

/// Runs Beame–Luby on a full hypergraph with an explicit [`ActiveEngine`]
/// (used by the differential suites and the bench regression guard). Thin
/// wrapper owning a fresh workspace.
pub fn bl_mis_with_engine<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &BlConfig,
) -> BlOutcome {
    bl_mis_with_engine_in::<E, R>(h, rng, config, &mut Workspace::new())
}

/// Engine-generic, workspace-reusing Beame–Luby entry point.
pub fn bl_mis_with_engine_in<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    config: &BlConfig,
    ws: &mut Workspace,
) -> BlOutcome {
    let mut active: E = match ws.take_any::<E>("mis.bl.engine") {
        Some(mut engine) => {
            engine.reset_from(h);
            engine
        }
        None => E::from_hypergraph(h),
    };
    let mut cost = CostTracker::new();
    let (independent_set, trace) = bl_on_active_in(&mut active, rng, config, &mut cost, ws);
    ws.put_any("mis.bl.engine", active);
    BlOutcome {
        independent_set,
        trace,
        cost,
    }
}

/// Runs Beame–Luby on an [`ActiveEngine`] *in place*, consuming every
/// alive vertex (each ends up either in the returned independent set or
/// implicitly red). Returns the added vertices (sorted, global ids) and the
/// stage trace; costs are recorded into `cost`.
///
/// This is the entry point SBL uses on its sampled sub-hypergraphs.
pub fn bl_on_active<E: ActiveEngine, R: Rng + ?Sized>(
    active: &mut E,
    rng: &mut R,
    config: &BlConfig,
    cost: &mut CostTracker,
) -> (Vec<VertexId>, BlTrace) {
    bl_on_active_in(active, rng, config, cost, &mut Workspace::new())
}

/// Workspace-reusing variant of [`bl_on_active`]: all per-stage flag and
/// index scratch comes from (and returns to) `ws`, so a warmed-up workspace
/// makes the stage loop allocation-free. Decisions, RNG consumption order
/// and the recorded cost script are identical to [`bl_on_active`].
pub fn bl_on_active_in<E: ActiveEngine, R: Rng + ?Sized>(
    active: &mut E,
    rng: &mut R,
    config: &BlConfig,
    cost: &mut CostTracker,
    ws: &mut Workspace,
) -> (Vec<VertexId>, BlTrace) {
    let mut scratch = BlScratch::take(ws, active.id_space());
    let out = bl_on_active_scratch(active, rng, config, cost, ws, &mut scratch);
    scratch.put(ws);
    out
}

/// The per-stage scratch of a Beame–Luby run, hoisted so a caller driving
/// many BL subruns (SBL invokes one per sampling round) pays the
/// take/re-zero cost once per *solve* instead of once per round.
///
/// Invariant: the flag vectors are all-`false` between BL runs — every stage
/// unwinds its entries through that stage's alive list, so the loop leaves
/// them clean (debug-asserted on entry).
pub(crate) struct BlScratch {
    marked: Vec<bool>,
    unmark: Vec<bool>,
    accepted_flags: Vec<bool>,
    alive: Vec<VertexId>,
    accepted: Vec<VertexId>,
}

impl BlScratch {
    /// Takes the scratch from `ws`, sized for `id_space`. The flag buffers
    /// come through the trusted clean take (no `O(id_space)` re-zeroing):
    /// the stage loop unwinds every bit it sets, so the pooled buffers are
    /// all-`false` between runs (debug-asserted on take and on entry to
    /// [`bl_on_active_scratch`]).
    pub(crate) fn take(ws: &mut Workspace, id_space: usize) -> Self {
        BlScratch {
            marked: ws.take_flags_clean("mis.bl.marked", id_space),
            unmark: ws.take_flags_clean("mis.bl.unmark", id_space),
            accepted_flags: ws.take_flags_clean("mis.bl.accepted", id_space),
            alive: ws.take_u32("mis.bl.alive"),
            accepted: ws.take_u32("mis.bl.accepted_list"),
        }
    }

    /// Returns the scratch to `ws` for the next taker.
    pub(crate) fn put(self, ws: &mut Workspace) {
        ws.put_flags("mis.bl.marked", self.marked);
        ws.put_flags("mis.bl.unmark", self.unmark);
        ws.put_flags("mis.bl.accepted", self.accepted_flags);
        ws.put_u32("mis.bl.alive", self.alive);
        ws.put_u32("mis.bl.accepted_list", self.accepted);
    }
}

/// [`bl_on_active_in`] over caller-held [`BlScratch`] (see there for the
/// reuse contract). `ws` is still needed for the greedy-fallback path.
pub(crate) fn bl_on_active_scratch<E: ActiveEngine, R: Rng + ?Sized>(
    active: &mut E,
    rng: &mut R,
    config: &BlConfig,
    cost: &mut CostTracker,
    ws: &mut Workspace,
    scratch: &mut BlScratch,
) -> (Vec<VertexId>, BlTrace) {
    let id_space = active.id_space();
    let mut independent_set: Vec<VertexId> = Vec::new();
    let mut trace = BlTrace::default();
    let mut stage = 0usize;
    // Per-stage scratch, cleared by resetting the entries of the stage's
    // alive vertices (every set entry belongs to an alive vertex), so the
    // buffers come back all-false between runs.
    let BlScratch {
        marked,
        unmark,
        accepted_flags,
        alive,
        accepted,
    } = scratch;
    debug_assert!(
        marked[..id_space.min(marked.len())].iter().all(|&b| !b)
            && unmark[..id_space.min(unmark.len())].iter().all(|&b| !b)
            && accepted_flags[..id_space.min(accepted_flags.len())]
                .iter()
                .all(|&b| !b),
        "BlScratch handed over dirty"
    );
    debug_assert!(
        marked.len() >= id_space && unmark.len() >= id_space && accepted_flags.len() >= id_space,
        "BlScratch sized for a smaller id space"
    );

    while active.n_alive() > 0 {
        if stage >= config.max_stages {
            // Safety net: finish deterministically so callers always get an MIS.
            let added = greedy_on_active_in(active, cost, ws);
            let mut flags = ws.take_flags("mis.bl.fallback", id_space);
            for &v in &added {
                flags[v as usize] = true;
            }
            active.kill_vertices(&added);
            let emptied = active.shrink_edges_by(&flags, &added);
            debug_assert_eq!(emptied, 0, "greedy fallback produced a dependent set");
            ws.put_flags("mis.bl.fallback", flags);
            // Everything else is red: kill the rest too.
            active.alive_into(alive);
            active.kill_vertices(alive);
            independent_set.extend(added);
            break;
        }

        let dim = active.dimension();
        assert!(
            dim <= MAX_ENUMERABLE_DIMENSION,
            "Beame-Luby invoked on dimension {dim}; the degree machinery only \
             supports dimension <= {MAX_ENUMERABLE_DIMENSION} (use SBL for general hypergraphs)"
        );
        let n_alive = active.n_alive();
        let m = active.n_live_edges();

        // Degree profile and marking probability.
        let (delta, deltas_by_dimension) = if m == 0 {
            (0.0, Vec::new())
        } else {
            let table = DegreeTable::build(active);
            cost.record(Cost::parallel_step((m as u64) << dim.min(20)));
            let deltas = if config.track_potentials {
                (0..=dim).map(|i| table.delta_i(i)).collect()
            } else {
                Vec::new()
            };
            (table.delta(), deltas)
        };
        let p = beame_luby_probability(delta, dim);

        // Step 1: independent marking (ascending vertex order, which pins the
        // RNG consumption order across engines).
        active.alive_into(alive);
        let mut n_marked = 0usize;
        for &v in alive.iter() {
            if rng.gen_bool(p) {
                marked[v as usize] = true;
                n_marked += 1;
            }
        }
        cost.record(Cost::parallel_step(n_alive as u64));

        // Step 2: unmark every vertex of every fully marked edge.
        for e in active.edge_slices() {
            if e.iter().all(|&v| marked[v as usize]) {
                for &v in e {
                    unmark[v as usize] = true;
                }
            }
        }
        cost.record(Cost::parallel_step(active.total_live_size() as u64));

        let mut n_unmarked = 0usize;
        accepted.clear();
        for &v in alive.iter() {
            if marked[v as usize] {
                if unmark[v as usize] {
                    n_unmarked += 1;
                } else {
                    accepted_flags[v as usize] = true;
                    accepted.push(v);
                }
            }
        }
        cost.record(Cost::parallel_step(n_alive as u64));

        // Step 3: commit I', trim edges, cleanup.
        active.kill_vertices(accepted);
        let emptied = active.shrink_edges_by(accepted_flags, accepted);
        debug_assert_eq!(
            emptied, 0,
            "a fully marked edge survived the unmarking step"
        );
        let dominated_removed = active.remove_dominated_edges();
        let singletons = active.remove_singleton_edges();
        cost.record(Cost::parallel_step(m as u64));
        cost.bump_round();

        independent_set.extend(accepted.iter().copied());

        trace.stages.push(BlStageStats {
            stage,
            n_alive,
            m,
            dimension: dim,
            delta,
            p,
            marked: n_marked,
            unmarked: n_unmarked,
            added: accepted.len(),
            dominated_removed,
            singletons_removed: singletons.len(),
            deltas_by_dimension,
        });
        stage += 1;

        // Reset the scratch for the next stage.
        for &v in alive.iter() {
            marked[v as usize] = false;
            unmark[v as usize] = false;
            accepted_flags[v as usize] = false;
        }
    }

    independent_set.sort_unstable();
    (independent_set, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_mis;
    use hypergraph::builder::hypergraph_from_edges;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn bl_on_toy_produces_valid_mis() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let out = bl_mis(&h, &mut rng(1), &BlConfig::default());
        assert!(
            is_valid_mis(&h, &out.independent_set),
            "{:?}",
            out.independent_set
        );
        assert!(out.trace.n_stages() >= 1);
        assert!(out.cost.rounds() >= 1);
    }

    #[test]
    fn bl_on_edgeless_hypergraph_takes_everything() {
        let h = hypergraph_from_edges::<Vec<u32>>(10, vec![]);
        let out = bl_mis(&h, &mut rng(2), &BlConfig::default());
        assert_eq!(out.independent_set, (0..10).collect::<Vec<u32>>());
        // With no edges p = 1 and a single stage suffices.
        assert_eq!(out.trace.n_stages(), 1);
    }

    #[test]
    fn bl_handles_singleton_edges() {
        let h = hypergraph_from_edges(4, vec![vec![2], vec![0, 1], vec![1, 3]]);
        let out = bl_mis(&h, &mut rng(3), &BlConfig::default());
        assert!(!out.independent_set.contains(&2));
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn bl_valid_on_random_graphs_and_3_uniform() {
        for seed in 0..5u64 {
            let mut r = rng(100 + seed);
            let g2 = generate::d_uniform(&mut r, 60, 120, 2);
            let out = bl_mis(&g2, &mut r, &BlConfig::default());
            assert!(is_valid_mis(&g2, &out.independent_set), "seed {seed} (d=2)");

            let g3 = generate::d_uniform(&mut r, 60, 150, 3);
            let out = bl_mis(&g3, &mut r, &BlConfig::default());
            assert!(is_valid_mis(&g3, &out.independent_set), "seed {seed} (d=3)");
        }
    }

    #[test]
    fn bl_valid_on_mixed_dimension() {
        let mut r = rng(42);
        let h = generate::mixed_dimension(&mut r, 80, 150, &[2, 3, 4, 5]);
        let out = bl_mis(&h, &mut r, &BlConfig::default());
        assert!(is_valid_mis(&h, &out.independent_set));
        // Stage count should be modest (polylog in practice).
        assert!(
            out.trace.n_stages() < 200,
            "{} stages",
            out.trace.n_stages()
        );
    }

    #[test]
    fn bl_potential_tracking_records_profiles() {
        let mut r = rng(7);
        let h = generate::d_uniform(&mut r, 50, 120, 3);
        let cfg = BlConfig {
            track_potentials: true,
            ..BlConfig::default()
        };
        let out = bl_mis(&h, &mut r, &cfg);
        assert!(is_valid_mis(&h, &out.independent_set));
        // Every stage that still had edges must have recorded a profile
        // covering dimensions up to 3.
        let with_edges = out.trace.stages.iter().filter(|s| s.m > 0);
        for s in with_edges {
            assert_eq!(s.deltas_by_dimension.len(), s.dimension + 1);
            assert!(s.delta > 0.0);
            assert!(s.p > 0.0 && s.p <= 1.0);
        }
    }

    #[test]
    fn bl_max_stage_fallback_still_returns_valid_mis() {
        let mut r = rng(11);
        let h = generate::d_uniform(&mut r, 60, 100, 3);
        let cfg = BlConfig {
            track_potentials: false,
            max_stages: 0, // force the greedy fallback immediately
        };
        let out = bl_mis(&h, &mut r, &cfg);
        assert!(is_valid_mis(&h, &out.independent_set));
        assert_eq!(out.trace.n_stages(), 0);
    }

    #[test]
    fn bl_is_deterministic_for_a_fixed_seed() {
        let h = generate::d_uniform(&mut rng(5), 40, 80, 3);
        let a = bl_mis(&h, &mut rng(9), &BlConfig::default());
        let b = bl_mis(&h, &mut rng(9), &BlConfig::default());
        assert_eq!(a.independent_set, b.independent_set);
        assert_eq!(a.trace, b.trace);
    }

    #[test]
    fn bl_stage_count_grows_slowly_with_n() {
        // Sanity check of the RNC claim's *shape*: the stage count must grow
        // far slower than n (it is polylogarithmic in theory; the constants at
        // these sizes are dominated by 1/p = 2^{d+1}Δ).
        let mut counts = Vec::new();
        for &n in &[64usize, 256, 1024] {
            let mut r = rng(n as u64);
            let h = generate::d_uniform(&mut r, n, 2 * n, 3);
            let out = bl_mis(&h, &mut r, &BlConfig::default());
            assert!(is_valid_mis(&h, &out.independent_set));
            let stages = out.trace.n_stages();
            assert!(stages < n, "n={n}: {stages} stages >= n");
            counts.push(stages as f64);
        }
        // Growing n by 16x must grow the stage count by far less than 16x.
        assert!(
            counts[2] / counts[0] < 8.0,
            "stage growth {} -> {} is not clearly sublinear",
            counts[0],
            counts[2]
        );
    }
}
