//! Parallel maximal-independent-set algorithms for hypergraphs.
//!
//! This crate implements the algorithms of *"On Computing Maximal Independent
//! Sets of Hypergraphs in Parallel"* (Bercea, Goyal, Harris, Srinivasan —
//! SPAA 2014) together with the baselines the paper compares against:
//!
//! | Module | Algorithm | Role in the paper |
//! |---|---|---|
//! | [`sbl`] | **SBL** (sampling Beame–Luby), Algorithm 1 | the paper's contribution (Theorem 1) |
//! | [`bl`] | Beame–Luby, Algorithm 2 | the subroutine whose analysis Theorem 2 extends |
//! | [`kuw`] | Karp–Upfal–Wigderson style parallel search | prior `O(√n)` state of the art / SBL tail option |
//! | [`greedy`] | sequential greedy | the "linear time" finisher and ground-truth oracle |
//! | [`permutation`] | permutation Beame–Luby | related-work algorithm conjectured to be RNC |
//! | [`linear`] | Łuczak–Szymańska-style marking | the linear-hypergraph RNC case (experiment E9) |
//!
//! Supporting modules: [`coloring`] (the red/blue model of Section 2.1),
//! [`verify`] (runtime MIS checking), [`trace`] (per-round/stage
//! instrumentation consumed by the experiment harness).
//!
//! Every randomized entry point takes a caller-supplied [`rand::Rng`], so runs
//! are reproducible with a seeded `rand_chacha::ChaCha8Rng`. Every algorithm
//! returns a [`pram::CostTracker`] recording work, depth and rounds in the
//! EREW-PRAM-style cost model the paper's theorems are phrased in.
//!
//! # Quick start
//!
//! ```
//! use hypergraph::generate;
//! use mis_core::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(7);
//! // A general hypergraph with edges of size up to 12.
//! let h = generate::paper_regime(&mut rng, 500, 60, 12);
//! let out = sbl_mis(&h, &mut rng);
//! assert!(verify_mis(&h, &out.independent_set).is_ok());
//! println!("MIS size {} in {} sampling rounds", out.independent_set.len(), out.trace.n_rounds());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod bl;
pub mod coloring;
pub mod greedy;
pub mod kuw;
pub mod linear;
pub mod permutation;
pub mod sbl;
pub mod trace;
pub mod verify;

pub use bl::{bl_mis, bl_mis_in, bl_mis_with_engine, bl_mis_with_engine_in, BlConfig, BlOutcome};
pub use greedy::{greedy_mis, greedy_mis_in, GreedyOutcome};
pub use kuw::{kuw_mis, kuw_mis_in, kuw_mis_with_engine, kuw_mis_with_engine_in, KuwOutcome};
pub use pram::Workspace;
pub use sbl::{
    sbl_mis, sbl_mis_in, sbl_mis_rebuild, sbl_mis_with, sbl_mis_with_engine,
    sbl_mis_with_engine_in, SblConfig, SblOutcome, TailChoice,
};
pub use verify::{is_valid_mis, verify_mis, VerifyError};

/// Commonly used items.
pub mod prelude {
    pub use crate::bl::{
        bl_mis, bl_mis_in, bl_mis_with_engine, bl_mis_with_engine_in, BlConfig, BlOutcome,
    };
    pub use crate::coloring::{Color, Coloring};
    pub use crate::greedy::{
        greedy_mis, greedy_mis_in, greedy_on_active, greedy_on_active_in, GreedyOutcome,
    };
    pub use crate::kuw::{
        kuw_mis, kuw_mis_in, kuw_mis_with_engine, kuw_mis_with_engine_in, KuwOutcome,
    };
    pub use crate::linear::{
        check_linear, linear_mis, linear_mis_in, linear_mis_with_engine, linear_mis_with_engine_in,
        LinearOutcome,
    };
    pub use crate::permutation::{
        permutation_mis, permutation_mis_in, permutation_rounds_mis, permutation_rounds_mis_in,
        PermutationOutcome,
    };
    pub use crate::sbl::{
        sbl_mis, sbl_mis_in, sbl_mis_rebuild, sbl_mis_with, sbl_mis_with_engine,
        sbl_mis_with_engine_in, SblConfig, SblOutcome, TailChoice,
    };
    pub use crate::trace::{BlTrace, KuwTrace, SblTrace, TailAlgorithm};
    pub use crate::verify::{is_valid_mis, verify_mis, VerifyError};
    pub use pram::Workspace;
}
