//! MIS for *linear* hypergraphs (every two edges share at most one vertex) —
//! the class Łuczak and Szymańska proved to be in RNC, referenced in the
//! paper's related work and exercised by experiment E9.
//!
//! The Łuczak–Szymańska algorithm is itself a marking algorithm in the
//! Beame–Luby family; its analysis exploits linearity to get away with a much
//! more aggressive marking probability. This module implements that
//! specialisation: the marking probability is derived from the maximum
//! *vertex* degree (which, in a linear hypergraph, controls the number of
//! edges any marked set can complete) instead of Kelsen's normalized degree,
//! and the per-stage structure is otherwise identical to
//! [`crate::bl`]. A linearity check is performed up front so callers cannot
//! accidentally run the specialised probability on a non-linear instance.

use hypergraph::degree::max_vertex_degree;
use hypergraph::{ActiveEngine, ActiveHypergraph, Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;
use rand::Rng;

use crate::greedy::greedy_on_active_in;
use crate::trace::{BlStageStats, BlTrace};

/// Result of a linear-hypergraph MIS run.
#[derive(Debug, Clone)]
pub struct LinearOutcome {
    /// The maximal independent set found (sorted vertex ids).
    pub independent_set: Vec<VertexId>,
    /// Per-stage trace (same shape as a BL trace).
    pub trace: BlTrace,
    /// Work–depth accounting.
    pub cost: CostTracker,
}

/// Errors reported by [`linear_mis`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LinearError {
    /// Two edges share two or more vertices, so the hypergraph is not linear.
    NotLinear {
        /// Index of the first offending edge.
        first: usize,
        /// Index of the second offending edge.
        second: usize,
    },
}

impl std::fmt::Display for LinearError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LinearError::NotLinear { first, second } => write!(
                f,
                "edges #{first} and #{second} share at least two vertices; the hypergraph is not linear"
            ),
        }
    }
}

impl std::error::Error for LinearError {}

/// Checks whether a hypergraph is linear (`|e ∩ e'| ≤ 1` for all distinct
/// edges). Returns the first violating pair if not.
pub fn check_linear(h: &Hypergraph) -> Result<(), LinearError> {
    use std::collections::HashMap;
    // Map each vertex pair appearing inside an edge to that edge; a repeat is
    // a violation.
    let mut pair_owner: HashMap<(VertexId, VertexId), usize> = HashMap::new();
    for (idx, e) in h.edges().enumerate() {
        for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                if let Some(&first) = pair_owner.get(&(e[i], e[j])) {
                    return Err(LinearError::NotLinear { first, second: idx });
                }
                pair_owner.insert((e[i], e[j]), idx);
            }
        }
    }
    Ok(())
}

/// Computes an MIS of a linear hypergraph with the Łuczak–Szymańska-style
/// marking schedule.
///
/// Returns an error if the input is not linear; use [`crate::bl::bl_mis`] or
/// [`crate::sbl::sbl_mis`] for general hypergraphs.
pub fn linear_mis<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
) -> Result<LinearOutcome, LinearError> {
    linear_mis_with_engine::<ActiveHypergraph, R>(h, rng)
}

/// Computes an MIS of a linear hypergraph with a caller-owned [`Workspace`],
/// reusing its buffers and parked engine across solves. Identical results to
/// [`linear_mis`] for the same seed.
pub fn linear_mis_in<R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    ws: &mut Workspace,
) -> Result<LinearOutcome, LinearError> {
    linear_mis_with_engine_in::<ActiveHypergraph, R>(h, rng, ws)
}

/// Computes an MIS of a linear hypergraph with an explicit [`ActiveEngine`]
/// (used by the differential suites). Thin wrapper owning a fresh workspace.
pub fn linear_mis_with_engine<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
) -> Result<LinearOutcome, LinearError> {
    linear_mis_with_engine_in::<E, R>(h, rng, &mut Workspace::new())
}

/// Engine-generic, workspace-reusing linear-hypergraph entry point.
pub fn linear_mis_with_engine_in<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    ws: &mut Workspace,
) -> Result<LinearOutcome, LinearError> {
    check_linear(h)?;
    let mut active: E = match ws.take_any::<E>("mis.linear.engine") {
        Some(mut engine) => {
            engine.reset_from(h);
            engine
        }
        None => E::from_hypergraph(h),
    };
    let mut cost = CostTracker::new();
    let mut trace = BlTrace::default();
    let mut independent_set: Vec<VertexId> = Vec::new();
    let id_space = active.id_space();
    let max_stages = 100_000usize;
    let mut stage = 0usize;
    // Per-stage scratch, cleared by resetting the entries of the stage's
    // alive vertices (every set entry belongs to an alive vertex).
    let mut marked = ws.take_flags("mis.linear.marked", id_space);
    let mut unmark = ws.take_flags("mis.linear.unmark", id_space);
    let mut accepted_flags = ws.take_flags("mis.linear.accepted", id_space);
    let mut alive = ws.take_u32("mis.linear.alive");
    let mut accepted: Vec<VertexId> = ws.take_u32("mis.linear.accepted_list");

    while active.n_alive() > 0 {
        if stage >= max_stages {
            let added = greedy_on_active_in(&active, &mut cost, ws);
            active.alive_into(&mut alive);
            active.kill_vertices(&alive);
            independent_set.extend(added);
            break;
        }
        let n_alive = active.n_alive();
        let m = active.n_live_edges();
        let dim = active.dimension();

        // Linear marking probability: with D = max vertex degree and edges of
        // size >= 2, marking with p = 1/(2 (D · d)^{1/(d-1)} ) keeps the
        // expected number of fully marked edges through any vertex below 1/2,
        // which is all the unmarking argument needs on a linear hypergraph.
        let p = if m == 0 {
            1.0
        } else {
            let vertex_degree = max_vertex_degree(&active).max(1) as f64;
            let d = dim.max(2) as f64;
            (0.5 / (vertex_degree * d).powf(1.0 / (d - 1.0))).clamp(f64::MIN_POSITIVE, 1.0)
        };

        let mut n_marked = 0usize;
        active.alive_into(&mut alive);
        for &v in &alive {
            if rng.gen_bool(p) {
                marked[v as usize] = true;
                n_marked += 1;
            }
        }
        cost.record(Cost::parallel_step(n_alive as u64));

        for e in active.edge_slices() {
            if e.iter().all(|&v| marked[v as usize]) {
                for &v in e {
                    unmark[v as usize] = true;
                }
            }
        }
        cost.record(Cost::parallel_step(active.total_live_size() as u64));

        accepted.clear();
        let mut n_unmarked = 0usize;
        for &v in &alive {
            if marked[v as usize] {
                if unmark[v as usize] {
                    n_unmarked += 1;
                } else {
                    accepted_flags[v as usize] = true;
                    accepted.push(v);
                }
            }
        }
        active.kill_vertices(&accepted);
        let emptied = active.shrink_edges_by(&accepted_flags, &accepted);
        debug_assert_eq!(emptied, 0);
        let dominated_removed = active.remove_dominated_edges();
        let singletons = active.remove_singleton_edges();
        cost.record(Cost::parallel_step(m as u64));
        cost.bump_round();

        independent_set.extend(accepted.iter().copied());
        trace.stages.push(BlStageStats {
            stage,
            n_alive,
            m,
            dimension: dim,
            delta: 0.0,
            p,
            marked: n_marked,
            unmarked: n_unmarked,
            added: accepted.len(),
            dominated_removed,
            singletons_removed: singletons.len(),
            deltas_by_dimension: Vec::new(),
        });
        stage += 1;

        // Reset the scratch for the next stage (every set entry belongs to
        // this stage's alive list).
        for &v in &alive {
            marked[v as usize] = false;
            unmark[v as usize] = false;
            accepted_flags[v as usize] = false;
        }
    }

    ws.put_flags("mis.linear.marked", marked);
    ws.put_flags("mis.linear.unmark", unmark);
    ws.put_flags("mis.linear.accepted", accepted_flags);
    ws.put_u32("mis.linear.alive", alive);
    ws.put_u32("mis.linear.accepted_list", accepted);
    ws.put_any("mis.linear.engine", active);
    independent_set.sort_unstable();
    Ok(LinearOutcome {
        independent_set,
        trace,
        cost,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_mis;
    use hypergraph::builder::hypergraph_from_edges;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn linearity_check() {
        let linear = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3, 4], vec![4, 5, 0]]);
        assert_eq!(check_linear(&linear), Ok(()));
        let not_linear = hypergraph_from_edges(5, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        assert_eq!(
            check_linear(&not_linear),
            Err(LinearError::NotLinear {
                first: 0,
                second: 1
            })
        );
        assert!(LinearError::NotLinear {
            first: 0,
            second: 1
        }
        .to_string()
        .contains("not linear"));
    }

    #[test]
    fn rejects_non_linear_input() {
        let h = hypergraph_from_edges(5, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        assert!(linear_mis(&h, &mut rng(1)).is_err());
    }

    #[test]
    fn valid_on_generated_linear_hypergraphs() {
        for seed in 0..4u64 {
            let mut r = rng(10 + seed);
            let h = generate::linear(&mut r, 120, 80, 3);
            assert_eq!(check_linear(&h), Ok(()));
            let out = linear_mis(&h, &mut r).unwrap();
            assert!(is_valid_mis(&h, &out.independent_set), "seed {seed}");
            assert!(out.trace.n_stages() >= 1);
        }
    }

    #[test]
    fn valid_on_graphs_which_are_always_linear() {
        let mut r = rng(20);
        let h = generate::d_uniform(&mut r, 80, 150, 2);
        let out = linear_mis(&h, &mut r).unwrap();
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn sunflower_with_singleton_core_is_linear() {
        let h = generate::special::sunflower(6, 3, 1);
        assert_eq!(check_linear(&h), Ok(()));
        let out = linear_mis(&h, &mut rng(30)).unwrap();
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn stage_counts_stay_small() {
        let mut r = rng(40);
        let h = generate::linear(&mut r, 300, 200, 3);
        let out = linear_mis(&h, &mut r).unwrap();
        assert!(is_valid_mis(&h, &out.independent_set));
        assert!(
            out.trace.n_stages() < 100,
            "{} stages",
            out.trace.n_stages()
        );
    }
}
