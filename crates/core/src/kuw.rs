//! A Karp–Upfal–Wigderson style parallel-search baseline.
//!
//! Karp, Upfal and Wigderson ("The complexity of parallel search", JCSS 1988)
//! gave an `O(√n)`-time, `poly(m,n)`-processor algorithm for MIS in the
//! independence-oracle model; the paper uses it both as the prior state of the
//! art for general hypergraphs and as the finisher for SBL's residual
//! instance.
//!
//! The oracle model is not directly executable, so this module implements the
//! standard *batched random search* adaptation (documented in DESIGN.md §5):
//! in every round the algorithm
//!
//! 1. discards vertices that can no longer join (singleton edges) — they are
//!    decided red;
//! 2. tests, **in parallel**, a family of random candidate subsets of the
//!    undecided vertices (several subsets per size, sizes doubling from 1 to
//!    the number of undecided vertices) against the independence oracle
//!    "does the current hypergraph have an edge inside this set?";
//! 3. commits the largest candidate that passed, removes its vertices and
//!    trims the edges.
//!
//! Each round costs polylogarithmic depth (all candidate tests are
//! independent) and commits at least one vertex, and the doubling search makes
//! it commit large batches whenever large independent batches exist — this is
//! the behaviour the `O(√n)` analysis exploits. Experiment E5 measures the
//! resulting round counts next to SBL's.

use hypergraph::{ActiveEngine, ActiveHypergraph, Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::trace::{KuwRoundStats, KuwTrace};

/// Number of random candidate subsets tested per size per round.
const TRIES_PER_SIZE: usize = 3;

/// Result of a KUW-style run.
#[derive(Debug, Clone)]
pub struct KuwOutcome {
    /// The maximal independent set found (sorted vertex ids).
    pub independent_set: Vec<VertexId>,
    /// Per-round instrumentation.
    pub trace: KuwTrace,
    /// Work–depth accounting.
    pub cost: CostTracker,
}

/// Runs the KUW-style baseline on a full hypergraph with the default (flat)
/// engine.
pub fn kuw_mis<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R) -> KuwOutcome {
    kuw_mis_with_engine::<ActiveHypergraph, R>(h, rng)
}

/// Runs the KUW-style baseline with a caller-owned [`Workspace`], reusing
/// its buffers and parked engine across solves. Identical results to
/// [`kuw_mis`] for the same seed.
pub fn kuw_mis_in<R: Rng + ?Sized>(h: &Hypergraph, rng: &mut R, ws: &mut Workspace) -> KuwOutcome {
    kuw_mis_with_engine_in::<ActiveHypergraph, R>(h, rng, ws)
}

/// Runs the KUW-style baseline on a full hypergraph with an explicit
/// [`ActiveEngine`] (used by the differential suites). Thin wrapper owning a
/// fresh workspace.
pub fn kuw_mis_with_engine<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
) -> KuwOutcome {
    kuw_mis_with_engine_in::<E, R>(h, rng, &mut Workspace::new())
}

/// Engine-generic, workspace-reusing KUW entry point.
pub fn kuw_mis_with_engine_in<E: ActiveEngine + Send + 'static, R: Rng + ?Sized>(
    h: &Hypergraph,
    rng: &mut R,
    ws: &mut Workspace,
) -> KuwOutcome {
    let mut active: E = match ws.take_any::<E>("mis.kuw.engine") {
        Some(mut engine) => {
            engine.reset_from(h);
            engine
        }
        None => E::from_hypergraph(h),
    };
    let mut cost = CostTracker::new();
    let (independent_set, trace) = kuw_on_active_in(&mut active, rng, &mut cost, ws);
    ws.put_any("mis.kuw.engine", active);
    KuwOutcome {
        independent_set,
        trace,
        cost,
    }
}

/// Runs the KUW-style baseline on an [`ActiveEngine`] in place, deciding
/// every alive vertex. Returns the added vertices (sorted, global ids) and the
/// round trace; costs are recorded into `cost`.
pub fn kuw_on_active<E: ActiveEngine, R: Rng + ?Sized>(
    active: &mut E,
    rng: &mut R,
    cost: &mut CostTracker,
) -> (Vec<VertexId>, KuwTrace) {
    kuw_on_active_in(active, rng, cost, &mut Workspace::new())
}

/// Workspace-reusing variant of [`kuw_on_active`]: the per-round flag and
/// candidate buffers come from (and return to) `ws`, and the commit flags
/// are unwound through the committed batch instead of being reallocated, so
/// a warmed-up workspace makes the round loop allocation-free. Decisions,
/// RNG consumption order and the recorded cost script are identical.
pub fn kuw_on_active_in<E: ActiveEngine, R: Rng + ?Sized>(
    active: &mut E,
    rng: &mut R,
    cost: &mut CostTracker,
    ws: &mut Workspace,
) -> (Vec<VertexId>, KuwTrace) {
    let id_space = active.id_space();
    let mut independent_set: Vec<VertexId> = Vec::new();
    let mut trace = KuwTrace::default();
    let mut round = 0usize;
    // Each round decides at least one vertex, so this cap is never reached in
    // practice; it guards against a logic error turning into a hang.
    let max_rounds = 4 * id_space + 16;
    // Per-round scratch: `flags` is cleared through the committed batch at
    // the end of every round, so it stays all-false between rounds.
    let mut flags = ws.take_flags("mis.kuw.flags", id_space);
    let mut alive = ws.take_u32("mis.kuw.alive");
    let mut scratch = ws.take_u32("mis.kuw.scratch");
    let mut best = ws.take_u32("mis.kuw.best");

    while active.n_alive() > 0 && round < max_rounds {
        let n_alive = active.n_alive();
        let m = active.n_live_edges();

        // Step 1: vertices trapped by singleton edges are decided out.
        let excluded = active.remove_singleton_edges();
        cost.record(Cost::parallel_step(m as u64));

        if active.n_live_edges() == 0 {
            // No constraints remain: everything still alive joins.
            active.alive_into(&mut alive);
            for &v in &alive {
                flags[v as usize] = true;
            }
            active.kill_vertices(&alive);
            active.shrink_edges_by(&flags, &alive);
            for &v in &alive {
                flags[v as usize] = false;
            }
            cost.record(Cost::parallel_step(alive.len() as u64));
            cost.bump_round();
            trace.rounds.push(KuwRoundStats {
                round,
                n_alive,
                m,
                candidates_tested: 0,
                batch_added: alive.len(),
                excluded: excluded.len(),
            });
            independent_set.extend(alive.iter().copied());
            round += 1;
            continue;
        }

        // Step 2: parallel search over random candidate subsets with doubling
        // sizes.
        active.alive_into(&mut alive);
        best.clear();
        let mut tested = 0usize;
        let mut size = 1usize;
        scratch.clear();
        scratch.extend_from_slice(&alive);
        // The instance does not change while candidates are tested, so the
        // per-test oracle charge is a constant this round.
        let oracle_work = active.total_live_size() as u64;
        while size <= alive.len() {
            for _ in 0..TRIES_PER_SIZE {
                scratch.shuffle(rng);
                tested += 1;
                let independent = !active.contains_live_edge_within(&scratch[..size]);
                cost.record(Cost::parallel_step(oracle_work));
                if independent && size > best.len() {
                    best.clear();
                    best.extend_from_slice(&scratch[..size]);
                }
            }
            if size == alive.len() {
                break;
            }
            size = (size * 2).min(alive.len());
        }
        // After singleton cleanup every single vertex is an independent set,
        // so `best` is non-empty whenever any vertex is alive.
        debug_assert!(!best.is_empty() || alive.is_empty());

        // Step 3: commit the batch.
        for &v in &best {
            flags[v as usize] = true;
        }
        active.kill_vertices(&best);
        let emptied = active.shrink_edges_by(&flags, &best);
        debug_assert_eq!(emptied, 0, "committed batch was not independent");
        for &v in &best {
            flags[v as usize] = false;
        }
        cost.record(Cost::parallel_step(m as u64));
        cost.bump_round();

        trace.rounds.push(KuwRoundStats {
            round,
            n_alive,
            m,
            candidates_tested: tested,
            batch_added: best.len(),
            excluded: excluded.len(),
        });
        independent_set.extend(best.iter().copied());
        round += 1;
    }

    ws.put_flags("mis.kuw.flags", flags);
    ws.put_u32("mis.kuw.alive", alive);
    ws.put_u32("mis.kuw.scratch", scratch);
    ws.put_u32("mis.kuw.best", best);
    independent_set.sort_unstable();
    (independent_set, trace)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_mis;
    use hypergraph::builder::hypergraph_from_edges;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn kuw_on_toy_is_valid() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let out = kuw_mis(&h, &mut rng(1));
        assert!(is_valid_mis(&h, &out.independent_set));
        assert!(out.trace.n_rounds() >= 1);
    }

    #[test]
    fn kuw_on_edgeless_takes_everything_in_one_round() {
        let h = hypergraph_from_edges::<Vec<u32>>(12, vec![]);
        let out = kuw_mis(&h, &mut rng(2));
        assert_eq!(out.independent_set.len(), 12);
        assert_eq!(out.trace.n_rounds(), 1);
    }

    #[test]
    fn kuw_handles_singleton_edges() {
        let h = hypergraph_from_edges(5, vec![vec![0], vec![0, 1], vec![2, 3, 4]]);
        let out = kuw_mis(&h, &mut rng(3));
        assert!(!out.independent_set.contains(&0));
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn kuw_valid_on_random_instances() {
        for seed in 0..4u64 {
            let mut r = rng(50 + seed);
            let h = generate::mixed_dimension(&mut r, 80, 160, &[2, 3, 4, 5]);
            let out = kuw_mis(&h, &mut r);
            assert!(is_valid_mis(&h, &out.independent_set), "seed {seed}");
        }
    }

    #[test]
    fn kuw_valid_on_large_edge_hypergraphs() {
        // Unlike BL, KUW has no dimension restriction at all.
        let mut r = rng(9);
        let h = generate::paper_regime(&mut r, 300, 60, 15);
        let out = kuw_mis(&h, &mut r);
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn kuw_round_count_is_sublinear_on_sparse_instances() {
        let mut r = rng(4);
        let n = 400;
        let h = generate::d_uniform(&mut r, n, 300, 3);
        let out = kuw_mis(&h, &mut r);
        assert!(is_valid_mis(&h, &out.independent_set));
        assert!(
            out.trace.n_rounds() < n / 2,
            "{} rounds for n={n}",
            out.trace.n_rounds()
        );
    }

    #[test]
    fn kuw_deterministic_for_fixed_seed() {
        let h = generate::d_uniform(&mut rng(5), 60, 120, 3);
        let a = kuw_mis(&h, &mut rng(21));
        let b = kuw_mis(&h, &mut rng(21));
        assert_eq!(a.independent_set, b.independent_set);
    }
}
