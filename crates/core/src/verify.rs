//! Verification of algorithm outputs: turns the correctness argument of
//! Section 2.1 into runtime checks.
//!
//! The paper argues two properties of SBL's final blue set:
//!
//! 1. **Independence** — no edge of the *original* hypergraph is fully blue;
//! 2. **Maximality** — every red vertex `v` has a witnessing edge `e ∋ v`
//!    whose other vertices are all blue, so flipping `v` to blue would break
//!    independence.
//!
//! [`verify_mis`] checks both and reports the exact witness when a check
//! fails, which makes property-test counterexamples actionable.

use hypergraph::{Hypergraph, VertexId};

/// The ways an alleged maximal independent set can be wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// A vertex id is out of range or repeated.
    MalformedSet {
        /// The offending vertex.
        vertex: VertexId,
    },
    /// Some edge is entirely contained in the set.
    NotIndependent {
        /// Index of the violated edge.
        edge: usize,
        /// The violated edge's vertices.
        vertices: Vec<VertexId>,
    },
    /// Some vertex outside the set could be added without breaking
    /// independence.
    NotMaximal {
        /// A vertex that could still be added.
        vertex: VertexId,
    },
}

impl std::fmt::Display for VerifyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerifyError::MalformedSet { vertex } => {
                write!(f, "vertex {vertex} is out of range or repeated")
            }
            VerifyError::NotIndependent { edge, vertices } => {
                write!(f, "edge #{edge} {vertices:?} is entirely inside the set")
            }
            VerifyError::NotMaximal { vertex } => {
                write!(
                    f,
                    "vertex {vertex} could be added without breaking independence"
                )
            }
        }
    }
}

impl std::error::Error for VerifyError {}

/// Checks that `set` is a maximal independent set of `h`.
///
/// Runs in `O(Σ_e |e| + n)` and returns the first violation found.
pub fn verify_mis(h: &Hypergraph, set: &[VertexId]) -> Result<(), VerifyError> {
    let n = h.n_vertices();
    let mut member = vec![false; n];
    for &v in set {
        if (v as usize) >= n || member[v as usize] {
            return Err(VerifyError::MalformedSet { vertex: v });
        }
        member[v as usize] = true;
    }

    // Independence: no edge fully inside the set.
    for (i, e) in h.edges().enumerate() {
        if e.iter().all(|&v| member[v as usize]) {
            return Err(VerifyError::NotIndependent {
                edge: i,
                vertices: e.to_vec(),
            });
        }
    }

    // Maximality: every non-member must have a witnessing edge whose other
    // vertices are all members.
    for v in 0..n as VertexId {
        if member[v as usize] {
            continue;
        }
        let blocked = h
            .incident_edges(v)
            .iter()
            .any(|&e| h.edge(e).iter().all(|&u| u == v || member[u as usize]));
        if !blocked {
            return Err(VerifyError::NotMaximal { vertex: v });
        }
    }
    Ok(())
}

/// Convenience: `true` iff [`verify_mis`] succeeds.
pub fn is_valid_mis(h: &Hypergraph, set: &[VertexId]) -> bool {
    verify_mis(h, set).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::builder::hypergraph_from_edges;

    fn toy() -> Hypergraph {
        hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]])
    }

    #[test]
    fn accepts_valid_mis() {
        let h = toy();
        assert_eq!(verify_mis(&h, &[0, 1, 3, 5]), Ok(()));
        assert!(is_valid_mis(&h, &[0, 1, 3, 5]));
    }

    #[test]
    fn rejects_dependent_set() {
        let h = toy();
        let err = verify_mis(&h, &[2, 3, 0]).unwrap_err();
        assert!(matches!(err, VerifyError::NotIndependent { .. }));
    }

    #[test]
    fn rejects_non_maximal_set() {
        let h = toy();
        // Both 4 and 5 could still be added; the checker reports the first.
        let err = verify_mis(&h, &[0, 1, 3]).unwrap_err();
        assert_eq!(err, VerifyError::NotMaximal { vertex: 4 });
    }

    #[test]
    fn rejects_malformed_sets() {
        let h = toy();
        assert!(matches!(
            verify_mis(&h, &[0, 99]),
            Err(VerifyError::MalformedSet { vertex: 99 })
        ));
        assert!(matches!(
            verify_mis(&h, &[1, 1]),
            Err(VerifyError::MalformedSet { vertex: 1 })
        ));
    }

    #[test]
    fn edgeless_hypergraph_requires_all_vertices() {
        let h = hypergraph_from_edges::<Vec<u32>>(3, vec![]);
        assert!(is_valid_mis(&h, &[0, 1, 2]));
        assert!(!is_valid_mis(&h, &[0, 1]));
    }

    #[test]
    fn error_display_is_informative() {
        let e = VerifyError::NotIndependent {
            edge: 3,
            vertices: vec![1, 2],
        };
        assert!(e.to_string().contains("edge #3"));
        assert!(VerifyError::NotMaximal { vertex: 7 }
            .to_string()
            .contains('7'));
    }
}
