//! Instrumentation records produced by the algorithm runs.
//!
//! Every algorithm in this crate returns, next to the independent set itself,
//! a trace describing what happened round by round / stage by stage. The
//! experiment harness consumes these traces to regenerate the paper's
//! quantitative claims (round counts, failure events, degree migration,
//! potential-function decay) without re-instrumenting the algorithms.

/// Per-stage record of a Beame–Luby run (one iteration of the while loop of
/// Algorithm 2).
#[derive(Debug, Clone, PartialEq)]
pub struct BlStageStats {
    /// Stage index, starting at 0.
    pub stage: usize,
    /// Alive vertices at the start of the stage.
    pub n_alive: usize,
    /// Edges at the start of the stage.
    pub m: usize,
    /// Dimension at the start of the stage.
    pub dimension: usize,
    /// Maximum normalized degree `Δ(H)` at the start of the stage.
    pub delta: f64,
    /// Marking probability `p = 1/(2^{d+1}Δ)` used in the stage.
    pub p: f64,
    /// Vertices marked in the stage.
    pub marked: usize,
    /// Vertices unmarked because they sat in a fully marked edge.
    pub unmarked: usize,
    /// Vertices added to the independent set in the stage.
    pub added: usize,
    /// Dominated edges removed during cleanup.
    pub dominated_removed: usize,
    /// Singleton edges removed during cleanup (their vertex turns red).
    pub singletons_removed: usize,
    /// Per-dimension maximum normalized degrees `Δ_i(H)` at the start of the
    /// stage (index = dimension `i`; empty when potential tracking is off).
    pub deltas_by_dimension: Vec<f64>,
}

/// Full trace of a Beame–Luby run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct BlTrace {
    /// One record per stage, in order.
    pub stages: Vec<BlStageStats>,
}

impl BlTrace {
    /// Number of stages the run took.
    pub fn n_stages(&self) -> usize {
        self.stages.len()
    }

    /// Total vertices added across all stages.
    pub fn total_added(&self) -> usize {
        self.stages.iter().map(|s| s.added).sum()
    }

    /// Largest per-stage observed increase of `Δ_j` between consecutive
    /// stages, for each dimension `j` (index by dimension). Only meaningful
    /// when potential tracking was enabled; dimensions never observed yield 0.
    pub fn max_delta_increase_by_dimension(&self) -> Vec<f64> {
        let max_dim = self
            .stages
            .iter()
            .map(|s| s.deltas_by_dimension.len())
            .max()
            .unwrap_or(0);
        let mut out = vec![0.0f64; max_dim];
        for w in self.stages.windows(2) {
            let (a, b) = (&w[0].deltas_by_dimension, &w[1].deltas_by_dimension);
            for (j, slot) in out.iter_mut().enumerate() {
                let before = a.get(j).copied().unwrap_or(0.0);
                let after = b.get(j).copied().unwrap_or(0.0);
                if after > before {
                    *slot = slot.max(after - before);
                }
            }
        }
        out
    }
}

/// What SBL used to finish off the small residual hypergraph.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TailAlgorithm {
    /// The sequential greedy sweep ("time linear in the number of vertices").
    Greedy,
    /// The Karp–Upfal–Wigderson style parallel search.
    Kuw,
    /// No tail was needed (the while loop consumed every vertex, or BL was
    /// invoked directly because the input dimension was already small).
    #[default]
    None,
}

/// Per-round record of an SBL run (one iteration of the while loop of
/// Algorithm 1).
#[derive(Debug, Clone, PartialEq)]
pub struct SblRoundStats {
    /// Round index, starting at 0.
    pub round: usize,
    /// Alive (undecided) vertices at the start of the round.
    pub n_alive: usize,
    /// Active edges at the start of the round.
    pub m: usize,
    /// Sampling probability used.
    pub p: f64,
    /// Vertices sampled into `V'`.
    pub sampled: usize,
    /// Dimension of the sampled sub-hypergraph `H'`.
    pub sample_dimension: usize,
    /// Number of resamples forced by the dimension check (`FAIL` events).
    pub dimension_failures: usize,
    /// Edges of `H'` (fully sampled edges).
    pub sample_edges: usize,
    /// Vertices added to the independent set (blue) this round.
    pub added: usize,
    /// Vertices decided out (red) this round.
    pub rejected: usize,
    /// Edges of `H` discarded because they touched a red vertex.
    pub edges_discarded: usize,
    /// Stages the BL subroutine took this round.
    pub bl_stages: usize,
}

/// Full trace of an SBL run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SblTrace {
    /// One record per outer round.
    pub rounds: Vec<SblRoundStats>,
    /// Which algorithm finished the residual instance.
    pub tail: TailAlgorithm,
    /// Vertices handled by the tail algorithm.
    pub tail_vertices: usize,
    /// `true` when the input dimension was already within the cap and SBL
    /// delegated to a single BL call (the `else` branch of Algorithm 1).
    pub direct_bl: bool,
}

impl SblTrace {
    /// Number of outer rounds.
    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }

    /// Total dimension-check failures across all rounds (event B in the
    /// analysis).
    pub fn total_dimension_failures(&self) -> usize {
        self.rounds.iter().map(|r| r.dimension_failures).sum()
    }

    /// Total BL stages across all rounds — the quantity the paper's running
    /// time is really made of.
    pub fn total_bl_stages(&self) -> usize {
        self.rounds.iter().map(|r| r.bl_stages).sum()
    }

    /// The per-round fraction of alive vertices that got sampled (and hence
    /// decided); compared against `p/2` by experiment E4.
    pub fn per_round_decided_fraction(&self) -> Vec<f64> {
        self.rounds
            .iter()
            .map(|r| {
                if r.n_alive == 0 {
                    0.0
                } else {
                    (r.added + r.rejected) as f64 / r.n_alive as f64
                }
            })
            .collect()
    }
}

/// Per-round record of the KUW-style baseline.
#[derive(Debug, Clone, PartialEq)]
pub struct KuwRoundStats {
    /// Round index.
    pub round: usize,
    /// Alive vertices at the start of the round.
    pub n_alive: usize,
    /// Active edges at the start of the round.
    pub m: usize,
    /// Candidate subsets tested this round.
    pub candidates_tested: usize,
    /// Size of the independent batch committed this round.
    pub batch_added: usize,
    /// Vertices excluded this round (singleton edges).
    pub excluded: usize,
}

/// Full trace of a KUW-style run.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct KuwTrace {
    /// One record per round.
    pub rounds: Vec<KuwRoundStats>,
}

impl KuwTrace {
    /// Number of rounds the run took.
    pub fn n_rounds(&self) -> usize {
        self.rounds.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stage(stage: usize, added: usize, deltas: Vec<f64>) -> BlStageStats {
        BlStageStats {
            stage,
            n_alive: 100,
            m: 50,
            dimension: 3,
            delta: 4.0,
            p: 0.01,
            marked: 10,
            unmarked: 2,
            added,
            dominated_removed: 1,
            singletons_removed: 0,
            deltas_by_dimension: deltas,
        }
    }

    #[test]
    fn bl_trace_aggregates() {
        let t = BlTrace {
            stages: vec![
                stage(0, 5, vec![0.0, 0.0, 3.0, 4.0]),
                stage(1, 7, vec![0.0, 0.0, 5.0, 3.0]),
                stage(2, 1, vec![0.0, 0.0, 4.0, 9.0]),
            ],
        };
        assert_eq!(t.n_stages(), 3);
        assert_eq!(t.total_added(), 13);
        let inc = t.max_delta_increase_by_dimension();
        assert_eq!(inc.len(), 4);
        assert_eq!(inc[2], 2.0); // 3 -> 5
        assert_eq!(inc[3], 6.0); // 3 -> 9
        assert_eq!(inc[0], 0.0);
    }

    #[test]
    fn sbl_trace_aggregates() {
        let t = SblTrace {
            rounds: vec![
                SblRoundStats {
                    round: 0,
                    n_alive: 100,
                    m: 40,
                    p: 0.2,
                    sampled: 20,
                    sample_dimension: 2,
                    dimension_failures: 1,
                    sample_edges: 3,
                    added: 15,
                    rejected: 5,
                    edges_discarded: 10,
                    bl_stages: 4,
                },
                SblRoundStats {
                    round: 1,
                    n_alive: 80,
                    m: 30,
                    p: 0.2,
                    sampled: 16,
                    sample_dimension: 3,
                    dimension_failures: 0,
                    sample_edges: 2,
                    added: 10,
                    rejected: 6,
                    edges_discarded: 8,
                    bl_stages: 3,
                },
            ],
            tail: TailAlgorithm::Greedy,
            tail_vertices: 12,
            direct_bl: false,
        };
        assert_eq!(t.n_rounds(), 2);
        assert_eq!(t.total_dimension_failures(), 1);
        assert_eq!(t.total_bl_stages(), 7);
        let fr = t.per_round_decided_fraction();
        assert!((fr[0] - 0.2).abs() < 1e-12);
        assert!((fr[1] - 0.2).abs() < 1e-12);
    }

    #[test]
    fn empty_traces() {
        assert_eq!(BlTrace::default().n_stages(), 0);
        assert_eq!(
            BlTrace::default().max_delta_increase_by_dimension().len(),
            0
        );
        assert_eq!(SblTrace::default().n_rounds(), 0);
        assert_eq!(SblTrace::default().tail, TailAlgorithm::None);
        assert_eq!(KuwTrace::default().n_rounds(), 0);
    }
}
