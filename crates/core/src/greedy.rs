//! Sequential greedy MIS — the "time linear in the number of vertices"
//! baseline the paper mentions for finishing off small instances, and the
//! ground-truth oracle for correctness tests.

use hypergraph::{ActiveEngine, Hypergraph, VertexId};
use pram::cost::{Cost, CostTracker};
use pram::Workspace;

/// Result of a greedy run.
#[derive(Debug, Clone)]
pub struct GreedyOutcome {
    /// The maximal independent set found.
    pub independent_set: Vec<VertexId>,
    /// Work–depth accounting (entirely sequential: work = depth).
    pub cost: CostTracker,
}

/// Computes a maximal independent set by scanning vertices in the given order
/// (increasing id order when `order` is `None`) and adding each vertex unless
/// doing so would complete an edge.
///
/// The per-vertex test walks the edges incident to the candidate and checks
/// whether all their other vertices are already in the set; total time is
/// `O(n + Σ_e |e|·deg)` in the worst case but `O(n + Σ_e |e|)` amortised with
/// the per-edge "missing vertices" counters used here.
pub fn greedy_mis(h: &Hypergraph, order: Option<&[VertexId]>) -> GreedyOutcome {
    greedy_mis_in(h, order, &mut Workspace::new())
}

/// Workspace-reusing variant of [`greedy_mis`]: the membership flags and
/// per-edge counters come from (and return to) `ws`. Identical results.
pub fn greedy_mis_in(
    h: &Hypergraph,
    order: Option<&[VertexId]>,
    ws: &mut Workspace,
) -> GreedyOutcome {
    let n = h.n_vertices();
    let mut cost = CostTracker::new();
    let mut in_set = ws.take_flags("mis.greedy.in_set", n);
    // missing[e] = number of vertices of edge e not (yet) in the set.
    let mut missing = ws.take_u32("mis.greedy.missing");
    missing.extend((0..h.n_edges()).map(|e| h.edge_len(e as u32) as u32));
    let mut default_order = ws.take_u32("mis.greedy.order");
    let order: &[VertexId] = match order {
        Some(o) => o,
        None => {
            default_order.extend(0..n as u32);
            &default_order
        }
    };
    let mut set = Vec::new();
    for &v in order {
        // v can join unless some incident edge has exactly one missing vertex
        // (which must then be v itself, since v is not yet in the set).
        let blocked = h
            .incident_edges(v)
            .iter()
            .any(|&e| missing[e as usize] == 1);
        cost.record(Cost::sequential(1 + h.incident_edges(v).len() as u64));
        if !blocked && !in_set[v as usize] {
            in_set[v as usize] = true;
            set.push(v);
            for &e in h.incident_edges(v) {
                missing[e as usize] -= 1;
            }
        }
    }
    cost.bump_round();
    set.sort_unstable();
    ws.put_flags("mis.greedy.in_set", in_set);
    ws.put_u32("mis.greedy.missing", missing);
    ws.put_u32("mis.greedy.order", default_order);
    GreedyOutcome {
        independent_set: set,
        cost,
    }
}

/// Greedy MIS over the alive part of an [`ActiveEngine`], used by SBL's
/// tail and the BL safety net. Returns the vertices added (global ids).
///
/// Works on any engine; the incidence lists are rebuilt flat (counting sort
/// over the live edges) so the scan is allocation-light and deterministic.
pub fn greedy_on_active<E: ActiveEngine>(active: &E, cost: &mut CostTracker) -> Vec<VertexId> {
    greedy_on_active_in(active, cost, &mut Workspace::new())
}

/// Workspace-reusing variant of [`greedy_on_active`]: the rebuilt incidence
/// lists and counters come from (and return to) `ws`. Identical results.
pub fn greedy_on_active_in<E: ActiveEngine>(
    active: &E,
    cost: &mut CostTracker,
    ws: &mut Workspace,
) -> Vec<VertexId> {
    let mut alive = ws.take_u32("mis.greedy.alive");
    active.alive_into(&mut alive);
    if alive.is_empty() {
        ws.put_u32("mis.greedy.alive", alive);
        return Vec::new();
    }
    // missing[e] counts how many more vertices of e would need to join.
    // Flat incidence lists over the live edges (counting sort).
    let id_space = active.id_space();
    let mut missing = ws.take_u32("mis.greedy.missing");
    let mut inc_offsets = ws.take_u32_zeroed("mis.greedy.inc_offsets", id_space + 1);
    for e in active.edge_slices() {
        missing.push(e.len() as u32);
        for &v in e {
            inc_offsets[v as usize + 1] += 1;
        }
    }
    for v in 0..id_space {
        inc_offsets[v + 1] += inc_offsets[v];
    }
    let mut cursor = ws.take_u32("mis.greedy.cursor");
    cursor.extend_from_slice(&inc_offsets);
    let mut incident = ws.take_u32_zeroed("mis.greedy.incident", inc_offsets[id_space] as usize);
    for (i, e) in active.edge_slices().enumerate() {
        for &v in e {
            incident[cursor[v as usize] as usize] = i as u32;
            cursor[v as usize] += 1;
        }
    }
    let mut added = Vec::new();
    for &v in &alive {
        let inc = &incident[inc_offsets[v as usize] as usize..inc_offsets[v as usize + 1] as usize];
        let blocked = inc.iter().any(|&e| missing[e as usize] == 1);
        cost.record(Cost::sequential(1 + inc.len() as u64));
        if !blocked {
            added.push(v);
            for &e in inc {
                missing[e as usize] -= 1;
            }
        }
    }
    cost.bump_round();
    ws.put_u32("mis.greedy.alive", alive);
    ws.put_u32("mis.greedy.missing", missing);
    ws.put_u32("mis.greedy.inc_offsets", inc_offsets);
    ws.put_u32("mis.greedy.cursor", cursor);
    ws.put_u32("mis.greedy.incident", incident);
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::is_valid_mis;
    use hypergraph::builder::hypergraph_from_edges;
    use hypergraph::generate;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    #[test]
    fn greedy_on_toy() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let out = greedy_mis(&h, None);
        assert!(is_valid_mis(&h, &out.independent_set));
        // Scanning 0,1,2,...: 0,1 join; 2 blocked ({0,1,2}); 3 joins; 4 joins;
        // 5 blocked ({3,4,5}).
        assert_eq!(out.independent_set, vec![0, 1, 3, 4]);
        assert!(out.cost.cost().work > 0);
    }

    #[test]
    fn greedy_respects_custom_order() {
        let h = hypergraph_from_edges(3, vec![vec![0, 1]]);
        let a = greedy_mis(&h, Some(&[0, 1, 2])).independent_set;
        let b = greedy_mis(&h, Some(&[1, 0, 2])).independent_set;
        assert_eq!(a, vec![0, 2]);
        assert_eq!(b, vec![1, 2]);
    }

    #[test]
    fn greedy_on_random_instances_is_always_valid() {
        let mut rng = ChaCha8Rng::seed_from_u64(5);
        for (n, m, d) in [(30, 60, 3), (50, 100, 4), (80, 40, 2)] {
            let h = generate::d_uniform(&mut rng, n, m, d);
            let out = greedy_mis(&h, None);
            assert!(is_valid_mis(&h, &out.independent_set));
        }
    }

    #[test]
    fn greedy_handles_singleton_edges() {
        let h = hypergraph_from_edges(4, vec![vec![1], vec![1, 2], vec![0, 3]]);
        let out = greedy_mis(&h, None);
        assert!(!out.independent_set.contains(&1));
        assert!(is_valid_mis(&h, &out.independent_set));
    }

    #[test]
    fn greedy_on_active_matches_full_when_everything_alive() {
        use hypergraph::ActiveHypergraph;
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let active = ActiveHypergraph::from_hypergraph(&h);
        let mut cost = CostTracker::new();
        let added = greedy_on_active(&active, &mut cost);
        assert_eq!(added, greedy_mis(&h, None).independent_set);
    }

    #[test]
    fn greedy_on_empty_active() {
        use hypergraph::ActiveHypergraph;
        let h = hypergraph_from_edges::<Vec<u32>>(0, vec![]);
        let active = ActiveHypergraph::from_hypergraph(&h);
        let mut cost = CostTracker::new();
        assert!(greedy_on_active(&active, &mut cost).is_empty());
    }
}
