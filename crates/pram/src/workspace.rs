//! [`Workspace`]: a reusable scratch arena for the zero-reallocation run
//! pipeline.
//!
//! The round-based MIS algorithms and the PRAM primitives they are built on
//! need the same few kinds of scratch over and over: flag vectors over the
//! vertex id space, index lists, scan buffers. Allocating them per call is
//! cheap enough for a single run but dominates the fixed cost of a solve once
//! a server answers a *stream* of instances. A [`Workspace`] keeps one
//! instance of each buffer, keyed by *purpose* (a `&'static str` chosen by the
//! call site), and hands it out in a cleared state:
//!
//! * [`take_flags`](Workspace::take_flags) — a `Vec<bool>` of a requested
//!   length, all `false` (re-zeroed on every take, so callers never observe a
//!   previous user's state);
//! * [`take_u32`](Workspace::take_u32) / [`take_u64`](Workspace::take_u64) /
//!   [`take_usize`](Workspace::take_usize) — an empty, capacity-retaining
//!   list buffer;
//! * [`take_u32_zeroed`](Workspace::take_u32_zeroed) — a `Vec<u32>` of a
//!   requested length, all `0` (counting-sort offsets and the like);
//! * [`take_any`](Workspace::take_any) / [`put_any`](Workspace::put_any) —
//!   typed slots for larger reusable state (the facade's `BatchRunner` parks
//!   whole `ActiveHypergraph` engines here between solves).
//!
//! Every `take_*` has a matching `put_*`; callers return the buffer when
//! done so the next take (same purpose) reuses the allocation. Buffers are
//! cleared on *take*, not on put — a `put` is just a pointer move, and the
//! clearing cost is paid only by call sites that actually reuse the buffer.
//!
//! The workspace counts how often a take had to allocate or grow
//! ([`fresh_allocations`](Workspace::fresh_allocations)), which is what the
//! zero-reallocation tests assert on: after a warm-up solve, a stream of
//! same-shaped solves must not allocate at all.
//!
//! # Determinism
//!
//! A workspace never influences results: buffers are handed out cleared, so
//! an algorithm run with a freshly created workspace and one run with a
//! well-used workspace make byte-identical decisions. The determinism suites
//! (`tests/batch.rs` in the facade) pin this.

use std::any::Any;

/// A tiny linear-scan map keyed by `&'static str`. The workspace holds a
/// couple of dozen purpose keys at most, and the keys are string *literals*,
/// so a pointer+length fast path resolves almost every probe without
/// touching the bytes — far cheaper than a tree or hash map at this size,
/// and with no iteration order anywhere near the results.
struct KeyedPool<V> {
    entries: Vec<(&'static str, V)>,
}

impl<V> Default for KeyedPool<V> {
    fn default() -> Self {
        KeyedPool {
            entries: Vec::new(),
        }
    }
}

#[inline]
fn same_key(a: &'static str, b: &'static str) -> bool {
    std::ptr::eq(a, b) || a == b
}

impl<V> KeyedPool<V> {
    fn remove(&mut self, key: &'static str) -> Option<V> {
        let i = self.entries.iter().position(|(k, _)| same_key(k, key))?;
        Some(self.entries.swap_remove(i).1)
    }

    fn insert(&mut self, key: &'static str, v: V) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| same_key(k, key)) {
            slot.1 = v;
        } else {
            self.entries.push((key, v));
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

impl<V: Copy> KeyedPool<V> {
    fn get(&self, key: &'static str) -> Option<V> {
        self.entries
            .iter()
            .find(|(k, _)| same_key(k, key))
            .map(|&(_, v)| v)
    }
}

/// A reusable scratch arena: per-purpose pools of flag/index/scan buffers
/// plus typed slots for engine-sized state. See the [module docs](self).
#[derive(Default)]
pub struct Workspace {
    flags: KeyedPool<Vec<bool>>,
    u32s: KeyedPool<Vec<u32>>,
    u64s: KeyedPool<Vec<u64>>,
    usizes: KeyedPool<Vec<usize>>,
    slots: KeyedPool<Box<dyn Any + Send>>,
    // Capacity each list buffer had when it was last handed out, so a put
    // can detect that the caller's pushes grew it (a reallocation that
    // happened outside the workspace's sight).
    u32_caps: KeyedPool<usize>,
    u64_caps: KeyedPool<usize>,
    usize_caps: KeyedPool<usize>,
    takes: u64,
    creations: u64,
    grows: u64,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("pooled_buffers", &self.pooled_buffers())
            .field("slots", &self.slots.len())
            .field("takes", &self.takes)
            .field("fresh_allocations", &self.fresh_allocations())
            .finish()
    }
}

macro_rules! pool_impl {
    ($take:ident, $put:ident, $field:ident, $caps:ident, $t:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// The buffer is **empty** (`len == 0`) but retains the capacity it
        /// had when it was last put back under the same key.
        pub fn $take(&mut self, key: &'static str) -> Vec<$t> {
            self.takes += 1;
            let v = match self.$field.remove(key) {
                Some(mut v) => {
                    v.clear();
                    v
                }
                None => {
                    self.creations += 1;
                    Vec::new()
                }
            };
            self.$caps.insert(key, v.capacity());
            v
        }

        /// Returns a buffer taken with the matching `take` so the next take
        /// under the same key reuses its allocation. If the caller's pushes
        /// grew the buffer beyond the capacity it was handed out with, that
        /// reallocation is counted toward
        /// [`fresh_allocations`](Self::fresh_allocations).
        pub fn $put(&mut self, key: &'static str, v: Vec<$t>) {
            if let Some(cap) = self.$caps.get(key) {
                if v.capacity() > cap {
                    self.grows += 1;
                }
            }
            self.$field.insert(key, v);
        }
    };
}

impl Workspace {
    /// Creates an empty workspace. Pools fill lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    pool_impl!(
        take_u32,
        put_u32,
        u32s,
        u32_caps,
        u32,
        "Takes the `Vec<u32>` pooled under `key` (creating it on first use)."
    );
    pool_impl!(
        take_u64,
        put_u64,
        u64s,
        u64_caps,
        u64,
        "Takes the `Vec<u64>` pooled under `key` (creating it on first use)."
    );
    pool_impl!(
        take_usize,
        put_usize,
        usizes,
        usize_caps,
        usize,
        "Takes the `Vec<usize>` pooled under `key` (creating it on first use)."
    );

    /// Takes the flag buffer pooled under `key`, cleared to `len` `false`
    /// entries regardless of what the previous user left in it.
    pub fn take_flags(&mut self, key: &'static str, len: usize) -> Vec<bool> {
        self.takes += 1;
        let mut v = match self.flags.remove(key) {
            Some(v) => v,
            None => {
                self.creations += 1;
                Vec::new()
            }
        };
        if v.capacity() < len {
            self.grows += 1;
        }
        v.clear();
        v.resize(len, false);
        v
    }

    /// Returns a flag buffer taken with [`take_flags`](Self::take_flags).
    /// No cleaning happens here — the next take re-zeroes.
    pub fn put_flags(&mut self, key: &'static str, v: Vec<bool>) {
        self.flags.insert(key, v);
    }

    /// Like [`take_flags`](Self::take_flags), but *trusts* that the previous
    /// user put the buffer back all-`false` instead of re-zeroing it — for
    /// keys whose users provably unwind every bit they set (the BL/SBL
    /// round-scratch invariant), this removes the `O(len)` memset per take.
    /// The contract is debug-asserted; only entries grown beyond the previous
    /// length are written. Never share a key between this and plain
    /// [`take_flags`] users that put buffers back dirty.
    pub fn take_flags_clean(&mut self, key: &'static str, len: usize) -> Vec<bool> {
        self.takes += 1;
        let mut v = match self.flags.remove(key) {
            Some(v) => v,
            None => {
                self.creations += 1;
                Vec::new()
            }
        };
        if v.capacity() < len {
            self.grows += 1;
        }
        debug_assert!(
            v.iter().all(|&b| !b),
            "take_flags_clean: buffer under {key:?} was put back dirty"
        );
        v.resize(len, false);
        v
    }

    /// Takes the `Vec<u32>` pooled under `key`, cleared to `len` zero
    /// entries (counting-sort offsets and similar dense accumulators).
    pub fn take_u32_zeroed(&mut self, key: &'static str, len: usize) -> Vec<u32> {
        let mut v = self.take_u32(key);
        if v.capacity() < len {
            self.grows += 1;
        }
        v.resize(len, 0);
        // Record the post-resize capacity so the matching put does not count
        // the same growth a second time.
        self.u32_caps.insert(key, v.capacity());
        v
    }

    /// Takes the typed slot stored under `key`, if one of type `T` is
    /// parked there. A slot holding a different type is dropped (counted as
    /// a miss), so heterogeneous callers sharing a key degrade to
    /// reconstruction instead of panicking.
    pub fn take_any<T: Any + Send>(&mut self, key: &'static str) -> Option<T> {
        self.takes += 1;
        match self.slots.remove(key) {
            Some(boxed) => match boxed.downcast::<T>() {
                Ok(v) => Some(*v),
                Err(_) => {
                    self.creations += 1;
                    None
                }
            },
            None => {
                self.creations += 1;
                None
            }
        }
    }

    /// Parks a value under `key` for a later [`take_any`](Self::take_any).
    pub fn put_any<T: Any + Send>(&mut self, key: &'static str, v: T) {
        self.slots.insert(key, Box::new(v));
    }

    /// How many takes have been served since construction.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// How many pool interactions involved a real allocation: the key was
    /// empty on take (first use, or the previous user never put the buffer
    /// back), a sized take (`take_flags` / `take_u32_zeroed`) had to grow the
    /// buffer, or a list buffer came back from the caller with more capacity
    /// than it was handed out with (the caller's pushes reallocated it). A
    /// warmed-up workspace serving a stream of same-shaped solves reports no
    /// new fresh allocations — the property the zero-reallocation tests pin.
    ///
    /// Flag buffers are excluded from put-side growth tracking: they are
    /// sized at take and callers only flip bits.
    pub fn fresh_allocations(&self) -> u64 {
        self.creations + self.grows
    }

    /// Number of buffers currently parked in the typed pools (excluding
    /// [`put_any`](Self::put_any) slots).
    pub fn pooled_buffers(&self) -> usize {
        self.flags.len() + self.u32s.len() + self.u64s.len() + self.usizes.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_cleared_on_every_take() {
        let mut ws = Workspace::new();
        let mut f = ws.take_flags("t", 8);
        f[3] = true;
        ws.put_flags("t", f);
        let f = ws.take_flags("t", 8);
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|&b| !b));
        ws.put_flags("t", f);
        // Shrinking and growing both yield fully-false buffers.
        let f = ws.take_flags("t", 3);
        assert!(f.len() == 3 && f.iter().all(|&b| !b));
        ws.put_flags("t", f);
        let f = ws.take_flags("t", 16);
        assert!(f.len() == 16 && f.iter().all(|&b| !b));
    }

    #[test]
    fn pools_retain_capacity_and_count_misses() {
        let mut ws = Workspace::new();
        let mut v = ws.take_u32("idx");
        v.extend(0..1000);
        let cap = v.capacity();
        ws.put_u32("idx", v);
        let before = ws.fresh_allocations();
        let v = ws.take_u32("idx");
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap);
        assert_eq!(
            ws.fresh_allocations(),
            before,
            "warm take must not allocate"
        );
        // A different key is a fresh allocation.
        let _ = ws.take_u32("other");
        assert_eq!(ws.fresh_allocations(), before + 1);
    }

    #[test]
    fn zeroed_u32_buffers() {
        let mut ws = Workspace::new();
        let mut v = ws.take_u32_zeroed("cnt", 5);
        v[2] = 7;
        ws.put_u32("cnt", v);
        let v = ws.take_u32_zeroed("cnt", 5);
        assert_eq!(v, vec![0; 5]);
    }

    #[test]
    fn any_slots_round_trip_and_tolerate_type_changes() {
        let mut ws = Workspace::new();
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), None);
        ws.put_any("engine", vec![1u8, 2, 3]);
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), Some(vec![1, 2, 3]));
        // Wrong type: dropped, not a panic.
        ws.put_any("engine", String::from("x"));
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), None);
    }

    #[test]
    fn u64_and_usize_pools() {
        let mut ws = Workspace::new();
        let mut a = ws.take_u64("scan");
        a.push(9);
        ws.put_u64("scan", a);
        assert!(ws.take_u64("scan").is_empty());
        let mut b = ws.take_usize("compact");
        b.push(1);
        ws.put_usize("compact", b);
        assert!(ws.take_usize("compact").is_empty());
        ws.put_u64("scan", Vec::new());
        assert!(ws.takes() >= 4);
        assert!(ws.pooled_buffers() >= 1);
    }
}
