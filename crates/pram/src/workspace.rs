//! [`Workspace`]: a reusable scratch arena for the zero-reallocation run
//! pipeline.
//!
//! The round-based MIS algorithms and the PRAM primitives they are built on
//! need the same few kinds of scratch over and over: flag vectors over the
//! vertex id space, index lists, scan buffers. Allocating them per call is
//! cheap enough for a single run but dominates the fixed cost of a solve once
//! a server answers a *stream* of instances. A [`Workspace`] keeps one
//! instance of each buffer, keyed by *purpose* (a `&'static str` chosen by the
//! call site), and hands it out in a cleared state:
//!
//! * [`take_flags`](Workspace::take_flags) — a `Vec<bool>` of a requested
//!   length, all `false` (re-zeroed on every take, so callers never observe a
//!   previous user's state);
//! * [`take_u32`](Workspace::take_u32) / [`take_u64`](Workspace::take_u64) /
//!   [`take_usize`](Workspace::take_usize) — an empty, capacity-retaining
//!   list buffer;
//! * [`take_u32_zeroed`](Workspace::take_u32_zeroed) — a `Vec<u32>` of a
//!   requested length, all `0` (counting-sort offsets and the like);
//! * [`take_any`](Workspace::take_any) / [`put_any`](Workspace::put_any) —
//!   typed slots for larger reusable state (the facade's `BatchRunner` parks
//!   whole `ActiveHypergraph` engines here between solves).
//!
//! Every `take_*` has a matching `put_*`; callers return the buffer when
//! done so the next take (same purpose) reuses the allocation. Buffers are
//! cleared on *take*, not on put — a `put` is just a pointer move, and the
//! clearing cost is paid only by call sites that actually reuse the buffer.
//!
//! The workspace counts how often a take had to allocate or grow
//! ([`fresh_allocations`](Workspace::fresh_allocations)), which is what the
//! zero-reallocation tests assert on: after a warm-up solve, a stream of
//! same-shaped solves must not allocate at all.
//!
//! # Determinism
//!
//! A workspace never influences results: buffers are handed out cleared, so
//! an algorithm run with a freshly created workspace and one run with a
//! well-used workspace make byte-identical decisions. The determinism suites
//! (`tests/batch.rs` in the facade) pin this.

use std::any::Any;

/// A tiny linear-scan map keyed by `&'static str`. The workspace holds a
/// couple of dozen purpose keys at most, and the keys are string *literals*,
/// so a pointer+length fast path resolves almost every probe without
/// touching the bytes — far cheaper than a tree or hash map at this size,
/// and with no iteration order anywhere near the results.
struct KeyedPool<V> {
    entries: Vec<(&'static str, V)>,
}

impl<V> Default for KeyedPool<V> {
    fn default() -> Self {
        KeyedPool {
            entries: Vec::new(),
        }
    }
}

#[inline]
fn same_key(a: &'static str, b: &'static str) -> bool {
    std::ptr::eq(a, b) || a == b
}

impl<V> KeyedPool<V> {
    fn remove(&mut self, key: &'static str) -> Option<V> {
        let i = self.entries.iter().position(|(k, _)| same_key(k, key))?;
        Some(self.entries.swap_remove(i).1)
    }

    fn insert(&mut self, key: &'static str, v: V) {
        if let Some(slot) = self.entries.iter_mut().find(|(k, _)| same_key(k, key)) {
            slot.1 = v;
        } else {
            self.entries.push((key, v));
        }
    }

    fn len(&self) -> usize {
        self.entries.len()
    }
}

impl<V: Copy> KeyedPool<V> {
    fn get(&self, key: &'static str) -> Option<V> {
        self.entries
            .iter()
            .find(|(k, _)| same_key(k, key))
            .map(|&(_, v)| v)
    }
}

/// A reusable scratch arena: per-purpose pools of flag/index/scan buffers
/// plus typed slots for engine-sized state. See the [module docs](self).
#[derive(Default)]
pub struct Workspace {
    flags: KeyedPool<Vec<bool>>,
    u32s: KeyedPool<Vec<u32>>,
    u64s: KeyedPool<Vec<u64>>,
    usizes: KeyedPool<Vec<usize>>,
    slots: KeyedPool<Box<dyn Any + Send>>,
    // Capacity each list buffer had when it was last handed out, so a put
    // can detect that the caller's pushes grew it (a reallocation that
    // happened outside the workspace's sight).
    u32_caps: KeyedPool<usize>,
    u64_caps: KeyedPool<usize>,
    usize_caps: KeyedPool<usize>,
    takes: u64,
    creations: u64,
    grows: u64,
    // Per-tenant rewarm ledger: `(tenant, hits, misses)` ascending by tenant.
    // A "hit" is a solve by a tenant this workspace has served before (its
    // parked engines/buffers are warm for that tenant's shapes); the first
    // solve by a tenant is the "miss" that warms it. Pure observability —
    // never consulted by any take/put path and excluded from
    // [`fresh_allocations`](Workspace::fresh_allocations).
    tenant_ledger: Vec<(u64, u64, u64)>,
    // Per-resident-graph epoch ledger: `(graph, epoch, hits, rewarms)`
    // ascending by graph key. Tracks the epoch of the snapshot this
    // workspace last served per resident graph, so the serving layer's
    // mutation path is observable: a solve against the epoch the workspace
    // already holds warm state for is a "hit"; a first touch or an epoch
    // change is a "rewarm". Pure observability, like the tenant ledger.
    epoch_ledger: Vec<(u64, u64, u64, u64)>,
    // Per-resident-graph eviction ledger: `(graph, evicted-pin touches)`
    // ascending by graph key. Counts solves that arrived pinned to an epoch
    // the registry's retention policy had already dropped — retention
    // pressure as seen by the serving layer, per graph. Pure observability,
    // like the tenant and epoch ledgers.
    eviction_ledger: Vec<(u64, u64)>,
    // Per-resident-graph spill ledger: `(graph, spills observed, page-ins)`
    // ascending by graph key. Counts request-path encounters with the
    // registry's out-of-core spill policy: a solve that had to page a
    // spilled mapped snapshot back in records one page-in (and mirrors the
    // spill it undid). Pure observability, like the other ledgers.
    spill_ledger: Vec<(u64, u64, u64)>,
}

impl std::fmt::Debug for Workspace {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Workspace")
            .field("pooled_buffers", &self.pooled_buffers())
            .field("slots", &self.slots.len())
            .field("takes", &self.takes)
            .field("fresh_allocations", &self.fresh_allocations())
            .finish()
    }
}

macro_rules! pool_impl {
    ($take:ident, $put:ident, $field:ident, $caps:ident, $t:ty, $doc:literal) => {
        #[doc = $doc]
        ///
        /// The buffer is **empty** (`len == 0`) but retains the capacity it
        /// had when it was last put back under the same key.
        pub fn $take(&mut self, key: &'static str) -> Vec<$t> {
            self.takes += 1;
            let v = match self.$field.remove(key) {
                Some(mut v) => {
                    v.clear();
                    v
                }
                None => {
                    self.creations += 1;
                    Vec::new()
                }
            };
            self.$caps.insert(key, v.capacity());
            v
        }

        /// Returns a buffer taken with the matching `take` so the next take
        /// under the same key reuses its allocation. If the caller's pushes
        /// grew the buffer beyond the capacity it was handed out with, that
        /// reallocation is counted toward
        /// [`fresh_allocations`](Self::fresh_allocations).
        pub fn $put(&mut self, key: &'static str, v: Vec<$t>) {
            if let Some(cap) = self.$caps.get(key) {
                if v.capacity() > cap {
                    self.grows += 1;
                }
            }
            self.$field.insert(key, v);
        }
    };
}

impl Workspace {
    /// Creates an empty workspace. Pools fill lazily on first use.
    pub fn new() -> Self {
        Self::default()
    }

    pool_impl!(
        take_u32,
        put_u32,
        u32s,
        u32_caps,
        u32,
        "Takes the `Vec<u32>` pooled under `key` (creating it on first use)."
    );
    pool_impl!(
        take_u64,
        put_u64,
        u64s,
        u64_caps,
        u64,
        "Takes the `Vec<u64>` pooled under `key` (creating it on first use)."
    );
    pool_impl!(
        take_usize,
        put_usize,
        usizes,
        usize_caps,
        usize,
        "Takes the `Vec<usize>` pooled under `key` (creating it on first use)."
    );

    /// Takes the flag buffer pooled under `key`, cleared to `len` `false`
    /// entries regardless of what the previous user left in it.
    pub fn take_flags(&mut self, key: &'static str, len: usize) -> Vec<bool> {
        self.takes += 1;
        let mut v = match self.flags.remove(key) {
            Some(v) => v,
            None => {
                self.creations += 1;
                Vec::new()
            }
        };
        if v.capacity() < len {
            self.grows += 1;
        }
        v.clear();
        v.resize(len, false);
        v
    }

    /// Returns a flag buffer taken with [`take_flags`](Self::take_flags).
    /// No cleaning happens here — the next take re-zeroes.
    pub fn put_flags(&mut self, key: &'static str, v: Vec<bool>) {
        self.flags.insert(key, v);
    }

    /// Like [`take_flags`](Self::take_flags), but *trusts* that the previous
    /// user put the buffer back all-`false` instead of re-zeroing it — for
    /// keys whose users provably unwind every bit they set (the BL/SBL
    /// round-scratch invariant), this removes the `O(len)` memset per take.
    /// The contract is debug-asserted; only entries grown beyond the previous
    /// length are written. Never share a key between this and plain
    /// [`take_flags`](Self::take_flags) users that put buffers back dirty.
    pub fn take_flags_clean(&mut self, key: &'static str, len: usize) -> Vec<bool> {
        self.takes += 1;
        let mut v = match self.flags.remove(key) {
            Some(v) => v,
            None => {
                self.creations += 1;
                Vec::new()
            }
        };
        if v.capacity() < len {
            self.grows += 1;
        }
        debug_assert!(
            v.iter().all(|&b| !b),
            "take_flags_clean: buffer under {key:?} was put back dirty"
        );
        v.resize(len, false);
        v
    }

    /// Takes the `Vec<u32>` pooled under `key`, cleared to `len` zero
    /// entries (counting-sort offsets and similar dense accumulators).
    pub fn take_u32_zeroed(&mut self, key: &'static str, len: usize) -> Vec<u32> {
        let mut v = self.take_u32(key);
        if v.capacity() < len {
            self.grows += 1;
        }
        v.resize(len, 0);
        // Record the post-resize capacity so the matching put does not count
        // the same growth a second time.
        self.u32_caps.insert(key, v.capacity());
        v
    }

    /// Takes the typed slot stored under `key`, if one of type `T` is
    /// parked there. A slot holding a different type is dropped (counted as
    /// a miss), so heterogeneous callers sharing a key degrade to
    /// reconstruction instead of panicking.
    pub fn take_any<T: Any + Send>(&mut self, key: &'static str) -> Option<T> {
        self.takes += 1;
        match self.slots.remove(key) {
            Some(boxed) => match boxed.downcast::<T>() {
                Ok(v) => Some(*v),
                Err(_) => {
                    self.creations += 1;
                    None
                }
            },
            None => {
                self.creations += 1;
                None
            }
        }
    }

    /// Parks a value under `key` for a later [`take_any`](Self::take_any).
    pub fn put_any<T: Any + Send>(&mut self, key: &'static str, v: T) {
        self.slots.insert(key, Box::new(v));
    }

    /// How many takes have been served since construction.
    pub fn takes(&self) -> u64 {
        self.takes
    }

    /// How many pool interactions involved a real allocation: the key was
    /// empty on take (first use, or the previous user never put the buffer
    /// back), a sized take (`take_flags` / `take_u32_zeroed`) had to grow the
    /// buffer, or a list buffer came back from the caller with more capacity
    /// than it was handed out with (the caller's pushes reallocated it). A
    /// warmed-up workspace serving a stream of same-shaped solves reports no
    /// new fresh allocations — the property the zero-reallocation tests pin.
    ///
    /// Flag buffers are excluded from put-side growth tracking: they are
    /// sized at take and callers only flip bits.
    pub fn fresh_allocations(&self) -> u64 {
        self.creations + self.grows
    }

    /// Number of buffers currently parked in the typed pools (excluding
    /// [`put_any`](Self::put_any) slots).
    pub fn pooled_buffers(&self) -> usize {
        self.flags.len() + self.u32s.len() + self.u64s.len() + self.usizes.len()
    }

    /// Hard cap on distinct tenants tracked per workspace ledger. Tenant ids
    /// are caller-chosen (possibly per-user), so a long-lived shard must not
    /// grow telemetry without bound; tenants beyond the cap are aggregated
    /// under [`TENANT_LEDGER_OVERFLOW`](Self::TENANT_LEDGER_OVERFLOW)
    /// instead of getting their own row.
    pub const TENANT_LEDGER_CAP: usize = 1024;

    /// The pseudo-tenant id that absorbs ledger entries past
    /// [`TENANT_LEDGER_CAP`](Self::TENANT_LEDGER_CAP).
    pub const TENANT_LEDGER_OVERFLOW: u64 = u64::MAX;

    /// Records that `tenant` is about to use this workspace and returns
    /// whether that is a rewarm **hit** (`true`: this workspace has served
    /// the tenant before) or the first-touch **miss** that warms it.
    ///
    /// The serving layer calls this once per executed request, which makes
    /// shard-affinity routing *observable*: under tenant-affinity routing a
    /// tenant first-touches exactly one shard's workspace, while round-robin
    /// scatters its first touches across every shard. The ledger is pure
    /// bookkeeping — it never influences solve outcomes or the
    /// [`fresh_allocations`](Self::fresh_allocations) counter — and is
    /// bounded: once [`TENANT_LEDGER_CAP`](Self::TENANT_LEDGER_CAP) distinct
    /// tenants are tracked, further tenants share the
    /// [`TENANT_LEDGER_OVERFLOW`](Self::TENANT_LEDGER_OVERFLOW) row (every
    /// such touch counts as a miss, since per-tenant warmth can no longer be
    /// distinguished).
    pub fn note_tenant(&mut self, tenant: u64) -> bool {
        match self.tenant_ledger.binary_search_by_key(&tenant, |e| e.0) {
            Ok(i) => {
                self.tenant_ledger[i].1 += 1;
                true
            }
            Err(i) if self.tenant_ledger.len() < Self::TENANT_LEDGER_CAP => {
                self.tenant_ledger.insert(i, (tenant, 0, 1));
                false
            }
            Err(_) => {
                // Ledger full: fold into the overflow row (created here if
                // the cap was reached entirely by real tenants). u64::MAX
                // sorts last, so the push keeps the ledger ordered.
                match self.tenant_ledger.last_mut() {
                    Some(last) if last.0 == Self::TENANT_LEDGER_OVERFLOW => last.2 += 1,
                    _ => self
                        .tenant_ledger
                        .push((Self::TENANT_LEDGER_OVERFLOW, 0, 1)),
                }
                false
            }
        }
    }

    /// The per-tenant rewarm ledger: `(tenant, hits, misses)`, ascending by
    /// tenant id. See [`note_tenant`](Self::note_tenant).
    pub fn tenant_rewarms(&self) -> &[(u64, u64, u64)] {
        &self.tenant_ledger
    }

    /// Ledger totals: `(hits, misses)` summed over every tenant this
    /// workspace has served.
    pub fn tenant_rewarm_totals(&self) -> (u64, u64) {
        self.tenant_ledger
            .iter()
            .fold((0, 0), |(h, m), e| (h + e.1, m + e.2))
    }

    /// Records that this workspace is about to serve resident graph `graph`
    /// at snapshot epoch `epoch`, and returns whether that is a warm **hit**
    /// (`true`: the last solve against this graph used the same epoch, so
    /// shard-local derived state matches the snapshot) or a **rewarm**
    /// (`false`: first touch of the graph, or the graph was mutated to a new
    /// epoch since this workspace last served it).
    ///
    /// The serving layer calls this once per resident/induced solve, which
    /// makes the epoch-versioned registry's mutation cost *observable*: a
    /// mutate-heavy stream shows one rewarm per (shard, epoch) transition,
    /// while the old registry-rebuild path would rewarm everything. Pure
    /// bookkeeping like [`note_tenant`](Self::note_tenant) — never
    /// influences solve outcomes — and bounded by
    /// [`TENANT_LEDGER_CAP`](Self::TENANT_LEDGER_CAP): graphs past the cap
    /// share the [`TENANT_LEDGER_OVERFLOW`](Self::TENANT_LEDGER_OVERFLOW)
    /// row, where every touch counts as a rewarm.
    pub fn note_graph_epoch(&mut self, graph: u64, epoch: u64) -> bool {
        match self.epoch_ledger.binary_search_by_key(&graph, |e| e.0) {
            Ok(i) => {
                let row = &mut self.epoch_ledger[i];
                if row.1 == epoch {
                    row.2 += 1;
                    true
                } else {
                    row.1 = epoch;
                    row.3 += 1;
                    false
                }
            }
            Err(i) if self.epoch_ledger.len() < Self::TENANT_LEDGER_CAP => {
                self.epoch_ledger.insert(i, (graph, epoch, 0, 1));
                false
            }
            Err(_) => {
                // Ledger full: fold into the overflow row (u64::MAX sorts
                // last, so the push keeps the ledger ordered).
                match self.epoch_ledger.last_mut() {
                    Some(last) if last.0 == Self::TENANT_LEDGER_OVERFLOW => last.3 += 1,
                    _ => self
                        .epoch_ledger
                        .push((Self::TENANT_LEDGER_OVERFLOW, 0, 0, 1)),
                }
                false
            }
        }
    }

    /// The per-graph epoch ledger: `(graph, epoch last served, hits,
    /// rewarms)`, ascending by graph key. See
    /// [`note_graph_epoch`](Self::note_graph_epoch).
    pub fn graph_epoch_rewarms(&self) -> &[(u64, u64, u64, u64)] {
        &self.epoch_ledger
    }

    /// Epoch-ledger totals: `(hits, rewarms)` summed over every resident
    /// graph this workspace has served.
    pub fn graph_epoch_totals(&self) -> (u64, u64) {
        self.epoch_ledger
            .iter()
            .fold((0, 0), |(h, r), e| (h + e.2, r + e.3))
    }

    /// Records that a solve arrived pinned to an epoch of resident graph
    /// `graph` that the registry's retention policy had already evicted (the
    /// request was answered with `EpochEvicted` outcome data). Pure
    /// bookkeeping like [`note_tenant`](Self::note_tenant) — never influences
    /// solve outcomes — and bounded by
    /// [`TENANT_LEDGER_CAP`](Self::TENANT_LEDGER_CAP): graphs past the cap
    /// share the [`TENANT_LEDGER_OVERFLOW`](Self::TENANT_LEDGER_OVERFLOW)
    /// row.
    pub fn note_graph_evicted(&mut self, graph: u64) {
        match self.eviction_ledger.binary_search_by_key(&graph, |e| e.0) {
            Ok(i) => self.eviction_ledger[i].1 += 1,
            Err(i) if self.eviction_ledger.len() < Self::TENANT_LEDGER_CAP => {
                self.eviction_ledger.insert(i, (graph, 1));
            }
            Err(_) => {
                // Ledger full: fold into the overflow row (u64::MAX sorts
                // last, so the push keeps the ledger ordered).
                match self.eviction_ledger.last_mut() {
                    Some(last) if last.0 == Self::TENANT_LEDGER_OVERFLOW => last.1 += 1,
                    _ => self.eviction_ledger.push((Self::TENANT_LEDGER_OVERFLOW, 1)),
                }
            }
        }
    }

    /// The per-graph eviction ledger: `(graph, evicted-pin touches)`,
    /// ascending by graph key. See
    /// [`note_graph_evicted`](Self::note_graph_evicted).
    pub fn graph_evictions(&self) -> &[(u64, u64)] {
        &self.eviction_ledger
    }

    /// Eviction-ledger total: evicted-pin touches summed over every resident
    /// graph this workspace has served.
    pub fn graph_eviction_total(&self) -> u64 {
        self.eviction_ledger.iter().map(|e| e.1).sum()
    }

    /// Records that a solve observed resident graph `graph` in the spilled
    /// state (its mapped base snapshot had been dropped by the registry's
    /// spill policy to bound resident bytes). The serving layer pairs this
    /// with [`note_graph_paged_in`](Self::note_graph_paged_in) when the
    /// request path pages the snapshot back in. Pure bookkeeping like
    /// [`note_tenant`](Self::note_tenant) — never influences solve outcomes
    /// — and bounded by [`TENANT_LEDGER_CAP`](Self::TENANT_LEDGER_CAP):
    /// graphs past the cap share the
    /// [`TENANT_LEDGER_OVERFLOW`](Self::TENANT_LEDGER_OVERFLOW) row.
    pub fn note_graph_spilled(&mut self, graph: u64) {
        let i = self.spill_row(graph);
        self.spill_ledger[i].1 += 1;
    }

    /// Records that a solve paged resident graph `graph`'s spilled mapped
    /// snapshot back in from its source file — the request-path latency cost
    /// of the spill policy, per graph. Same bounding and observability
    /// semantics as [`note_graph_spilled`](Self::note_graph_spilled).
    pub fn note_graph_paged_in(&mut self, graph: u64) {
        let i = self.spill_row(graph);
        self.spill_ledger[i].2 += 1;
    }

    /// Index of `graph`'s spill-ledger row, inserting a fresh one (or
    /// falling back to the overflow row past the cap).
    fn spill_row(&mut self, graph: u64) -> usize {
        match self.spill_ledger.binary_search_by_key(&graph, |e| e.0) {
            Ok(i) => i,
            Err(i) if self.spill_ledger.len() < Self::TENANT_LEDGER_CAP => {
                self.spill_ledger.insert(i, (graph, 0, 0));
                i
            }
            Err(_) => {
                // Ledger full: fold into the overflow row (u64::MAX sorts
                // last, so the push keeps the ledger ordered).
                if !matches!(
                    self.spill_ledger.last(),
                    Some(last) if last.0 == Self::TENANT_LEDGER_OVERFLOW
                ) {
                    self.spill_ledger.push((Self::TENANT_LEDGER_OVERFLOW, 0, 0));
                }
                self.spill_ledger.len() - 1
            }
        }
    }

    /// The per-graph spill ledger: `(graph, spills observed, page-ins)`,
    /// ascending by graph key. See
    /// [`note_graph_spilled`](Self::note_graph_spilled) and
    /// [`note_graph_paged_in`](Self::note_graph_paged_in).
    pub fn graph_spills(&self) -> &[(u64, u64, u64)] {
        &self.spill_ledger
    }

    /// Spill-ledger totals: `(spills observed, page-ins)` summed over every
    /// resident graph this workspace has served.
    pub fn graph_spill_totals(&self) -> (u64, u64) {
        self.spill_ledger
            .iter()
            .fold((0, 0), |(s, p), e| (s + e.1, p + e.2))
    }
}

/// A per-shard pool of [`Workspace`]s: the serving layer's bridge between
/// one-workspace-per-stream (the `BatchRunner` model) and N long-lived worker
/// shards.
///
/// Each shard index owns at most one parked workspace.
/// [`checkout`](WorkspacePool::checkout) hands the shard *its own* workspace back —
/// per-shard affinity, so engines and buffers parked by shard `i`'s previous
/// serve generation are rewarmed by shard `i`'s next one and never migrate
/// between shards. [`checkin`](WorkspacePool::checkin) parks it again and
/// snapshots its allocation counters, so the pool can report the
/// zero-reallocation property **per shard**
/// ([`shard_fresh_allocations`](WorkspacePool::shard_fresh_allocations))
/// and aggregated pool-wide
/// ([`fresh_allocations`](WorkspacePool::fresh_allocations)).
///
/// # Exhaustion behaviour
///
/// Checking out a shard whose workspace is already out does not block and
/// does not panic: the pool hands out a **fresh** workspace and counts the
/// event ([`overflow_checkouts`](WorkspacePool::overflow_checkouts)). On
/// checkin, a shard that already holds a parked workspace keeps it — the
/// incoming one is dropped and counted
/// ([`dropped_checkins`](WorkspacePool::dropped_checkins)) — so the
/// shard-resident workspace (and its warmth) is stable under overflow.
///
/// # Determinism
///
/// Like [`Workspace`] itself, the pool never influences results: a checkout
/// serving a warm workspace and one serving a fresh workspace lead to
/// byte-identical solve outcomes (the facade's serve suite pins this across
/// shard counts and pool generations).
#[derive(Default, Debug)]
pub struct WorkspacePool {
    slots: Vec<PoolSlot>,
    checkouts: u64,
    overflow_checkouts: u64,
    dropped_checkins: u64,
}

#[derive(Default, Debug)]
struct PoolSlot {
    parked: Option<Workspace>,
    /// Whether this shard has ever handed out a workspace (distinguishes
    /// first use from exhaustion overflow).
    created: bool,
    /// Counter snapshots from the last checkin (live values are read off the
    /// parked workspace directly when present).
    last_takes: u64,
    last_fresh: u64,
    last_tenant_rewarms: Vec<(u64, u64, u64)>,
    last_epoch_rewarms: Vec<(u64, u64, u64, u64)>,
    last_evictions: Vec<(u64, u64)>,
    last_spills: Vec<(u64, u64, u64)>,
}

impl WorkspacePool {
    /// Creates a pool with `shards` empty slots; each shard's workspace is
    /// created lazily on its first checkout.
    pub fn new(shards: usize) -> Self {
        let mut pool = WorkspacePool::default();
        pool.ensure_shards(shards);
        pool
    }

    /// Number of shard slots.
    pub fn shards(&self) -> usize {
        self.slots.len()
    }

    /// Grows the pool to at least `shards` slots (never shrinks, so parked
    /// workspaces survive a reconfiguration to fewer shards).
    pub fn ensure_shards(&mut self, shards: usize) {
        while self.slots.len() < shards {
            self.slots.push(PoolSlot::default());
        }
    }

    /// Takes shard `shard`'s workspace (creating a fresh one on first use, or
    /// when the shard's workspace is currently checked out — see the
    /// [exhaustion behaviour](WorkspacePool#exhaustion-behaviour)).
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn checkout(&mut self, shard: usize) -> Workspace {
        self.checkouts += 1;
        let slot = &mut self.slots[shard];
        match slot.parked.take() {
            Some(ws) => ws,
            None => {
                if slot.created {
                    self.overflow_checkouts += 1;
                }
                slot.created = true;
                Workspace::new()
            }
        }
    }

    /// Parks `ws` as shard `shard`'s workspace and snapshots its counters.
    /// If the shard already holds a parked workspace the incoming one is
    /// dropped (see the
    /// [exhaustion behaviour](WorkspacePool#exhaustion-behaviour)).
    ///
    /// # Panics
    /// Panics if `shard >= self.shards()`.
    pub fn checkin(&mut self, shard: usize, ws: Workspace) {
        let slot = &mut self.slots[shard];
        if slot.parked.is_some() {
            self.dropped_checkins += 1;
            return;
        }
        slot.created = true;
        slot.last_takes = ws.takes();
        slot.last_fresh = ws.fresh_allocations();
        slot.last_tenant_rewarms = ws.tenant_rewarms().to_vec();
        slot.last_epoch_rewarms = ws.graph_epoch_rewarms().to_vec();
        slot.last_evictions = ws.graph_evictions().to_vec();
        slot.last_spills = ws.graph_spills().to_vec();
        slot.parked = Some(ws);
    }

    /// Number of workspaces currently parked.
    pub fn parked(&self) -> usize {
        self.slots.iter().filter(|s| s.parked.is_some()).count()
    }

    /// Total checkouts served since construction.
    pub fn checkouts(&self) -> u64 {
        self.checkouts
    }

    /// Checkouts that found the shard's workspace already out and had to
    /// create a fresh one (pool exhaustion events).
    pub fn overflow_checkouts(&self) -> u64 {
        self.overflow_checkouts
    }

    /// Checkins dropped because the shard already held a parked workspace.
    pub fn dropped_checkins(&self) -> u64 {
        self.dropped_checkins
    }

    /// [`Workspace::fresh_allocations`] of shard `shard`'s workspace: live if
    /// parked, otherwise the snapshot from its last checkin. The per-shard
    /// zero-reallocation report: for a shard serving a stream of same-shaped
    /// solves, this number stops growing after the warm-up generation.
    pub fn shard_fresh_allocations(&self, shard: usize) -> u64 {
        let slot = &self.slots[shard];
        slot.parked
            .as_ref()
            .map_or(slot.last_fresh, |ws| ws.fresh_allocations())
    }

    /// [`Workspace::takes`] of shard `shard`'s workspace (live if parked,
    /// otherwise the last-checkin snapshot).
    pub fn shard_takes(&self, shard: usize) -> u64 {
        let slot = &self.slots[shard];
        slot.parked
            .as_ref()
            .map_or(slot.last_takes, |ws| ws.takes())
    }

    /// Pool-wide aggregate of [`Workspace::fresh_allocations`] across all
    /// shards (live values for parked workspaces, last-checkin snapshots for
    /// checked-out ones).
    pub fn fresh_allocations(&self) -> u64 {
        (0..self.slots.len())
            .map(|s| self.shard_fresh_allocations(s))
            .sum()
    }

    /// Pool-wide aggregate of [`Workspace::takes`] across all shards.
    pub fn takes(&self) -> u64 {
        (0..self.slots.len()).map(|s| self.shard_takes(s)).sum()
    }

    /// Shard `shard`'s per-tenant rewarm ledger, `(tenant, hits, misses)`
    /// ascending by tenant (live if the workspace is parked, otherwise the
    /// last-checkin snapshot). See [`Workspace::note_tenant`].
    pub fn shard_tenant_rewarms(&self, shard: usize) -> Vec<(u64, u64, u64)> {
        let slot = &self.slots[shard];
        slot.parked.as_ref().map_or_else(
            || slot.last_tenant_rewarms.clone(),
            |ws| ws.tenant_rewarms().to_vec(),
        )
    }

    /// The pool-wide per-tenant rewarm report: shard ledgers merged by
    /// tenant, `(tenant, hits, misses)` ascending by tenant id. Under
    /// tenant-affinity routing a tenant's misses stay at 1 (one first-touch
    /// on its home shard); under shard-scattering policies they approach the
    /// shard count — which is exactly the affinity win this report makes
    /// observable.
    pub fn tenant_rewarms(&self) -> Vec<(u64, u64, u64)> {
        let mut merged: Vec<(u64, u64, u64)> = Vec::new();
        for shard in 0..self.slots.len() {
            for (tenant, hits, misses) in self.shard_tenant_rewarms(shard) {
                match merged.binary_search_by_key(&tenant, |e| e.0) {
                    Ok(i) => {
                        merged[i].1 += hits;
                        merged[i].2 += misses;
                    }
                    Err(i) => merged.insert(i, (tenant, hits, misses)),
                }
            }
        }
        merged
    }

    /// Shard `shard`'s per-graph epoch ledger, `(graph, epoch last served,
    /// hits, rewarms)` ascending by graph key (live if the workspace is
    /// parked, otherwise the last-checkin snapshot). See
    /// [`Workspace::note_graph_epoch`].
    pub fn shard_graph_epoch_rewarms(&self, shard: usize) -> Vec<(u64, u64, u64, u64)> {
        let slot = &self.slots[shard];
        slot.parked.as_ref().map_or_else(
            || slot.last_epoch_rewarms.clone(),
            |ws| ws.graph_epoch_rewarms().to_vec(),
        )
    }

    /// Pool-wide epoch-rewarm totals: `(hits, rewarms)` summed over every
    /// resident graph and shard. Each registry mutation costs at most one
    /// rewarm per shard that goes on to serve the new epoch — the
    /// copy-on-write win over re-registering (which would cold-start every
    /// shard) that this report makes observable.
    pub fn graph_epoch_totals(&self) -> (u64, u64) {
        (0..self.slots.len())
            .flat_map(|s| self.shard_graph_epoch_rewarms(s))
            .fold((0, 0), |(h, r), e| (h + e.2, r + e.3))
    }

    /// Shard `shard`'s per-graph eviction ledger, `(graph, evicted-pin
    /// touches)` ascending by graph key (live if the workspace is parked,
    /// otherwise the last-checkin snapshot). See
    /// [`Workspace::note_graph_evicted`].
    pub fn shard_graph_evictions(&self, shard: usize) -> Vec<(u64, u64)> {
        let slot = &self.slots[shard];
        slot.parked.as_ref().map_or_else(
            || slot.last_evictions.clone(),
            |ws| ws.graph_evictions().to_vec(),
        )
    }

    /// Pool-wide eviction total: evicted-pin touches summed over every
    /// resident graph and shard. A non-zero value means tenants are pinning
    /// epochs below the registry's retention floor — the signal to raise
    /// `keep_last` (or stop compacting) for those graphs.
    pub fn graph_eviction_total(&self) -> u64 {
        (0..self.slots.len())
            .flat_map(|s| self.shard_graph_evictions(s))
            .map(|e| e.1)
            .sum()
    }

    /// Shard `shard`'s per-graph spill ledger, `(graph, spills observed,
    /// page-ins)` ascending by graph key (live if the workspace is parked,
    /// otherwise the last-checkin snapshot). See
    /// [`Workspace::note_graph_spilled`] and
    /// [`Workspace::note_graph_paged_in`].
    pub fn shard_graph_spills(&self, shard: usize) -> Vec<(u64, u64, u64)> {
        let slot = &self.slots[shard];
        slot.parked
            .as_ref()
            .map_or_else(|| slot.last_spills.clone(), |ws| ws.graph_spills().to_vec())
    }

    /// Pool-wide spill totals: `(spills observed, page-ins)` summed over
    /// every resident graph and shard. A growing page-in count means the
    /// registry's spill cap is set below the working set — queries keep
    /// faulting spilled snapshots back in.
    pub fn graph_spill_totals(&self) -> (u64, u64) {
        (0..self.slots.len())
            .flat_map(|s| self.shard_graph_spills(s))
            .fold((0, 0), |(sp, pi), e| (sp + e.1, pi + e.2))
    }

    /// Pool-wide rewarm totals: `(hits, misses)` summed over every tenant
    /// and shard.
    pub fn tenant_rewarm_totals(&self) -> (u64, u64) {
        self.tenant_rewarms()
            .iter()
            .fold((0, 0), |(h, m), e| (h + e.1, m + e.2))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flags_are_cleared_on_every_take() {
        let mut ws = Workspace::new();
        let mut f = ws.take_flags("t", 8);
        f[3] = true;
        ws.put_flags("t", f);
        let f = ws.take_flags("t", 8);
        assert_eq!(f.len(), 8);
        assert!(f.iter().all(|&b| !b));
        ws.put_flags("t", f);
        // Shrinking and growing both yield fully-false buffers.
        let f = ws.take_flags("t", 3);
        assert!(f.len() == 3 && f.iter().all(|&b| !b));
        ws.put_flags("t", f);
        let f = ws.take_flags("t", 16);
        assert!(f.len() == 16 && f.iter().all(|&b| !b));
    }

    #[test]
    fn pools_retain_capacity_and_count_misses() {
        let mut ws = Workspace::new();
        let mut v = ws.take_u32("idx");
        v.extend(0..1000);
        let cap = v.capacity();
        ws.put_u32("idx", v);
        let before = ws.fresh_allocations();
        let v = ws.take_u32("idx");
        assert!(v.is_empty());
        assert_eq!(v.capacity(), cap);
        assert_eq!(
            ws.fresh_allocations(),
            before,
            "warm take must not allocate"
        );
        // A different key is a fresh allocation.
        let _ = ws.take_u32("other");
        assert_eq!(ws.fresh_allocations(), before + 1);
    }

    #[test]
    fn zeroed_u32_buffers() {
        let mut ws = Workspace::new();
        let mut v = ws.take_u32_zeroed("cnt", 5);
        v[2] = 7;
        ws.put_u32("cnt", v);
        let v = ws.take_u32_zeroed("cnt", 5);
        assert_eq!(v, vec![0; 5]);
    }

    #[test]
    fn any_slots_round_trip_and_tolerate_type_changes() {
        let mut ws = Workspace::new();
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), None);
        ws.put_any("engine", vec![1u8, 2, 3]);
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), Some(vec![1, 2, 3]));
        // Wrong type: dropped, not a panic.
        ws.put_any("engine", String::from("x"));
        assert_eq!(ws.take_any::<Vec<u8>>("engine"), None);
    }

    #[test]
    fn u64_and_usize_pools() {
        let mut ws = Workspace::new();
        let mut a = ws.take_u64("scan");
        a.push(9);
        ws.put_u64("scan", a);
        assert!(ws.take_u64("scan").is_empty());
        let mut b = ws.take_usize("compact");
        b.push(1);
        ws.put_usize("compact", b);
        assert!(ws.take_usize("compact").is_empty());
        ws.put_u64("scan", Vec::new());
        assert!(ws.takes() >= 4);
        assert!(ws.pooled_buffers() >= 1);
    }

    #[test]
    fn pool_checkout_has_shard_affinity() {
        let mut pool = WorkspacePool::new(2);
        let mut a = pool.checkout(0);
        let mut v = a.take_u32("idx");
        v.extend(0..100);
        a.put_u32("idx", v);
        pool.checkin(0, a);
        let fresh_after_warm = pool.shard_fresh_allocations(0);
        // Shard 0 gets its warm workspace back; the same usage allocates
        // nothing new. Shard 1 is untouched.
        let mut a = pool.checkout(0);
        let v = a.take_u32("idx");
        assert!(v.capacity() >= 100);
        a.put_u32("idx", v);
        pool.checkin(0, a);
        assert_eq!(pool.shard_fresh_allocations(0), fresh_after_warm);
        assert_eq!(pool.shard_fresh_allocations(1), 0);
        assert_eq!(pool.fresh_allocations(), fresh_after_warm);
    }

    #[test]
    fn pool_exhaustion_hands_out_fresh_and_counts() {
        let mut pool = WorkspacePool::new(1);
        let first = pool.checkout(0);
        assert_eq!(pool.overflow_checkouts(), 0);
        // Same shard again while checked out: fresh workspace, counted.
        let overflow = pool.checkout(0);
        assert_eq!(pool.overflow_checkouts(), 1);
        assert_eq!(overflow.takes(), 0);
        pool.checkin(0, first);
        assert_eq!(pool.parked(), 1);
        // The shard already holds its workspace: the overflow one is dropped.
        pool.checkin(0, overflow);
        assert_eq!(pool.dropped_checkins(), 1);
        assert_eq!(pool.parked(), 1);
        assert_eq!(pool.checkouts(), 2);
    }

    #[test]
    fn pool_counters_survive_checkout() {
        let mut pool = WorkspacePool::new(1);
        let mut ws = pool.checkout(0);
        let _ = ws.take_flags("f", 8);
        pool.checkin(0, ws);
        let takes = pool.shard_takes(0);
        let fresh = pool.shard_fresh_allocations(0);
        assert!(takes >= 1 && fresh >= 1);
        // While checked out, the snapshots from the last checkin remain
        // visible.
        let ws = pool.checkout(0);
        assert_eq!(pool.shard_takes(0), takes);
        assert_eq!(pool.shard_fresh_allocations(0), fresh);
        assert_eq!(pool.takes(), takes);
        pool.checkin(0, ws);
    }

    #[test]
    fn tenant_rewarm_ledger_counts_hits_and_misses() {
        let mut ws = Workspace::new();
        let fresh_before = ws.fresh_allocations();
        assert!(!ws.note_tenant(7), "first touch is a miss");
        assert!(ws.note_tenant(7), "second touch is a hit");
        assert!(!ws.note_tenant(3));
        assert_eq!(ws.tenant_rewarms(), &[(3, 0, 1), (7, 1, 1)]);
        assert_eq!(ws.tenant_rewarm_totals(), (1, 2));
        assert_eq!(
            ws.fresh_allocations(),
            fresh_before,
            "the ledger is observability, not an allocation event"
        );

        // Pool: snapshots survive checkin/checkout and merge across shards.
        let mut pool = WorkspacePool::new(2);
        pool.checkin(0, ws);
        let mut other = pool.checkout(1);
        other.note_tenant(7);
        pool.checkin(1, other);
        assert_eq!(pool.shard_tenant_rewarms(0), vec![(3, 0, 1), (7, 1, 1)]);
        assert_eq!(pool.tenant_rewarms(), vec![(3, 0, 1), (7, 1, 2)]);
        assert_eq!(pool.tenant_rewarm_totals(), (1, 3));
        // While checked out, the last-checkin snapshot stays visible.
        let ws0 = pool.checkout(0);
        assert_eq!(pool.shard_tenant_rewarms(0), vec![(3, 0, 1), (7, 1, 1)]);
        pool.checkin(0, ws0);
    }

    #[test]
    fn tenant_ledger_is_bounded() {
        let mut ws = Workspace::new();
        for t in 0..Workspace::TENANT_LEDGER_CAP as u64 + 500 {
            ws.note_tenant(t);
        }
        // Cap rows plus the single overflow row.
        assert_eq!(ws.tenant_rewarms().len(), Workspace::TENANT_LEDGER_CAP + 1);
        let last = *ws.tenant_rewarms().last().unwrap();
        assert_eq!(last.0, Workspace::TENANT_LEDGER_OVERFLOW);
        assert_eq!(last.2, 500, "overflow tenants aggregate as misses");
        // Tracked tenants keep counting hits; every touch stays accounted.
        assert!(ws.note_tenant(3));
        let (hits, misses) = ws.tenant_rewarm_totals();
        assert_eq!(hits + misses, Workspace::TENANT_LEDGER_CAP as u64 + 501);
    }

    #[test]
    fn eviction_ledger_counts_per_graph_and_is_bounded() {
        let mut ws = Workspace::new();
        ws.note_graph_evicted(7);
        ws.note_graph_evicted(3);
        ws.note_graph_evicted(7);
        assert_eq!(ws.graph_evictions(), &[(3, 1), (7, 2)]);
        assert_eq!(ws.graph_eviction_total(), 3);
        for g in 0..Workspace::TENANT_LEDGER_CAP as u64 + 500 {
            ws.note_graph_evicted(g);
        }
        // Cap rows plus the single overflow row; every touch stays counted.
        assert_eq!(ws.graph_evictions().len(), Workspace::TENANT_LEDGER_CAP + 1);
        let last = *ws.graph_evictions().last().unwrap();
        assert_eq!(last.0, Workspace::TENANT_LEDGER_OVERFLOW);
        assert_eq!(
            ws.graph_eviction_total(),
            Workspace::TENANT_LEDGER_CAP as u64 + 503
        );
    }

    #[test]
    fn pool_reports_evictions_for_parked_and_checked_out_shards() {
        let mut pool = WorkspacePool::new(2);
        let mut ws = pool.checkout(0);
        ws.note_graph_evicted(5);
        ws.note_graph_evicted(5);
        pool.checkin(0, ws);
        // Parked: live ledger.
        assert_eq!(pool.shard_graph_evictions(0), vec![(5, 2)]);
        assert_eq!(pool.graph_eviction_total(), 2);
        // Checked out again: the last-checkin snapshot answers.
        let ws = pool.checkout(0);
        assert_eq!(pool.shard_graph_evictions(0), vec![(5, 2)]);
        assert_eq!(pool.graph_eviction_total(), 2);
        pool.checkin(0, ws);
    }

    #[test]
    fn spill_ledger_counts_per_graph_and_is_bounded() {
        let mut ws = Workspace::new();
        ws.note_graph_spilled(4);
        ws.note_graph_paged_in(4);
        ws.note_graph_paged_in(4);
        ws.note_graph_paged_in(9);
        assert_eq!(ws.graph_spills(), &[(4, 1, 2), (9, 0, 1)]);
        assert_eq!(ws.graph_spill_totals(), (1, 3));
        for g in 0..Workspace::TENANT_LEDGER_CAP as u64 + 500 {
            ws.note_graph_paged_in(g);
        }
        // Cap rows plus the single overflow row; every touch stays counted.
        assert_eq!(ws.graph_spills().len(), Workspace::TENANT_LEDGER_CAP + 1);
        let last = *ws.graph_spills().last().unwrap();
        assert_eq!(last.0, Workspace::TENANT_LEDGER_OVERFLOW);
        assert_eq!(
            ws.graph_spill_totals(),
            (1, Workspace::TENANT_LEDGER_CAP as u64 + 503)
        );

        // Pool: snapshots survive checkout and merge across shards.
        let mut pool = WorkspacePool::new(2);
        let mut a = pool.checkout(0);
        a.note_graph_spilled(2);
        a.note_graph_paged_in(2);
        pool.checkin(0, a);
        assert_eq!(pool.shard_graph_spills(0), vec![(2, 1, 1)]);
        assert_eq!(pool.graph_spill_totals(), (1, 1));
        let a = pool.checkout(0);
        assert_eq!(pool.shard_graph_spills(0), vec![(2, 1, 1)]);
        pool.checkin(0, a);
    }

    #[test]
    fn pool_grows_but_never_shrinks() {
        let mut pool = WorkspacePool::new(2);
        pool.ensure_shards(1);
        assert_eq!(pool.shards(), 2);
        pool.ensure_shards(4);
        assert_eq!(pool.shards(), 4);
    }
}
