//! Wide (SIMD) sweeps over status arrays: the byte-compare inner loops of
//! the flat engine, vectorized.
//!
//! The flat engine keeps per-vertex and per-edge state as `u8` status
//! arrays plus compacted ascending id lists that mirror them (see
//! `hypergraph::active`). Its hottest maintenance loops are all variants of
//! the same primitive — "which positions of this byte array equal this
//! status?" — which is exactly the shape `pcmpeqb` + `pmovmskb` were built
//! for: 16 (SSE2) or 32 (AVX2) lanes per compare, one popcount or
//! `trailing_zeros` walk per chunk mask. This module provides those sweeps
//! with scalar fallbacks:
//!
//! * [`count_eq_u8`] — how many bytes equal `needle` (invariant checks);
//! * [`positions_eq_u8`] — the ascending positions equal to `needle`
//!   (frontier and alive-list compaction);
//! * [`sum_u32_where_u8_eq`] — sum a `u32` array over the positions whose
//!   status byte equals `needle` (live-size totals).
//!
//! # Exactness
//!
//! Each helper is a pure function of its arguments and every backend
//! computes the same value — there is no floating point, no reassociation
//! hazard, and position lists are emitted in ascending order by
//! construction. The `backends_agree` test pins scalar/SSE2/AVX2 agreement
//! on random inputs; the engine's differential suites pin the callers.
//!
//! # Detection and the escape hatch
//!
//! The widest supported backend is chosen once per process ([`detected`]):
//! AVX2 is runtime-detected, SSE2 is the `x86_64` baseline, every other
//! target falls back to the scalar loops. The `force-scalar` cargo feature
//! or `MIS_SIMD=scalar` in the environment pins the scalar path
//! process-wide; [`with_capability`] overrides the choice on the current
//! thread only, which is what the scalar-vs-SIMD parity tests use to
//! compare paths *within* one process.
//!
//! `unsafe` is confined to this module (the crate stays `deny(unsafe_code)`
//! elsewhere): every `unsafe` block is a call into a `#[target_feature]`
//! kernel whose feature is either the `x86_64` baseline (SSE2) or
//! runtime-verified (AVX2).

#![allow(unsafe_code)]

use std::cell::Cell;
use std::sync::OnceLock;

/// A sweep backend this module can execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Capability {
    /// Plain scalar loops; the reference semantics and the universal
    /// fallback.
    Scalar,
    /// 16 `u8` lanes per step via `core::arch` SSE2 (`x86_64` baseline).
    Sse2,
    /// 32 `u8` lanes per step via `core::arch` AVX2 (runtime-detected).
    Avx2,
}

impl Capability {
    /// Stable lower-case name, used in bench artifacts and log headers.
    pub const fn name(self) -> &'static str {
        match self {
            Capability::Scalar => "scalar",
            Capability::Sse2 => "sse2",
            Capability::Avx2 => "avx2",
        }
    }

    /// `u8` lanes processed per vector step (1 for the scalar loops).
    pub const fn u8_lanes(self) -> usize {
        match self {
            Capability::Scalar => 1,
            Capability::Sse2 => 16,
            Capability::Avx2 => 32,
        }
    }
}

/// True when the scalar path is pinned by the `force-scalar` cargo feature
/// or by `MIS_SIMD=scalar` in the environment (read once per process).
pub fn forced_scalar() -> bool {
    static FORCED: OnceLock<bool> = OnceLock::new();
    *FORCED.get_or_init(|| {
        cfg!(feature = "force-scalar")
            || std::env::var_os("MIS_SIMD").is_some_and(|v| v == "scalar")
    })
}

#[cfg(target_arch = "x86_64")]
fn best_arch_capability() -> Capability {
    if std::arch::is_x86_feature_detected!("avx2") {
        Capability::Avx2
    } else {
        Capability::Sse2
    }
}

#[cfg(not(target_arch = "x86_64"))]
fn best_arch_capability() -> Capability {
    Capability::Scalar
}

/// The process-wide backend: the widest available, unless pinned scalar.
pub fn detected() -> Capability {
    static DETECTED: OnceLock<Capability> = OnceLock::new();
    *DETECTED.get_or_init(|| {
        if forced_scalar() {
            Capability::Scalar
        } else {
            best_arch_capability()
        }
    })
}

/// Every backend that can run on this build *and* host, scalar first.
/// Parity tests iterate this list against the scalar reference.
pub fn available() -> Vec<Capability> {
    let mut list = vec![Capability::Scalar];
    #[cfg(target_arch = "x86_64")]
    {
        list.push(Capability::Sse2);
        if std::arch::is_x86_feature_detected!("avx2") {
            list.push(Capability::Avx2);
        }
    }
    list
}

thread_local! {
    static OVERRIDE: Cell<Option<Capability>> = const { Cell::new(None) };
}

/// The backend the sweeps dispatch to on this thread: the thread-local
/// override if one is active, [`detected`] otherwise.
pub fn active() -> Capability {
    OVERRIDE.with(Cell::get).unwrap_or_else(detected)
}

/// Human-readable description of the active path, e.g. `"avx2"` or
/// `"scalar (forced)"`, for bench headers and artifacts.
pub fn active_path() -> &'static str {
    if forced_scalar() {
        "scalar (forced)"
    } else {
        active().name()
    }
}

/// Runs `f` with the sweeps pinned to `cap` on the current thread (restored
/// afterwards, also on panic). This is how the scalar-vs-SIMD parity tests
/// compare whole engine runs within one process — a cargo feature cannot
/// switch paths mid-run, a thread-local can.
///
/// # Panics
/// Panics if `cap` is not in [`available`] on this host.
pub fn with_capability<R>(cap: Capability, f: impl FnOnce() -> R) -> R {
    assert!(
        available().contains(&cap),
        "capability {cap:?} is not available on this host"
    );
    struct Restore(Option<Capability>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(cap))));
    f()
}

/// Counts the positions of `xs` equal to `needle`.
pub fn count_eq_u8(xs: &[u8], needle: u8) -> usize {
    match active() {
        Capability::Scalar => count_eq_scalar(xs, needle),
        #[cfg(target_arch = "x86_64")]
        Capability::Sse2 => x86::count_eq_sse2(xs, needle),
        #[cfg(target_arch = "x86_64")]
        Capability::Avx2 => x86::count_eq_avx2(xs, needle),
        #[cfg(not(target_arch = "x86_64"))]
        Capability::Sse2 | Capability::Avx2 => count_eq_scalar(xs, needle),
    }
}

/// Replaces `out` with the ascending positions of `xs` equal to `needle`.
///
/// This is the dense formulation of the engine's list compactions: when an
/// id list is known to mirror exactly the `needle`-valued positions of its
/// status array (the engine invariant for the alive list and the live-edge
/// frontier), rebuilding it with this sweep is identical to `retain`.
pub fn positions_eq_u8(xs: &[u8], needle: u8, out: &mut Vec<u32>) {
    out.clear();
    match active() {
        Capability::Scalar => positions_eq_scalar(xs, needle, 0, out),
        #[cfg(target_arch = "x86_64")]
        Capability::Sse2 => x86::positions_eq_sse2(xs, needle, out),
        #[cfg(target_arch = "x86_64")]
        Capability::Avx2 => x86::positions_eq_avx2(xs, needle, out),
        #[cfg(not(target_arch = "x86_64"))]
        Capability::Sse2 | Capability::Avx2 => positions_eq_scalar(xs, needle, 0, out),
    }
}

/// Sums `vals[i]` over the positions where `status[i] == needle`.
///
/// # Panics
/// Panics if the slices differ in length.
pub fn sum_u32_where_u8_eq(vals: &[u32], status: &[u8], needle: u8) -> usize {
    assert_eq!(vals.len(), status.len(), "value/status length mismatch");
    match active() {
        Capability::Scalar => sum_where_scalar(vals, status, needle),
        #[cfg(target_arch = "x86_64")]
        Capability::Sse2 => x86::sum_where_sse2(vals, status, needle),
        #[cfg(target_arch = "x86_64")]
        Capability::Avx2 => x86::sum_where_avx2(vals, status, needle),
        #[cfg(not(target_arch = "x86_64"))]
        Capability::Sse2 | Capability::Avx2 => sum_where_scalar(vals, status, needle),
    }
}

fn count_eq_scalar(xs: &[u8], needle: u8) -> usize {
    xs.iter().filter(|&&x| x == needle).count()
}

/// Scalar position sweep over `xs`, emitting `base + i` for matches (the
/// intrinsic backends use it for their unaligned tails).
fn positions_eq_scalar(xs: &[u8], needle: u8, base: usize, out: &mut Vec<u32>) {
    for (i, &x) in xs.iter().enumerate() {
        if x == needle {
            out.push((base + i) as u32);
        }
    }
}

fn sum_where_scalar(vals: &[u32], status: &[u8], needle: u8) -> usize {
    vals.iter()
        .zip(status)
        .filter(|&(_, &s)| s == needle)
        .map(|(&v, _)| v as usize)
        .sum()
}

/// `x86_64` kernels. Chunks are copied into fixed-size arrays and
/// transmuted to vector types (sound: `__m128i`/`__m256i` and same-sized
/// `u8` arrays are plain-old-data; the copies compile to unaligned vector
/// loads). Each kernel handles the length-remainder tail with the scalar
/// loops above.
#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::{count_eq_scalar, positions_eq_scalar, sum_where_scalar};
    use std::arch::x86_64::{
        __m128i, __m256i, _mm256_add_epi64, _mm256_and_si256, _mm256_castsi256_si128,
        _mm256_cmpeq_epi8, _mm256_cvtepi8_epi32, _mm256_extracti128_si256, _mm256_movemask_epi8,
        _mm256_unpackhi_epi32, _mm256_unpacklo_epi32, _mm_add_epi64, _mm_and_si128, _mm_cmpeq_epi8,
        _mm_movemask_epi8, _mm_unpackhi_epi16, _mm_unpackhi_epi32, _mm_unpackhi_epi64,
        _mm_unpackhi_epi8, _mm_unpacklo_epi16, _mm_unpacklo_epi32, _mm_unpacklo_epi8,
    };

    #[inline]
    fn splat16(x: u8) -> __m128i {
        // SAFETY: __m128i and [u8; 16] are both 16-byte POD types.
        unsafe { core::mem::transmute::<[u8; 16], __m128i>([x; 16]) }
    }

    #[inline]
    fn load16(chunk: &[u8]) -> __m128i {
        let arr: [u8; 16] = chunk.try_into().expect("16-byte chunk");
        // SAFETY: as in `splat16`.
        unsafe { core::mem::transmute::<[u8; 16], __m128i>(arr) }
    }

    #[inline]
    fn splat32(x: u8) -> __m256i {
        // SAFETY: __m256i and [u8; 32] are both 32-byte POD types.
        unsafe { core::mem::transmute::<[u8; 32], __m256i>([x; 32]) }
    }

    #[inline]
    fn load32(chunk: &[u8]) -> __m256i {
        let arr: [u8; 32] = chunk.try_into().expect("32-byte chunk");
        // SAFETY: as in `splat32`.
        unsafe { core::mem::transmute::<[u8; 32], __m256i>(arr) }
    }

    #[target_feature(enable = "sse2")]
    fn count_eq_sse2_kernel(xs: &[u8], needle: u8) -> usize {
        let nv = splat16(needle);
        let mut count = 0usize;
        let chunks = xs.chunks_exact(16);
        let tail = chunks.remainder();
        for chunk in chunks {
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(load16(chunk), nv)) as u32;
            count += mask.count_ones() as usize;
        }
        count + count_eq_scalar(tail, needle)
    }

    pub(super) fn count_eq_sse2(xs: &[u8], needle: u8) -> usize {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { count_eq_sse2_kernel(xs, needle) }
    }

    #[target_feature(enable = "avx2")]
    fn count_eq_avx2_kernel(xs: &[u8], needle: u8) -> usize {
        let nv = splat32(needle);
        let mut count = 0usize;
        let chunks = xs.chunks_exact(32);
        let tail = chunks.remainder();
        for chunk in chunks {
            let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(load32(chunk), nv)) as u32;
            count += mask.count_ones() as usize;
        }
        count + count_eq_scalar(tail, needle)
    }

    pub(super) fn count_eq_avx2(xs: &[u8], needle: u8) -> usize {
        assert_avx2();
        // SAFETY: `assert_avx2` established the avx2 target feature.
        unsafe { count_eq_avx2_kernel(xs, needle) }
    }

    /// Pushes the positions `base + bit` for every set bit of `mask`,
    /// ascending; a full mask short-circuits to a range append.
    #[inline]
    fn push_mask_positions(mut mask: u32, full: u32, base: usize, out: &mut Vec<u32>) {
        if mask == full {
            out.extend(base as u32..(base + full.count_ones() as usize) as u32);
            return;
        }
        while mask != 0 {
            out.push((base + mask.trailing_zeros() as usize) as u32);
            mask &= mask - 1;
        }
    }

    #[target_feature(enable = "sse2")]
    fn positions_eq_sse2_kernel(xs: &[u8], needle: u8, out: &mut Vec<u32>) {
        let nv = splat16(needle);
        let chunks = xs.chunks_exact(16);
        let tail = chunks.remainder();
        for (c, chunk) in chunks.enumerate() {
            let mask = _mm_movemask_epi8(_mm_cmpeq_epi8(load16(chunk), nv)) as u32;
            push_mask_positions(mask, 0xFFFF, c * 16, out);
        }
        positions_eq_scalar(tail, needle, xs.len() - tail.len(), out);
    }

    pub(super) fn positions_eq_sse2(xs: &[u8], needle: u8, out: &mut Vec<u32>) {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { positions_eq_sse2_kernel(xs, needle, out) }
    }

    #[target_feature(enable = "avx2")]
    fn positions_eq_avx2_kernel(xs: &[u8], needle: u8, out: &mut Vec<u32>) {
        let nv = splat32(needle);
        let chunks = xs.chunks_exact(32);
        let tail = chunks.remainder();
        for (c, chunk) in chunks.enumerate() {
            let mask = _mm256_movemask_epi8(_mm256_cmpeq_epi8(load32(chunk), nv)) as u32;
            push_mask_positions(mask, u32::MAX, c * 32, out);
        }
        positions_eq_scalar(tail, needle, xs.len() - tail.len(), out);
    }

    pub(super) fn positions_eq_avx2(xs: &[u8], needle: u8, out: &mut Vec<u32>) {
        assert_avx2();
        // SAFETY: `assert_avx2` established the avx2 target feature.
        unsafe { positions_eq_avx2_kernel(xs, needle, out) }
    }

    #[inline]
    fn load4u32(chunk: &[u32]) -> __m128i {
        let arr: [u32; 4] = chunk.try_into().expect("4-word chunk");
        // SAFETY: __m128i and [u32; 4] are both 16-byte POD types.
        unsafe { core::mem::transmute::<[u32; 4], __m128i>(arr) }
    }

    #[inline]
    fn load8u32(chunk: &[u32]) -> __m256i {
        let arr: [u32; 8] = chunk.try_into().expect("8-word chunk");
        // SAFETY: __m256i and [u32; 8] are both 32-byte POD types.
        unsafe { core::mem::transmute::<[u32; 8], __m256i>(arr) }
    }

    #[inline]
    fn reduce_u64x2(v: __m128i) -> usize {
        // SAFETY: __m128i and [u64; 2] are both 16-byte POD types.
        let [a, b] = unsafe { core::mem::transmute::<__m128i, [u64; 2]>(v) };
        (a + b) as usize
    }

    #[inline]
    fn reduce_u64x4(v: __m256i) -> usize {
        // SAFETY: __m256i and [u64; 4] are both 32-byte POD types.
        let [a, b, c, d] = unsafe { core::mem::transmute::<__m256i, [u64; 4]>(v) };
        (a + b + c + d) as usize
    }

    /// The masked sums stay branch-free: the byte compare mask is *widened*
    /// to full `u32` lanes (0 / `0xFFFF_FFFF`), ANDed against the values and
    /// accumulated in `u64` lanes — no per-bit extraction, so throughput is
    /// density-independent (a bit-walk loses to scalar on dense-but-not-full
    /// status arrays, the engine's usual early-round state).
    #[target_feature(enable = "sse2")]
    fn sum_where_sse2_kernel(vals: &[u32], status: &[u8], needle: u8) -> usize {
        let nv = splat16(needle);
        let zero = splat16(0);
        let chunks = status.chunks_exact(16);
        let tail = chunks.remainder();
        let split = status.len() - tail.len();
        let mut acc = zero;
        for (c, chunk) in chunks.enumerate() {
            let m8 = _mm_cmpeq_epi8(load16(chunk), nv);
            // Replicating each mask byte twice (8→16→32 bits) turns 0xFF
            // bytes into 0xFFFF_FFFF lanes, in status order.
            let m16lo = _mm_unpacklo_epi8(m8, m8);
            let m16hi = _mm_unpackhi_epi8(m8, m8);
            let groups = [
                _mm_unpacklo_epi16(m16lo, m16lo),
                _mm_unpackhi_epi16(m16lo, m16lo),
                _mm_unpacklo_epi16(m16hi, m16hi),
                _mm_unpackhi_epi16(m16hi, m16hi),
            ];
            for (g, m32) in groups.into_iter().enumerate() {
                let base = c * 16 + g * 4;
                let masked = _mm_and_si128(load4u32(&vals[base..base + 4]), m32);
                acc = _mm_add_epi64(acc, _mm_unpacklo_epi32(masked, zero));
                acc = _mm_add_epi64(acc, _mm_unpackhi_epi32(masked, zero));
            }
        }
        reduce_u64x2(acc) + sum_where_scalar(&vals[split..], tail, needle)
    }

    pub(super) fn sum_where_sse2(vals: &[u32], status: &[u8], needle: u8) -> usize {
        // SAFETY: SSE2 is part of the x86_64 baseline.
        unsafe { sum_where_sse2_kernel(vals, status, needle) }
    }

    /// See `sum_where_sse2_kernel` for the widen-and-mask strategy.
    #[target_feature(enable = "avx2")]
    fn sum_where_avx2_kernel(vals: &[u32], status: &[u8], needle: u8) -> usize {
        let nv = splat32(needle);
        let zero = splat32(0);
        let chunks = status.chunks_exact(32);
        let tail = chunks.remainder();
        let split = status.len() - tail.len();
        let mut acc = zero;
        for (c, chunk) in chunks.enumerate() {
            let m8 = _mm256_cmpeq_epi8(load32(chunk), nv);
            // `cvtepi8_epi32` sign-extends 8 mask bytes to 8 full lanes; the
            // unpacks feed it the four 8-byte groups in status order.
            let lo = _mm256_castsi256_si128(m8);
            let hi = _mm256_extracti128_si256::<1>(m8);
            let groups = [
                _mm256_cvtepi8_epi32(lo),
                _mm256_cvtepi8_epi32(_mm_unpackhi_epi64(lo, lo)),
                _mm256_cvtepi8_epi32(hi),
                _mm256_cvtepi8_epi32(_mm_unpackhi_epi64(hi, hi)),
            ];
            for (g, m32) in groups.into_iter().enumerate() {
                let base = c * 32 + g * 8;
                let masked = _mm256_and_si256(load8u32(&vals[base..base + 8]), m32);
                acc = _mm256_add_epi64(acc, _mm256_unpacklo_epi32(masked, zero));
                acc = _mm256_add_epi64(acc, _mm256_unpackhi_epi32(masked, zero));
            }
        }
        reduce_u64x4(acc) + sum_where_scalar(&vals[split..], tail, needle)
    }

    pub(super) fn sum_where_avx2(vals: &[u32], status: &[u8], needle: u8) -> usize {
        assert_avx2();
        // SAFETY: `assert_avx2` established the avx2 target feature.
        unsafe { sum_where_avx2_kernel(vals, status, needle) }
    }

    fn assert_avx2() {
        assert!(
            std::arch::is_x86_feature_detected!("avx2"),
            "AVX2 sweep selected on a host without AVX2"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic xorshift stream for test inputs (no RNG dependency).
    fn xorshift_stream(mut state: u64, len: usize) -> Vec<u64> {
        (0..len)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            })
            .collect()
    }

    #[test]
    fn backends_agree() {
        // Lengths straddle the 16/32-byte chunk boundaries, including the
        // empty and all-tail cases.
        for len in [
            0usize, 1, 15, 16, 17, 31, 32, 33, 63, 64, 65, 1000, 4096, 4099,
        ] {
            let words = xorshift_stream(0x9E37_79B9 ^ len as u64, len);
            // Statuses concentrated in {0,1,2} (like the engine's) plus raw
            // bytes for adversarial coverage.
            let dense: Vec<u8> = words.iter().map(|&w| (w % 3) as u8).collect();
            let raw: Vec<u8> = words.iter().map(|&w| w as u8).collect();
            let vals: Vec<u32> = words.iter().map(|&w| (w >> 32) as u32 & 0xFFFF).collect();
            for xs in [&dense, &raw] {
                for needle in [0u8, 1, 2, 0xFF] {
                    let count = count_eq_scalar(xs, needle);
                    let mut positions = Vec::new();
                    positions_eq_scalar(xs, needle, 0, &mut positions);
                    let sum = sum_where_scalar(&vals, xs, needle);
                    for &cap in &available() {
                        with_capability(cap, || {
                            assert_eq!(count_eq_u8(xs, needle), count, "{cap:?} count len {len}");
                            let mut got = vec![0xDEAD_BEEF_u32; 3]; // must be replaced
                            positions_eq_u8(xs, needle, &mut got);
                            assert_eq!(got, positions, "{cap:?} positions len {len}");
                            assert_eq!(
                                sum_u32_where_u8_eq(&vals, xs, needle),
                                sum,
                                "{cap:?} sum len {len}"
                            );
                        });
                    }
                }
            }
        }
    }

    #[test]
    fn all_and_none_match_fast_paths() {
        let xs = vec![7u8; 100];
        let vals: Vec<u32> = (0..100u32).collect();
        for &cap in &available() {
            with_capability(cap, || {
                assert_eq!(count_eq_u8(&xs, 7), 100);
                assert_eq!(count_eq_u8(&xs, 8), 0);
                let mut pos = Vec::new();
                positions_eq_u8(&xs, 7, &mut pos);
                assert_eq!(pos, (0..100u32).collect::<Vec<_>>());
                positions_eq_u8(&xs, 8, &mut pos);
                assert!(pos.is_empty());
                assert_eq!(sum_u32_where_u8_eq(&vals, &xs, 7), 99 * 100 / 2);
                assert_eq!(sum_u32_where_u8_eq(&vals, &xs, 8), 0);
            });
        }
    }

    #[test]
    fn override_is_scoped_and_restored() {
        let outer = active();
        with_capability(Capability::Scalar, || {
            assert_eq!(active(), Capability::Scalar);
        });
        assert_eq!(active(), outer);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn sum_rejects_length_mismatch() {
        sum_u32_where_u8_eq(&[1, 2], &[0], 0);
    }
}
