//! Read-only memory-mapped files with validated `u32` windows.
//!
//! This is the storage primitive behind the out-of-core resident-graph tier:
//! [`MmapFile`] maps a whole file read-only (falling back to an aligned heap
//! read where `mmap(2)` is unavailable), and [`U32Span`] is a *validated*
//! window of that mapping that can be reinterpreted as a `&[u32]` slice.
//! One mapping is shared by every consumer holding a clone of the
//! `Arc<MmapFile>` — cloning a span is an `Arc` bump, never a copy — which is
//! what lets N serving shards run directly on one copy of a giant graph.
//!
//! `unsafe` is confined to this module (the crate stays `deny(unsafe_code)`
//! elsewhere): the only unsafe operations are the `mmap`/`munmap` FFI calls,
//! the byte view of the fallback buffer, and the final
//! [`U32Span::as_slice`] reinterpretation — and the last is sound because
//! every span's bounds and 4-byte alignment were checked in
//! [`U32Span::new`] before the span could exist, against a base pointer
//! that is always at least 8-byte aligned (page-aligned for real mappings,
//! a `u64` buffer for the fallback). A hostile or truncated file can
//! therefore only ever produce a *rejected* span, never an out-of-bounds or
//! misaligned read.
//!
//! [`U32Span::as_slice`] reinterprets the underlying bytes in **native**
//! endianness. Callers that define a little-endian on-disk format (like the
//! `HGCSR` snapshot reader in the `hypergraph` crate) must only form spans on
//! little-endian targets and decode by-value elsewhere.

#![allow(unsafe_code)]

use std::fmt;
use std::fs::File;
use std::io::{self, Read};
use std::path::Path;
use std::sync::Arc;

#[cfg(all(unix, target_pointer_width = "64"))]
mod sys {
    use std::ffi::c_void;

    pub const PROT_READ: i32 = 1;
    pub const MAP_PRIVATE: i32 = 2;

    extern "C" {
        pub fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: i32,
            flags: i32,
            fd: i32,
            offset: i64,
        ) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> i32;
    }
}

/// How the bytes behind an [`MmapFile`] are held.
enum Backing {
    /// The pointer came from a successful `mmap(2)`; unmapped on drop.
    #[cfg(all(unix, target_pointer_width = "64"))]
    Mapped,
    /// The pointer points into this 8-byte-aligned heap buffer (the portable
    /// fallback, and the representation of an empty file).
    Owned(#[allow(dead_code)] Vec<u64>),
}

/// A whole file held in memory read-only: a real `mmap(2)` mapping on 64-bit
/// Unix, an aligned heap copy elsewhere (or when mapping fails).
///
/// The base pointer is always at least 8-byte aligned. The contents are
/// immutable for the lifetime of the value, so sharing across threads via
/// [`Arc`] is sound.
pub struct MmapFile {
    ptr: *const u8,
    len: usize,
    backing: Backing,
}

// SAFETY: the bytes behind `ptr` are read-only for the lifetime of the value
// (PROT_READ private mapping or an owned buffer we never mutate), and the
// struct has no interior mutability, so shared references are safe to send
// and use across threads.
unsafe impl Send for MmapFile {}
// SAFETY: as above — all access is read-only.
unsafe impl Sync for MmapFile {}

impl MmapFile {
    /// Opens `path` and maps (or reads) its entire contents read-only.
    ///
    /// Never panics on file contents: any I/O failure is returned as the
    /// `io::Error` it is. On platforms without the `mmap` path — or if the
    /// `mmap` call itself fails — the file is read into an 8-byte-aligned
    /// heap buffer instead, so the API is total and callers cannot observe
    /// the difference except through [`is_mapped`](Self::is_mapped).
    pub fn open(path: &Path) -> io::Result<Arc<MmapFile>> {
        let mut file = File::open(path)?;
        let len = file.metadata()?.len();
        let len = usize::try_from(len)
            .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "file too large to map"))?;
        if len == 0 {
            return Ok(Arc::new(MmapFile {
                ptr: core::ptr::NonNull::<u64>::dangling().as_ptr() as *const u8,
                len: 0,
                backing: Backing::Owned(Vec::new()),
            }));
        }

        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            use std::os::unix::io::AsRawFd;
            // SAFETY: a plain read-only private mapping of an open fd; the fd
            // outlives the call (the mapping itself survives the close).
            let ptr = unsafe {
                sys::mmap(
                    core::ptr::null_mut(),
                    len,
                    sys::PROT_READ,
                    sys::MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize != -1 && !ptr.is_null() {
                return Ok(Arc::new(MmapFile {
                    ptr: ptr as *const u8,
                    len,
                    backing: Backing::Mapped,
                }));
            }
            // Fall through to the portable read below (e.g. a filesystem
            // that refuses mmap).
        }

        let words = len.div_ceil(8);
        let mut buf: Vec<u64> = vec![0; words];
        {
            // SAFETY: the buffer holds `words * 8 >= len` writable bytes and
            // `u64` has no invalid bit patterns.
            let bytes = unsafe { std::slice::from_raw_parts_mut(buf.as_mut_ptr() as *mut u8, len) };
            file.read_exact(bytes)?;
        }
        let ptr = buf.as_ptr() as *const u8;
        Ok(Arc::new(MmapFile {
            ptr,
            len,
            backing: Backing::Owned(buf),
        }))
    }

    /// Length of the file in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the file was empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Whether the bytes are a real OS mapping (as opposed to the portable
    /// heap-read fallback). Observability only — behaviour is identical.
    pub fn is_mapped(&self) -> bool {
        #[cfg(all(unix, target_pointer_width = "64"))]
        {
            matches!(self.backing, Backing::Mapped)
        }
        #[cfg(not(all(unix, target_pointer_width = "64")))]
        {
            false
        }
    }

    /// The whole file as a byte slice.
    #[inline]
    pub fn bytes(&self) -> &[u8] {
        // SAFETY: `ptr`/`len` describe a live read-only allocation for the
        // lifetime of `self` (construction invariant); `len == 0` uses an
        // aligned dangling pointer, which `from_raw_parts` permits.
        unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
    }
}

impl Drop for MmapFile {
    fn drop(&mut self) {
        #[cfg(all(unix, target_pointer_width = "64"))]
        if matches!(self.backing, Backing::Mapped) {
            // SAFETY: `ptr`/`len` came from a successful `mmap` with this
            // exact length, and this is the only unmap (Drop runs once).
            unsafe {
                sys::munmap(self.ptr as *mut core::ffi::c_void, self.len);
            }
        }
    }
}

impl fmt::Debug for MmapFile {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("MmapFile")
            .field("len", &self.len)
            .field("mapped", &self.is_mapped())
            .finish()
    }
}

/// A validated window of an [`MmapFile`] viewable as `&[u32]`.
///
/// Construction ([`U32Span::new`]) is the *only* place bounds and alignment
/// are established: a span that exists is proof its slice is in bounds and
/// 4-byte aligned, which is what makes [`as_slice`](Self::as_slice) safe to
/// expose. Cloning bumps the shared mapping's `Arc`.
#[derive(Clone)]
pub struct U32Span {
    map: Arc<MmapFile>,
    byte_off: usize,
    len: usize,
}

impl U32Span {
    /// Creates a span of `len` `u32` words starting `byte_off` bytes into the
    /// mapping. Returns `None` (never panics, never truncates) if the window
    /// is out of bounds, overflows, or is not 4-byte aligned.
    pub fn new(map: Arc<MmapFile>, byte_off: usize, len: usize) -> Option<U32Span> {
        let bytes = len.checked_mul(4)?;
        let end = byte_off.checked_add(bytes)?;
        if end > map.len() || !byte_off.is_multiple_of(4) {
            return None;
        }
        Some(U32Span { map, byte_off, len })
    }

    /// Number of `u32` words in the span.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the span is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The shared mapping this span windows into.
    pub fn file(&self) -> &Arc<MmapFile> {
        &self.map
    }

    /// The window as a `u32` slice (native-endian reinterpretation — see the
    /// module docs).
    #[inline]
    pub fn as_slice(&self) -> &[u32] {
        // SAFETY: `new` validated `byte_off % 4 == 0` and
        // `byte_off + 4 * len <= map.len()`; the base pointer is at least
        // 8-byte aligned (construction invariant of `MmapFile`), so
        // `ptr + byte_off` is 4-byte aligned; the bytes are immutable and
        // live as long as the `Arc` this span holds.
        unsafe {
            std::slice::from_raw_parts(self.map.ptr.add(self.byte_off) as *const u32, self.len)
        }
    }
}

impl fmt::Debug for U32Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("U32Span")
            .field("byte_off", &self.byte_off)
            .field("len", &self.len)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    fn temp_path(tag: &str) -> std::path::PathBuf {
        let mut p = std::env::temp_dir();
        p.push(format!("pram_mmap_test_{}_{}", std::process::id(), tag));
        p
    }

    #[test]
    fn maps_file_bytes() {
        let path = temp_path("bytes");
        let payload: Vec<u8> = (0..=255u8).collect();
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&payload)
            .unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert_eq!(map.len(), 256);
        assert_eq!(map.bytes(), &payload[..]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_file_maps_empty() {
        let path = temp_path("empty");
        std::fs::File::create(&path).unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert!(map.is_empty());
        assert_eq!(map.bytes(), &[] as &[u8]);
        assert!(U32Span::new(Arc::clone(&map), 0, 0).is_some());
        assert!(U32Span::new(Arc::clone(&map), 0, 1).is_none());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn span_reads_little_endian_words_on_le_hosts() {
        let path = temp_path("words");
        let words: Vec<u32> = vec![7, 0, u32::MAX, 42];
        let mut bytes = Vec::new();
        for w in &words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let map = MmapFile::open(&path).unwrap();
        let span = U32Span::new(Arc::clone(&map), 0, 4).unwrap();
        if cfg!(target_endian = "little") {
            assert_eq!(span.as_slice(), &words[..]);
        }
        let tail = U32Span::new(Arc::clone(&map), 8, 2).unwrap();
        assert_eq!(tail.len(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn span_rejects_out_of_bounds_and_misalignment() {
        let path = temp_path("oob");
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&[0u8; 16])
            .unwrap();
        let map = MmapFile::open(&path).unwrap();
        assert!(U32Span::new(Arc::clone(&map), 0, 4).is_some());
        assert!(U32Span::new(Arc::clone(&map), 0, 5).is_none(), "past end");
        assert!(U32Span::new(Arc::clone(&map), 16, 1).is_none(), "at end");
        assert!(U32Span::new(Arc::clone(&map), 2, 1).is_none(), "misaligned");
        assert!(
            U32Span::new(Arc::clone(&map), usize::MAX - 2, 2).is_none(),
            "offset overflow"
        );
        assert!(
            U32Span::new(Arc::clone(&map), 0, usize::MAX / 2).is_none(),
            "length overflow"
        );
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn spans_share_one_mapping_across_threads() {
        let path = temp_path("share");
        let mut bytes = Vec::new();
        for w in 0..1024u32 {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        std::fs::File::create(&path)
            .unwrap()
            .write_all(&bytes)
            .unwrap();
        let map = MmapFile::open(&path).unwrap();
        let span = U32Span::new(Arc::clone(&map), 0, 1024).unwrap();
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let s = span.clone();
                std::thread::spawn(move || s.as_slice().iter().map(|&w| w as u64).sum::<u64>())
            })
            .collect();
        for h in handles {
            let total = h.join().unwrap();
            if cfg!(target_endian = "little") {
                assert_eq!(total, (0..1024u64).sum::<u64>());
            }
        }
        std::fs::remove_file(&path).unwrap();
    }
}
