//! Thread-pool management: dedicated rayon pools for the threads-sweep
//! experiment (E8) and the host for the serving layer's long-lived workers.
//!
//! Everything else in the workspace uses rayon's global pool; the experiment
//! that measures wall-clock scaling versus thread count builds dedicated pools
//! through [`with_threads`], and the facade's sharded serving subsystem spawns
//! its per-shard worker threads through [`spawn_worker`].

use rayon::ThreadPool;
use std::thread::JoinHandle;

/// Builds a rayon [`ThreadPool`] with exactly `threads` worker threads.
///
/// # Panics
/// Panics if the pool cannot be constructed (e.g. `threads == 0`).
pub fn build_pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .thread_name(|i| format!("pram-worker-{i}"))
        .build()
        .expect("failed to build rayon thread pool")
}

/// Runs `f` inside a dedicated pool with `threads` workers and returns its
/// result. The pool is torn down afterwards.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    build_pool(threads).install(f)
}

/// Number of logical CPUs rayon would use by default.
pub fn available_parallelism() -> usize {
    rayon::current_num_threads()
}

/// Spawns a long-lived, named worker thread — the host for one shard of the
/// facade's serving layer.
///
/// If `threads` is `Some(t)`, everything the worker runs executes under a
/// dedicated rayon pool of `t` workers (so N serve shards can be capped at,
/// say, one rayon thread each instead of N× the machine default, which would
/// oversubscribe the host). `None` inherits the machine default. Either way
/// the thread-count setting is scoped to this worker thread and — by the
/// determinism contract — never changes any solve outcome, only wall time.
///
/// # Panics
/// Panics if the OS refuses to spawn the thread.
pub fn spawn_worker<R: Send + 'static>(
    name: String,
    threads: Option<usize>,
    f: impl FnOnce() -> R + Send + 'static,
) -> JoinHandle<R> {
    std::thread::Builder::new()
        .name(name)
        .spawn(move || match threads {
            Some(t) => build_pool(t).install(f),
            None => f(),
        })
        .expect("failed to spawn worker thread")
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn dedicated_pool_runs_work() {
        let sum: u64 = with_threads(2, || (0u64..1000).into_par_iter().sum());
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn pool_thread_count_is_respected() {
        let n = with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }

    #[test]
    fn spawned_worker_runs_under_its_pool() {
        let h = spawn_worker("test-worker".into(), Some(2), || {
            (
                rayon::current_num_threads(),
                std::thread::current().name().map(String::from),
            )
        });
        let (threads, name) = h.join().unwrap();
        assert_eq!(threads, 2);
        assert_eq!(name.as_deref(), Some("test-worker"));
        // Without a cap, the worker inherits the machine default.
        let h = spawn_worker("test-worker-2".into(), None, || {
            rayon::current_num_threads() >= 1
        });
        assert!(h.join().unwrap());
    }
}
