//! Thread-pool management for the threads-sweep experiment (E8).
//!
//! Everything else in the workspace uses rayon's global pool; the experiment
//! that measures wall-clock scaling versus thread count builds dedicated pools
//! through [`with_threads`].

use rayon::ThreadPool;

/// Builds a rayon [`ThreadPool`] with exactly `threads` worker threads.
///
/// # Panics
/// Panics if the pool cannot be constructed (e.g. `threads == 0`).
pub fn build_pool(threads: usize) -> ThreadPool {
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .thread_name(|i| format!("pram-worker-{i}"))
        .build()
        .expect("failed to build rayon thread pool")
}

/// Runs `f` inside a dedicated pool with `threads` workers and returns its
/// result. The pool is torn down afterwards.
pub fn with_threads<R: Send>(threads: usize, f: impl FnOnce() -> R + Send) -> R {
    build_pool(threads).install(f)
}

/// Number of logical CPUs rayon would use by default.
pub fn available_parallelism() -> usize {
    rayon::current_num_threads()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rayon::prelude::*;

    #[test]
    fn dedicated_pool_runs_work() {
        let sum: u64 = with_threads(2, || (0u64..1000).into_par_iter().sum());
        assert_eq!(sum, 999 * 1000 / 2);
    }

    #[test]
    fn pool_thread_count_is_respected() {
        let n = with_threads(3, rayon::current_num_threads);
        assert_eq!(n, 3);
    }

    #[test]
    fn available_parallelism_is_positive() {
        assert!(available_parallelism() >= 1);
    }
}
