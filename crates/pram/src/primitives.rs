//! PRAM-style parallel primitives, executed with rayon and accounted for in
//! the work–depth model.
//!
//! These are the building blocks the MIS algorithms are expressed with on an
//! EREW PRAM: elementwise map, reduction, prefix sums (scan), stream
//! compaction and maximum search. Each function takes an optional
//! [`CostTracker`] and records the standard PRAM cost of the operation
//! (`O(n)` work, `O(log n)` depth), so that the experiment harness can report
//! model quantities alongside wall-clock time.
//!
//! The rayon execution is the *real* parallel implementation; the cost model
//! is bookkeeping. Results are always identical to the sequential semantics
//! (rayon's parallel iterators guarantee this for the deterministic folds used
//! here).

use rayon::prelude::*;

use crate::cost::{Cost, CostTracker};
use crate::workspace::Workspace;

/// Minimum slice length before the primitives bother spawning parallel tasks;
/// below this a sequential loop is faster on every machine we tested and the
/// result is identical.
pub const SEQUENTIAL_CUTOFF: usize = 4096;

fn track(tracker: Option<&mut CostTracker>, cost: Cost) {
    if let Some(t) = tracker {
        t.record(cost);
    }
}

/// Elementwise map: `out[i] = f(&input[i])`.
///
/// Work `O(n)`, depth `O(log n)` (the depth charge accounts for the implicit
/// spawn tree; the per-element function is assumed `O(1)`).
pub fn par_map<T, U, F>(input: &[T], f: F, tracker: Option<&mut CostTracker>) -> Vec<U>
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    let mut out = Vec::new();
    par_map_into(input, f, tracker, &mut out);
    out
}

/// Allocation-reusing variant of [`par_map`]: the results replace the
/// contents of `out`. Below the sequential cutoff no allocation happens at
/// all once `out` has warmed up (capacity retained); above it the parallel
/// execution materializes its result internally (inherent to the executor)
/// and `out` adopts that buffer without an extra copy.
pub fn par_map_into<T, U, F>(input: &[T], f: F, tracker: Option<&mut CostTracker>, out: &mut Vec<U>)
where
    T: Sync,
    U: Send,
    F: Fn(&T) -> U + Sync + Send,
{
    track(tracker, Cost::parallel_step(input.len() as u64));
    out.clear();
    if input.len() < SEQUENTIAL_CUTOFF {
        out.extend(input.iter().map(f));
    } else {
        // Adopt the parallel collect's buffer instead of copying it into
        // `out`: the collected vector already spans the full input, so it is
        // at least as warm as the buffer it replaces.
        *out = input.par_iter().map(f).collect();
    }
}

/// Sum reduction over `u64` values produced by `f`.
pub fn par_sum_by<T, F>(input: &[T], f: F, tracker: Option<&mut CostTracker>) -> u64
where
    T: Sync,
    F: Fn(&T) -> u64 + Sync + Send,
{
    track(tracker, Cost::parallel_step(input.len() as u64));
    if input.len() < SEQUENTIAL_CUTOFF {
        input.iter().map(f).sum()
    } else {
        input.par_iter().map(f).sum()
    }
}

/// Maximum reduction; returns `None` on an empty slice.
pub fn par_max_by<T, F>(input: &[T], f: F, tracker: Option<&mut CostTracker>) -> Option<u64>
where
    T: Sync,
    F: Fn(&T) -> u64 + Sync + Send,
{
    track(tracker, Cost::parallel_step(input.len() as u64));
    if input.len() < SEQUENTIAL_CUTOFF {
        input.iter().map(f).max()
    } else {
        input.par_iter().map(f).max()
    }
}

/// Counts the elements satisfying a predicate.
pub fn par_count<T, F>(input: &[T], pred: F, tracker: Option<&mut CostTracker>) -> usize
where
    T: Sync,
    F: Fn(&T) -> bool + Sync + Send,
{
    track(tracker, Cost::parallel_step(input.len() as u64));
    if input.len() < SEQUENTIAL_CUTOFF {
        input.iter().filter(|x| pred(x)).count()
    } else {
        input.par_iter().filter(|x| pred(x)).count()
    }
}

/// Exclusive prefix sum (scan): `out[i] = Σ_{k<i} input[k]`, and the total sum
/// is returned alongside.
///
/// Implemented as the classic two-pass blocked scan: per-block sums, a scan of
/// the block sums, then a per-block rescan with offsets. Work `O(n)`, depth
/// `O(log n)`; this is the textbook EREW scan.
pub fn exclusive_scan(input: &[u64], tracker: Option<&mut CostTracker>) -> (Vec<u64>, u64) {
    let mut out = Vec::new();
    let total = exclusive_scan_into(input, tracker, &mut out);
    (out, total)
}

/// Allocation-reusing variant of [`exclusive_scan`]: the prefix sums replace
/// the contents of `out` (capacity retained) and the total is returned.
pub fn exclusive_scan_into(
    input: &[u64],
    tracker: Option<&mut CostTracker>,
    out: &mut Vec<u64>,
) -> u64 {
    let n = input.len();
    track(
        tracker,
        Cost::parallel_step(n as u64).then(Cost::parallel_step(n as u64)),
    );
    out.clear();
    if n < SEQUENTIAL_CUTOFF {
        out.reserve(n);
        let mut acc = 0u64;
        for &x in input {
            out.push(acc);
            acc += x;
        }
        return acc;
    }
    let block = 8192usize;
    let n_blocks = n.div_ceil(block);
    // Pass 1: per-block totals.
    let block_sums: Vec<u64> = (0..n_blocks)
        .into_par_iter()
        .map(|b| {
            let lo = b * block;
            let hi = (lo + block).min(n);
            input[lo..hi].iter().sum()
        })
        .collect();
    // Scan the block totals sequentially (n_blocks is tiny).
    let mut block_offsets = Vec::with_capacity(n_blocks);
    let mut acc = 0u64;
    for &s in &block_sums {
        block_offsets.push(acc);
        acc += s;
    }
    let total = acc;
    // Pass 2: rescan each block with its offset.
    out.resize(n, 0);
    out.par_chunks_mut(block)
        .enumerate()
        .for_each(|(b, chunk)| {
            let lo = b * block;
            let mut acc = block_offsets[b];
            for (i, slot) in chunk.iter_mut().enumerate() {
                *slot = acc;
                acc += input[lo + i];
            }
        });
    total
}

/// Stream compaction: returns the (stable) indices of the elements satisfying
/// `pred`. This is the PRAM "processor allocation" primitive: a flag vector, a
/// scan, and a scatter.
pub fn par_compact_indices<T, F>(
    input: &[T],
    pred: F,
    tracker: Option<&mut CostTracker>,
) -> Vec<usize>
where
    T: Sync,
    F: Fn(&T) -> bool + Sync + Send,
{
    let mut ws = Workspace::new();
    let mut out = Vec::new();
    par_compact_indices_in(input, pred, tracker, &mut ws, &mut out);
    out
}

/// Allocation-reusing variant of [`par_compact_indices`]: the flag and scan
/// intermediates come from (and return to) `ws`, and the surviving indices
/// replace the contents of `out`. A warmed-up workspace makes the whole
/// flag–scan–scatter pipeline allocation-free below the sequential cutoff.
///
/// Note: the flat `ActiveHypergraph` engine compacts its live-edge frontier
/// in place (`Vec::retain`) and no longer routes through this primitive; it
/// is kept as the workspace-backed building block for PRAM-style callers
/// (benches, property tests, future engines) rather than a current hot path.
pub fn par_compact_indices_in<T, F>(
    input: &[T],
    pred: F,
    mut tracker: Option<&mut CostTracker>,
    ws: &mut Workspace,
    out: &mut Vec<usize>,
) where
    T: Sync,
    F: Fn(&T) -> bool + Sync + Send,
{
    let mut flags = ws.take_u64("pram.compact.flags");
    let mut offsets = ws.take_u64("pram.compact.offsets");
    par_map_into(
        input,
        |x| if pred(x) { 1 } else { 0 },
        tracker.as_deref_mut(),
        &mut flags,
    );
    let total = exclusive_scan_into(&flags, tracker.as_deref_mut(), &mut offsets);
    track(tracker, Cost::parallel_step(input.len() as u64));
    out.clear();
    if input.len() < SEQUENTIAL_CUTOFF {
        out.resize(total as usize, 0);
        for (i, &f) in flags.iter().enumerate() {
            if f == 1 {
                out[offsets[i] as usize] = i;
            }
        }
    } else {
        // Scatter by chunk: each chunk produces its survivors in order and the
        // chunk results are concatenated in chunk order, which preserves
        // stability. Each output slot is written exactly once (the EREW
        // guarantee the scan provides).
        let chunk = 8192usize;
        let pieces: Vec<Vec<usize>> = flags
            .par_chunks(chunk)
            .enumerate()
            .map(|(b, fl)| {
                let lo = b * chunk;
                fl.iter()
                    .enumerate()
                    .filter(|(_, &f)| f == 1)
                    .map(|(i, _)| lo + i)
                    .collect()
            })
            .collect();
        out.reserve(total as usize);
        for p in pieces {
            out.extend(p);
        }
    }
    ws.put_u64("pram.compact.flags", flags);
    ws.put_u64("pram.compact.offsets", offsets);
}

/// Applies `f` to every element of a jagged collection of *disjoint* mutable
/// segments (e.g. the per-edge vertex runs of a CSR layout) in parallel,
/// collecting one result per segment, in segment order.
///
/// This is the PRAM "segmented update" primitive the flat
/// `ActiveHypergraph` engine uses for edge trimming: each segment is a small
/// sequential loop, segments are independent, and the total work is the sum of
/// the segment lengths. Work `O(Σ|s|)`, depth `O(log Σ|s|)` (per-segment work
/// is assumed `O(|s|)` with segments far shorter than the total).
pub fn par_map_segments<T, R, F>(
    segments: Vec<&mut [T]>,
    f: F,
    tracker: Option<&mut CostTracker>,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(&mut [T]) -> R + Sync + Send,
{
    let mut out = Vec::new();
    par_map_segments_into(segments, f, tracker, &mut out);
    out
}

/// Allocation-reusing variant of [`par_map_segments`]: per-segment results
/// replace the contents of `out`, retaining its capacity.
pub fn par_map_segments_into<T, R, F>(
    segments: Vec<&mut [T]>,
    f: F,
    tracker: Option<&mut CostTracker>,
    out: &mut Vec<R>,
) where
    T: Send,
    R: Send,
    F: Fn(&mut [T]) -> R + Sync + Send,
{
    let total: usize = segments.iter().map(|s| s.len()).sum();
    track(tracker, Cost::parallel_step(total as u64));
    out.clear();
    if total < SEQUENTIAL_CUTOFF {
        out.extend(segments.into_iter().map(f));
    } else {
        // As in `par_map_into`: adopt the collected buffer, don't re-copy.
        *out = segments.into_par_iter().map(f).collect();
    }
}

/// Applies `f` to every index in `0..n` in parallel and collects the results.
/// Convenience wrapper used by the algorithms for per-vertex and per-edge
/// steps.
pub fn par_tabulate<U, F>(n: usize, f: F, tracker: Option<&mut CostTracker>) -> Vec<U>
where
    U: Send,
    F: Fn(usize) -> U + Sync + Send,
{
    track(tracker, Cost::parallel_step(n as u64));
    if n < SEQUENTIAL_CUTOFF {
        (0..n).map(f).collect()
    } else {
        (0..n).into_par_iter().map(f).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_matches_sequential() {
        let v: Vec<u64> = (0..10_000).collect();
        let out = par_map(&v, |x| x * 2, None);
        assert_eq!(out.len(), v.len());
        assert!(out.iter().enumerate().all(|(i, &x)| x == 2 * i as u64));
    }

    #[test]
    fn sum_and_max_and_count() {
        let v: Vec<u64> = (1..=10_000).collect();
        assert_eq!(par_sum_by(&v, |&x| x, None), 10_000 * 10_001 / 2);
        assert_eq!(par_max_by(&v, |&x| x, None), Some(10_000));
        assert_eq!(par_max_by::<u64, _>(&[], |&x| x, None), None);
        assert_eq!(par_count(&v, |&x| x % 2 == 0, None), 5_000);
    }

    #[test]
    fn scan_small_and_large() {
        for n in [0usize, 1, 5, 100, 50_000] {
            let v: Vec<u64> = (0..n as u64).map(|x| x % 7).collect();
            let (scan, total) = exclusive_scan(&v, None);
            assert_eq!(scan.len(), n);
            let mut acc = 0u64;
            for i in 0..n {
                assert_eq!(scan[i], acc, "mismatch at {i} for n={n}");
                acc += v[i];
            }
            assert_eq!(total, acc);
        }
    }

    #[test]
    fn compact_matches_filter() {
        for n in [0usize, 10, 1000, 30_000] {
            let v: Vec<u64> = (0..n as u64).collect();
            let idx = par_compact_indices(&v, |&x| x % 3 == 0, None);
            let expected: Vec<usize> = (0..n).filter(|i| i % 3 == 0).collect();
            assert_eq!(idx, expected, "n={n}");
        }
    }

    #[test]
    fn map_segments_small_and_large() {
        for (n_segments, seg_len) in [(5usize, 3usize), (800, 64)] {
            let mut data = vec![0u64; n_segments * seg_len];
            let mut segments: Vec<&mut [u64]> = Vec::new();
            let mut rest = data.as_mut_slice();
            for _ in 0..n_segments {
                let (seg, tail) = std::mem::take(&mut rest).split_at_mut(seg_len);
                segments.push(seg);
                rest = tail;
            }
            let lens = par_map_segments(
                segments,
                |seg| {
                    for (i, slot) in seg.iter_mut().enumerate() {
                        *slot = i as u64;
                    }
                    seg.len()
                },
                None,
            );
            assert_eq!(lens, vec![seg_len; n_segments]);
            for (i, &x) in data.iter().enumerate() {
                assert_eq!(x, (i % seg_len) as u64);
            }
        }
    }

    #[test]
    fn tabulate() {
        let out = par_tabulate(10_000, |i| i as u64 * i as u64, None);
        assert_eq!(out[77], 77 * 77);
        assert_eq!(out.len(), 10_000);
    }

    #[test]
    fn into_variants_match_and_stop_allocating_when_warm() {
        let mut ws = Workspace::new();
        let v: Vec<u64> = (0..10_000).collect();
        let mut mapped = Vec::new();
        let mut scan = Vec::new();
        let mut idx = Vec::new();
        // Warm-up pass.
        par_map_into(&v, |&x| x + 1, None, &mut mapped);
        let total = exclusive_scan_into(&v, None, &mut scan);
        par_compact_indices_in(&v, |&x| x % 3 == 0, None, &mut ws, &mut idx);
        assert_eq!(mapped, par_map(&v, |&x| x + 1, None));
        assert_eq!((scan.clone(), total), exclusive_scan(&v, None));
        assert_eq!(idx, par_compact_indices(&v, |&x| x % 3 == 0, None));
        // Warmed pass: the workspace serves the compact intermediates with
        // zero fresh allocations.
        let before = ws.fresh_allocations();
        par_compact_indices_in(&v, |&x| x % 3 == 0, None, &mut ws, &mut idx);
        assert_eq!(ws.fresh_allocations(), before);
        assert_eq!(idx, par_compact_indices(&v, |&x| x % 3 == 0, None));
    }

    #[test]
    fn map_segments_into_matches() {
        let mut data = [0u64; 12];
        let (a, b) = data.split_at_mut(5);
        let mut out = Vec::new();
        par_map_segments_into(
            vec![a, b],
            |seg| {
                seg.iter_mut().for_each(|s| *s = 2);
                seg.len() as u32
            },
            None,
            &mut out,
        );
        assert_eq!(out, vec![5, 7]);
        assert!(data.iter().all(|&x| x == 2));
    }

    #[test]
    fn costs_are_recorded() {
        let mut t = CostTracker::new();
        let v: Vec<u64> = (0..512).collect();
        let _ = par_map(&v, |x| x + 1, Some(&mut t));
        let (_, _) = exclusive_scan(&v, Some(&mut t));
        assert!(t.cost().work >= 512 * 3); // map + two scan passes
        assert!(t.cost().depth >= 3);
        assert!(t.cost().processors() >= 1);
    }
}
