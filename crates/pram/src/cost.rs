//! Work–depth / PRAM cost accounting.
//!
//! The paper states its results in the EREW PRAM model: "time `T` with
//! `poly(m, n)` processors". Real hardware (and this crate's rayon-backed
//! execution) does not expose those quantities directly, so every algorithm in
//! the workspace threads a [`CostTracker`] through its execution and records,
//! for each parallel step, how much *work* it did (total operations) and what
//! the *depth* of that step is (the critical-path length of the step, i.e. the
//! parallel time it would take with unboundedly many processors).
//!
//! By Brent's theorem a computation with work `W` and depth `D` runs in
//! `O(W/P + D)` time on `P` processors, so the experiment harness reports both
//! quantities plus the implied processor requirement `⌈W/D⌉`. The *round*
//! counter corresponds to global synchronisation barriers — the quantity the
//! paper's theorems actually bound (number of stages of BL, number of rounds
//! of SBL).

use std::ops::Add;

/// The cost of a (sub)computation in the work–depth model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Cost {
    /// Total number of primitive operations performed.
    pub work: u64,
    /// Critical-path length (parallel time with unbounded processors).
    pub depth: u64,
}

impl Cost {
    /// A cost of zero.
    pub const ZERO: Cost = Cost { work: 0, depth: 0 };

    /// Creates a cost with the given work and depth.
    pub fn new(work: u64, depth: u64) -> Self {
        Cost { work, depth }
    }

    /// The cost of a fully parallel step over `n` items whose per-item work is
    /// `O(1)` and whose combining tree has logarithmic depth (the standard
    /// cost of map/reduce/scan primitives on an EREW PRAM).
    pub fn parallel_step(n: u64) -> Self {
        Cost {
            work: n,
            depth: (64 - n.max(1).leading_zeros() as u64).max(1),
        }
    }

    /// The cost of a purely sequential computation of `n` operations.
    pub fn sequential(n: u64) -> Self {
        Cost { work: n, depth: n }
    }

    /// Sequential composition: work and depth both add.
    pub fn then(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            depth: self.depth + other.depth,
        }
    }

    /// Parallel composition: work adds, depth is the maximum branch.
    pub fn join(self, other: Cost) -> Cost {
        Cost {
            work: self.work + other.work,
            depth: self.depth.max(other.depth),
        }
    }

    /// Processors needed to achieve the depth bound, `⌈work/depth⌉`
    /// (Brent's theorem). Returns 1 for the zero cost.
    pub fn processors(&self) -> u64 {
        if self.depth == 0 {
            1
        } else {
            self.work.div_ceil(self.depth)
        }
    }
}

impl Add for Cost {
    type Output = Cost;
    fn add(self, rhs: Cost) -> Cost {
        self.then(rhs)
    }
}

/// Accumulates [`Cost`] and a round counter over the lifetime of an algorithm
/// run.
#[derive(Debug, Clone, Default)]
pub struct CostTracker {
    total: Cost,
    rounds: u64,
    /// Largest single-step work, a proxy for the processor count a literal
    /// PRAM implementation would need.
    max_step_work: u64,
}

impl CostTracker {
    /// A fresh tracker with zero cost.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a parallel step of the given cost (sequential composition with
    /// everything recorded so far).
    pub fn record(&mut self, c: Cost) {
        self.total = self.total.then(c);
        self.max_step_work = self.max_step_work.max(c.work);
    }

    /// Records a fully parallel `O(1)`-per-item step over `n` items.
    pub fn record_parallel(&mut self, n: u64) {
        self.record(Cost::parallel_step(n));
    }

    /// Records a sequential computation of `n` operations.
    pub fn record_sequential(&mut self, n: u64) {
        self.record(Cost::sequential(n));
    }

    /// Marks the end of a global round (synchronisation barrier).
    pub fn bump_round(&mut self) {
        self.rounds += 1;
    }

    /// Total accumulated cost.
    pub fn cost(&self) -> Cost {
        self.total
    }

    /// Number of global rounds recorded.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Largest single-step work recorded (processor requirement of a literal
    /// PRAM implementation).
    pub fn max_step_work(&self) -> u64 {
        self.max_step_work
    }

    /// Merges another tracker that ran *sequentially after* this one
    /// (costs compose with `then`, rounds add).
    pub fn absorb(&mut self, other: &CostTracker) {
        self.total = self.total.then(other.total);
        self.rounds += other.rounds;
        self.max_step_work = self.max_step_work.max(other.max_step_work);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parallel_step_costs() {
        let c = Cost::parallel_step(1024);
        assert_eq!(c.work, 1024);
        assert_eq!(c.depth, 11); // ceil(log2 1024) + 1 = 11 (floor(log2)+1)
        let c1 = Cost::parallel_step(1);
        assert_eq!(c1.depth, 1);
        let c0 = Cost::parallel_step(0);
        assert_eq!(c0.work, 0);
        assert!(c0.depth >= 1);
    }

    #[test]
    fn composition_laws() {
        let a = Cost::new(100, 5);
        let b = Cost::new(50, 9);
        assert_eq!(a.then(b), Cost::new(150, 14));
        assert_eq!(a.join(b), Cost::new(150, 9));
        assert_eq!(a + b, a.then(b));
        assert_eq!(Cost::ZERO.then(a), a);
        assert_eq!(Cost::ZERO.join(a), a);
    }

    #[test]
    fn brent_processors() {
        assert_eq!(Cost::new(1000, 10).processors(), 100);
        assert_eq!(Cost::new(1001, 10).processors(), 101);
        assert_eq!(Cost::ZERO.processors(), 1);
        assert_eq!(Cost::sequential(7).processors(), 1);
    }

    #[test]
    fn tracker_accumulates() {
        let mut t = CostTracker::new();
        t.record_parallel(8);
        t.record_parallel(8);
        t.bump_round();
        t.record_sequential(3);
        assert_eq!(t.rounds(), 1);
        assert_eq!(t.cost().work, 19);
        assert_eq!(t.cost().depth, 4 + 4 + 3);
        assert_eq!(t.max_step_work(), 8);

        let mut t2 = CostTracker::new();
        t2.record_parallel(100);
        t2.bump_round();
        t.absorb(&t2);
        assert_eq!(t.rounds(), 2);
        assert_eq!(t.max_step_work(), 100);
        assert_eq!(t.cost().work, 119);
    }
}
