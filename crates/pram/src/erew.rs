//! A lightweight EREW (exclusive-read exclusive-write) access checker.
//!
//! The paper's algorithms are stated for the EREW PRAM: within one parallel
//! step, no two processors may read or write the same memory cell. The
//! shared-memory implementations in this workspace do not need that
//! discipline for correctness (rayon guarantees data-race freedom at the
//! language level), but the *model* claim — "can be implemented on EREW
//! PRAM" — is part of Theorem 1/2, so the primitives register their access
//! patterns with an [`AccessLog`] in tests to demonstrate that each parallel
//! step touches every cell at most once.

use std::collections::HashMap;

/// The kind of access a processor performs on a cell.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Access {
    /// The cell is read.
    Read,
    /// The cell is written.
    Write,
}

/// A conflict detected within a parallel step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Conflict {
    /// The parallel step in which the conflict occurred.
    pub step: u64,
    /// The cell (abstract address) that was touched more than once.
    pub cell: u64,
    /// Total number of accesses to the cell in that step.
    pub count: u32,
}

/// Records cell accesses per parallel step and reports EREW violations.
///
/// Cells are abstract `u64` addresses chosen by the caller (array name hashed
/// with the index, for instance). The checker is intentionally simple — it is
/// a verification harness for tests, not a production dependency.
#[derive(Debug, Default)]
pub struct AccessLog {
    step: u64,
    counts: HashMap<(u64, u64), u32>,
    conflicts: Vec<Conflict>,
}

impl AccessLog {
    /// Creates an empty log positioned at step 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// Current step number.
    pub fn step(&self) -> u64 {
        self.step
    }

    /// Registers an access to `cell` in the current step.
    pub fn touch(&mut self, cell: u64, _kind: Access) {
        let c = self.counts.entry((self.step, cell)).or_insert(0);
        *c += 1;
        if *c == 2 {
            self.conflicts.push(Conflict {
                step: self.step,
                cell,
                count: 2,
            });
        } else if *c > 2 {
            if let Some(last) = self
                .conflicts
                .iter_mut()
                .rev()
                .find(|cf| cf.step == self.step && cf.cell == cell)
            {
                last.count = *c;
            }
        }
    }

    /// Ends the current parallel step; subsequent accesses belong to the next
    /// step (and may legitimately touch the same cells again).
    pub fn barrier(&mut self) {
        self.step += 1;
    }

    /// All conflicts recorded so far.
    pub fn conflicts(&self) -> &[Conflict] {
        &self.conflicts
    }

    /// `true` if every step so far was exclusive-read exclusive-write.
    pub fn is_erew(&self) -> bool {
        self.conflicts.is_empty()
    }
}

/// Helper to derive distinct abstract cell addresses for indexed arrays:
/// `cell(array_id, index)` never collides across arrays for indices below
/// `2^40`.
pub fn cell(array_id: u16, index: usize) -> u64 {
    ((array_id as u64) << 40) | (index as u64 & ((1u64 << 40) - 1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exclusive_accesses_pass() {
        let mut log = AccessLog::new();
        for i in 0..100 {
            log.touch(cell(0, i), Access::Write);
        }
        log.barrier();
        for i in 0..100 {
            log.touch(cell(0, i), Access::Read);
        }
        assert!(log.is_erew());
        assert_eq!(log.step(), 1);
    }

    #[test]
    fn concurrent_reads_are_flagged() {
        let mut log = AccessLog::new();
        log.touch(cell(1, 7), Access::Read);
        log.touch(cell(1, 7), Access::Read);
        log.touch(cell(1, 7), Access::Read);
        assert!(!log.is_erew());
        assert_eq!(log.conflicts().len(), 1);
        assert_eq!(log.conflicts()[0].count, 3);
    }

    #[test]
    fn same_cell_in_different_steps_is_fine() {
        let mut log = AccessLog::new();
        log.touch(cell(0, 3), Access::Write);
        log.barrier();
        log.touch(cell(0, 3), Access::Write);
        assert!(log.is_erew());
    }

    #[test]
    fn distinct_arrays_do_not_collide() {
        assert_ne!(cell(0, 5), cell(1, 5));
        assert_ne!(cell(2, 0), cell(3, 0));
        let mut log = AccessLog::new();
        log.touch(cell(0, 5), Access::Write);
        log.touch(cell(1, 5), Access::Write);
        assert!(log.is_erew());
    }
}
