//! EREW PRAM cost model and parallel primitives.
//!
//! The SBL paper states its results in the EREW PRAM model ("time `n^{o(1)}`
//! with `poly(m,n)` processors"). This crate provides the two halves needed to
//! make such statements measurable on real hardware:
//!
//! * [`cost`] — a work–depth cost model ([`Cost`], [`CostTracker`]): every
//!   algorithm in the workspace records per-step work and depth, plus a
//!   *round* counter for the global synchronisation barriers that the paper's
//!   theorems actually bound.
//! * [`primitives`] — the PRAM building blocks (map, reduce, scan, compact,
//!   tabulate) executed with rayon and charged with their textbook
//!   `O(n)`-work / `O(log n)`-depth costs.
//! * [`erew`] — a small exclusive-read/exclusive-write access checker used by
//!   tests to demonstrate that the primitives' access patterns respect the
//!   EREW discipline the paper assumes.
//! * [`pool`] — helpers to run a computation on a dedicated rayon pool with a
//!   fixed thread count (used by the threads-sweep experiment) and to spawn
//!   the serving layer's long-lived per-shard worker threads.
//! * [`mmap`] — read-only memory-mapped files with validated `u32` windows
//!   ([`mmap::MmapFile`], [`mmap::U32Span`]): the storage primitive behind
//!   the out-of-core resident-graph tier, sharing one mapping zero-copy
//!   across every serving shard.
//! * [`simd`] — wide (SIMD) sweeps over the flat engine's `u8` status
//!   arrays (count / positions / masked sum) with runtime ISA detection,
//!   scalar fallbacks and a `force-scalar` escape hatch for differential
//!   testing.
//! * [`workspace`] — a reusable scratch arena ([`Workspace`]) for the
//!   zero-reallocation run pipeline: per-purpose buffer pools threaded
//!   through the `*_in`/`*_into` primitive variants and the `mis-core`
//!   algorithm entry points, so a stream of solves reuses one set of
//!   buffers — plus [`WorkspacePool`], the per-shard checkout/checkin layer
//!   the facade's sharded serving subsystem is built on.

#![warn(missing_docs)]
// `deny` rather than `forbid`: the `simd` module opts back in locally for
// `core::arch` intrinsics behind `#[target_feature]` kernels, and the `mmap`
// module for the `mmap`/`munmap` FFI and its bounds-checked slice views;
// everything else in the crate remains unsafe-free.
#![deny(unsafe_code)]

pub mod cost;
pub mod erew;
pub mod mmap;
pub mod pool;
pub mod primitives;
pub mod simd;
pub mod workspace;

pub use cost::{Cost, CostTracker};
pub use workspace::{Workspace, WorkspacePool};

/// Commonly used items.
pub mod prelude {
    pub use crate::cost::{Cost, CostTracker};
    pub use crate::pool::{available_parallelism, spawn_worker, with_threads};
    pub use crate::primitives::{
        exclusive_scan, exclusive_scan_into, par_compact_indices, par_compact_indices_in,
        par_count, par_map, par_map_into, par_map_segments_into, par_max_by, par_sum_by,
        par_tabulate,
    };
    pub use crate::workspace::{Workspace, WorkspacePool};
}
