//! Property-based tests for the PRAM primitives: every parallel primitive
//! must agree with its obvious sequential specification, for any input.

use pram::cost::CostTracker;
use pram::primitives::*;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn scan_matches_sequential(v in prop::collection::vec(0u64..1000, 0..6000)) {
        let (scan, total) = exclusive_scan(&v, None);
        let mut acc = 0u64;
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(scan[i], acc);
            acc += x;
        }
        prop_assert_eq!(total, acc);
    }

    #[test]
    fn compact_matches_filter(v in prop::collection::vec(0u64..100, 0..6000), modulus in 1u64..10) {
        let idx = par_compact_indices(&v, |&x| x % modulus == 0, None);
        let expected: Vec<usize> = v.iter().enumerate()
            .filter(|(_, &x)| x % modulus == 0)
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(idx, expected);
    }

    #[test]
    fn sum_and_max_match(v in prop::collection::vec(0u64..1_000_000, 0..5000)) {
        prop_assert_eq!(par_sum_by(&v, |&x| x, None), v.iter().sum::<u64>());
        prop_assert_eq!(par_max_by(&v, |&x| x, None), v.iter().copied().max());
    }

    #[test]
    fn map_is_elementwise(v in prop::collection::vec(0i64..1000, 0..5000)) {
        let out = par_map(&v, |&x| x * x - 1, None);
        prop_assert_eq!(out.len(), v.len());
        for (i, &x) in v.iter().enumerate() {
            prop_assert_eq!(out[i], x * x - 1);
        }
    }

    #[test]
    fn cost_tracking_is_monotone(v in prop::collection::vec(0u64..10, 1..3000)) {
        let mut t = CostTracker::new();
        let _ = par_sum_by(&v, |&x| x, Some(&mut t));
        let w1 = t.cost().work;
        let _ = exclusive_scan(&v, Some(&mut t));
        let w2 = t.cost().work;
        prop_assert!(w2 > w1);
        prop_assert!(t.cost().depth >= 1);
        prop_assert!(t.cost().processors() >= 1);
    }
}
