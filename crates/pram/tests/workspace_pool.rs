//! Property tests for [`pram::WorkspacePool`]: any valid checkout/checkin
//! interleaving preserves the per-shard zero-warm-allocation property.
//!
//! The model: each shard repeatedly runs the same "solve" (a fixed shape of
//! flag/list/zeroed takes, like a same-shaped MIS stream). After one warm-up
//! round per shard, no interleaving of checkouts and checkins across shards —
//! including holding several shards' workspaces out simultaneously — may
//! cause a single further fresh allocation on any shard: affinity means a
//! shard always rewarms its own buffers.

use pram::{Workspace, WorkspacePool};
use proptest::prelude::*;

/// One same-shaped "solve" against a workspace: a fixed purpose-keyed usage
/// pattern whose buffer shapes depend only on `shard` (so each shard has its
/// own shape, as each serve shard has its own resident tenants).
fn simulated_solve(ws: &mut Workspace, shard: usize) {
    let len = 64 + 32 * shard;
    let flags = ws.take_flags("solve.flags", len);
    let mut idx = ws.take_u32("solve.idx");
    idx.extend(0..len as u32);
    let mut scan = ws.take_u64("solve.scan");
    scan.extend((0..len as u64).map(|x| x * x));
    let zeroed = ws.take_u32_zeroed("solve.offsets", len + 1);
    ws.put_flags("solve.flags", flags);
    ws.put_u32("solve.idx", idx);
    ws.put_u64("solve.scan", scan);
    ws.put_u32("solve.offsets", zeroed);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Random interleavings of {checkout shard, solve, checkin shard} with at
    /// most one outstanding checkout per shard (the serve runner's usage):
    /// after warm-up, per-shard fresh-allocation counters never move.
    #[test]
    fn interleavings_preserve_zero_warm_allocations(
        shards in 1usize..5,
        script in prop::collection::vec((0usize..5, 0usize..4), 1..60),
    ) {
        let mut pool = WorkspacePool::new(shards);
        // Warm-up: one solve per shard.
        for s in 0..shards {
            let mut ws = pool.checkout(s);
            simulated_solve(&mut ws, s);
            pool.checkin(s, ws);
        }
        let warm: Vec<u64> = (0..shards).map(|s| pool.shard_fresh_allocations(s)).collect();
        prop_assert!(warm.iter().all(|&f| f > 0));

        // Interpret the script as an interleaving: the second coordinate
        // decides how many solves happen while the shard's workspace is out,
        // and checkins are deliberately delayed so several shards' workspaces
        // are outstanding at once.
        let mut out: Vec<Option<(usize, Workspace)>> = (0..shards).map(|_| None).collect();
        for &(raw_shard, solves) in &script {
            let s = raw_shard % shards;
            match out[s].take() {
                Some((shard, ws)) => pool.checkin(shard, ws),
                None => {
                    let mut ws = pool.checkout(s);
                    for _ in 0..=solves {
                        simulated_solve(&mut ws, s);
                    }
                    out[s] = Some((s, ws));
                }
            }
        }
        for (shard, ws) in out.into_iter().flatten() {
            pool.checkin(shard, ws);
        }

        prop_assert_eq!(pool.overflow_checkouts(), 0);
        for (s, &w) in warm.iter().enumerate() {
            // A shard must not allocate after its warm-up.
            prop_assert_eq!(pool.shard_fresh_allocations(s), w);
        }
        prop_assert_eq!(pool.fresh_allocations(), warm.iter().sum::<u64>());
    }

    /// Exhaustion overflow never poisons a shard's own counters: overflow
    /// workspaces are fresh, and dropping them at checkin leaves the
    /// shard-resident workspace (and its zero-warm-allocation property)
    /// intact.
    #[test]
    fn overflow_checkouts_leave_shard_counters_intact(extra in 1usize..4) {
        let mut pool = WorkspacePool::new(1);
        let mut ws = pool.checkout(0);
        simulated_solve(&mut ws, 0);
        pool.checkin(0, ws);
        let warm = pool.shard_fresh_allocations(0);

        let resident = pool.checkout(0);
        let mut overflows = Vec::new();
        for _ in 0..extra {
            let mut ws = pool.checkout(0);
            simulated_solve(&mut ws, 0);
            overflows.push(ws);
        }
        prop_assert_eq!(pool.overflow_checkouts(), extra as u64);
        pool.checkin(0, resident);
        for ws in overflows {
            pool.checkin(0, ws);
        }
        prop_assert_eq!(pool.dropped_checkins(), extra as u64);
        prop_assert_eq!(pool.shard_fresh_allocations(0), warm);
        prop_assert_eq!(pool.parked(), 1);
    }
}
