//! Differential suite for the flat [`ActiveHypergraph`] engine: random edit
//! scripts of decide/trim/discard operations are replayed against both the
//! flat engine and the pre-flat reference engine
//! ([`ReferenceActiveHypergraph`]), and every observable — alive vertices,
//! live edges, degrees, dimension, operation return values — must match after
//! every step, for every generator family.
//!
//! Requires the `reference-engine` feature (on by default).

#![cfg(feature = "reference-engine")]

use hypergraph::degree::{max_vertex_degree, DegreeTable};
use hypergraph::prelude::*;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of an edit script, in the vocabulary of the round-based
/// algorithms.
#[derive(Debug, Clone)]
enum Op {
    /// Decide a vertex set blue: kill it and trim it out of every edge.
    DecideBlue(Vec<u32>),
    /// Decide a vertex set red: kill it and discard every edge touching it.
    DecideRed(Vec<u32>),
    /// Drop edges strictly containing another live edge.
    RemoveDominated,
    /// Drop singleton edges together with their vertex.
    RemoveSingletons,
    /// Query the independence oracle (no mutation).
    Oracle(Vec<u32>),
    /// Restrict both engines to the sub-hypergraph induced by a mark set.
    Induce(Vec<u32>),
}

fn flags(id_space: usize, vs: &[u32]) -> Vec<bool> {
    let mut f = vec![false; id_space];
    for &v in vs {
        f[v as usize] = true;
    }
    f
}

/// Asserts every observable of the two engines matches.
fn assert_same_state(flat: &ActiveHypergraph, reference: &ReferenceActiveHypergraph, ctx: &str) {
    assert_eq!(
        flat.n_alive(),
        ActiveEngine::n_alive(reference),
        "{ctx}: n_alive"
    );
    assert_eq!(
        flat.alive_vertices(),
        ActiveEngine::alive_vertices(reference),
        "{ctx}: alive vertices"
    );
    assert_eq!(
        flat.live_edges_owned(),
        ActiveEngine::live_edges_owned(reference),
        "{ctx}: live edges"
    );
    assert_eq!(
        HypergraphView::dimension(flat),
        HypergraphView::dimension(reference),
        "{ctx}: dimension"
    );
    assert_eq!(
        flat.total_live_size(),
        ActiveEngine::total_live_size(reference),
        "{ctx}: total live size"
    );
    assert_eq!(
        max_vertex_degree(flat),
        max_vertex_degree(reference),
        "{ctx}: max vertex degree"
    );
    flat.debug_validate();
    reference.debug_validate();
    // Normalized degrees (the quantity BL's marking probability is computed
    // from) must agree whenever the dimension admits the subset enumeration.
    if HypergraphView::dimension(flat) <= 12 {
        let df = DegreeTable::build(flat).delta();
        let dr = DegreeTable::build(reference).delta();
        assert!(
            (df - dr).abs() < 1e-12,
            "{ctx}: delta mismatch {df} vs {dr}"
        );
    }
    // Compaction must agree as well (same relabelling, same edges).
    let (hf, mf) = ActiveEngine::compact(flat);
    let (hr, mr) = ActiveEngine::compact(reference);
    assert_eq!(mf, mr, "{ctx}: compact mapping");
    assert_eq!(hf, hr, "{ctx}: compacted hypergraph");
}

/// Replays `ops` against both engines, checking state equality after every
/// step. Ops reference arbitrary vertex ids; they are filtered to the id
/// space on the fly.
fn replay(h: &Hypergraph, ops: &[Op]) {
    let mut flat = ActiveHypergraph::from_hypergraph(h);
    let mut reference = ReferenceActiveHypergraph::from_hypergraph(h);
    assert_same_state(&flat, &reference, "initial");
    let id_space = h.n_vertices();

    for (i, op) in ops.iter().enumerate() {
        let ctx = format!("op {i} = {op:?}");
        match op {
            Op::DecideBlue(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                flat.kill_vertices(&vs);
                ActiveEngine::kill_vertices(&mut reference, &vs);
                assert_eq!(
                    flat.shrink_edges_by(&f, &vs),
                    ActiveEngine::shrink_edges_by(&mut reference, &f, &vs),
                    "{ctx}: emptied count"
                );
            }
            Op::DecideRed(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                assert_eq!(
                    flat.discard_edges_touching(&f, &vs),
                    ActiveEngine::discard_edges_touching(&mut reference, &f, &vs),
                    "{ctx}: discard count"
                );
                flat.kill_vertices(&vs);
                ActiveEngine::kill_vertices(&mut reference, &vs);
            }
            Op::RemoveDominated => {
                assert_eq!(
                    flat.remove_dominated_edges(),
                    ActiveEngine::remove_dominated_edges(&mut reference),
                    "{ctx}: dominated count"
                );
            }
            Op::RemoveSingletons => {
                assert_eq!(
                    flat.remove_singleton_edges(),
                    ActiveEngine::remove_singleton_edges(&mut reference),
                    "{ctx}: killed vertices"
                );
            }
            Op::Oracle(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                assert_eq!(
                    flat.contains_live_edge_within(&vs),
                    ActiveEngine::contains_live_edge_within(&mut reference, &vs),
                    "{ctx}: oracle answer"
                );
            }
            Op::Induce(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                flat = flat.induced_by(&f);
                reference = ActiveEngine::induced_by(&reference, &f);
            }
        }
        assert_same_state(&flat, &reference, &ctx);
    }
}

/// A random edit script in the shape the algorithms actually produce: blue
/// batches are trimmed, red batches are discarded, cleanup ops interleave.
fn random_script<R: Rng>(rng: &mut R, id_space: usize, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    let all: Vec<u32> = (0..id_space as u32).collect();
    let subset = |rng: &mut R, max: usize| -> Vec<u32> {
        let k = rng.gen_range(0..=max.min(id_space));
        let mut pool = all.clone();
        pool.shuffle(rng);
        pool.truncate(k);
        pool.sort_unstable();
        pool
    };
    for _ in 0..len {
        let op = match rng.gen_range(0..6u32) {
            0 => Op::DecideBlue(subset(rng, 4)),
            1 => Op::DecideRed(subset(rng, 4)),
            2 => Op::RemoveDominated,
            3 => Op::RemoveSingletons,
            4 => Op::Oracle(subset(rng, 8)),
            _ => Op::Induce(subset(rng, id_space)),
        };
        ops.push(op);
    }
    ops
}

/// Every generator family × random edit scripts.
#[test]
fn edit_scripts_across_generator_families() {
    for seed in 0..4u64 {
        let mut gen_rng = ChaCha8Rng::seed_from_u64(0xD1FF + seed);
        let families: Vec<(&str, Hypergraph)> = vec![
            ("d_uniform", generate::d_uniform(&mut gen_rng, 40, 80, 3)),
            (
                "mixed_dimension",
                generate::mixed_dimension(&mut gen_rng, 40, 70, &[2, 3, 4, 5]),
            ),
            ("linear", generate::linear(&mut gen_rng, 40, 30, 3)),
            (
                "paper_regime",
                generate::paper_regime(&mut gen_rng, 60, 20, 10),
            ),
            (
                "planted",
                generate::planted_independent(&mut gen_rng, 40, 80, 3, 12),
            ),
            ("sunflower", generate::special::sunflower(6, 4, 2)),
            (
                "giant_edge_with_stars",
                generate::special::giant_edge_with_stars(12, 8),
            ),
            ("all_singletons", generate::special::all_singletons(9)),
            ("complete_graph", generate::special::complete_graph(9)),
            (
                "edgeless",
                hypergraph::builder::hypergraph_from_edges::<Vec<u32>>(7, vec![]),
            ),
        ];
        for (family, h) in families {
            let mut rng = ChaCha8Rng::seed_from_u64(0x5C81 + seed);
            let ops = random_script(&mut rng, h.n_vertices(), 12);
            replay(&h, &ops);
            let _ = family;
        }
    }
}

/// Singleton cascades and duplicate live sets: hand-picked worst cases for
/// the frontier/status bookkeeping.
#[test]
fn handpicked_scripts() {
    // Duplicate live sets after trimming.
    let h = hypergraph::builder::hypergraph_from_edges(
        6,
        vec![vec![0, 1, 2], vec![0, 1, 3], vec![2, 3], vec![4, 5]],
    );
    replay(
        &h,
        &[
            Op::DecideBlue(vec![2, 3]),
            Op::RemoveDominated,
            Op::RemoveSingletons,
            Op::Oracle(vec![0, 1]),
        ],
    );

    // A singleton sweep that discards almost everything.
    let h = hypergraph::builder::hypergraph_from_edges(
        5,
        vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![3, 4]],
    );
    replay(
        &h,
        &[
            Op::RemoveSingletons,
            Op::RemoveDominated,
            Op::DecideRed(vec![3]),
        ],
    );

    // Induce twice, then keep editing the nested sub-instance.
    let h = generate::special::sunflower(5, 4, 1);
    replay(
        &h,
        &[
            Op::Induce((0..12).collect()),
            Op::DecideBlue(vec![0]),
            Op::Induce((0..8).collect()),
            Op::RemoveSingletons,
            Op::RemoveDominated,
        ],
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary hypergraphs × arbitrary scripts: the engines agree on every
    /// observable after every operation.
    #[test]
    fn arbitrary_scripts_agree(
        edges in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 1..=5usize),
            0..30,
        ),
        script_seed in any::<u64>(),
        script_len in 1usize..16,
    ) {
        let edges: Vec<Vec<u32>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let h = hypergraph::builder::hypergraph_from_edges(20, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(script_seed);
        let ops = random_script(&mut rng, h.n_vertices(), script_len);
        replay(&h, &ops);
    }
}
