//! Differential suite for the flat [`ActiveHypergraph`] engine: random edit
//! scripts of decide/trim/discard operations are replayed against both the
//! flat engine and the pre-flat reference engine
//! ([`ReferenceActiveHypergraph`]), and every observable — alive vertices,
//! live edges, degrees, dimension, operation return values — must match after
//! every step, for every generator family.
//!
//! Requires the `reference-engine` feature (on by default).

#![cfg(feature = "reference-engine")]

use hypergraph::degree::{max_vertex_degree, DegreeTable};
use hypergraph::prelude::*;
use proptest::prelude::*;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use rand_chacha::ChaCha8Rng;

/// One step of an edit script, in the vocabulary of the round-based
/// algorithms.
#[derive(Debug, Clone)]
enum Op {
    /// Decide a vertex set blue: kill it and trim it out of every edge.
    DecideBlue(Vec<u32>),
    /// Decide a vertex set red: kill it and discard every edge touching it.
    DecideRed(Vec<u32>),
    /// Drop edges strictly containing another live edge.
    RemoveDominated,
    /// Drop singleton edges together with their vertex.
    RemoveSingletons,
    /// Query the independence oracle (no mutation).
    Oracle(Vec<u32>),
    /// Restrict both engines to the sub-hypergraph induced by a mark set.
    Induce(Vec<u32>),
}

fn flags(id_space: usize, vs: &[u32]) -> Vec<bool> {
    let mut f = vec![false; id_space];
    for &v in vs {
        f[v as usize] = true;
    }
    f
}

/// Asserts every observable of the two engines matches.
fn assert_same_state(flat: &ActiveHypergraph, reference: &ReferenceActiveHypergraph, ctx: &str) {
    assert_eq!(
        flat.n_alive(),
        ActiveEngine::n_alive(reference),
        "{ctx}: n_alive"
    );
    assert_eq!(
        flat.alive_vertices(),
        ActiveEngine::alive_vertices(reference),
        "{ctx}: alive vertices"
    );
    assert_eq!(
        flat.live_edges_owned(),
        ActiveEngine::live_edges_owned(reference),
        "{ctx}: live edges"
    );
    assert_eq!(
        HypergraphView::dimension(flat),
        HypergraphView::dimension(reference),
        "{ctx}: dimension"
    );
    assert_eq!(
        flat.total_live_size(),
        ActiveEngine::total_live_size(reference),
        "{ctx}: total live size"
    );
    assert_eq!(
        max_vertex_degree(flat),
        max_vertex_degree(reference),
        "{ctx}: max vertex degree"
    );
    flat.debug_validate();
    reference.debug_validate();
    // Normalized degrees (the quantity BL's marking probability is computed
    // from) must agree whenever the dimension admits the subset enumeration.
    if HypergraphView::dimension(flat) <= 12 {
        let df = DegreeTable::build(flat).delta();
        let dr = DegreeTable::build(reference).delta();
        assert!(
            (df - dr).abs() < 1e-12,
            "{ctx}: delta mismatch {df} vs {dr}"
        );
    }
    // Compaction must agree as well (same relabelling, same edges).
    let (hf, mf) = ActiveEngine::compact(flat);
    let (hr, mr) = ActiveEngine::compact(reference);
    assert_eq!(mf, mr, "{ctx}: compact mapping");
    assert_eq!(hf, hr, "{ctx}: compacted hypergraph");
}

/// Replays `ops` against both engines, checking state equality after every
/// step. Ops reference arbitrary vertex ids; they are filtered to the id
/// space on the fly.
///
/// The flat engine's invariants are additionally re-validated immediately
/// after every mutating call (debug builds), *before* any state comparison,
/// so invariant breakage localizes to the op that caused it instead of
/// surfacing as a downstream observable mismatch.
///
/// `Induce` ops run through [`ActiveHypergraph::induced_by_into`] on a
/// *reused* spare engine (swapped with the active one), so the dirty-reuse
/// path — the one the SBL round loop exercises — is differentially tested
/// against the reference engine's plain `induced_by` after every kind of
/// preceding mutation.
fn replay(h: &Hypergraph, ops: &[Op]) {
    let mut flat = ActiveHypergraph::from_hypergraph(h);
    let mut spare = ActiveHypergraph::from_parts(Vec::new(), Vec::new());
    let mut reference = ReferenceActiveHypergraph::from_hypergraph(h);
    assert_same_state(&flat, &reference, "initial");
    let id_space = h.n_vertices();

    #[cfg(debug_assertions)]
    let validate = |flat: &ActiveHypergraph, ctx: &str| {
        let _ = ctx;
        flat.debug_validate();
    };
    #[cfg(not(debug_assertions))]
    let validate = |_flat: &ActiveHypergraph, _ctx: &str| {};

    for (i, op) in ops.iter().enumerate() {
        let ctx = format!("op {i} = {op:?}");
        match op {
            Op::DecideBlue(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                // (No validation between the kill and the shrink: edges
                // legitimately still mention the killed vertices there.)
                flat.kill_vertices(&vs);
                ActiveEngine::kill_vertices(&mut reference, &vs);
                assert_eq!(
                    flat.shrink_edges_by(&f, &vs),
                    ActiveEngine::shrink_edges_by(&mut reference, &f, &vs),
                    "{ctx}: emptied count"
                );
                validate(&flat, &ctx);
            }
            Op::DecideRed(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                assert_eq!(
                    flat.discard_edges_touching(&f, &vs),
                    ActiveEngine::discard_edges_touching(&mut reference, &f, &vs),
                    "{ctx}: discard count"
                );
                validate(&flat, &ctx);
                flat.kill_vertices(&vs);
                validate(&flat, &ctx);
                ActiveEngine::kill_vertices(&mut reference, &vs);
            }
            Op::RemoveDominated => {
                assert_eq!(
                    flat.remove_dominated_edges(),
                    ActiveEngine::remove_dominated_edges(&mut reference),
                    "{ctx}: dominated count"
                );
                validate(&flat, &ctx);
            }
            Op::RemoveSingletons => {
                assert_eq!(
                    flat.remove_singleton_edges(),
                    ActiveEngine::remove_singleton_edges(&mut reference),
                    "{ctx}: killed vertices"
                );
                validate(&flat, &ctx);
            }
            Op::Oracle(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                assert_eq!(
                    flat.contains_live_edge_within(&vs),
                    ActiveEngine::contains_live_edge_within(&mut reference, &vs),
                    "{ctx}: oracle answer"
                );
            }
            Op::Induce(vs) => {
                let vs: Vec<u32> = vs
                    .iter()
                    .copied()
                    .filter(|&v| (v as usize) < id_space)
                    .collect();
                let f = flags(id_space, &vs);
                // The allocating and the in-place derivations must agree
                // with each other as well as with the reference.
                let fresh = flat.induced_by(&f);
                flat.induced_by_into(&f, &vs, &mut spare);
                assert_eq!(
                    fresh.live_edges_owned(),
                    spare.live_edges_owned(),
                    "{ctx}: induced_by vs induced_by_into edges"
                );
                assert_eq!(
                    fresh.alive_vertices(),
                    spare.alive_vertices(),
                    "{ctx}: induced_by vs induced_by_into alive set"
                );
                std::mem::swap(&mut flat, &mut spare);
                validate(&flat, &ctx);
                reference = ActiveEngine::induced_by(&reference, &f);
            }
        }
        assert_same_state(&flat, &reference, &ctx);
    }
}

/// A random edit script in the shape the algorithms actually produce: blue
/// batches are trimmed, red batches are discarded, cleanup ops interleave.
fn random_script<R: Rng>(rng: &mut R, id_space: usize, len: usize) -> Vec<Op> {
    let mut ops = Vec::with_capacity(len);
    let all: Vec<u32> = (0..id_space as u32).collect();
    let subset = |rng: &mut R, max: usize| -> Vec<u32> {
        let k = rng.gen_range(0..=max.min(id_space));
        let mut pool = all.clone();
        pool.shuffle(rng);
        pool.truncate(k);
        pool.sort_unstable();
        pool
    };
    for _ in 0..len {
        let op = match rng.gen_range(0..6u32) {
            0 => Op::DecideBlue(subset(rng, 4)),
            1 => Op::DecideRed(subset(rng, 4)),
            2 => Op::RemoveDominated,
            3 => Op::RemoveSingletons,
            4 => Op::Oracle(subset(rng, 8)),
            _ => Op::Induce(subset(rng, id_space)),
        };
        ops.push(op);
    }
    ops
}

/// Every generator family × random edit scripts.
#[test]
fn edit_scripts_across_generator_families() {
    for seed in 0..4u64 {
        let mut gen_rng = ChaCha8Rng::seed_from_u64(0xD1FF + seed);
        let families: Vec<(&str, Hypergraph)> = vec![
            ("d_uniform", generate::d_uniform(&mut gen_rng, 40, 80, 3)),
            (
                "mixed_dimension",
                generate::mixed_dimension(&mut gen_rng, 40, 70, &[2, 3, 4, 5]),
            ),
            ("linear", generate::linear(&mut gen_rng, 40, 30, 3)),
            (
                "paper_regime",
                generate::paper_regime(&mut gen_rng, 60, 20, 10),
            ),
            (
                "planted",
                generate::planted_independent(&mut gen_rng, 40, 80, 3, 12),
            ),
            ("sunflower", generate::special::sunflower(6, 4, 2)),
            (
                "giant_edge_with_stars",
                generate::special::giant_edge_with_stars(12, 8),
            ),
            ("all_singletons", generate::special::all_singletons(9)),
            ("complete_graph", generate::special::complete_graph(9)),
            (
                "edgeless",
                hypergraph::builder::hypergraph_from_edges::<Vec<u32>>(7, vec![]),
            ),
        ];
        for (family, h) in families {
            let mut rng = ChaCha8Rng::seed_from_u64(0x5C81 + seed);
            let ops = random_script(&mut rng, h.n_vertices(), 12);
            replay(&h, &ops);
            let _ = family;
        }
    }
}

/// Singleton cascades and duplicate live sets: hand-picked worst cases for
/// the frontier/status bookkeeping.
#[test]
fn handpicked_scripts() {
    // Duplicate live sets after trimming.
    let h = hypergraph::builder::hypergraph_from_edges(
        6,
        vec![vec![0, 1, 2], vec![0, 1, 3], vec![2, 3], vec![4, 5]],
    );
    replay(
        &h,
        &[
            Op::DecideBlue(vec![2, 3]),
            Op::RemoveDominated,
            Op::RemoveSingletons,
            Op::Oracle(vec![0, 1]),
        ],
    );

    // A singleton sweep that discards almost everything.
    let h = hypergraph::builder::hypergraph_from_edges(
        5,
        vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![3, 4]],
    );
    replay(
        &h,
        &[
            Op::RemoveSingletons,
            Op::RemoveDominated,
            Op::DecideRed(vec![3]),
        ],
    );

    // Induce twice, then keep editing the nested sub-instance.
    let h = generate::special::sunflower(5, 4, 1);
    replay(
        &h,
        &[
            Op::Induce((0..12).collect()),
            Op::DecideBlue(vec![0]),
            Op::Induce((0..8).collect()),
            Op::RemoveSingletons,
            Op::RemoveDominated,
        ],
    );
}

/// `induced_by_into` (compact incidence, buffer reuse) vs `induced_by`
/// (allocating full scan) vs the reference engine, across every generator
/// family — including the *behaviour* of the derived sub-engines under a
/// follow-up edit script, which is what exercises the compact incidence
/// index the sub carries.
#[test]
fn induced_by_into_agrees_across_generator_families() {
    let mut spare = ActiveHypergraph::from_parts(Vec::new(), Vec::new());
    for seed in 0..4u64 {
        let mut gen_rng = ChaCha8Rng::seed_from_u64(0x1D0C + seed);
        let families: Vec<Hypergraph> = vec![
            generate::d_uniform(&mut gen_rng, 40, 80, 3),
            generate::mixed_dimension(&mut gen_rng, 40, 70, &[2, 3, 4, 5]),
            generate::linear(&mut gen_rng, 40, 30, 3),
            generate::paper_regime(&mut gen_rng, 60, 20, 10),
            generate::planted_independent(&mut gen_rng, 40, 80, 3, 12),
            generate::special::sunflower(6, 4, 2),
            generate::special::giant_edge_with_stars(12, 8),
            generate::special::all_singletons(9),
            generate::special::complete_graph(9),
            hypergraph::builder::hypergraph_from_edges::<Vec<u32>>(7, vec![]),
        ];
        for h in families {
            let flat = ActiveHypergraph::from_hypergraph(&h);
            let reference = ReferenceActiveHypergraph::from_hypergraph(&h);
            let mut rng = ChaCha8Rng::seed_from_u64(0xF00D + seed);
            // Three mark densities: sparse (incidence-directed), dense
            // (falls back to the scan), empty.
            for density in [0.15f64, 0.9, 0.0] {
                let mut vs = Vec::new();
                for v in 0..h.n_vertices() as u32 {
                    if rng.gen_bool(density) {
                        vs.push(v);
                    }
                }
                let f = flags(h.n_vertices(), &vs);
                let scan_sub = flat.induced_by(&f);
                flat.induced_by_into(&f, &vs, &mut spare);
                let ref_sub = ActiveEngine::induced_by(&reference, &f);
                assert_same_state(&spare, &ref_sub, "induced (into vs reference)");
                assert_same_state(&scan_sub, &ref_sub, "induced (scan vs reference)");
                // Drive all three subs through the same follow-up script;
                // the compact-incidence sub must keep agreeing.
                let mut a = scan_sub;
                let mut b = std::mem::replace(
                    &mut spare,
                    ActiveHypergraph::from_parts(Vec::new(), Vec::new()),
                );
                let mut r = ref_sub;
                let ops = random_script(&mut rng, h.n_vertices(), 6);
                for (i, op) in ops.iter().enumerate() {
                    let ctx = format!("sub op {i} = {op:?}");
                    let mut r2 = r.clone();
                    apply_op(&mut a, &mut r, op, h.n_vertices());
                    apply_op(&mut b, &mut r2, op, h.n_vertices());
                    assert_same_state(&a, &r, &ctx);
                    assert_same_state(&b, &r, &ctx);
                }
                spare = b;
            }
        }
    }
}

/// Applies one (non-induce) op to a flat + reference engine pair without
/// asserting; used by the three-way induced-sub comparison.
fn apply_op(
    flat: &mut ActiveHypergraph,
    reference: &mut ReferenceActiveHypergraph,
    op: &Op,
    id_space: usize,
) {
    match op {
        Op::DecideBlue(vs) => {
            let vs: Vec<u32> = vs
                .iter()
                .copied()
                .filter(|&v| (v as usize) < id_space)
                .collect();
            let f = flags(id_space, &vs);
            flat.kill_vertices(&vs);
            ActiveEngine::kill_vertices(reference, &vs);
            assert_eq!(
                flat.shrink_edges_by(&f, &vs),
                ActiveEngine::shrink_edges_by(reference, &f, &vs)
            );
        }
        Op::DecideRed(vs) => {
            let vs: Vec<u32> = vs
                .iter()
                .copied()
                .filter(|&v| (v as usize) < id_space)
                .collect();
            let f = flags(id_space, &vs);
            assert_eq!(
                flat.discard_edges_touching(&f, &vs),
                ActiveEngine::discard_edges_touching(reference, &f, &vs)
            );
            flat.kill_vertices(&vs);
            ActiveEngine::kill_vertices(reference, &vs);
        }
        Op::RemoveDominated => {
            assert_eq!(
                flat.remove_dominated_edges(),
                ActiveEngine::remove_dominated_edges(reference)
            );
        }
        Op::RemoveSingletons => {
            assert_eq!(
                flat.remove_singleton_edges(),
                ActiveEngine::remove_singleton_edges(reference)
            );
        }
        Op::Oracle(vs) => {
            let vs: Vec<u32> = vs
                .iter()
                .copied()
                .filter(|&v| (v as usize) < id_space)
                .collect();
            assert_eq!(
                flat.contains_live_edge_within(&vs),
                ActiveEngine::contains_live_edge_within(reference, &vs)
            );
        }
        Op::Induce(vs) => {
            let vs: Vec<u32> = vs
                .iter()
                .copied()
                .filter(|&v| (v as usize) < id_space)
                .collect();
            let f = flags(id_space, &vs);
            *flat = flat.induced_by(&f);
            *reference = ActiveEngine::induced_by(reference, &f);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary hypergraphs × arbitrary scripts: the engines agree on every
    /// observable after every operation.
    #[test]
    fn arbitrary_scripts_agree(
        edges in prop::collection::vec(
            prop::collection::btree_set(0u32..20, 1..=5usize),
            0..30,
        ),
        script_seed in any::<u64>(),
        script_len in 1usize..16,
    ) {
        let edges: Vec<Vec<u32>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let h = hypergraph::builder::hypergraph_from_edges(20, edges);
        let mut rng = ChaCha8Rng::seed_from_u64(script_seed);
        let ops = random_script(&mut rng, h.n_vertices(), script_len);
        replay(&h, &ops);
    }

    /// `induced_by_into` into a dirty reused engine matches `induced_by` and
    /// the reference for arbitrary hypergraphs and arbitrary mark sets.
    #[test]
    fn induced_by_into_matches_on_arbitrary_instances(
        edges in prop::collection::vec(
            prop::collection::btree_set(0u32..24, 1..=5usize),
            0..40,
        ),
        marks in prop::collection::btree_set(0u32..24, 0..=24usize),
        dirty_marks in prop::collection::btree_set(0u32..24, 0..=12usize),
    ) {
        let edges: Vec<Vec<u32>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let h = hypergraph::builder::hypergraph_from_edges(24, edges);
        let flat = ActiveHypergraph::from_hypergraph(&h);
        let reference = ReferenceActiveHypergraph::from_hypergraph(&h);
        // Dirty the reused engine with an unrelated derivation first.
        let dirty: Vec<u32> = dirty_marks.into_iter().collect();
        let mut out = ActiveHypergraph::from_parts(Vec::new(), Vec::new());
        flat.induced_by_into(&flags(24, &dirty), &dirty, &mut out);
        // Now derive the instance under test into the same engine.
        let vs: Vec<u32> = marks.into_iter().collect();
        let f = flags(24, &vs);
        flat.induced_by_into(&f, &vs, &mut out);
        let scan = flat.induced_by(&f);
        let ref_sub = ActiveEngine::induced_by(&reference, &f);
        assert_same_state(&out, &ref_sub, "into vs reference");
        assert_same_state(&scan, &ref_sub, "scan vs reference");
    }
}
