//! The `HGCSR 1` binary snapshot format: round-trips across every generator
//! family, the hostile-file sweeps (truncate at every byte, flip every bit —
//! every corruption must surface as a structured error, never a panic, a
//! mis-parse, or an unsafe path), and mapped-vs-owned equivalence.

use hypergraph::io::{csr_from_bytes, csr_to_bytes, open_mapped, read_csr, write_csr, ParseError};
use hypergraph::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("hgcsr_test_{}_{}", std::process::id(), tag));
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

/// One representative per generator family, seeded, covering every code path
/// of the arena (empty, edgeless, singleton edges, uniform, mixed, linear,
/// planted, paper-regime, and the special shapes).
fn family_zoo() -> Vec<(&'static str, Hypergraph)> {
    let mut rng = ChaCha8Rng::seed_from_u64(0xC5A0);
    vec![
        ("empty", HypergraphBuilder::new(0).build()),
        ("edgeless", HypergraphBuilder::new(9).build()),
        ("d_uniform", generate::d_uniform(&mut rng, 60, 120, 3)),
        (
            "mixed_dimension",
            generate::mixed_dimension(&mut rng, 50, 80, &[2, 3, 5]),
        ),
        ("linear", generate::linear(&mut rng, 64, 90, 3)),
        ("paper_regime", generate::paper_regime(&mut rng, 128, 30, 8)),
        (
            "planted",
            generate::planted_independent(&mut rng, 40, 70, 3, 12),
        ),
        ("complete_graph", generate::special::complete_graph(8)),
        ("path", generate::special::path(12)),
        ("cycle", generate::special::cycle(10)),
        ("star", generate::special::star(9)),
        (
            "giant_edge_with_stars",
            generate::special::giant_edge_with_stars(5, 4),
        ),
        ("all_singletons", generate::special::all_singletons(7)),
        ("sunflower", generate::special::sunflower(4, 3, 2)),
    ]
}

#[test]
fn every_family_round_trips_owned_and_mapped() {
    let dir = temp_dir("families");
    for (name, h) in family_zoo() {
        let bytes = csr_to_bytes(&h);
        let owned = csr_from_bytes(&bytes).unwrap_or_else(|e| panic!("{name}: {e}"));
        assert_eq!(owned, h, "{name}: owned decode");
        assert_eq!(owned.storage_kind(), "owned", "{name}");

        let path = dir.join(format!("{name}.hgcsr"));
        write_csr(&h, &path).unwrap();
        let reread = read_csr(&path).unwrap();
        assert_eq!(reread, h, "{name}: file round trip");

        let mapped = open_mapped(&path).unwrap();
        assert_eq!(mapped, h, "{name}: mapped equals original");
        if cfg!(all(
            unix,
            target_pointer_width = "64",
            target_endian = "little"
        )) {
            assert!(mapped.is_mapped(), "{name}: expected the zero-copy tier");
            assert_eq!(mapped.storage_kind(), "mapped", "{name}");
        }
        assert_eq!(mapped.bytes_resident(), h.bytes_resident(), "{name}");
        let stats = HypergraphStats::compute(&mapped);
        assert_eq!(stats.storage, mapped.storage_kind(), "{name}");
        assert_eq!(stats.bytes_resident, mapped.bytes_resident(), "{name}");

        // Every accessor answers identically across tiers.
        assert_eq!(mapped.n_vertices(), h.n_vertices());
        assert_eq!(mapped.n_edges(), h.n_edges());
        assert_eq!(mapped.dimension(), h.dimension());
        for e in 0..h.n_edges() as u32 {
            assert_eq!(mapped.edge(e), h.edge(e), "{name}: edge {e}");
        }
        for v in 0..h.n_vertices() as u32 {
            assert_eq!(
                mapped.incident_edges(v),
                h.incident_edges(v),
                "{name}: vertex {v}"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn engine_construction_from_mapped_matches_owned() {
    let dir = temp_dir("engine");
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let h = generate::paper_regime(&mut rng, 200, 40, 8);
    let path = dir.join("engine.hgcsr");
    write_csr(&h, &path).unwrap();
    let mapped = open_mapped(&path).unwrap();
    let from_owned = ActiveHypergraph::from_hypergraph(&h);
    let from_mapped = ActiveHypergraph::from_hypergraph(&mapped);
    assert_eq!(from_owned.n_alive(), from_mapped.n_alive());
    assert_eq!(from_owned.n_edges(), from_mapped.n_edges());
    assert_eq!(
        from_owned.live_edges_owned(),
        from_mapped.live_edges_owned()
    );
    let _ = std::fs::remove_dir_all(&dir);
}

// A snapshot has no recoverable prefix: truncation at *every* byte boundary
// must reject the file — through both the owned decoder and the mapped
// opener — and the full file must still parse.
#[test]
fn truncated_at_every_byte_is_rejected_never_mis_parsed() {
    let dir = temp_dir("truncate");
    let h = hypergraph::builder::hypergraph_from_edges(
        6,
        vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5]],
    );
    let bytes = csr_to_bytes(&h);
    let path = dir.join("cut.hgcsr");
    for cut in 0..bytes.len() {
        match csr_from_bytes(&bytes[..cut]) {
            Err(ParseError::BadCsrSnapshot(_)) => {}
            other => panic!("cut {cut}: expected BadCsrSnapshot, got {other:?}"),
        }
        // The mapped opener sees the identical rejection (through a real
        // file and mapping).
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(open_mapped(&path).is_err(), "cut {cut}: mapped open");
    }
    assert_eq!(csr_from_bytes(&bytes).unwrap(), h);
    let _ = std::fs::remove_dir_all(&dir);
}

// Flip every bit of every byte: header fields and stored checksums are
// covered by the header checksum, payload words by the word checksum, and
// alignment padding by the explicit zero check — so *no* single-bit
// corruption may survive, panic, or change the parsed graph.
#[test]
fn bit_flips_anywhere_are_rejected() {
    let h =
        hypergraph::builder::hypergraph_from_edges(5, vec![vec![0, 1], vec![1, 2, 3], vec![0, 4]]);
    let good = csr_to_bytes(&h);
    for i in 0..good.len() {
        for bit in 0..8 {
            let mut bytes = good.clone();
            bytes[i] ^= 1 << bit;
            match csr_from_bytes(&bytes) {
                Err(ParseError::BadCsrSnapshot(_)) => {}
                Ok(_) => panic!("flip of bit {bit} at byte {i} parsed"),
                Err(other) => panic!("flip of bit {bit} at byte {i}: {other:?}"),
            }
        }
    }
}

// Hostile headers: a few bytes must never demand a huge allocation, panic,
// or index out of bounds — including sizes that would overflow the layout
// arithmetic and internally inconsistent (but checksum-correct) arrays.
#[test]
fn hostile_headers_and_inconsistent_arrays_are_structured_errors() {
    let h = hypergraph::builder::hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
    let good = csr_to_bytes(&h);

    // Re-checksum a doctored header so only the *semantic* check can fire.
    let cook = |mutate: &dyn Fn(&mut Vec<u8>)| -> Vec<u8> {
        let mut bytes = good.clone();
        mutate(&mut bytes);
        let mut hasher = 0xcbf2_9ce4_8422_2325u64;
        for &b in &bytes[..48] {
            hasher ^= b as u64;
            hasher = hasher.wrapping_mul(0x0000_0100_0000_01b3);
        }
        bytes[48..56].copy_from_slice(&hasher.to_le_bytes());
        bytes
    };
    let set_field = |bytes: &mut Vec<u8>, field: usize, value: u64| {
        bytes[8 * field..8 * field + 8].copy_from_slice(&value.to_le_bytes());
    };

    for (what, hostile) in [
        ("huge n", cook(&|b| set_field(b, 1, u64::MAX))),
        ("huge m", cook(&|b| set_field(b, 2, u64::MAX / 2))),
        ("huge total", cook(&|b| set_field(b, 3, u64::MAX / 8))),
        ("dim beyond total", cook(&|b| set_field(b, 4, 1 << 40))),
        ("n off by one", cook(&|b| set_field(b, 1, 5))),
        ("m off by one", cook(&|b| set_field(b, 2, 3))),
        ("wrong dim", cook(&|b| set_field(b, 4, 2))),
        ("not a snapshot", b"HGWAL 1 0 0 0 0 0 0\n".to_vec()),
        ("empty", Vec::new()),
    ] {
        match csr_from_bytes(&hostile) {
            Err(ParseError::BadCsrSnapshot(_)) | Err(ParseError::BadWalHeader(_)) => {}
            other => panic!("{what}: expected a structured error, got {other:?}"),
        }
    }

    // Structurally inconsistent payloads with *correct* checksums: lie about
    // an edge boundary by editing edge_offsets[1], then re-checksum
    // everything so only the structural validation can reject it.
    let mut bytes = good.clone();
    let eo_off = 64;
    let first_end = u32::from_le_bytes(bytes[eo_off + 4..eo_off + 8].try_into().unwrap());
    bytes[eo_off + 4..eo_off + 8].copy_from_slice(&(first_end - 1).to_le_bytes());
    rehash(&mut bytes);
    match csr_from_bytes(&bytes) {
        Err(ParseError::BadCsrSnapshot(_)) => {}
        other => panic!("structural lie: expected BadCsrSnapshot, got {other:?}"),
    }

    // And an incidence index that is internally consistent but not the
    // canonical counting-sort: swap the two incident entries of a
    // degree-2 vertex, re-checksum, and expect the replay check to fire.
    let h2 = hypergraph::builder::hypergraph_from_edges(3, vec![vec![0, 1], vec![1, 2]]);
    let mut bytes = csr_to_bytes(&h2);
    let (inc_off, _) = incident_array(&bytes);
    // Vertex 1 is in both edges; its incidence list is [0, 1] — swap it.
    let a = inc_off + 4; // incident[1] (vertex 1's first slot)
    let w0 = u32::from_le_bytes(bytes[a..a + 4].try_into().unwrap());
    let w1 = u32::from_le_bytes(bytes[a + 4..a + 8].try_into().unwrap());
    bytes[a..a + 4].copy_from_slice(&w1.to_le_bytes());
    bytes[a + 4..a + 8].copy_from_slice(&w0.to_le_bytes());
    rehash(&mut bytes);
    match csr_from_bytes(&bytes) {
        Err(ParseError::BadCsrSnapshot(_)) => {}
        other => panic!("swapped incidence: expected BadCsrSnapshot, got {other:?}"),
    }
}

/// `(byte offset, words)` of the fourth array (`incident`) in an HGCSR file
/// — test helper mirroring the documented layout.
fn incident_array(bytes: &[u8]) -> (usize, usize) {
    let field = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
    let (n, m, total) = (field(1) as usize, field(2) as usize, field(3) as usize);
    let align64 = |x: usize| (x + 63) & !63;
    let ev = align64(64 + 4 * (m + 1));
    let io_ = align64(ev + 4 * total);
    (align64(io_ + 4 * (n + 1)), total)
}

/// Recomputes both checksums of a doctored HGCSR byte image so that only
/// semantic validation can reject it.
fn rehash(bytes: &mut [u8]) {
    let field = |bytes: &[u8], i: usize| {
        u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap()) as usize
    };
    let (n, m, total) = (field(bytes, 1), field(bytes, 2), field(bytes, 3));
    let align64 = |x: usize| (x + 63) & !63;
    let mut offs = Vec::new();
    let mut cursor = 64usize;
    for words in [m + 1, total, n + 1, total] {
        offs.push((cursor, words));
        cursor = align64(cursor + 4 * words);
    }
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for (off, words) in offs {
        for w in 0..words {
            let word = u32::from_le_bytes(bytes[off + 4 * w..off + 4 * w + 4].try_into().unwrap());
            hash ^= word as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    bytes[40..48].copy_from_slice(&hash.to_le_bytes());
    let mut hdr = 0xcbf2_9ce4_8422_2325u64;
    for &b in &bytes[..48] {
        hdr ^= b as u64;
        hdr = hdr.wrapping_mul(0x0000_0100_0000_01b3);
    }
    bytes[48..56].copy_from_slice(&hdr.to_le_bytes());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Binary round-trip is the identity on arbitrary edge lists, and the
    /// mapped open agrees through a real file.
    #[test]
    fn csr_round_trip_is_identity(edges in prop::collection::vec(
        prop::collection::btree_set(0u32..20, 1..=5),
        0..=30,
    )) {
        let edges: Vec<Vec<u32>> =
            edges.into_iter().map(|s| s.into_iter().collect()).collect();
        let h = hypergraph::builder::hypergraph_from_edges(20, edges);
        let bytes = csr_to_bytes(&h);
        prop_assert_eq!(&csr_from_bytes(&bytes).unwrap(), &h);
        // And byte-stability: re-encoding the decode is the same file.
        prop_assert_eq!(csr_to_bytes(&csr_from_bytes(&bytes).unwrap()), bytes);
    }
}
