//! Property-based tests for the hypergraph substrate.

use hypergraph::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: a random edge list over `n` vertices with edges of size 1..=max_d.
fn edges_strategy(
    n: usize,
    max_edges: usize,
    max_d: usize,
) -> impl Strategy<Value = Vec<Vec<u32>>> {
    prop::collection::vec(
        prop::collection::btree_set(0u32..(n as u32), 1..=max_d.min(n)),
        0..=max_edges,
    )
    .prop_map(|edges| edges.into_iter().map(|s| s.into_iter().collect()).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Building a hypergraph never loses or invents vertices, and the
    /// dimension equals the largest edge.
    #[test]
    fn builder_preserves_shape(edges in edges_strategy(24, 40, 6)) {
        let n = 24usize;
        let h = hypergraph::builder::hypergraph_from_edges(n, edges.clone());
        prop_assert_eq!(h.n_vertices(), n);
        let mut uniq: std::collections::BTreeSet<Vec<u32>> = std::collections::BTreeSet::new();
        for e in &edges {
            if !e.is_empty() {
                uniq.insert(e.clone());
            }
        }
        prop_assert_eq!(h.n_edges(), uniq.len());
        let expected_dim = uniq.iter().map(|e| e.len()).max().unwrap_or(0);
        prop_assert_eq!(h.dimension(), expected_dim);
    }

    /// Text-format round-trip is the identity.
    #[test]
    fn io_round_trip(edges in edges_strategy(16, 25, 5)) {
        let h = hypergraph::builder::hypergraph_from_edges(16, edges);
        let s = hypergraph::io::to_string(&h);
        let back = hypergraph::io::from_str(&s).unwrap();
        prop_assert_eq!(h, back);
    }

    /// The incidence index agrees with a brute-force recount.
    #[test]
    fn incidence_matches_bruteforce(edges in edges_strategy(20, 30, 5)) {
        let h = hypergraph::builder::hypergraph_from_edges(20, edges);
        for v in 0..20u32 {
            let brute: Vec<u32> = h
                .edges()
                .enumerate()
                .filter(|(_, e)| e.contains(&v))
                .map(|(i, _)| i as u32)
                .collect();
            prop_assert_eq!(h.incident_edges(v), brute.as_slice());
        }
    }

    /// `is_independent` agrees with the definition applied edge by edge.
    #[test]
    fn independence_definition(
        edges in edges_strategy(18, 30, 4),
        set in prop::collection::btree_set(0u32..18, 0..18)
    ) {
        let h = hypergraph::builder::hypergraph_from_edges(18, edges);
        let set: Vec<u32> = set.into_iter().collect();
        let brute = !h.edges().any(|e| e.iter().all(|v| set.contains(v)));
        prop_assert_eq!(h.is_independent(&set), brute);
    }

    /// A maximal independent set reported by the checker really is one:
    /// independent and not extendable.
    #[test]
    fn maximality_definition(
        edges in edges_strategy(14, 20, 4),
        set in prop::collection::btree_set(0u32..14, 0..14)
    ) {
        let h = hypergraph::builder::hypergraph_from_edges(14, edges);
        let set: Vec<u32> = set.into_iter().collect();
        let is_mis = h.is_maximal_independent(&set);
        if is_mis {
            prop_assert!(h.is_independent(&set));
            for v in 0..14u32 {
                if set.contains(&v) { continue; }
                let mut bigger = set.clone();
                bigger.push(v);
                prop_assert!(!h.is_independent(&bigger),
                    "adding vertex {} kept the set independent, so it was not maximal", v);
            }
        }
    }

    /// Degree table counts match brute force on small instances.
    #[test]
    fn degree_table_matches_bruteforce(edges in edges_strategy(12, 15, 4)) {
        let h = hypergraph::builder::hypergraph_from_edges(12, edges);
        let table = degree::DegreeTable::build(&h);
        // Check every singleton and every pair.
        for a in 0..12u32 {
            for j in 1..=3usize {
                let brute = h.edges()
                    .filter(|e| e.contains(&a) && e.len() == 1 + j)
                    .count() as u64;
                prop_assert_eq!(table.n_j(&[a], j), brute);
            }
            for b in (a + 1)..12u32 {
                for j in 1..=2usize {
                    let brute = h.edges()
                        .filter(|e| e.contains(&a) && e.contains(&b) && e.len() == 2 + j)
                        .count() as u64;
                    prop_assert_eq!(table.n_j(&[a, b], j), brute);
                }
            }
        }
    }

    /// Dominated-edge removal keeps exactly the minimal edges, and does not
    /// change which vertex sets are independent.
    #[test]
    fn dominated_removal_preserves_independence(
        edges in edges_strategy(14, 25, 5),
        set in prop::collection::btree_set(0u32..14, 0..14)
    ) {
        let h = hypergraph::builder::hypergraph_from_edges(14, edges);
        let mut active = ActiveHypergraph::from_hypergraph(&h);
        active.remove_dominated_edges();
        active.debug_validate();
        let set: Vec<u32> = set.into_iter().collect();
        // A set is independent in H iff it is independent in the reduced
        // hypergraph: removing an edge that contains another edge never
        // changes independence (the smaller edge still witnesses it).
        prop_assert_eq!(
            h.is_independent(&set),
            active.is_independent_in_view(&set)
        );
        // No remaining edge strictly contains another remaining edge.
        let remaining = active.live_edges_owned();
        for (i, e) in remaining.iter().enumerate() {
            for (j, f) in remaining.iter().enumerate() {
                if i != j && e.len() < f.len() {
                    let contained = e.iter().all(|v| f.contains(v));
                    prop_assert!(!contained, "edge {:?} still dominated by {:?}", f, e);
                }
            }
        }
    }

    /// Compacting an active hypergraph preserves edge structure under the
    /// relabelling map.
    #[test]
    fn compact_is_faithful(edges in edges_strategy(16, 20, 4), kill in prop::collection::btree_set(0u32..16, 0..8)) {
        let h = hypergraph::builder::hypergraph_from_edges(16, edges);
        let mut active = ActiveHypergraph::from_hypergraph(&h);
        let mut flag = vec![false; 16];
        for &v in &kill { flag[v as usize] = true; }
        let kill: Vec<u32> = kill.into_iter().collect();
        active.discard_edges_touching(&flag, &kill);
        active.kill_vertices(&kill);
        let (compacted, new_to_old) = active.compact();
        prop_assert_eq!(compacted.n_vertices(), active.n_alive());
        prop_assert_eq!(compacted.n_edges(), active.n_edges());
        for (ce, oe) in compacted.edges().zip(active.live_edges_owned()) {
            let mapped: Vec<u32> = ce.iter().map(|&v| new_to_old[v as usize]).collect();
            prop_assert_eq!(mapped, oe);
        }
    }
}

/// Generators are deterministic for a fixed seed (not a proptest: exercises
/// the ChaCha seeding path used by every experiment).
#[test]
fn generators_are_seed_deterministic() {
    let mk = |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        generate::paper_regime(&mut rng, 300, 40, 10)
    };
    assert_eq!(mk(11), mk(11));
    assert_ne!(mk(11), mk(12));
}

/// The planted generator's certificate survives the full pipeline of active
/// operations used by SBL.
#[test]
fn planted_certificate_is_stable_under_updates() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let h = generate::planted_independent(&mut rng, 80, 200, 3, 30);
    let planted: Vec<u32> = (0..30).collect();
    assert!(h.is_independent(&planted));
    let mut active = ActiveHypergraph::from_hypergraph(&h);
    active.remove_dominated_edges();
    assert!(active.is_independent_in_view(&planted));
}
