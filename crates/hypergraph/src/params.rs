//! The paper's parameter formulas.
//!
//! The SBL analysis (Section 2.2) fixes
//!
//! * `α = 1 / log⁽³⁾ n` and the sampling probability `p = 1 / n^α = n^{-α}`,
//! * `β = log⁽²⁾ n / (8 (log⁽³⁾ n)²)` and the edge bound `m ≤ n^β`,
//! * the dimension bound `d = log⁽²⁾ n / (4 log⁽³⁾ n)` under which the BL
//!   subroutine is invoked (Theorem 2),
//! * the while-loop exit threshold `|V| < 1/p² = n^{2α} = n^{2/log⁽³⁾ n}`,
//! * the round bound `r = 2 log n / p`,
//!
//! where `log⁽²⁾ n = log log n` and `log⁽³⁾ n = log log log n` (all base-2
//! here; the paper leaves the base unspecified and notes "there is some
//! flexibility" in the parameter choice).
//!
//! These formulas only bite for astronomically large `n` (e.g. `log⁽³⁾ n ≥ 2`
//! needs `n ≥ 2^16 = 65536`); for the `n` reachable in experiments the derived
//! `d` would be `< 1`. The functions therefore return the *raw* real-valued
//! quantities and clamped "practical" variants side by side, and the
//! experiments state explicitly which regime they use (see DESIGN.md §5).

/// Base-2 logarithm, returning `None` for inputs `< 1`.
pub fn log2_checked(x: f64) -> Option<f64> {
    if x >= 1.0 {
        Some(x.log2())
    } else {
        None
    }
}

/// Iterated base-2 logarithm `log⁽ᵏ⁾ n` (k-fold composition), or `None` if any
/// intermediate value drops below 1 (so the next log would be negative or
/// undefined).
pub fn iterated_log2(n: f64, k: u32) -> Option<f64> {
    let mut x = n;
    for _ in 0..k {
        x = log2_checked(x)?;
    }
    Some(x)
}

/// `log log n` (base 2), `None` when undefined or non-positive in a way that
/// would break the paper's formulas (i.e. when `n ≤ 2`).
pub fn log2_2(n: f64) -> Option<f64> {
    iterated_log2(n, 2)
}

/// `log log log n` (base 2), `None` when `n ≤ 4` (so the value would be ≤ 0
/// or undefined).
pub fn log2_3(n: f64) -> Option<f64> {
    let v = iterated_log2(n, 3)?;
    if v > 0.0 {
        Some(v)
    } else {
        None
    }
}

/// The SBL parameter set for a hypergraph on `n` vertices, computed exactly as
/// in Section 2.2 of the paper.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SblParams {
    /// Number of vertices the parameters were derived from.
    pub n: usize,
    /// `α = 1 / log⁽³⁾ n`.
    pub alpha: f64,
    /// Sampling probability `p = n^{-α}`.
    pub p: f64,
    /// `β = log⁽²⁾ n / (8 (log⁽³⁾ n)²)`; the paper requires `m ≤ n^β`.
    pub beta: f64,
    /// Edge-count bound `n^β`.
    pub m_bound: f64,
    /// Dimension bound `d = log⁽²⁾ n / (4 log⁽³⁾ n)` for the BL subroutine.
    pub d_bound: f64,
    /// While-loop exit threshold `1/p²`: SBL switches to KUW once `|V| < 1/p²`.
    pub tail_threshold: f64,
    /// Round bound `r = 2 log n / p` used in the failure analysis.
    pub round_bound: f64,
}

impl SblParams {
    /// Computes the exact paper parameters for `n` vertices.
    ///
    /// Returns `None` when `n ≤ 4`, where `log⁽³⁾ n` is not positive and the
    /// formulas are undefined. Callers that want to run SBL on small inputs
    /// should use [`SblParams::practical`] instead.
    pub fn exact(n: usize) -> Option<Self> {
        let nf = n as f64;
        let l1 = log2_checked(nf)?;
        let l2 = log2_2(nf)?;
        let l3 = log2_3(nf)?;
        let alpha = 1.0 / l3;
        let p = nf.powf(-alpha);
        let beta = l2 / (8.0 * l3 * l3);
        Some(SblParams {
            n,
            alpha,
            p,
            beta,
            m_bound: nf.powf(beta),
            d_bound: l2 / (4.0 * l3),
            tail_threshold: 1.0 / (p * p),
            round_bound: 2.0 * l1 / p,
        })
    }

    /// A practical parameterisation that follows the paper's *shape* but is
    /// usable at experiment scale: the sampling probability and dimension
    /// bound are clamped so that the algorithm makes progress on small `n`.
    ///
    /// * `p` is clamped to at least `min_p` (default 0.05 via
    ///   [`SblParams::practical_default`]) so a round marks some vertices;
    /// * `d` is clamped to at least 2 (a dimension-1 sample is trivial) and at
    ///   most the hypergraph dimension by the caller;
    /// * the tail threshold is recomputed from the clamped `p`.
    pub fn practical(n: usize, min_p: f64, min_d: f64) -> Self {
        let nf = (n.max(2)) as f64;
        let l1 = nf.log2().max(1.0);
        let l2 = l1.log2().max(1.0);
        let l3 = l2.log2().max(1.0);
        let alpha = 1.0 / l3;
        let p = nf.powf(-alpha).max(min_p).min(1.0);
        let beta = l2 / (8.0 * l3 * l3);
        let d_bound = (l2 / (4.0 * l3)).max(min_d);
        SblParams {
            n,
            alpha,
            p,
            beta,
            m_bound: nf.powf(beta),
            d_bound,
            tail_threshold: (1.0 / (p * p)).max(4.0),
            round_bound: 2.0 * l1 / p,
        }
    }

    /// [`SblParams::practical`] with the default clamps used throughout the
    /// experiments (`min_p = 0.05`, `min_d = 3`).
    pub fn practical_default(n: usize) -> Self {
        Self::practical(n, 0.05, 3.0)
    }

    /// The integer dimension cap the SBL driver passes to BL: `⌊d_bound⌋`,
    /// but never below 1.
    pub fn d_cap(&self) -> usize {
        (self.d_bound.floor() as usize).max(1)
    }

    /// Whether a hypergraph with `m` edges satisfies the paper's edge-count
    /// requirement `m ≤ n^β`.
    pub fn admits_edge_count(&self, m: usize) -> bool {
        (m as f64) <= self.m_bound
    }
}

/// The dimension bound of Theorem 2: `d ≤ log⁽²⁾ n / (4 log⁽³⁾ n)`.
///
/// Returns `None` when the formula is undefined (`n ≤ 4`).
pub fn theorem2_dimension_bound(n: usize) -> Option<f64> {
    let l2 = log2_2(n as f64)?;
    let l3 = log2_3(n as f64)?;
    Some(l2 / (4.0 * l3))
}

/// The paper's headline edge-count bound `n^β` with
/// `β = log⁽²⁾ n / (8 (log⁽³⁾ n)²)`. `None` when undefined.
pub fn theorem1_edge_bound(n: usize) -> Option<f64> {
    let nf = n as f64;
    let l2 = log2_2(nf)?;
    let l3 = log2_3(nf)?;
    Some(nf.powf(l2 / (8.0 * l3 * l3)))
}

/// The smallest `n` for which the exact paper formulas are defined
/// (`log⁽³⁾ n > 0`, i.e. `n > 2^2 = 4`, with strict positivity needing
/// `n ≥ 17` for base-2 logs to chain usefully). Exposed for tests and docs.
pub fn min_exact_n() -> usize {
    // log2(log2(log2(n))) > 0  <=>  log2(log2(n)) > 1  <=>  log2(n) > 2  <=> n > 4.
    5
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iterated_logs() {
        assert_eq!(log2_checked(8.0), Some(3.0));
        assert_eq!(log2_checked(0.5), None);
        assert_eq!(iterated_log2(65536.0, 2), Some(4.0));
        assert_eq!(iterated_log2(65536.0, 3), Some(2.0));
        assert_eq!(iterated_log2(2.0, 3), None);
        assert_eq!(log2_2(4.0), Some(1.0));
    }

    #[test]
    fn log2_3_positivity() {
        // n = 16: log2 n = 4, log2 log2 n = 2, log2 log2 log2 n = 1 > 0.
        assert_eq!(log2_3(16.0), Some(1.0));
        // n = 4: log2 n = 2, log2 log2 n = 1, log2(1) = 0 which is not > 0.
        assert_eq!(log2_3(4.0), None);
        // n = 2: chain hits 0 and the next log is undefined.
        assert_eq!(log2_3(2.0), None);
    }

    #[test]
    fn exact_params_defined_for_large_n() {
        let p = SblParams::exact(1 << 20).expect("defined for n = 2^20");
        assert!(p.alpha > 0.0 && p.alpha <= 1.0);
        assert!(p.p > 0.0 && p.p < 1.0);
        assert!(p.beta > 0.0);
        assert!(p.d_bound > 0.0);
        assert!(p.tail_threshold > 1.0);
        assert!(p.round_bound > 0.0);
        // Sanity: p = n^{-alpha} means p^{1/alpha} = 1/n.
        let back = p.p.powf(1.0 / p.alpha);
        assert!((back - 1.0 / (p.n as f64)).abs() < 1e-9);
    }

    #[test]
    fn exact_params_undefined_for_tiny_n() {
        assert!(SblParams::exact(2).is_none());
        assert!(SblParams::exact(4).is_none());
        assert!(SblParams::exact(0).is_none());
    }

    #[test]
    fn practical_params_always_defined() {
        for n in [0, 1, 2, 10, 100, 10_000, 1 << 20] {
            let p = SblParams::practical_default(n);
            assert!(p.p > 0.0 && p.p <= 1.0, "p out of range for n={n}");
            assert!(p.d_bound >= 3.0);
            assert!(p.tail_threshold >= 4.0);
            assert!(p.d_cap() >= 1);
        }
    }

    #[test]
    fn edge_bound_check() {
        let p = SblParams::practical_default(1024);
        assert!(p.admits_edge_count(1));
        assert!(!p.admits_edge_count(usize::MAX / 2));
    }

    #[test]
    fn monotonicity_of_bounds() {
        // The dimension bound and edge bound grow (weakly) with n.
        let d1 = theorem2_dimension_bound(1 << 10);
        let d2 = theorem2_dimension_bound(1 << 30);
        if let (Some(a), Some(b)) = (d1, d2) {
            assert!(b >= a);
        }
        let m1 = theorem1_edge_bound(1 << 10).unwrap_or(0.0);
        let m2 = theorem1_edge_bound(1 << 30).unwrap_or(0.0);
        assert!(m2 >= m1);
    }

    #[test]
    fn min_exact_n_is_documented_boundary() {
        assert!(SblParams::exact(min_exact_n() - 1).is_none());
    }
}
