//! Summary statistics over hypergraph views, used by the examples and by the
//! experiment harness to describe workloads.

use crate::degree::{max_vertex_degree, DegreeTable, MAX_ENUMERABLE_DIMENSION};
use crate::view::HypergraphView;

/// A compact numeric summary of a hypergraph (or of the active part of one).
#[derive(Debug, Clone, PartialEq)]
pub struct HypergraphStats {
    /// Number of active vertices.
    pub n: usize,
    /// Number of active edges.
    pub m: usize,
    /// Maximum edge cardinality.
    pub dimension: usize,
    /// Minimum edge cardinality (0 when edgeless).
    pub min_edge_size: usize,
    /// Mean edge cardinality (0 when edgeless).
    pub mean_edge_size: f64,
    /// Maximum vertex degree (number of incident edges).
    pub max_degree: usize,
    /// Kelsen's maximum normalized degree `Δ(H)`, when the dimension is small
    /// enough to enumerate (see [`MAX_ENUMERABLE_DIMENSION`]); `None`
    /// otherwise.
    pub max_normalized_degree: Option<f64>,
    /// Histogram of edge sizes: `histogram[k]` = number of edges of size `k`
    /// (index 0 unused).
    pub edge_size_histogram: Vec<usize>,
    /// Bytes of the four CSR arrays backing the view
    /// (`4 * ((m+1) + (n+1) + 2·Σ|e|)`): the resident footprint of the base
    /// arena, whichever tier it lives in.
    pub bytes_resident: usize,
    /// Storage tier of the base arena: `"owned"` heap vectors or a
    /// `"mapped"` read-only file snapshot (see
    /// [`crate::io::open_mapped`]).
    pub storage: &'static str,
}

impl HypergraphStats {
    /// Computes statistics for a view.
    pub fn compute<V: HypergraphView + ?Sized>(view: &V) -> Self {
        let n = view.n_active_vertices();
        let m = view.n_active_edges();
        let dimension = view.dimension();
        let mut histogram = vec![0usize; dimension + 1];
        let mut total = 0usize;
        let mut min_edge_size = usize::MAX;
        for e in view.edge_slices() {
            histogram[e.len()] += 1;
            total += e.len();
            min_edge_size = min_edge_size.min(e.len());
        }
        if m == 0 {
            min_edge_size = 0;
        }
        let max_normalized_degree = if dimension <= MAX_ENUMERABLE_DIMENSION {
            Some(DegreeTable::build(view).delta())
        } else {
            None
        };
        HypergraphStats {
            n,
            m,
            dimension,
            min_edge_size,
            mean_edge_size: if m == 0 { 0.0 } else { total as f64 / m as f64 },
            max_degree: max_vertex_degree(view),
            max_normalized_degree,
            edge_size_histogram: histogram,
            bytes_resident: 4 * ((m + 1) + (n + 1) + 2 * total),
            storage: view.storage_kind(),
        }
    }

    /// Renders the statistics as a short single-line summary, convenient for
    /// harness logs.
    pub fn one_line(&self) -> String {
        format!(
            "n={} m={} dim={} avg|e|={:.2} maxdeg={} Δ={} bytes={} storage={}",
            self.n,
            self.m,
            self.dimension,
            self.mean_edge_size,
            self.max_degree,
            self.max_normalized_degree
                .map(|d| format!("{d:.2}"))
                .unwrap_or_else(|| "n/a".into()),
            self.bytes_resident,
            self.storage,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn stats_on_toy() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5]]);
        let s = HypergraphStats::compute(&h);
        assert_eq!(s.n, 6);
        assert_eq!(s.m, 3);
        assert_eq!(s.dimension, 3);
        assert_eq!(s.min_edge_size, 2);
        assert!((s.mean_edge_size - 8.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.max_degree, 2);
        assert_eq!(s.edge_size_histogram, vec![0, 0, 1, 2]);
        assert!(s.max_normalized_degree.is_some());
        // 4 * ((m+1) + (n+1) + 2·Σ|e|) = 4 * (4 + 7 + 16), matching the
        // arena's own accounting.
        assert_eq!(s.bytes_resident, 108);
        assert_eq!(s.bytes_resident, h.bytes_resident());
        assert_eq!(s.storage, "owned");
        assert!(s.one_line().contains("n=6"));
        assert!(s.one_line().contains("storage=owned"));
    }

    #[test]
    fn stats_on_empty() {
        let h = hypergraph_from_edges::<Vec<u32>>(3, vec![]);
        let s = HypergraphStats::compute(&h);
        assert_eq!(s.m, 0);
        assert_eq!(s.min_edge_size, 0);
        assert_eq!(s.mean_edge_size, 0.0);
        assert_eq!(s.max_degree, 0);
        assert_eq!(s.max_normalized_degree, Some(0.0));
    }
}
