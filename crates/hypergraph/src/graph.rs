//! The immutable [`Hypergraph`] arena and its accessors.
//!
//! A [`Hypergraph`] stores every edge as a sorted slice of vertex ids inside a
//! single flat `Vec` (CSR layout), plus the reverse vertex→edge incidence
//! index in the same layout. This keeps the per-round scans of the parallel
//! algorithms cache-friendly and allocation-free.

use pram::mmap::U32Span;
use std::collections::BTreeSet;
use std::fmt;

/// Identifier of a vertex: a dense index in `0..n`.
pub type VertexId = u32;

/// Identifier of an edge: a dense index in `0..m`.
pub type EdgeId = u32;

/// Backing storage for one CSR array: an owned heap vector (the result of
/// building or parsing) or a validated window of a shared read-only file
/// mapping (the result of [`crate::io::open_mapped`]).
///
/// Every accessor routes through [`as_slice`](Self::as_slice), so the two
/// tiers are behaviourally identical — a mapped [`Hypergraph`] answers every
/// query byte-for-byte like its owned twin, and engine construction (which
/// consumes the CSR through plain slices) runs directly on the mapping with
/// no copy. Cloning a mapped array bumps the mapping's `Arc`; cloning an
/// owned array copies, exactly as before the tier existed.
#[derive(Clone)]
pub(crate) enum CsrStorage {
    /// Heap-owned words.
    Owned(Vec<u32>),
    /// A bounds- and alignment-validated window of a shared mapping.
    Mapped(U32Span),
}

impl CsrStorage {
    /// The words, wherever they live.
    #[inline]
    pub(crate) fn as_slice(&self) -> &[u32] {
        match self {
            CsrStorage::Owned(v) => v,
            CsrStorage::Mapped(s) => s.as_slice(),
        }
    }

    /// Whether the words live in a file mapping.
    #[inline]
    fn is_mapped(&self) -> bool {
        matches!(self, CsrStorage::Mapped(_))
    }
}

impl From<Vec<u32>> for CsrStorage {
    fn from(v: Vec<u32>) -> Self {
        CsrStorage::Owned(v)
    }
}

/// An immutable hypergraph `H = (V, E)` with `V = {0, …, n-1}` and edges
/// stored as sorted vertex lists.
///
/// Construct one with [`HypergraphBuilder`](crate::builder::HypergraphBuilder)
/// or one of the [`generate`](crate::generate) functions.
///
/// # Example
/// ```
/// use hypergraph::HypergraphBuilder;
///
/// let mut b = HypergraphBuilder::new(5);
/// b.add_edge([0, 1, 2]);
/// b.add_edge([2, 3]);
/// let h = b.build();
/// assert_eq!(h.n_vertices(), 5);
/// assert_eq!(h.n_edges(), 2);
/// assert_eq!(h.dimension(), 3);
/// assert_eq!(h.edge(0), &[0, 1, 2]);
/// assert_eq!(h.incident_edges(2), &[0, 1]);
/// ```
#[derive(Clone)]
pub struct Hypergraph {
    n: u32,
    /// CSR offsets into `edge_vertices`; length `m + 1`.
    edge_offsets: CsrStorage,
    /// Concatenated, per-edge-sorted vertex lists.
    edge_vertices: CsrStorage,
    /// CSR offsets into `incident`; length `n + 1`.
    inc_offsets: CsrStorage,
    /// Concatenated, per-vertex-sorted lists of incident edge ids.
    incident: CsrStorage,
    /// Maximum edge cardinality (0 for an edgeless hypergraph).
    dim: u32,
}

impl PartialEq for Hypergraph {
    /// Content equality across storage tiers: a mapped graph equals its
    /// owned twin whenever the four CSR arrays hold the same words.
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n
            && self.dim == other.dim
            && self.edge_offsets.as_slice() == other.edge_offsets.as_slice()
            && self.edge_vertices.as_slice() == other.edge_vertices.as_slice()
            && self.inc_offsets.as_slice() == other.inc_offsets.as_slice()
            && self.incident.as_slice() == other.incident.as_slice()
    }
}

impl Eq for Hypergraph {}

impl Hypergraph {
    /// Builds the arena from a vertex count and a list of edges.
    ///
    /// Every edge must be sorted, duplicate-free, non-empty and reference only
    /// vertices `< n`. The builder enforces these invariants; this constructor
    /// asserts them in debug builds.
    pub(crate) fn from_sorted_edges(n: u32, edges: Vec<Vec<VertexId>>) -> Self {
        let m = edges.len();
        let total: usize = edges.iter().map(|e| e.len()).sum();
        let mut edge_offsets = Vec::with_capacity(m + 1);
        let mut edge_vertices = Vec::with_capacity(total);
        let mut dim = 0u32;
        edge_offsets.push(0u32);
        for e in &edges {
            debug_assert!(!e.is_empty(), "edges must be non-empty");
            debug_assert!(
                e.windows(2).all(|w| w[0] < w[1]),
                "edges must be sorted and duplicate-free"
            );
            debug_assert!(e.iter().all(|&v| v < n), "edge vertex out of range");
            dim = dim.max(e.len() as u32);
            edge_vertices.extend_from_slice(e);
            edge_offsets.push(edge_vertices.len() as u32);
        }

        // Build the vertex -> edge incidence index with a counting pass.
        let mut counts = vec![0u32; n as usize + 1];
        for &v in &edge_vertices {
            counts[v as usize + 1] += 1;
        }
        for i in 0..n as usize {
            counts[i + 1] += counts[i];
        }
        let inc_offsets = counts.clone();
        let mut cursor = inc_offsets.clone();
        let mut incident = vec![0u32; edge_vertices.len()];
        for (eid, e) in edges.iter().enumerate() {
            for &v in e {
                let slot = cursor[v as usize];
                incident[slot as usize] = eid as EdgeId;
                cursor[v as usize] += 1;
            }
        }

        Hypergraph {
            n,
            edge_offsets: edge_offsets.into(),
            edge_vertices: edge_vertices.into(),
            inc_offsets: inc_offsets.into(),
            incident: incident.into(),
            dim,
        }
    }

    /// Builds the arena directly from already-validated CSR parts.
    ///
    /// `pub(crate)`: the binary snapshot reader in [`crate::io`] is the only
    /// caller, and it fully validates structure (monotonic bounded offsets,
    /// sorted duplicate-free non-empty edges, a consistent incidence index
    /// and an exact `dim`) before any array reaches this constructor —
    /// mapped or owned alike.
    pub(crate) fn from_validated_csr(
        n: u32,
        dim: u32,
        edge_offsets: CsrStorage,
        edge_vertices: CsrStorage,
        inc_offsets: CsrStorage,
        incident: CsrStorage,
    ) -> Self {
        debug_assert_eq!(edge_vertices.as_slice().len(), incident.as_slice().len());
        debug_assert_eq!(inc_offsets.as_slice().len(), n as usize + 1);
        debug_assert!(!edge_offsets.as_slice().is_empty());
        Hypergraph {
            n,
            edge_offsets,
            edge_vertices,
            inc_offsets,
            incident,
            dim,
        }
    }

    /// Whether the base CSR arrays live in a read-only file mapping (the
    /// out-of-core tier of [`crate::io::open_mapped`]) rather than on the
    /// heap. Observability only — the two tiers answer identically.
    pub fn is_mapped(&self) -> bool {
        self.edge_offsets.is_mapped()
    }

    /// The storage tier of the base CSR arrays: `"mapped"` for graphs opened
    /// from an on-disk snapshot via [`crate::io::open_mapped`], `"owned"`
    /// for everything built or parsed on the heap.
    pub fn storage_kind(&self) -> &'static str {
        if self.is_mapped() {
            "mapped"
        } else {
            "owned"
        }
    }

    /// Bytes of the four CSR arrays backing this arena. For owned graphs
    /// this is heap footprint; for mapped graphs it is the size of the
    /// mapped window (which the OS may page in and out on demand).
    pub fn bytes_resident(&self) -> usize {
        4 * (self.edge_offsets.as_slice().len()
            + self.edge_vertices.as_slice().len()
            + self.inc_offsets.as_slice().len()
            + self.incident.as_slice().len())
    }

    /// Number of vertices `n = |V|`.
    #[inline]
    pub fn n_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of edges `m = |E|`.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edge_offsets.as_slice().len() - 1
    }

    /// Dimension: the maximum edge cardinality (0 if there are no edges).
    #[inline]
    pub fn dimension(&self) -> usize {
        self.dim as usize
    }

    /// The sorted vertex list of edge `e`.
    ///
    /// # Panics
    /// Panics if `e >= self.n_edges()`.
    #[inline]
    pub fn edge(&self, e: EdgeId) -> &[VertexId] {
        let offsets = self.edge_offsets.as_slice();
        let lo = offsets[e as usize] as usize;
        let hi = offsets[e as usize + 1] as usize;
        &self.edge_vertices.as_slice()[lo..hi]
    }

    /// Cardinality of edge `e`.
    #[inline]
    pub fn edge_len(&self, e: EdgeId) -> usize {
        let offsets = self.edge_offsets.as_slice();
        (offsets[e as usize + 1] - offsets[e as usize]) as usize
    }

    /// Iterator over all edges as sorted vertex slices, in edge-id order.
    pub fn edges(&self) -> impl Iterator<Item = &[VertexId]> + '_ {
        (0..self.n_edges() as EdgeId).map(move |e| self.edge(e))
    }

    /// Iterator over all vertex ids `0..n`.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> {
        0..self.n
    }

    /// The raw incidence CSR (offsets of length `n + 1`, concatenated edge
    /// ids), used by the active engine to seed its incidence-directed
    /// trimming path.
    #[inline]
    pub(crate) fn incidence_csr(&self) -> (&[u32], &[EdgeId]) {
        (self.inc_offsets.as_slice(), self.incident.as_slice())
    }

    /// The raw edge CSR (offsets of length `m + 1`, concatenated sorted
    /// vertex lists), used by the active engine's in-place `reset_from` to
    /// restore its arena with two straight memcpys.
    #[inline]
    pub(crate) fn edge_csr(&self) -> (&[u32], &[VertexId]) {
        (self.edge_offsets.as_slice(), self.edge_vertices.as_slice())
    }

    /// The sorted list of edges incident to vertex `v`.
    ///
    /// # Panics
    /// Panics if `v >= self.n_vertices()`.
    #[inline]
    pub fn incident_edges(&self, v: VertexId) -> &[EdgeId] {
        let offsets = self.inc_offsets.as_slice();
        let lo = offsets[v as usize] as usize;
        let hi = offsets[v as usize + 1] as usize;
        &self.incident.as_slice()[lo..hi]
    }

    /// Degree of vertex `v`: the number of edges containing it.
    #[inline]
    pub fn degree(&self, v: VertexId) -> usize {
        self.incident_edges(v).len()
    }

    /// Returns `true` if the (sorted or unsorted) vertex set `set` contains
    /// some edge of the hypergraph entirely, i.e. it is *not* independent.
    ///
    /// Runs in `O(Σ_e |e|)` over edges touching the set, using the incidence
    /// index to avoid scanning unrelated edges.
    pub fn contains_edge_within(&self, set: &[VertexId]) -> bool {
        if self.n_edges() == 0 {
            return false;
        }
        let mut member = vec![false; self.n as usize];
        for &v in set {
            member[v as usize] = true;
        }
        // Only edges incident to some vertex of `set` can be inside it.
        let mut seen = vec![false; self.n_edges()];
        for &v in set {
            for &e in self.incident_edges(v) {
                if !seen[e as usize] {
                    seen[e as usize] = true;
                    if self.edge(e).iter().all(|&u| member[u as usize]) {
                        return true;
                    }
                }
            }
        }
        false
    }

    /// Returns `true` if `set` is an independent set: no edge is fully
    /// contained in it.
    pub fn is_independent(&self, set: &[VertexId]) -> bool {
        !self.contains_edge_within(set)
    }

    /// Returns `true` if `set` is a *maximal* independent set.
    ///
    /// Maximality is checked by attempting to add every vertex not in the set:
    /// the set is maximal iff every such addition creates a fully-contained
    /// edge.
    pub fn is_maximal_independent(&self, set: &[VertexId]) -> bool {
        if !self.is_independent(set) {
            return false;
        }
        let mut member = vec![false; self.n as usize];
        for &v in set {
            member[v as usize] = true;
        }
        for v in 0..self.n {
            if member[v as usize] {
                continue;
            }
            // Would adding v keep the set independent? It does unless some
            // edge through v has all other vertices in the set.
            let violates = self
                .incident_edges(v)
                .iter()
                .any(|&e| self.edge(e).iter().all(|&u| u == v || member[u as usize]));
            if !violates {
                return false;
            }
        }
        true
    }

    /// Returns the edge id of an exact edge equal to `query` (sorted), if any.
    ///
    /// Intended for tests and small-scale tooling; linear in the degree of the
    /// first vertex of the query.
    pub fn find_edge(&self, query: &[VertexId]) -> Option<EdgeId> {
        let first = *query.first()?;
        if first >= self.n {
            return None;
        }
        self.incident_edges(first)
            .iter()
            .copied()
            .find(|&e| self.edge(e) == query)
    }

    /// Total storage footprint of the edge lists, i.e. `Σ_e |e|`.
    pub fn total_edge_size(&self) -> usize {
        self.edge_vertices.as_slice().len()
    }

    /// Collects the edges into owned `Vec`s (mainly for conversion into an
    /// [`ActiveHypergraph`](crate::active::ActiveHypergraph) or for tests).
    pub fn edges_owned(&self) -> Vec<Vec<VertexId>> {
        self.edges().map(|e| e.to_vec()).collect()
    }

    /// The set of distinct edge cardinalities present, in increasing order.
    pub fn edge_sizes(&self) -> Vec<usize> {
        let sizes: BTreeSet<usize> = self.edges().map(|e| e.len()).collect();
        sizes.into_iter().collect()
    }
}

impl fmt::Debug for Hypergraph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Storage tier deliberately omitted: `Debug` output feeds bench
        // fingerprints, which must not distinguish mapped from owned.
        f.debug_struct("Hypergraph")
            .field("n", &self.n)
            .field("m", &self.n_edges())
            .field("dim", &self.dim)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::HypergraphBuilder;

    fn toy() -> Hypergraph {
        let mut b = HypergraphBuilder::new(6);
        b.add_edge([0, 1, 2]);
        b.add_edge([2, 3]);
        b.add_edge([3, 4, 5]);
        b.build()
    }

    #[test]
    fn basic_counts() {
        let h = toy();
        assert_eq!(h.n_vertices(), 6);
        assert_eq!(h.n_edges(), 3);
        assert_eq!(h.dimension(), 3);
        assert_eq!(h.total_edge_size(), 8);
        assert_eq!(h.edge_sizes(), vec![2, 3]);
    }

    #[test]
    fn edges_and_incidence_are_consistent() {
        let h = toy();
        assert_eq!(h.edge(0), &[0, 1, 2]);
        assert_eq!(h.edge(1), &[2, 3]);
        assert_eq!(h.edge(2), &[3, 4, 5]);
        assert_eq!(h.incident_edges(0), &[0]);
        assert_eq!(h.incident_edges(2), &[0, 1]);
        assert_eq!(h.incident_edges(3), &[1, 2]);
        assert_eq!(h.degree(3), 2);
        assert_eq!(h.degree(5), 1);
    }

    #[test]
    fn independence_checks() {
        let h = toy();
        assert!(h.is_independent(&[0, 1, 3]));
        assert!(!h.is_independent(&[0, 1, 2]));
        assert!(!h.is_independent(&[2, 3]));
        assert!(h.is_independent(&[]));
        // {0,1,3,5} is independent and maximal: adding 2 completes {2,3}? no,
        // adding 2 completes edge {0,1,2}; adding 4 completes {3,4,5}? needs 5
        // and 3 -> yes.
        assert!(h.is_maximal_independent(&[0, 1, 3, 5]));
        // {0,1,3} is independent but not maximal (5 can be added).
        assert!(!h.is_maximal_independent(&[0, 1, 3]));
        // Non-independent sets are never maximal independent.
        assert!(!h.is_maximal_independent(&[0, 1, 2]));
    }

    #[test]
    fn empty_and_edgeless() {
        let h = HypergraphBuilder::new(0).build();
        assert_eq!(h.n_vertices(), 0);
        assert_eq!(h.n_edges(), 0);
        assert_eq!(h.dimension(), 0);
        assert!(h.is_independent(&[]));
        assert!(h.is_maximal_independent(&[]));

        let h = HypergraphBuilder::new(4).build();
        // With no edges the only maximal independent set is all of V.
        assert!(h.is_independent(&[0, 1, 2, 3]));
        assert!(h.is_maximal_independent(&[0, 1, 2, 3]));
        assert!(!h.is_maximal_independent(&[0, 1]));
    }

    #[test]
    fn find_edge_works() {
        let h = toy();
        assert_eq!(h.find_edge(&[2, 3]), Some(1));
        assert_eq!(h.find_edge(&[0, 1, 2]), Some(0));
        assert_eq!(h.find_edge(&[1, 2]), None);
        assert_eq!(h.find_edge(&[]), None);
        assert_eq!(h.find_edge(&[99]), None);
    }

    #[test]
    fn singleton_edge_forces_vertex_out() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([1]);
        let h = b.build();
        assert!(!h.is_independent(&[1]));
        assert!(h.is_maximal_independent(&[0, 2]));
    }
}
