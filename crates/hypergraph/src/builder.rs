//! Mutable construction of [`Hypergraph`]s.

use std::collections::BTreeSet;

use crate::graph::{Hypergraph, VertexId};

/// Incremental builder for a [`Hypergraph`].
///
/// Edges may be added in any order and with unsorted / duplicated vertices;
/// the builder normalizes each edge to a sorted, duplicate-free list. Exact
/// duplicate edges are deduplicated on [`build`](HypergraphBuilder::build)
/// (the algorithms in this workspace never benefit from parallel edges, and
/// the papers assume simple hypergraphs).
///
/// # Example
/// ```
/// use hypergraph::HypergraphBuilder;
/// let mut b = HypergraphBuilder::new(4);
/// b.add_edge([2, 1]);
/// b.add_edge([1, 2]);       // duplicate of the edge above
/// b.add_edge([0, 3, 3]);    // vertex repetition collapses
/// let h = b.build();
/// assert_eq!(h.n_edges(), 2);
/// assert_eq!(h.edge(0), &[1, 2]);
/// assert_eq!(h.edge(1), &[0, 3]);
/// ```
#[derive(Debug, Clone)]
pub struct HypergraphBuilder {
    n: u32,
    edges: Vec<Vec<VertexId>>,
}

impl HypergraphBuilder {
    /// Creates a builder for a hypergraph on the vertex set `{0, …, n-1}`.
    pub fn new(n: usize) -> Self {
        HypergraphBuilder {
            n: n as u32,
            edges: Vec::new(),
        }
    }

    /// Creates a builder with capacity reserved for `m` edges.
    pub fn with_capacity(n: usize, m: usize) -> Self {
        HypergraphBuilder {
            n: n as u32,
            edges: Vec::with_capacity(m),
        }
    }

    /// Reopens an existing hypergraph for further construction: the builder
    /// starts with `h`'s vertex count and edge list (already normalized and
    /// duplicate-free), preserving edge order. `h` itself is untouched —
    /// hypergraphs stay immutable; this is how a *new* graph is derived from
    /// an old one. Scripted derivation with strict replay semantics lives in
    /// [`edit::apply_edits`](crate::edit::apply_edits).
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        HypergraphBuilder {
            n: h.n_vertices() as u32,
            edges: h.edges_owned(),
        }
    }

    /// Extends the vertex id space by `extra` fresh, initially isolated
    /// vertices (usable by subsequent [`add_edge`](Self::add_edge) calls).
    ///
    /// # Panics
    /// Panics if the id space would exceed `u32`.
    pub fn grow_vertices(&mut self, extra: u32) -> &mut Self {
        self.n = self
            .n
            .checked_add(extra)
            .expect("vertex id space exceeds u32");
        self
    }

    /// Number of vertices the final hypergraph will have.
    pub fn n_vertices(&self) -> usize {
        self.n as usize
    }

    /// Number of edges added so far (before deduplication).
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Adds an edge given by any iterator of vertex ids.
    ///
    /// The edge is normalized (sorted, deduplicated). Empty edges are ignored:
    /// a hypergraph with an empty edge has no independent set at all, which
    /// none of the algorithms here model.
    ///
    /// # Panics
    /// Panics if a vertex id is `>= n`.
    pub fn add_edge<I>(&mut self, vertices: I) -> &mut Self
    where
        I: IntoIterator<Item = VertexId>,
    {
        let set: BTreeSet<VertexId> = vertices.into_iter().collect();
        for &v in &set {
            assert!(v < self.n, "vertex {v} out of range (n = {})", self.n);
        }
        if !set.is_empty() {
            self.edges.push(set.into_iter().collect());
        }
        self
    }

    /// Adds every edge from an iterator of edges.
    pub fn add_edges<I, E>(&mut self, edges: I) -> &mut Self
    where
        I: IntoIterator<Item = E>,
        E: IntoIterator<Item = VertexId>,
    {
        for e in edges {
            self.add_edge(e);
        }
        self
    }

    /// Finalizes the builder into an immutable [`Hypergraph`].
    ///
    /// Exact duplicate edges are removed; edge order otherwise follows
    /// insertion order.
    pub fn build(mut self) -> Hypergraph {
        let mut seen: BTreeSet<Vec<VertexId>> = BTreeSet::new();
        let mut unique = Vec::with_capacity(self.edges.len());
        for e in self.edges.drain(..) {
            if seen.insert(e.clone()) {
                unique.push(e);
            }
        }
        Hypergraph::from_sorted_edges(self.n, unique)
    }
}

/// Builds a hypergraph directly from a vertex count and an edge list.
///
/// Convenience wrapper over [`HypergraphBuilder`] used pervasively in tests
/// and examples.
pub fn hypergraph_from_edges<E>(n: usize, edges: impl IntoIterator<Item = E>) -> Hypergraph
where
    E: IntoIterator<Item = VertexId>,
{
    let mut b = HypergraphBuilder::new(n);
    b.add_edges(edges);
    b.build()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalizes_and_dedups() {
        let mut b = HypergraphBuilder::new(5);
        b.add_edge([3, 1, 1]);
        b.add_edge([1, 3]);
        b.add_edge([4, 0, 2]);
        let h = b.build();
        assert_eq!(h.n_edges(), 2);
        assert_eq!(h.edge(0), &[1, 3]);
        assert_eq!(h.edge(1), &[0, 2, 4]);
    }

    #[test]
    fn ignores_empty_edges() {
        let mut b = HypergraphBuilder::new(3);
        b.add_edge([]);
        b.add_edge([1]);
        let h = b.build();
        assert_eq!(h.n_edges(), 1);
        assert_eq!(h.dimension(), 1);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_out_of_range_vertices() {
        let mut b = HypergraphBuilder::new(2);
        b.add_edge([0, 2]);
    }

    #[test]
    fn from_edges_helper() {
        let h = hypergraph_from_edges(4, vec![vec![0, 1], vec![2, 3, 1]]);
        assert_eq!(h.n_vertices(), 4);
        assert_eq!(h.n_edges(), 2);
        assert_eq!(h.dimension(), 3);
    }

    #[test]
    fn from_hypergraph_reopens_for_derivation() {
        let h = hypergraph_from_edges(3, vec![vec![0, 1], vec![1, 2]]);
        let mut b = HypergraphBuilder::from_hypergraph(&h);
        b.grow_vertices(2).add_edge([3, 4]);
        let h2 = b.build();
        assert_eq!(h2.n_vertices(), 5);
        assert_eq!(h2.n_edges(), 3);
        assert_eq!(h2.edge(0), &[0, 1]);
        assert_eq!(h2.edge(2), &[3, 4]);
        // The source graph is untouched.
        assert_eq!(h.n_vertices(), 3);
        assert_eq!(h.n_edges(), 2);
    }

    #[test]
    fn with_capacity_behaves_like_new() {
        let mut b = HypergraphBuilder::with_capacity(10, 100);
        assert_eq!(b.n_vertices(), 10);
        b.add_edge([0, 9]);
        assert_eq!(b.n_edges(), 1);
        let h = b.build();
        assert_eq!(h.n_edges(), 1);
    }
}
