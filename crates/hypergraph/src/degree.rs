//! Kelsen's normalized-degree machinery (Section 3 of the paper).
//!
//! For a hypergraph `H` of dimension `d`, a non-empty vertex set `x` and
//! `1 ≤ j ≤ d − |x|`, the paper defines
//!
//! * `N_j(x, H)` — the set of `j`-element vertex sets `y` disjoint from `x`
//!   with `x ∪ y ∈ E` (so `|N_j(x,H)|` counts the edges of size `|x| + j`
//!   containing `x`);
//! * the *normalized degree* `d_j(x, H) = |N_j(x, H)|^{1/j}`;
//! * `Δ_i(H) = max { d_{i−|x|}(x, H) : x ⊆ V, 0 < |x| < i }` — the maximum
//!   normalized degree with respect to dimension-`i` edges;
//! * `Δ(H) = max { Δ_i(H) : 2 ≤ i ≤ d }`.
//!
//! The Beame–Luby marking probability is `p = 1 / (2^{d+1} Δ(H))`, and the
//! entire Theorem-2 analysis (potential functions `v_i`, thresholds `T_j`,
//! per-stage migration bounds) is phrased in these quantities, so they are
//! implemented here once and reused by the `concentration` and `mis-core`
//! crates.
//!
//! # Complexity
//!
//! Only sets `x` that are subsets of some edge have a non-zero degree, so the
//! implementation enumerates, for every edge, all of its proper non-empty
//! subsets — `O(m · 2^d)` work. This is exactly the regime the paper cares
//! about (`d` at most `log log n / (4 log log log n)`, i.e. single digits for
//! any realistic `n`), but it does mean callers must not feed hypergraphs of
//! large dimension: [`DegreeTable::build`] refuses dimensions above
//! [`MAX_ENUMERABLE_DIMENSION`].

use std::collections::HashMap;

use crate::graph::VertexId;
use crate::view::HypergraphView;

/// Largest dimension for which the `O(m·2^d)` subset enumeration is allowed.
pub const MAX_ENUMERABLE_DIMENSION: usize = 20;

/// Maximum degree of a single vertex (number of incident active edges).
///
/// This is the classical graph degree, *not* the normalized degree; it is used
/// by generators and statistics.
pub fn max_vertex_degree<V: HypergraphView + ?Sized>(view: &V) -> usize {
    let mut deg = vec![0usize; view.id_space()];
    for e in view.edge_slices() {
        for &v in e {
            deg[v as usize] += 1;
        }
    }
    deg.into_iter().max().unwrap_or(0)
}

/// A table of `|N_j(x, H)|` for every `x` that is a proper non-empty subset of
/// some edge, keyed by `x` (sorted) and the co-size `j`.
///
/// Build it once per hypergraph snapshot with [`DegreeTable::build`], then
/// query [`n_j`](Self::n_j), [`d_j`](Self::d_j), [`delta_i`](Self::delta_i)
/// and [`delta`](Self::delta).
#[derive(Debug, Clone)]
pub struct DegreeTable {
    /// counts[x] = vector indexed by j-1 of |N_j(x, H)| (only for j ≥ 1).
    counts: HashMap<Vec<VertexId>, Vec<u64>>,
    /// Dimension of the hypergraph the table was built from.
    dim: usize,
    /// Number of edges the table was built from.
    m: usize,
}

impl DegreeTable {
    /// Enumerates every proper non-empty subset of every active edge and
    /// counts, for each such subset `x` and each co-size `j`, the number of
    /// edges of size `|x| + j` that contain `x`.
    ///
    /// # Panics
    /// Panics if the view's dimension exceeds [`MAX_ENUMERABLE_DIMENSION`].
    pub fn build<V: HypergraphView + ?Sized>(view: &V) -> Self {
        let dim = view.dimension();
        assert!(
            dim <= MAX_ENUMERABLE_DIMENSION,
            "DegreeTable::build called on dimension {dim} > {MAX_ENUMERABLE_DIMENSION}; \
             the subset enumeration would be intractable"
        );
        let mut counts: HashMap<Vec<VertexId>, Vec<u64>> = HashMap::new();
        let mut m = 0usize;
        for e in view.edge_slices() {
            m += 1;
            let k = e.len();
            if k < 2 {
                // A singleton edge has no proper non-empty subset.
                continue;
            }
            // Enumerate proper non-empty subsets via bitmasks.
            let full: u32 = (1u32 << k) - 1;
            for mask in 1..full {
                let size = mask.count_ones() as usize;
                let j = k - size;
                let mut x = Vec::with_capacity(size);
                for (i, &v) in e.iter().enumerate() {
                    if mask & (1 << i) != 0 {
                        x.push(v);
                    }
                }
                let entry = counts.entry(x).or_insert_with(|| vec![0; dim]);
                entry[j - 1] += 1;
            }
        }
        DegreeTable { counts, dim, m }
    }

    /// Dimension of the hypergraph this table describes.
    pub fn dimension(&self) -> usize {
        self.dim
    }

    /// Number of edges of the hypergraph this table describes.
    pub fn n_edges(&self) -> usize {
        self.m
    }

    /// Number of distinct sets `x` with a non-zero degree.
    pub fn n_tracked_sets(&self) -> usize {
        self.counts.len()
    }

    /// `|N_j(x, H)|`: the number of edges of size `|x| + j` containing `x`.
    ///
    /// `x` must be sorted. Returns 0 for unknown sets or `j == 0`.
    pub fn n_j(&self, x: &[VertexId], j: usize) -> u64 {
        if j == 0 {
            return 0;
        }
        self.counts
            .get(x)
            .and_then(|v| v.get(j - 1))
            .copied()
            .unwrap_or(0)
    }

    /// The normalized degree `d_j(x, H) = |N_j(x,H)|^{1/j}`.
    pub fn d_j(&self, x: &[VertexId], j: usize) -> f64 {
        let c = self.n_j(x, j);
        if c == 0 || j == 0 {
            0.0
        } else {
            (c as f64).powf(1.0 / j as f64)
        }
    }

    /// `Δ_i(H)`: the maximum of `d_{i−|x|}(x, H)` over all tracked `x` with
    /// `0 < |x| < i`.
    pub fn delta_i(&self, i: usize) -> f64 {
        if i < 2 {
            return 0.0;
        }
        let mut best: f64 = 0.0;
        for (x, row) in &self.counts {
            let xs = x.len();
            if xs == 0 || xs >= i {
                continue;
            }
            let j = i - xs;
            if let Some(&c) = row.get(j - 1) {
                if c > 0 {
                    let d = (c as f64).powf(1.0 / j as f64);
                    if d > best {
                        best = d;
                    }
                }
            }
        }
        best
    }

    /// `Δ(H) = max_{2 ≤ i ≤ d} Δ_i(H)`; 0 for hypergraphs of dimension < 2.
    pub fn delta(&self) -> f64 {
        (2..=self.dim).fold(0.0f64, |acc, i| acc.max(self.delta_i(i)))
    }

    /// All tracked sets `x` together with their per-`j` counts, for the
    /// instrumentation used by the migration experiments (E6/E7). Sets are
    /// returned in no particular order.
    pub fn iter(&self) -> impl Iterator<Item = (&[VertexId], &[u64])> {
        self.counts
            .iter()
            .map(|(x, row)| (x.as_slice(), row.as_slice()))
    }
}

/// Convenience wrapper: builds a [`DegreeTable`] and returns `Δ(H)` directly.
pub fn max_normalized_degree<V: HypergraphView + ?Sized>(view: &V) -> f64 {
    DegreeTable::build(view).delta()
}

/// The Beame–Luby marking probability `p = 1 / (2^{d+1} · Δ(H))`, clamped into
/// `(0, 1]`. For an edgeless hypergraph (where `Δ` would be 0) this returns 1:
/// every vertex can be marked.
pub fn beame_luby_probability(delta: f64, dim: usize) -> f64 {
    if delta <= 0.0 {
        return 1.0;
    }
    let a = 2f64.powi(dim as i32 + 1);
    (1.0 / (a * delta)).clamp(f64::MIN_POSITIVE, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn graph_case_matches_classical_degree() {
        // For an ordinary graph (dimension 2), Δ(H) = Δ_2(H) is the maximum
        // vertex degree, because d_1({v}, H) = |N_1(v)|.
        let h = hypergraph_from_edges(5, vec![vec![0, 1], vec![0, 2], vec![0, 3], vec![3, 4]]);
        let t = DegreeTable::build(&h);
        assert_eq!(t.n_j(&[0], 1), 3);
        assert_eq!(t.n_j(&[3], 1), 2);
        assert_eq!(t.n_j(&[4], 1), 1);
        assert!((t.delta_i(2) - 3.0).abs() < 1e-12);
        assert!((t.delta() - 3.0).abs() < 1e-12);
        assert_eq!(max_vertex_degree(&h), 3);
    }

    #[test]
    fn three_uniform_counts() {
        // Two triangles sharing the pair {0,1}.
        let h = hypergraph_from_edges(5, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let t = DegreeTable::build(&h);
        // Pair {0,1} is contained in 2 edges of size 3 => N_1({0,1}) = 2.
        assert_eq!(t.n_j(&[0, 1], 1), 2);
        // Vertex {0} is in 2 edges of size 3 => N_2({0}) = 2, d_2 = sqrt(2).
        assert_eq!(t.n_j(&[0], 2), 2);
        assert!((t.d_j(&[0], 2) - 2f64.sqrt()).abs() < 1e-12);
        // Δ_3 = max(d_1 over pairs, d_2 over singletons) = max(2, sqrt 2) = 2.
        assert!((t.delta_i(3) - 2.0).abs() < 1e-12);
        // No edges of size 2, so Δ_2 = 0 and Δ = Δ_3 = 2.
        assert_eq!(t.delta_i(2), 0.0);
        assert!((t.delta() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn mixed_dimension_table() {
        let h = hypergraph_from_edges(
            6,
            vec![vec![0, 1], vec![0, 1, 2], vec![0, 1, 2, 3], vec![4, 5]],
        );
        let t = DegreeTable::build(&h);
        assert_eq!(t.dimension(), 4);
        assert_eq!(t.n_edges(), 4);
        // {0,1} is inside one size-2 edge (itself is an edge but j=0 doesn't
        // count), one size-3 edge (j=1) and one size-4 edge (j=2).
        assert_eq!(t.n_j(&[0, 1], 1), 1);
        assert_eq!(t.n_j(&[0, 1], 2), 1);
        assert_eq!(t.n_j(&[0, 1], 0), 0);
        // Singleton {0}: one size-2 edge (j=1), one size-3 (j=2), one size-4 (j=3).
        assert_eq!(t.n_j(&[0], 1), 1);
        assert_eq!(t.n_j(&[0], 2), 1);
        assert_eq!(t.n_j(&[0], 3), 1);
        // Unknown sets have zero degree.
        assert_eq!(t.n_j(&[5, 0], 1), 0);
        assert_eq!(t.d_j(&[2, 3], 5), 0.0);
    }

    #[test]
    fn singleton_edges_have_no_subsets() {
        let h = hypergraph_from_edges(3, vec![vec![0], vec![1, 2]]);
        let t = DegreeTable::build(&h);
        assert_eq!(t.n_j(&[0], 1), 0);
        assert_eq!(t.n_j(&[1], 1), 1);
        assert_eq!(t.n_tracked_sets(), 2);
    }

    #[test]
    fn edgeless_hypergraph() {
        let h = hypergraph_from_edges::<Vec<u32>>(4, vec![]);
        let t = DegreeTable::build(&h);
        assert_eq!(t.delta(), 0.0);
        assert_eq!(max_vertex_degree(&h), 0);
        assert_eq!(beame_luby_probability(t.delta(), 0), 1.0);
    }

    #[test]
    fn bl_probability_formula() {
        // d = 2, Δ = 4  =>  p = 1 / (2^3 · 4) = 1/32.
        assert!((beame_luby_probability(4.0, 2) - 1.0 / 32.0).abs() < 1e-12);
        // Degenerate Δ keeps p in (0, 1].
        assert_eq!(beame_luby_probability(0.0, 5), 1.0);
        assert!(beame_luby_probability(1e-30, 3) <= 1.0);
    }

    #[test]
    #[should_panic(expected = "intractable")]
    fn refuses_huge_dimension() {
        let edge: Vec<u32> = (0..25).collect();
        let h = hypergraph_from_edges(30, vec![edge]);
        let _ = DegreeTable::build(&h);
    }

    #[test]
    fn works_on_active_view_too() {
        use crate::active::ActiveHypergraph;
        let h = hypergraph_from_edges(5, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let mut red = vec![false; 5];
        red[3] = true;
        ah.discard_edges_touching(&red, &[3]);
        ah.kill_vertices(&[3]);
        let t = DegreeTable::build(&ah);
        assert_eq!(t.n_j(&[0, 1], 1), 1);
        assert!((t.delta() - 1.0).abs() < 1e-12);
    }
}
