//! Hypergraph data structures for parallel maximal-independent-set algorithms.
//!
//! This crate is the substrate layer of the `hypergraph-mis` workspace, which
//! reproduces *"On Computing Maximal Independent Sets of Hypergraphs in
//! Parallel"* (Bercea, Goyal, Harris, Srinivasan — SPAA 2014).
//!
//! It provides:
//!
//! * [`Hypergraph`] — an immutable, arena/CSR-style hypergraph with a
//!   vertex→edge incidence index, built through [`HypergraphBuilder`].
//! * [`ActiveHypergraph`] — the flat, epoch-stamped working copy consumed by
//!   the iterative algorithms (Beame–Luby, SBL, KUW): vertices die, edges
//!   shrink, dominated and singleton edges are discarded, exactly as in the
//!   papers' cleanup steps. The [`ActiveEngine`] trait abstracts this update
//!   interface; the pre-flat implementation survives as
//!   `active::reference::ReferenceActiveHypergraph` behind the
//!   `reference-engine` feature (on by default) and anchors the differential
//!   test suites.
//! * [`edit`] — graph-level edit scripts ([`GraphEdit`]): the strictly
//!   replayable mutation vocabulary behind the serving layer's
//!   epoch-versioned resident registry.
//! * [`degree`] — the normalized-degree machinery of Kelsen's analysis:
//!   `N_j(x,H)`, `d_j(x,H)`, `Δ_i(H)` and `Δ(H)` (Section 3 of the paper).
//! * [`generate`] — seeded random hypergraph generators for every workload the
//!   experiments need (d-uniform, mixed-dimension, linear, planted,
//!   paper-regime `m ≤ n^β`, and small special families).
//! * [`params`] — the paper's parameter formulas (`α`, `β`, the dimension
//!   bound `d(n)`, the sampling probability `p(n)`), with the iterated-log
//!   helpers they are built from.
//! * [`io`] — a small text format for persisting hypergraphs, the
//!   checksummed write-ahead-log format (`write_wal`/`read_wal`) behind the
//!   serving layer's durable resident graphs, and the `HGCSR 1` binary
//!   snapshot format (`write_csr`/`read_csr`/`open_mapped`) that serves a
//!   graph zero-copy from a read-only memory mapping; all file writes are
//!   atomic and fsynced (write-temp-then-rename plus directory sync).
//! * [`stats`] — summary statistics used by examples and the experiment
//!   harness.
//!
//! # Conventions
//!
//! Vertices are dense indices `0..n` of type [`VertexId`] (`u32`). Edges are
//! sorted, duplicate-free vertex lists. The *dimension* of a hypergraph is the
//! maximum edge cardinality, matching the paper. An *independent set* is a set
//! of vertices containing no edge entirely; it is *maximal* if no vertex can be
//! added without swallowing an edge.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod active;
pub mod builder;
pub mod degree;
pub mod edit;
pub mod generate;
pub mod graph;
pub mod io;
pub mod params;
pub mod stats;
pub mod view;

#[cfg(feature = "reference-engine")]
pub use active::reference::ReferenceActiveHypergraph;
pub use active::{ActiveEngine, ActiveHypergraph};
pub use builder::HypergraphBuilder;
pub use edit::{apply_edits, EditError, GraphEdit};
pub use graph::{EdgeId, Hypergraph, VertexId};
pub use stats::HypergraphStats;
pub use view::HypergraphView;

/// Commonly used items, intended for `use hypergraph::prelude::*`.
pub mod prelude {
    #[cfg(feature = "reference-engine")]
    pub use crate::active::reference::ReferenceActiveHypergraph;
    pub use crate::active::{ActiveEngine, ActiveHypergraph};
    pub use crate::builder::HypergraphBuilder;
    pub use crate::degree;
    pub use crate::edit::{apply_edits, EditError, GraphEdit};
    pub use crate::generate;
    pub use crate::graph::{EdgeId, Hypergraph, VertexId};
    pub use crate::params;
    pub use crate::stats::HypergraphStats;
    pub use crate::view::HypergraphView;
}
