//! The [`HypergraphView`] trait: a read-only interface shared by the immutable
//! [`Hypergraph`] arena and the mutable
//! [`ActiveHypergraph`](crate::ActiveHypergraph) working copy, so that the
//! degree machinery, statistics and verification code can be written once.

use crate::graph::{Hypergraph, VertexId};

/// Read-only access to a (possibly partially consumed) hypergraph.
///
/// Implementors expose the *active* part of the structure: vertices that are
/// still undecided and edges that are still relevant. For the immutable
/// [`Hypergraph`] everything is active.
pub trait HypergraphView {
    /// Size of the vertex id space (ids are always `< id_space`).
    fn id_space(&self) -> usize;

    /// Number of active vertices.
    fn n_active_vertices(&self) -> usize;

    /// Number of active edges.
    fn n_active_edges(&self) -> usize;

    /// Returns `true` if vertex `v` is active.
    fn is_active(&self, v: VertexId) -> bool;

    /// The active vertices, in increasing id order.
    fn active_vertices(&self) -> Vec<VertexId>;

    /// Iterator over the active edges as sorted vertex slices.
    fn edge_slices(&self) -> Box<dyn Iterator<Item = &[VertexId]> + '_>;

    /// Maximum cardinality among active edges (0 if none).
    fn dimension(&self) -> usize {
        self.edge_slices().map(|e| e.len()).max().unwrap_or(0)
    }

    /// Storage tier of the view's base arena: `"mapped"` when the CSR arrays
    /// are served from a read-only file mapping
    /// ([`crate::io::open_mapped`]), `"owned"` otherwise. Working copies and
    /// derived views are always heap-owned, hence the default.
    fn storage_kind(&self) -> &'static str {
        "owned"
    }

    /// Returns `true` if the given vertex set contains no active edge
    /// entirely.
    fn is_independent_in_view(&self, set: &[VertexId]) -> bool {
        let mut member = vec![false; self.id_space()];
        for &v in set {
            member[v as usize] = true;
        }
        !self
            .edge_slices()
            .any(|e| e.iter().all(|&v| member[v as usize]))
    }
}

impl HypergraphView for Hypergraph {
    fn id_space(&self) -> usize {
        self.n_vertices()
    }

    fn n_active_vertices(&self) -> usize {
        self.n_vertices()
    }

    fn n_active_edges(&self) -> usize {
        self.n_edges()
    }

    fn is_active(&self, v: VertexId) -> bool {
        (v as usize) < self.n_vertices()
    }

    fn active_vertices(&self) -> Vec<VertexId> {
        self.vertices().collect()
    }

    fn edge_slices(&self) -> Box<dyn Iterator<Item = &[VertexId]> + '_> {
        Box::new(self.edges())
    }

    fn dimension(&self) -> usize {
        Hypergraph::dimension(self)
    }

    fn storage_kind(&self) -> &'static str {
        Hypergraph::storage_kind(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn hypergraph_implements_view() {
        let h = hypergraph_from_edges(5, vec![vec![0, 1, 2], vec![3, 4]]);
        let v: &dyn HypergraphView = &h;
        assert_eq!(v.id_space(), 5);
        assert_eq!(v.n_active_vertices(), 5);
        assert_eq!(v.n_active_edges(), 2);
        assert_eq!(v.dimension(), 3);
        assert!(v.is_active(4));
        assert_eq!(v.active_vertices(), vec![0, 1, 2, 3, 4]);
        let edges: Vec<Vec<u32>> = v.edge_slices().map(|e| e.to_vec()).collect();
        assert_eq!(edges, vec![vec![0, 1, 2], vec![3, 4]]);
        assert!(v.is_independent_in_view(&[0, 1, 3]));
        assert!(!v.is_independent_in_view(&[3, 4]));
    }
}
