//! Seeded random hypergraph generators — the workload generators behind every
//! experiment in EXPERIMENTS.md.
//!
//! All generators take a caller-supplied [`Rng`] so that experiments and tests
//! are reproducible (`rand_chacha::ChaCha8Rng::seed_from_u64` throughout the
//! workspace). Edge lists are always returned deduplicated via
//! [`HypergraphBuilder`], so the requested edge count is an upper bound when
//! collisions occur; generators resample to hit the exact count unless the
//! vertex set is too small for that to be possible.

use std::collections::BTreeSet;

use rand::seq::SliceRandom;
use rand::Rng;

use crate::builder::HypergraphBuilder;
use crate::graph::{Hypergraph, VertexId};
use crate::params::SblParams;

/// Draws a uniformly random `k`-subset of `0..n` (sorted).
///
/// Uses Floyd's algorithm: `O(k)` expected draws, no `O(n)` allocation.
pub fn random_subset<R: Rng + ?Sized>(rng: &mut R, n: usize, k: usize) -> Vec<VertexId> {
    assert!(k <= n, "cannot draw {k} distinct vertices out of {n}");
    let mut chosen: BTreeSet<VertexId> = BTreeSet::new();
    for j in (n - k)..n {
        let t = rng.gen_range(0..=j) as VertexId;
        if !chosen.insert(t) {
            chosen.insert(j as VertexId);
        }
    }
    chosen.into_iter().collect()
}

/// A `d`-uniform random hypergraph: `m` distinct edges, each a uniformly
/// random `d`-subset of the `n` vertices.
///
/// # Panics
/// Panics if `d > n`, or if `m` exceeds the number of distinct `d`-subsets
/// for small instances (detected by failing to make progress).
pub fn d_uniform<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize, d: usize) -> Hypergraph {
    assert!(d >= 1 && d <= n, "need 1 <= d <= n (d={d}, n={n})");
    let mut seen: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    let mut builder = HypergraphBuilder::with_capacity(n, m);
    let mut stall = 0usize;
    while seen.len() < m {
        let e = random_subset(rng, n, d);
        if seen.insert(e.clone()) {
            builder.add_edge(e);
            stall = 0;
        } else {
            stall += 1;
            assert!(
                stall < 10_000,
                "cannot place {m} distinct {d}-uniform edges on {n} vertices"
            );
        }
    }
    builder.build()
}

/// A mixed-dimension random hypergraph: `m` distinct edges whose sizes are
/// drawn uniformly from `sizes`.
pub fn mixed_dimension<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    sizes: &[usize],
) -> Hypergraph {
    assert!(!sizes.is_empty(), "need at least one edge size");
    assert!(
        sizes.iter().all(|&s| s >= 1 && s <= n),
        "every edge size must lie in 1..=n"
    );
    let mut seen: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    let mut builder = HypergraphBuilder::with_capacity(n, m);
    let mut stall = 0usize;
    while seen.len() < m {
        let &d = sizes.choose(rng).expect("sizes non-empty");
        let e = random_subset(rng, n, d);
        if seen.insert(e.clone()) {
            builder.add_edge(e);
            stall = 0;
        } else {
            stall += 1;
            assert!(
                stall < 10_000,
                "cannot place {m} distinct edges with sizes {sizes:?} on {n} vertices"
            );
        }
    }
    builder.build()
}

/// A random *linear* hypergraph (any two edges share at most one vertex) with
/// edges of size `d`. Generation is greedy-rejection: up to `max_tries`
/// candidate edges are drawn and kept only if they preserve linearity, so the
/// result may have fewer than `m` edges on dense parameter choices; the actual
/// count is whatever fits.
///
/// Linear hypergraphs are the class for which Łuczak–Szymańska proved an RNC
/// algorithm (referenced in the paper's related work); experiment E9 uses
/// these instances.
pub fn linear<R: Rng + ?Sized>(rng: &mut R, n: usize, m: usize, d: usize) -> Hypergraph {
    assert!(d >= 2 && d <= n, "need 2 <= d <= n");
    let mut edges: Vec<Vec<VertexId>> = Vec::with_capacity(m);
    // pair_used[(u,v)] marks that some edge already contains both u and v.
    let mut pair_used: BTreeSet<(VertexId, VertexId)> = BTreeSet::new();
    let max_tries = 50 * m + 1000;
    let mut tries = 0;
    while edges.len() < m && tries < max_tries {
        tries += 1;
        let e = random_subset(rng, n, d);
        let mut ok = true;
        'pairs: for i in 0..e.len() {
            for j in (i + 1)..e.len() {
                if pair_used.contains(&(e[i], e[j])) {
                    ok = false;
                    break 'pairs;
                }
            }
        }
        if ok {
            for i in 0..e.len() {
                for j in (i + 1)..e.len() {
                    pair_used.insert((e[i], e[j]));
                }
            }
            edges.push(e);
        }
    }
    let mut builder = HypergraphBuilder::with_capacity(n, edges.len());
    builder.add_edges(edges);
    builder.build()
}

/// A hypergraph in the *paper regime* of Theorem 1: `n` vertices and
/// `m = ⌊n^β⌋`-ish edges (clamped to at least `min_m`) with a mixture of edge
/// sizes between 2 and `max_edge_size`, so the instance is a *general*
/// hypergraph (no dimension restriction) that still satisfies `m ≤ n^β`.
///
/// Edge sizes are drawn from a truncated geometric-like distribution: small
/// edges are common, large edges are rare — mirroring the paper's point that
/// the sampled sub-hypergraph has small dimension with high probability while
/// the input hypergraph itself may have huge edges.
pub fn paper_regime<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    min_m: usize,
    max_edge_size: usize,
) -> Hypergraph {
    let params = SblParams::practical_default(n);
    let m = (params.m_bound.floor() as usize).clamp(min_m, 10 * n.max(1));
    let max_size = max_edge_size.clamp(2, n.max(2));
    let mut sizes = Vec::with_capacity(m);
    for _ in 0..m {
        // Truncated geometric with ratio 1/2 starting at 2.
        let mut s = 2usize;
        while s < max_size && rng.gen_bool(0.5) {
            s += 1;
        }
        sizes.push(s);
    }
    let mut builder = HypergraphBuilder::with_capacity(n, m);
    let mut seen: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    for &s in &sizes {
        // A bounded number of retries per edge; duplicates are just skipped
        // (the edge-count requirement is an upper bound, so losing a couple of
        // edges to collisions is fine).
        for _ in 0..20 {
            let e = random_subset(rng, n, s);
            if seen.insert(e.clone()) {
                builder.add_edge(e);
                break;
            }
        }
    }
    builder.build()
}

/// A hypergraph with a *planted* independent set: the vertices
/// `0..planted_size` never appear together as a full edge, so they form an
/// independent set (not necessarily maximal). Useful for correctness tests
/// that need a known certificate.
///
/// Every edge has size `d` and at least one vertex outside the planted set.
pub fn planted_independent<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    m: usize,
    d: usize,
    planted_size: usize,
) -> Hypergraph {
    assert!(
        planted_size < n,
        "planted set must leave at least one vertex"
    );
    assert!(d >= 2 && d <= n);
    let mut builder = HypergraphBuilder::with_capacity(n, m);
    let mut seen: BTreeSet<Vec<VertexId>> = BTreeSet::new();
    let mut stall = 0;
    while seen.len() < m {
        // Draw d-1 arbitrary vertices plus one guaranteed outside the planted set.
        let outside = rng.gen_range(planted_size..n) as VertexId;
        let mut e = random_subset(rng, n, d - 1);
        if !e.contains(&outside) {
            e.push(outside);
            e.sort_unstable();
        } else {
            continue;
        }
        if seen.insert(e.clone()) {
            builder.add_edge(e);
            stall = 0;
        } else {
            stall += 1;
            assert!(stall < 10_000, "cannot place {m} planted edges");
        }
    }
    builder.build()
}

/// Small deterministic families used by unit tests and the examples.
pub mod special {
    use super::*;

    /// The complete graph `K_n` as a 2-uniform hypergraph.
    pub fn complete_graph(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for u in 0..n as VertexId {
            for v in (u + 1)..n as VertexId {
                b.add_edge([u, v]);
            }
        }
        b.build()
    }

    /// A path `0 - 1 - … - (n-1)` as a 2-uniform hypergraph.
    pub fn path(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge([v - 1, v]);
        }
        b.build()
    }

    /// A cycle on `n ≥ 3` vertices.
    pub fn cycle(n: usize) -> Hypergraph {
        assert!(n >= 3, "a cycle needs at least 3 vertices");
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.add_edge([v, ((v as usize + 1) % n) as VertexId]);
        }
        b.build()
    }

    /// A star: vertex 0 joined to each of `1..n` by a 2-edge.
    pub fn star(n: usize) -> Hypergraph {
        assert!(n >= 2);
        let mut b = HypergraphBuilder::new(n);
        for v in 1..n as VertexId {
            b.add_edge([0, v]);
        }
        b.build()
    }

    /// One giant edge over the first `g` vertices, plus a star of `k` 2-edges
    /// hanging off vertex 0. The giant edge is far above any practical
    /// dimension cap, so SBL must reach it through sampling rounds; the star
    /// keeps vertex 0 high-degree. Stresses the mixed giant/small edge paths
    /// of the trimming and domination machinery.
    pub fn giant_edge_with_stars(g: usize, k: usize) -> Hypergraph {
        assert!(g >= 2, "the giant edge needs at least 2 vertices");
        let n = g + k;
        let mut b = HypergraphBuilder::new(n);
        b.add_edge(0..g as VertexId);
        for i in 0..k {
            b.add_edge([0, (g + i) as VertexId]);
        }
        b.build()
    }

    /// Every vertex trapped by its own singleton edge `{v}`: the unique MIS
    /// is empty. Stresses the singleton-removal path of every algorithm.
    pub fn all_singletons(n: usize) -> Hypergraph {
        let mut b = HypergraphBuilder::new(n);
        for v in 0..n as VertexId {
            b.add_edge([v]);
        }
        b.build()
    }

    /// The "sunflower" with `k` petals of size `d` sharing a common core of
    /// size `c`: every pair of petals intersects exactly in the core. With
    /// `c = 1` this is a linear hypergraph; it stresses the dominated-edge and
    /// degree machinery.
    pub fn sunflower(k: usize, d: usize, c: usize) -> Hypergraph {
        assert!(c < d, "core must be smaller than the petal size");
        let petal_extra = d - c;
        let n = c + k * petal_extra;
        let mut b = HypergraphBuilder::new(n);
        for i in 0..k {
            let mut e: Vec<VertexId> = (0..c as VertexId).collect();
            let start = c + i * petal_extra;
            e.extend((start..start + petal_extra).map(|v| v as VertexId));
            b.add_edge(e);
        }
        b.build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use rand_chacha::ChaCha8Rng;

    fn rng(seed: u64) -> ChaCha8Rng {
        ChaCha8Rng::seed_from_u64(seed)
    }

    #[test]
    fn random_subset_is_sorted_distinct_and_in_range() {
        let mut r = rng(1);
        for _ in 0..100 {
            let s = random_subset(&mut r, 50, 7);
            assert_eq!(s.len(), 7);
            assert!(s.windows(2).all(|w| w[0] < w[1]));
            assert!(s.iter().all(|&v| v < 50));
        }
        assert_eq!(random_subset(&mut r, 5, 5), vec![0, 1, 2, 3, 4]);
        assert!(random_subset(&mut r, 5, 0).is_empty());
    }

    #[test]
    fn special_adversarial_shapes() {
        let h = special::giant_edge_with_stars(10, 4);
        assert_eq!(h.n_vertices(), 14);
        assert_eq!(h.n_edges(), 5);
        assert_eq!(h.dimension(), 10);
        assert_eq!(h.degree(0), 5); // giant edge + all four star edges

        let h = special::all_singletons(6);
        assert_eq!(h.n_edges(), 6);
        assert_eq!(h.dimension(), 1);
        assert!(h.is_maximal_independent(&[]));
    }

    #[test]
    fn d_uniform_shape() {
        let mut r = rng(2);
        let h = d_uniform(&mut r, 100, 200, 3);
        assert_eq!(h.n_vertices(), 100);
        assert_eq!(h.n_edges(), 200);
        assert!(h.edges().all(|e| e.len() == 3));
    }

    #[test]
    fn d_uniform_is_deterministic_under_seed() {
        let h1 = d_uniform(&mut rng(7), 60, 80, 4);
        let h2 = d_uniform(&mut rng(7), 60, 80, 4);
        assert_eq!(h1, h2);
        let h3 = d_uniform(&mut rng(8), 60, 80, 4);
        assert_ne!(h1, h3);
    }

    #[test]
    fn mixed_dimension_sizes_respected() {
        let mut r = rng(3);
        let h = mixed_dimension(&mut r, 80, 120, &[2, 3, 5]);
        assert_eq!(h.n_edges(), 120);
        assert!(h.edges().all(|e| [2, 3, 5].contains(&e.len())));
        assert!(h.dimension() <= 5);
    }

    #[test]
    fn linear_hypergraph_property_holds() {
        let mut r = rng(4);
        let h = linear(&mut r, 120, 60, 3);
        assert!(h.n_edges() > 0);
        let edges: Vec<&[u32]> = h.edges().collect();
        for i in 0..edges.len() {
            for j in (i + 1)..edges.len() {
                let inter = edges[i].iter().filter(|v| edges[j].contains(v)).count();
                assert!(inter <= 1, "edges {i} and {j} share {inter} vertices");
            }
        }
    }

    #[test]
    fn paper_regime_respects_edge_bound_shape() {
        let mut r = rng(5);
        let h = paper_regime(&mut r, 500, 50, 12);
        assert_eq!(h.n_vertices(), 500);
        assert!(h.n_edges() >= 1);
        assert!(h.dimension() <= 12);
        assert!(h.dimension() >= 2);
    }

    #[test]
    fn planted_set_is_independent() {
        let mut r = rng(6);
        let planted = 40;
        let h = planted_independent(&mut r, 100, 300, 4, planted);
        let set: Vec<u32> = (0..planted as u32).collect();
        assert!(h.is_independent(&set));
        assert_eq!(h.n_edges(), 300);
    }

    #[test]
    fn special_families() {
        let k5 = special::complete_graph(5);
        assert_eq!(k5.n_edges(), 10);
        assert_eq!(k5.dimension(), 2);

        let p4 = special::path(4);
        assert_eq!(p4.n_edges(), 3);
        assert!(p4.is_maximal_independent(&[0, 2]) || p4.is_independent(&[0, 2]));

        let c5 = special::cycle(5);
        assert_eq!(c5.n_edges(), 5);
        assert!(c5.is_independent(&[0, 2]));
        assert!(!c5.is_independent(&[0, 1]));

        let s6 = special::star(6);
        assert_eq!(s6.n_edges(), 5);
        assert!(s6.is_maximal_independent(&[1, 2, 3, 4, 5]));
        assert!(s6.is_maximal_independent(&[0]));

        let sf = special::sunflower(4, 3, 1);
        assert_eq!(sf.n_edges(), 4);
        assert_eq!(sf.dimension(), 3);
        assert_eq!(sf.n_vertices(), 1 + 4 * 2);
    }

    #[test]
    #[should_panic(expected = "cannot place")]
    fn impossible_edge_count_panics() {
        let mut r = rng(9);
        // Only C(4,2)=6 distinct pairs exist; asking for 10 must fail loudly.
        let _ = d_uniform(&mut r, 4, 10, 2);
    }
}
