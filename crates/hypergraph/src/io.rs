//! Plain-text serialization of hypergraphs.
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # optional comment lines
//! n m
//! v1 v2 v3        <- one edge per line, whitespace-separated vertex ids
//! …
//! ```
//!
//! The header records the vertex count `n` and the edge count `m`; the edge
//! count is validated on read. Writing always emits edges sorted as stored.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;

/// Largest vertex count [`from_str`] accepts. Building the arena allocates
/// `O(n)` incidence arrays, so the parser refuses headers that would turn a
/// few hostile bytes into a multi-gigabyte allocation; 2²⁴ vertices (≈200 MB
/// of arena) is far beyond anything the text format is used for. Construct
/// larger hypergraphs programmatically via [`HypergraphBuilder`].
pub const MAX_TEXT_VERTICES: usize = 1 << 24;

/// Errors produced when parsing the text format.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed (including a vertex
    /// count beyond [`MAX_TEXT_VERTICES`]).
    BadHeader(String),
    /// A vertex id could not be parsed, overflows the id type, or is out of
    /// range.
    BadVertex {
        /// 1-based line number of the offending edge line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A vertex id appears twice on the same edge line.
    DuplicateVertex {
        /// 1-based line number of the offending edge line.
        line: usize,
        /// The repeated vertex id, in canonical decimal form.
        token: String,
    },
    /// The number of edge lines does not match the header.
    EdgeCountMismatch {
        /// Edge count announced in the header.
        expected: usize,
        /// Edge lines actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadVertex { line, token } => {
                write!(f, "bad vertex token {token:?} on line {line}")
            }
            ParseError::DuplicateVertex { line, token } => {
                write!(f, "vertex {token:?} repeated on line {line}")
            }
            ParseError::EdgeCountMismatch { expected, found } => {
                write!(f, "header announced {expected} edges but found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a hypergraph into the text format.
pub fn to_string(h: &Hypergraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.n_vertices(), h.n_edges());
    for e in h.edges() {
        let mut first = true;
        for &v in e {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a hypergraph from the text format.
///
/// The parser is total: malformed input of any shape (overflowing counts or
/// ids, non-numeric tokens, repeated vertices, wrong edge counts) is reported
/// as a [`ParseError`], never a panic. Blank lines, lines of only whitespace
/// (including a trailing `\r` from CRLF files) and `#` comments are ignored;
/// tokens may be separated by any amount of whitespace.
pub fn from_str(s: &str) -> Result<Hypergraph, ParseError> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let bad_header = || ParseError::BadHeader(header.to_string());
    let parse_count = |t: &str| -> Option<usize> {
        // Strict digits only: no signs, no leading `+`, no stray characters.
        if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        t.parse().ok()
    };
    let mut it = header.split_whitespace();
    let n: usize = it.next().and_then(parse_count).ok_or_else(bad_header)?;
    let m: usize = it.next().and_then(parse_count).ok_or_else(bad_header)?;
    if it.next().is_some() {
        return Err(bad_header());
    }
    // Vertex ids are u32, so a larger count cannot be represented (silently
    // truncating it would mis-validate every id against `n % 2^32`), and the
    // arena build allocates `O(n)` incidence arrays, so a hostile 13-byte
    // header must not be able to demand a multi-gigabyte graph either.
    if n > MAX_TEXT_VERTICES {
        return Err(bad_header());
    }

    // Validate the edge count against the actual lines *before* reserving
    // capacity, so a hostile header cannot trigger a huge or overflowing
    // allocation.
    let lines: Vec<(usize, &str)> = lines.collect();
    if lines.len() != m {
        return Err(ParseError::EdgeCountMismatch {
            expected: m,
            found: lines.len(),
        });
    }

    let mut builder = HypergraphBuilder::with_capacity(n, m);
    for (line_no, line) in lines {
        let mut edge: Vec<u32> = Vec::new();
        for token in line.split_whitespace() {
            let bad = || ParseError::BadVertex {
                line: line_no,
                token: token.to_string(),
            };
            if !token.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let v: u32 = token.parse().map_err(|_| bad())?;
            if (v as usize) >= n {
                return Err(bad());
            }
            edge.push(v);
        }
        // Duplicate detection via a sorted copy — `O(k log k)`, so a single
        // hostile line cannot trigger quadratic scanning.
        let mut sorted = edge.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(ParseError::DuplicateVertex {
                line: line_no,
                token: w[0].to_string(),
            });
        }
        builder.add_edge(edge);
    }
    Ok(builder.build())
}

/// Writes a hypergraph to a file in the text format.
pub fn write_file<P: AsRef<Path>>(h: &Hypergraph, path: P) -> io::Result<()> {
    fs::write(path, to_string(h))
}

/// Reads a hypergraph from a file in the text format.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Hypergraph> {
    let s = fs::read_to_string(path)?;
    from_str(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn round_trip() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![3, 5], vec![2, 4]]);
        let s = to_string(&h);
        let back = from_str(&s).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "# a comment\n\n3 2\n0 1\n# another\n1 2\n";
        let h = from_str(s).unwrap();
        assert_eq!(h.n_vertices(), 3);
        assert_eq!(h.n_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(from_str(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(from_str("x y\n"), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_str("3 1 9\n0 1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_vertex_and_range() {
        let err = from_str("3 1\n0 zebra\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        let err = from_str("3 1\n0 7\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
    }

    #[test]
    fn edge_count_mismatch() {
        let err = from_str("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::EdgeCountMismatch {
                expected: 2,
                found: 1
            }
        );
        // Too many edge lines is just as wrong as too few.
        let err = from_str("3 1\n0 1\n1 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::EdgeCountMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn overflowing_counts_are_rejected_not_truncated() {
        // n beyond u32::MAX must not be silently truncated to n % 2^32.
        assert!(matches!(
            from_str("4294967296 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        // A representable but hostile n must not force an O(n) arena
        // allocation from a few header bytes.
        assert!(matches!(
            from_str("4294967295 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        let at_cap = format!("{} 0\n", MAX_TEXT_VERTICES);
        assert_eq!(from_str(&at_cap).unwrap().n_vertices(), MAX_TEXT_VERTICES);
        // Counts beyond usize fail the same way.
        assert!(matches!(
            from_str("99999999999999999999999999 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        // A hostile edge count cannot trigger a huge reservation: the count
        // is checked against the actual lines first.
        assert_eq!(
            from_str("3 18446744073709551615\n0 1\n").unwrap_err(),
            ParseError::EdgeCountMismatch {
                expected: usize::MAX,
                found: 1
            }
        );
    }

    #[test]
    fn overflowing_and_signed_ids_are_rejected() {
        // An id beyond u32::MAX overflows the id type.
        let err = from_str("3 1\n0 4294967296\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        // Signs are not part of the grammar even though `u32::from_str`
        // would accept a leading `+`.
        let err = from_str("3 1\n0 +1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        let err = from_str("3 1\n0 -1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        assert!(matches!(from_str("+3 0\n"), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn duplicate_vertex_on_a_line_is_rejected() {
        let err = from_str("4 1\n1 2 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::DuplicateVertex {
                line: 2,
                token: "1".into()
            }
        );
    }

    #[test]
    fn whitespace_and_crlf_are_tolerated() {
        // Trailing whitespace, CRLF endings and whitespace-only lines all
        // parse to the same hypergraph.
        let unix = "3 2\n0 1\n1 2\n";
        let messy = "3 2\r\n0 1  \r\n   \r\n1 2\t\r\n";
        assert_eq!(from_str(unix).unwrap(), from_str(messy).unwrap());
    }

    #[test]
    fn fuzzish_inputs_never_panic() {
        // A grab-bag of malformed shapes: every one must produce Err, not a
        // panic or an abort.
        for s in [
            "",
            "\n\n\n",
            "# only comments\n",
            "1",
            "1 2 3\n",
            "x",
            "0 0 extra\n",
            "3 1\n\u{1F600}\n",
            "2 1\n0 0\n",
            "3 1\n2 1 0 2\n",
            "18446744073709551615 18446744073709551615\n",
            "3 3\n0\n1\n",
        ] {
            assert!(from_str(s).is_err(), "{s:?} unexpectedly parsed");
        }
    }

    #[test]
    fn round_trip_survives_reparse_of_own_output() {
        // to_string output is always re-parseable, including degenerate
        // hypergraphs.
        for h in [
            hypergraph_from_edges::<Vec<u32>>(0, vec![]),
            hypergraph_from_edges::<Vec<u32>>(5, vec![]),
            hypergraph_from_edges(3, vec![vec![0], vec![1], vec![2]]),
            hypergraph_from_edges(6, vec![vec![0, 1, 2, 3, 4, 5], vec![0, 5]]),
        ] {
            let back = from_str(&to_string(&h)).unwrap();
            assert_eq!(h, back);
        }
    }

    #[test]
    fn file_round_trip() {
        let h = hypergraph_from_edges(4, vec![vec![0, 3], vec![1, 2, 3]]);
        let dir = std::env::temp_dir().join("hypergraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.hg");
        write_file(&h, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(h, back);
        let _ = std::fs::remove_file(&path);
    }
}
