//! Plain-text serialization of hypergraphs, and the write-ahead-log format
//! behind the serving layer's durable resident graphs.
//!
//! # Graph text format
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # optional comment lines
//! n m
//! v1 v2 v3        <- one edge per line, whitespace-separated vertex ids
//! …
//! ```
//!
//! The header records the vertex count `n` and the edge count `m`; the edge
//! count is validated on read. Writing always emits edges sorted as stored.
//!
//! # WAL format
//!
//! [`write_wal`] / [`read_wal`] persist a `(base snapshot, edit log)` pair —
//! exactly the state an epoch-versioned registry needs to reproduce every
//! epoch of a mutable resident graph. The file is line-oriented ASCII:
//!
//! ```text
//! HGWAL 1 base_epoch n m log_len batches checksum     <- header
//! R base payload_len checksum                          <- base snapshot frame
//! <graph text format, payload_len bytes>
//! R batch edit_count payload_len checksum              <- one frame per batch
//! <one GraphEdit line per edit, payload_len bytes>
//! …
//! ```
//!
//! One record per **edit batch** (one applied mutation = one epoch bump), so
//! the file encodes epoch boundaries, not just the flat log: replaying the
//! first `k` batch records reproduces epoch `base_epoch + k` *and* its
//! `log_len` watermark. Every frame line carries an FNV-1a checksum of its
//! payload (the header's covers the header fields themselves), so a torn
//! tail — a crash mid-append leaving a partial final record — is **detected
//! and truncated at the last whole record** ([`Wal::batches_lost`]), never
//! parsed into garbage. Corruption *before* the tail (a bad header or base
//! record, a checksummed record whose body fails validation) is a
//! [`ParseError`]: there is no prefix worth salvaging, or the file is lying
//! about its own structure.
//!
//! # Binary CSR snapshot format (`HGCSR 1`)
//!
//! [`write_csr`] / [`read_csr`] / [`open_mapped`] persist a hypergraph's
//! four flat CSR arrays verbatim, little-endian, each laid out 64-byte
//! aligned behind a fixed 64-byte checksummed header:
//!
//! ```text
//! offset  0: "HGCSR 1\n"                    (8-byte magic + version)
//! offset  8: n, m, total, dim               (four u64 LE fields)
//! offset 40: payload checksum               (FNV-1a over the u32 words)
//! offset 48: header checksum                (FNV-1a over bytes 0..48)
//! offset 56: zero padding to 64
//! offset 64: edge_offsets  (m + 1 words)    then, each 64-byte aligned:
//!            edge_vertices (total words)
//!            inc_offsets   (n + 1 words)
//!            incident      (total words)
//! ```
//!
//! Unlike the WAL, a snapshot has no recoverable prefix: **any** damage —
//! torn tail, flipped bit, impossible sizes, structurally inconsistent
//! arrays — rejects the whole file as [`ParseError::BadCsrSnapshot`]
//! (surfaced as [`ReadError::Parse`]), never a panic and never a mis-parse.
//! [`open_mapped`] runs the same total validation against a read-only
//! memory mapping ([`pram::mmap`]) and then serves the graph *zero-copy*
//! straight from the mapping: bounds and alignment are checked before any
//! slice is formed, so a hostile snapshot cannot reach an unsafe path.
//! Because the incidence index is stored (not rebuilt) and validation is a
//! handful of linear scans, opening a mapped snapshot is far cheaper than
//! re-parsing text — the cold-start win the serving layer's
//! `persist_snapshot`/`open_mapped` tier is built on.
//!
//! # Atomicity and durability
//!
//! All file writes here ([`write_file`], [`write_wal`], [`write_csr`]) are
//! write-temp-then-rename: readers and crash recovery only ever observe the
//! old file or the complete new one, never an in-place partial write (which
//! for the text format could silently re-parse as a *smaller valid graph* —
//! e.g. `3 2\n0 1\n0 2 1\n` truncated after `0 2` drops vertex 1 from the
//! second edge). The temporary is `fsync`ed before the rename and the
//! containing directory is synced (best-effort) after it, closing the
//! power-loss window where a rename is journalled but the data blocks (or
//! the directory entry itself) never reach the platter — rename atomicity
//! alone only protects against *process* crashes, not the machine going
//! down.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::builder::HypergraphBuilder;
use crate::edit::GraphEdit;
use crate::graph::Hypergraph;

/// Largest vertex count [`from_str`] accepts. Building the arena allocates
/// `O(n)` incidence arrays, so the parser refuses headers that would turn a
/// few hostile bytes into a multi-gigabyte allocation; 2²⁴ vertices (≈200 MB
/// of arena) is far beyond anything the text format is used for. Construct
/// larger hypergraphs programmatically via [`HypergraphBuilder`].
pub const MAX_TEXT_VERTICES: usize = 1 << 24;

/// Errors produced when parsing the text format.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed (including a vertex
    /// count beyond [`MAX_TEXT_VERTICES`]).
    BadHeader(String),
    /// A vertex id could not be parsed, overflows the id type, or is out of
    /// range.
    BadVertex {
        /// 1-based line number of the offending edge line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A vertex id appears twice on the same edge line.
    DuplicateVertex {
        /// 1-based line number of the offending edge line.
        line: usize,
        /// The repeated vertex id, in canonical decimal form.
        token: String,
    },
    /// The number of edge lines does not match the header.
    EdgeCountMismatch {
        /// Edge count announced in the header.
        expected: usize,
        /// Edge lines actually present.
        found: usize,
    },
    /// The WAL header line is missing, malformed, fails its checksum, or
    /// announces an unsupported format version. Nothing after a bad header
    /// is trusted — there is no recoverable prefix.
    BadWalHeader(String),
    /// A WAL record is irrecoverably corrupt: the base snapshot record is
    /// torn or invalid (record 0), a record whose checksum *passed* fails
    /// content validation (the file is internally inconsistent, not torn),
    /// or whole records disagree with the header's totals.
    CorruptWalRecord {
        /// 0 for the base snapshot record, `k ≥ 1` for batch record `k`,
        /// `batches + 1` for trailing bytes after the last announced record.
        record: usize,
        /// What failed.
        detail: String,
    },
    /// An `HGCSR` binary snapshot is corrupt: bad magic or version, a
    /// checksum mismatch, a truncated or oversized file, impossible header
    /// sizes, or CSR arrays that fail structural validation. A snapshot has
    /// no recoverable prefix (unlike a torn WAL tail), so any damage
    /// rejects the whole file.
    BadCsrSnapshot(String),
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadVertex { line, token } => {
                write!(f, "bad vertex token {token:?} on line {line}")
            }
            ParseError::DuplicateVertex { line, token } => {
                write!(f, "vertex {token:?} repeated on line {line}")
            }
            ParseError::EdgeCountMismatch { expected, found } => {
                write!(f, "header announced {expected} edges but found {found}")
            }
            ParseError::BadWalHeader(h) => write!(f, "bad WAL header: {h}"),
            ParseError::CorruptWalRecord { record, detail } => {
                write!(f, "corrupt WAL record {record}: {detail}")
            }
            ParseError::BadCsrSnapshot(detail) => {
                write!(f, "bad HGCSR snapshot: {detail}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Errors from reading a graph or WAL file: the I/O failure and the parse
/// failure stay distinguishable (a missing file is not a corrupt file — the
/// registry restore path branches on exactly that).
///
/// The `From` impls keep the change non-breaking: `?` still converts into
/// `std::io::Error` for callers that flatten, while [`ParseError`]'s
/// structured context (line numbers, offending tokens, record indices)
/// survives for callers that match.
#[derive(Debug)]
pub enum ReadError {
    /// The file could not be read at all.
    Io(io::Error),
    /// The file was read but its contents are not a valid graph/WAL.
    Parse(ParseError),
}

impl std::fmt::Display for ReadError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReadError::Io(e) => write!(f, "read failed: {e}"),
            ReadError::Parse(e) => write!(f, "parse failed: {e}"),
        }
    }
}

impl std::error::Error for ReadError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ReadError::Io(e) => Some(e),
            ReadError::Parse(e) => Some(e),
        }
    }
}

impl From<io::Error> for ReadError {
    fn from(e: io::Error) -> Self {
        ReadError::Io(e)
    }
}

impl From<ParseError> for ReadError {
    fn from(e: ParseError) -> Self {
        ReadError::Parse(e)
    }
}

impl From<ReadError> for io::Error {
    fn from(e: ReadError) -> Self {
        match e {
            ReadError::Io(e) => e,
            ReadError::Parse(e) => io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        }
    }
}

/// Serializes a hypergraph into the text format.
pub fn to_string(h: &Hypergraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.n_vertices(), h.n_edges());
    for e in h.edges() {
        let mut first = true;
        for &v in e {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a hypergraph from the text format.
///
/// The parser is total: malformed input of any shape (overflowing counts or
/// ids, non-numeric tokens, repeated vertices, wrong edge counts) is reported
/// as a [`ParseError`], never a panic. Blank lines, lines of only whitespace
/// (including a trailing `\r` from CRLF files) and `#` comments are ignored;
/// tokens may be separated by any amount of whitespace.
pub fn from_str(s: &str) -> Result<Hypergraph, ParseError> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (_, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let bad_header = || ParseError::BadHeader(header.to_string());
    let parse_count = |t: &str| -> Option<usize> {
        // Strict digits only: no signs, no leading `+`, no stray characters.
        if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        t.parse().ok()
    };
    let mut it = header.split_whitespace();
    let n: usize = it.next().and_then(parse_count).ok_or_else(bad_header)?;
    let m: usize = it.next().and_then(parse_count).ok_or_else(bad_header)?;
    if it.next().is_some() {
        return Err(bad_header());
    }
    // Vertex ids are u32, so a larger count cannot be represented (silently
    // truncating it would mis-validate every id against `n % 2^32`), and the
    // arena build allocates `O(n)` incidence arrays, so a hostile 13-byte
    // header must not be able to demand a multi-gigabyte graph either.
    if n > MAX_TEXT_VERTICES {
        return Err(bad_header());
    }

    // Validate the edge count against the actual lines *before* reserving
    // capacity, so a hostile header cannot trigger a huge or overflowing
    // allocation.
    let lines: Vec<(usize, &str)> = lines.collect();
    if lines.len() != m {
        return Err(ParseError::EdgeCountMismatch {
            expected: m,
            found: lines.len(),
        });
    }

    let mut builder = HypergraphBuilder::with_capacity(n, m);
    for (line_no, line) in lines {
        let mut edge: Vec<u32> = Vec::new();
        for token in line.split_whitespace() {
            let bad = || ParseError::BadVertex {
                line: line_no,
                token: token.to_string(),
            };
            if !token.bytes().all(|b| b.is_ascii_digit()) {
                return Err(bad());
            }
            let v: u32 = token.parse().map_err(|_| bad())?;
            if (v as usize) >= n {
                return Err(bad());
            }
            edge.push(v);
        }
        // Duplicate detection via a sorted copy — `O(k log k)`, so a single
        // hostile line cannot trigger quadratic scanning.
        let mut sorted = edge.clone();
        sorted.sort_unstable();
        if let Some(w) = sorted.windows(2).find(|w| w[0] == w[1]) {
            return Err(ParseError::DuplicateVertex {
                line: line_no,
                token: w[0].to_string(),
            });
        }
        builder.add_edge(edge);
    }
    Ok(builder.build())
}

/// Writes `contents` to `path` atomically and durably: the bytes land in a
/// fresh temporary sibling first and are `fsync`ed there, then a `rename`
/// (atomic on POSIX filesystems within one directory) publishes them, and
/// finally the containing directory is synced best-effort. A process crash
/// at any point leaves either the old file or the complete new one — never
/// a truncated prefix, which for the text format could re-parse as a
/// smaller valid graph — and the syncs extend the guarantee to power loss:
/// without them a journalled rename can land while the file's data blocks
/// (or the new directory entry) never hit stable storage.
fn write_atomic(path: &Path, contents: &[u8]) -> io::Result<()> {
    use std::io::Write as _;
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT_TMP: AtomicU64 = AtomicU64::new(0);
    let file_name = path.file_name().ok_or_else(|| {
        io::Error::new(
            io::ErrorKind::InvalidInput,
            format!("cannot write to {}: no file name", path.display()),
        )
    })?;
    // Unique per process *and* per call, so concurrent writers targeting the
    // same destination never stomp each other's temporary.
    let tmp = path.with_file_name(format!(
        ".{}.tmp.{}.{}",
        file_name.to_string_lossy(),
        std::process::id(),
        NEXT_TMP.fetch_add(1, Ordering::Relaxed)
    ));
    let staged = (|| {
        let mut f = fs::File::create(&tmp)?;
        f.write_all(contents)?;
        // The data must be on stable storage *before* the rename publishes
        // it, or a power cut can leave the new name pointing at garbage.
        f.sync_all()
    })();
    staged.inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    fs::rename(&tmp, path).inspect_err(|_| {
        let _ = fs::remove_file(&tmp);
    })?;
    // Best-effort directory sync so the rename itself is durable. Failure is
    // ignored: some platforms/filesystems refuse to open or sync a
    // directory, and the write is already atomic and file-synced by now.
    if let Some(dir) = path.parent().filter(|d| !d.as_os_str().is_empty()) {
        if let Ok(d) = fs::File::open(dir) {
            let _ = d.sync_all();
        }
    }
    Ok(())
}

/// Writes a hypergraph to a file in the text format, atomically
/// (write-temp-then-rename — a crash mid-write can never leave a truncated
/// file behind).
pub fn write_file<P: AsRef<Path>>(h: &Hypergraph, path: P) -> io::Result<()> {
    write_atomic(path.as_ref(), to_string(h).as_bytes())
}

/// Reads a hypergraph from a file in the text format.
///
/// # Errors
/// [`ReadError::Io`] if the file cannot be read (missing, permissions, …);
/// [`ReadError::Parse`] with the parser's full structured context if it can
/// be read but is not a valid graph. Callers that want a plain
/// [`io::Error`] can still use `?` — `From<ReadError> for io::Error` keeps
/// the old flattening available without destroying the distinction here.
pub fn read_file<P: AsRef<Path>>(path: P) -> Result<Hypergraph, ReadError> {
    let s = fs::read_to_string(path)?;
    Ok(from_str(&s)?)
}

/// Magic + version of the WAL format emitted by [`write_wal`].
pub const WAL_VERSION: u32 = 1;

const WAL_MAGIC: &str = "HGWAL";

/// FNV-1a over the payload bytes — the per-record checksum of the WAL
/// format. Not cryptographic: it detects torn tails and bit rot, which is
/// the threat model for a local WAL (a hostile writer can forge whatever it
/// likes anyway, including the graph itself).
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A parsed write-ahead log: everything needed to reproduce an
/// epoch-versioned resident graph — the base snapshot, its epoch number, and
/// the edit batches (one per epoch bump) in application order.
#[derive(Debug)]
pub struct Wal {
    /// Epoch number of the base snapshot (0 for a never-compacted graph;
    /// compaction re-bases the log on a later epoch).
    pub base_epoch: u64,
    /// The graph at `base_epoch`.
    pub base: Hypergraph,
    /// The recovered edit batches: applying `batches[..k]` to `base`
    /// reproduces epoch `base_epoch + k`.
    pub batches: Vec<Vec<GraphEdit>>,
    /// Batches the header announced but that were lost to a torn tail (the
    /// file ended mid-record). 0 for a cleanly written file; a non-zero
    /// value means `batches` is the longest whole-record prefix.
    pub batches_lost: usize,
}

/// Serializes a WAL (see the [module docs](self#wal-format)) to a string.
/// `batches[k]` is the edit batch that produced epoch `base_epoch + k + 1`.
pub fn wal_to_string(base_epoch: u64, base: &Hypergraph, batches: &[&[GraphEdit]]) -> String {
    let log_len: usize = batches.iter().map(|b| b.len()).sum();
    let header = format!(
        "{WAL_MAGIC} {WAL_VERSION} {base_epoch} {} {} {log_len} {}",
        base.n_vertices(),
        base.n_edges(),
        batches.len(),
    );
    let mut out = String::new();
    let _ = writeln!(out, "{header} {:016x}", fnv1a(header.as_bytes()));
    let body = to_string(base);
    let _ = writeln!(out, "R base {} {:016x}", body.len(), fnv1a(body.as_bytes()));
    out.push_str(&body);
    let mut body = body;
    for batch in batches {
        body.clear();
        for edit in *batch {
            edit.encode_line(&mut body);
        }
        let _ = writeln!(
            out,
            "R batch {} {} {:016x}",
            batch.len(),
            body.len(),
            fnv1a(body.as_bytes())
        );
        out.push_str(&body);
    }
    out
}

/// Writes a WAL to a file, atomically (same write-temp-then-rename path as
/// [`write_file`]).
pub fn write_wal<P: AsRef<Path>>(
    path: P,
    base_epoch: u64,
    base: &Hypergraph,
    batches: &[&[GraphEdit]],
) -> io::Result<()> {
    write_atomic(
        path.as_ref(),
        wal_to_string(base_epoch, base, batches).as_bytes(),
    )
}

/// Parses WAL bytes (see the [module docs](self#wal-format)).
///
/// The parser is total and recovery-oriented: a torn tail — the file ends
/// mid-record, whether inside a frame line, a payload, or on a checksum
/// mismatch of the **final** bytes — truncates the log at the last whole
/// record ([`Wal::batches_lost`] counts the loss). A bad header, a torn or
/// invalid *base* record, a checksummed record whose body fails validation,
/// or whole records disagreeing with the header's totals are
/// [`ParseError`]s: such a file is corrupt, not merely torn, and no prefix
/// is trustworthy.
pub fn wal_from_bytes(bytes: &[u8]) -> Result<Wal, ParseError> {
    // Reads the line starting at `pos` (returning it without the newline and
    // advancing past it), or `None` if no complete line remains.
    fn take_line<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<&'a str> {
        let rest = &bytes[*pos..];
        let nl = rest.iter().position(|&b| b == b'\n')?;
        let line = std::str::from_utf8(&rest[..nl]).ok()?;
        *pos += nl + 1;
        Some(line)
    }
    fn parse_dec(t: &str) -> Option<u64> {
        if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
            return None;
        }
        t.parse().ok()
    }
    // Reads one record frame + payload. `Ok(None)` = torn at this record
    // (the caller decides whether that is recoverable); `Ok(Some(..))` hands
    // back the frame fields and the checksum-verified payload.
    fn take_record<'a>(bytes: &'a [u8], pos: &mut usize) -> Option<(Vec<&'a str>, &'a [u8])> {
        let mark = *pos;
        let frame = match take_line(bytes, pos) {
            Some(f) => f,
            None => {
                *pos = mark;
                return None;
            }
        };
        let fields: Vec<&str> = frame.split_whitespace().collect();
        let (Some(&"R"), Some(len), Some(sum)) = (
            fields.first(),
            fields
                .get(fields.len().wrapping_sub(2))
                .and_then(|t| parse_dec(t)),
            fields.last().and_then(|t| u64::from_str_radix(t, 16).ok()),
        ) else {
            *pos = mark;
            return None;
        };
        // A hostile length must not overflow the slice arithmetic: anything
        // beyond the remaining bytes is a torn (or lying) record either way.
        if len > (bytes.len() - *pos) as u64 {
            *pos = mark;
            return None;
        }
        let payload = &bytes[*pos..*pos + len as usize];
        if fnv1a(payload) != sum {
            *pos = mark;
            return None;
        }
        *pos += len as usize;
        Some((fields, payload))
    }

    let mut pos = 0usize;
    let header = take_line(bytes, &mut pos)
        .ok_or_else(|| ParseError::BadWalHeader("missing header line".into()))?;
    let fields: Vec<&str> = header.split_whitespace().collect();
    if fields.len() != 8 || fields[0] != WAL_MAGIC {
        return Err(ParseError::BadWalHeader(header.to_string()));
    }
    if parse_dec(fields[1]) != Some(WAL_VERSION as u64) {
        return Err(ParseError::BadWalHeader(format!(
            "unsupported WAL version {:?} (this reader understands {WAL_VERSION})",
            fields[1]
        )));
    }
    let [base_epoch, n, m, log_len, n_batches] = [2, 3, 4, 5, 6].map(|i| parse_dec(fields[i]));
    let (Some(base_epoch), Some(n), Some(m), Some(log_len), Some(n_batches)) =
        (base_epoch, n, m, log_len, n_batches)
    else {
        return Err(ParseError::BadWalHeader(header.to_string()));
    };
    let announced = u64::from_str_radix(fields[7], 16)
        .map_err(|_| ParseError::BadWalHeader(header.to_string()))?;
    let canonical = format!("{WAL_MAGIC} {WAL_VERSION} {base_epoch} {n} {m} {log_len} {n_batches}");
    if fnv1a(canonical.as_bytes()) != announced {
        return Err(ParseError::BadWalHeader(format!(
            "header checksum mismatch: {header}"
        )));
    }

    let corrupt = |record: usize, detail: String| ParseError::CorruptWalRecord { record, detail };
    let (fields, payload) = take_record(bytes, &mut pos)
        .ok_or_else(|| corrupt(0, "torn or missing base snapshot record".into()))?;
    if fields.len() != 4 || fields[1] != "base" {
        return Err(corrupt(0, format!("expected a base frame, got {fields:?}")));
    }
    let body = std::str::from_utf8(payload)
        .map_err(|_| corrupt(0, "base snapshot payload is not UTF-8".into()))?;
    let base = from_str(body).map_err(|e| corrupt(0, e.to_string()))?;
    if (base.n_vertices() as u64, base.n_edges() as u64) != (n, m) {
        return Err(corrupt(
            0,
            format!(
                "header announced a {n}-vertex {m}-edge base, payload has {} and {}",
                base.n_vertices(),
                base.n_edges()
            ),
        ));
    }

    let mut batches: Vec<Vec<GraphEdit>> = Vec::new();
    let mut recovered_len = 0u64;
    while (batches.len() as u64) < n_batches {
        let record = batches.len() + 1;
        let Some((fields, payload)) = take_record(bytes, &mut pos) else {
            // Torn tail: the file ends mid-record. Everything before this
            // record checksummed clean — recover that prefix.
            return Ok(Wal {
                base_epoch,
                base,
                batches_lost: n_batches as usize - batches.len(),
                batches,
            });
        };
        // From here on the record's checksum has passed: any mismatch means
        // the file is inconsistent with itself, which truncation cannot
        // explain — corrupt, not torn.
        if fields.len() != 5 || fields[1] != "batch" {
            return Err(corrupt(
                record,
                format!("expected a batch frame, got {fields:?}"),
            ));
        }
        let count = parse_dec(fields[2])
            .ok_or_else(|| corrupt(record, format!("bad edit count {:?}", fields[2])))?;
        let body = std::str::from_utf8(payload)
            .map_err(|_| corrupt(record, "batch payload is not UTF-8".into()))?;
        let batch = body
            .lines()
            .map(|line| {
                GraphEdit::decode_line(line)
                    .ok_or_else(|| corrupt(record, format!("bad edit line {line:?}")))
            })
            .collect::<Result<Vec<_>, _>>()?;
        if batch.len() as u64 != count {
            return Err(corrupt(
                record,
                format!("frame announced {count} edits, payload has {}", batch.len()),
            ));
        }
        recovered_len += count;
        batches.push(batch);
    }
    if recovered_len != log_len {
        return Err(corrupt(
            n_batches as usize,
            format!("header announced log length {log_len}, records sum to {recovered_len}"),
        ));
    }
    if pos != bytes.len() {
        return Err(corrupt(
            n_batches as usize + 1,
            format!(
                "{} trailing bytes after the last announced record",
                bytes.len() - pos
            ),
        ));
    }
    Ok(Wal {
        base_epoch,
        base,
        batches,
        batches_lost: 0,
    })
}

/// Reads a WAL from a file — [`wal_from_bytes`] over the file contents, with
/// the I/O/parse distinction of [`ReadError`] (a missing WAL and a corrupt
/// WAL are different recovery situations).
pub fn read_wal<P: AsRef<Path>>(path: P) -> Result<Wal, ReadError> {
    let bytes = fs::read(path)?;
    Ok(wal_from_bytes(&bytes)?)
}

/// Version of the binary CSR snapshot format emitted by [`write_csr`] (see
/// the [module docs](self#binary-csr-snapshot-format-hgcsr-1)).
pub const CSR_VERSION: u32 = 1;

/// 8-byte magic of the `HGCSR 1` format: tag and version in one greppable
/// token. A future version bumps the digit, so an old reader rejects a new
/// file at the magic check.
const CSR_MAGIC: [u8; 8] = *b"HGCSR 1\n";

const CSR_HEADER: usize = 64;

/// FNV-1a folded over whole `u32` words — the payload checksum of the HGCSR
/// format. One multiply per word instead of per byte keeps checksum cost a
/// quarter of the byte-wise WAL variant on multi-hundred-megabyte
/// snapshots, while still detecting any single flipped word. The *header*
/// checksum stays the byte-wise [`fnv1a`], exactly like `HGWAL`.
fn fnv1a_words(arrays: &[&[u32]]) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for arr in arrays {
        for &w in *arr {
            hash ^= w as u64;
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    hash
}

/// The validated header of an HGCSR file: sizes plus the byte offset and
/// word length of each of the four arrays.
struct CsrLayout {
    n: u32,
    m: usize,
    dim: u32,
    payload_sum: u64,
    /// `(byte_offset, words)` for edge_offsets, edge_vertices, inc_offsets,
    /// incident — in file order, each 64-byte aligned.
    arrays: [(usize, usize); 4],
}

/// Parses and fully validates an HGCSR header against the file's byte
/// length: magic, header checksum, zero padding, representable sizes, and
/// an *exact* total file length. Everything is checked with overflow-safe
/// arithmetic before any offset is used, so a hostile header can neither
/// panic nor place an array out of bounds.
fn csr_layout(bytes: &[u8]) -> Result<CsrLayout, ParseError> {
    let bad = |detail: &str| ParseError::BadCsrSnapshot(detail.to_string());
    if bytes.len() < CSR_HEADER {
        return Err(bad("file shorter than the 64-byte header"));
    }
    if bytes[..8] != CSR_MAGIC {
        return Err(bad("bad magic (not an HGCSR 1 file)"));
    }
    let field = |i: usize| u64::from_le_bytes(bytes[8 * i..8 * i + 8].try_into().unwrap());
    let (n, m, total, dim) = (field(1), field(2), field(3), field(4));
    let payload_sum = field(5);
    if fnv1a(&bytes[..48]) != field(6) {
        return Err(bad("header checksum mismatch"));
    }
    if bytes[56..64] != [0u8; 8] {
        return Err(bad("nonzero header padding"));
    }
    // Ids are u32 and offset *values* are u32 word counts, so every size
    // must be representable there; the total file length is then computed
    // in u64 (no overflow: all terms are < 2^35) and required to match the
    // actual length exactly — no trailing bytes, no truncation.
    if n > u32::MAX as u64 - 1 || m > u32::MAX as u64 - 1 || total > u32::MAX as u64 {
        return Err(bad("header sizes exceed the u32 id space"));
    }
    if dim > total {
        return Err(bad("dimension larger than the total edge size"));
    }
    let align64 = |x: u64| (x + 63) & !63;
    let lens = [m + 1, total, n + 1, total];
    let mut offsets = [0u64; 4];
    let mut cursor = CSR_HEADER as u64;
    for (i, words) in lens.iter().enumerate() {
        offsets[i] = cursor;
        cursor = align64(cursor + 4 * words);
    }
    // The file ends exactly where the last array does (the final array gets
    // no alignment tail).
    let expect_len = offsets[3] + 4 * lens[3];
    if bytes.len() as u64 != expect_len {
        return Err(bad("file length disagrees with the header sizes"));
    }
    // Alignment padding between arrays must be zero: with the padding
    // outside the payload checksum, this is what keeps *every* byte of the
    // file covered by some check.
    for i in 0..3 {
        let pad_start = (offsets[i] + 4 * lens[i]) as usize;
        let pad_end = offsets[i + 1] as usize;
        if bytes[pad_start..pad_end].iter().any(|&b| b != 0) {
            return Err(bad("nonzero alignment padding"));
        }
    }
    let arrays = [
        (offsets[0] as usize, lens[0] as usize),
        (offsets[1] as usize, lens[1] as usize),
        (offsets[2] as usize, lens[2] as usize),
        (offsets[3] as usize, lens[3] as usize),
    ];
    Ok(CsrLayout {
        n: n as u32,
        m: m as usize,
        dim: dim as u32,
        payload_sum,
        arrays,
    })
}

/// Structural validation of the four CSR arrays against the header sizes:
/// payload checksum, monotonic bounded offsets, sorted duplicate-free
/// non-empty edges with in-range ids, an exact `dim`, and an incidence
/// index that is *exactly* the canonical counting-sort of the edge arrays.
/// After this passes, the arrays are indistinguishable from the output of
/// the owned builder — which is what lets [`Hypergraph::from_validated_csr`]
/// adopt them (mapped or owned) without further checks.
fn validate_csr_arrays(
    lay: &CsrLayout,
    eo: &[u32],
    ev: &[u32],
    io_: &[u32],
    inc: &[u32],
) -> Result<(), ParseError> {
    let bad = |detail: &str| ParseError::BadCsrSnapshot(detail.to_string());
    if fnv1a_words(&[eo, ev, io_, inc]) != lay.payload_sum {
        return Err(bad("payload checksum mismatch"));
    }
    let (n, m, total) = (lay.n, lay.m, ev.len());
    if eo[0] != 0 || eo[m] as usize != total {
        return Err(bad("edge offsets do not span the vertex array"));
    }
    let mut dim = 0u32;
    for e in 0..m {
        let (lo, hi) = (eo[e] as usize, eo[e + 1] as usize);
        if hi <= lo || hi > total {
            return Err(bad("edge offsets not strictly increasing and bounded"));
        }
        let edge = &ev[lo..hi];
        if edge.windows(2).any(|w| w[0] >= w[1]) {
            return Err(bad("edge vertices not sorted and duplicate-free"));
        }
        if edge[hi - lo - 1] >= n {
            return Err(bad("edge vertex id out of range"));
        }
        dim = dim.max((hi - lo) as u32);
    }
    if dim != lay.dim {
        return Err(bad("header dimension disagrees with the edges"));
    }
    if io_[0] != 0 || io_[n as usize] as usize != total {
        return Err(bad("incidence offsets do not span the incident array"));
    }
    if io_.windows(2).any(|w| w[0] > w[1]) {
        return Err(bad("incidence offsets decrease"));
    }
    // Replay the builder's counting sort against the stored index: walking
    // edges in id order, each vertex's next incidence slot must hold
    // exactly this edge id. One O(total) pass proves the index is the
    // canonical one — not merely *a* consistent one.
    let mut cursor: Vec<u32> = io_[..n as usize].to_vec();
    for e in 0..m {
        for &v in &ev[eo[e] as usize..eo[e + 1] as usize] {
            let slot = cursor[v as usize];
            if slot >= io_[v as usize + 1] || inc[slot as usize] != e as u32 {
                return Err(bad("incidence index is not the counting-sort of the edges"));
            }
            cursor[v as usize] = slot + 1;
        }
    }
    if cursor.iter().zip(&io_[1..]).any(|(&c, &end)| c != end) {
        return Err(bad("incidence index has entries no edge accounts for"));
    }
    Ok(())
}

/// Serializes a hypergraph into the `HGCSR 1` binary snapshot format (see
/// the [module docs](self#binary-csr-snapshot-format-hgcsr-1)).
pub fn csr_to_bytes(h: &Hypergraph) -> Vec<u8> {
    let (eo, ev) = h.edge_csr();
    let (io_, inc) = h.incidence_csr();
    let align64 = |x: usize| (x + 63) & !63;
    let arrays: [&[u32]; 4] = [eo, ev, io_, inc];
    let mut offsets = [0usize; 4];
    let mut cursor = CSR_HEADER;
    for (i, arr) in arrays.iter().enumerate() {
        offsets[i] = cursor;
        cursor = align64(cursor + 4 * arr.len());
    }
    let file_len = offsets[3] + 4 * inc.len();
    let mut out = vec![0u8; file_len];
    out[..8].copy_from_slice(&CSR_MAGIC);
    for (i, value) in [
        h.n_vertices() as u64,
        h.n_edges() as u64,
        h.total_edge_size() as u64,
        h.dimension() as u64,
        fnv1a_words(&arrays),
    ]
    .into_iter()
    .enumerate()
    {
        out[8 * (i + 1)..8 * (i + 2)].copy_from_slice(&value.to_le_bytes());
    }
    let header_sum = fnv1a(&out[..48]);
    out[48..56].copy_from_slice(&header_sum.to_le_bytes());
    for (i, arr) in arrays.iter().enumerate() {
        for (w, word) in arr.iter().enumerate() {
            let at = offsets[i] + 4 * w;
            out[at..at + 4].copy_from_slice(&word.to_le_bytes());
        }
    }
    out
}

/// Writes a hypergraph to `path` as an `HGCSR 1` binary snapshot,
/// atomically and durably (the same fsynced write-temp-then-rename path as
/// [`write_file`] and [`write_wal`]).
pub fn write_csr<P: AsRef<Path>>(h: &Hypergraph, path: P) -> io::Result<()> {
    write_atomic(path.as_ref(), &csr_to_bytes(h))
}

/// Parses an `HGCSR 1` snapshot from bytes into an **owned** hypergraph
/// (the portable decode path — [`open_mapped`] is the zero-copy one).
///
/// Total: any corruption — truncation, bit flips, hostile sizes,
/// structurally inconsistent arrays — is a [`ParseError::BadCsrSnapshot`],
/// never a panic. Allocation is bounded by the file length (the exact-size
/// check in the header validation runs before any array is materialized).
pub fn csr_from_bytes(bytes: &[u8]) -> Result<Hypergraph, ParseError> {
    let lay = csr_layout(bytes)?;
    let decode = |(off, words): (usize, usize)| -> Vec<u32> {
        (0..words)
            .map(|w| {
                let at = off + 4 * w;
                u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap())
            })
            .collect()
    };
    let [eo, ev, io_, inc] = lay.arrays.map(decode);
    validate_csr_arrays(&lay, &eo, &ev, &io_, &inc)?;
    Ok(Hypergraph::from_validated_csr(
        lay.n,
        lay.dim,
        eo.into(),
        ev.into(),
        io_.into(),
        inc.into(),
    ))
}

/// Reads an `HGCSR 1` snapshot file into an owned hypergraph.
pub fn read_csr<P: AsRef<Path>>(path: P) -> Result<Hypergraph, ReadError> {
    let bytes = fs::read(path)?;
    Ok(csr_from_bytes(&bytes)?)
}

/// Opens an `HGCSR 1` snapshot file as a **memory-mapped** hypergraph: the
/// four CSR arrays are served directly from a shared read-only mapping
/// ([`pram::mmap::MmapFile`]) with no copy — engine construction and every
/// query run on the mapped words, and cloning the graph (or its snapshot
/// `Arc`s in a registry) bumps the mapping's reference count.
///
/// Validation is identical to [`read_csr`] — checksums plus full structural
/// checks, all bounds-verified before any slice is formed — so a corrupt,
/// truncated or hostile file fails as [`ReadError::Parse`], never
/// undefined behaviour. On big-endian targets (where the little-endian
/// words cannot be reinterpreted in place) this decodes into owned storage
/// instead; [`Hypergraph::is_mapped`] reports which tier was chosen.
pub fn open_mapped<P: AsRef<Path>>(path: P) -> Result<Hypergraph, ReadError> {
    #[cfg(target_endian = "little")]
    {
        use pram::mmap::{MmapFile, U32Span};
        let map = MmapFile::open(path.as_ref())?;
        let lay = csr_layout(map.bytes())?;
        let span = |(off, words): (usize, usize)| -> Result<U32Span, ParseError> {
            // Unreachable after csr_layout's exact-length check (offsets are
            // 64-byte aligned and in bounds), but kept total: a span failure
            // is a parse error, never a panic.
            U32Span::new(std::sync::Arc::clone(&map), off, words)
                .ok_or_else(|| ParseError::BadCsrSnapshot("array window out of bounds".into()))
        };
        let [eo, ev, io_, inc] = [
            span(lay.arrays[0])?,
            span(lay.arrays[1])?,
            span(lay.arrays[2])?,
            span(lay.arrays[3])?,
        ];
        validate_csr_arrays(
            &lay,
            eo.as_slice(),
            ev.as_slice(),
            io_.as_slice(),
            inc.as_slice(),
        )?;
        Ok(Hypergraph::from_validated_csr(
            lay.n,
            lay.dim,
            crate::graph::CsrStorage::Mapped(eo),
            crate::graph::CsrStorage::Mapped(ev),
            crate::graph::CsrStorage::Mapped(io_),
            crate::graph::CsrStorage::Mapped(inc),
        ))
    }
    #[cfg(not(target_endian = "little"))]
    {
        read_csr(path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn round_trip() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![3, 5], vec![2, 4]]);
        let s = to_string(&h);
        let back = from_str(&s).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "# a comment\n\n3 2\n0 1\n# another\n1 2\n";
        let h = from_str(s).unwrap();
        assert_eq!(h.n_vertices(), 3);
        assert_eq!(h.n_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(from_str(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(from_str("x y\n"), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_str("3 1 9\n0 1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_vertex_and_range() {
        let err = from_str("3 1\n0 zebra\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        let err = from_str("3 1\n0 7\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
    }

    #[test]
    fn edge_count_mismatch() {
        let err = from_str("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::EdgeCountMismatch {
                expected: 2,
                found: 1
            }
        );
        // Too many edge lines is just as wrong as too few.
        let err = from_str("3 1\n0 1\n1 2\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::EdgeCountMismatch {
                expected: 1,
                found: 2
            }
        );
    }

    #[test]
    fn overflowing_counts_are_rejected_not_truncated() {
        // n beyond u32::MAX must not be silently truncated to n % 2^32.
        assert!(matches!(
            from_str("4294967296 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        // A representable but hostile n must not force an O(n) arena
        // allocation from a few header bytes.
        assert!(matches!(
            from_str("4294967295 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        let at_cap = format!("{} 0\n", MAX_TEXT_VERTICES);
        assert_eq!(from_str(&at_cap).unwrap().n_vertices(), MAX_TEXT_VERTICES);
        // Counts beyond usize fail the same way.
        assert!(matches!(
            from_str("99999999999999999999999999 0\n"),
            Err(ParseError::BadHeader(_))
        ));
        // A hostile edge count cannot trigger a huge reservation: the count
        // is checked against the actual lines first.
        assert_eq!(
            from_str("3 18446744073709551615\n0 1\n").unwrap_err(),
            ParseError::EdgeCountMismatch {
                expected: usize::MAX,
                found: 1
            }
        );
    }

    #[test]
    fn overflowing_and_signed_ids_are_rejected() {
        // An id beyond u32::MAX overflows the id type.
        let err = from_str("3 1\n0 4294967296\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        // Signs are not part of the grammar even though `u32::from_str`
        // would accept a leading `+`.
        let err = from_str("3 1\n0 +1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        let err = from_str("3 1\n0 -1\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        assert!(matches!(from_str("+3 0\n"), Err(ParseError::BadHeader(_))));
    }

    #[test]
    fn duplicate_vertex_on_a_line_is_rejected() {
        let err = from_str("4 1\n1 2 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::DuplicateVertex {
                line: 2,
                token: "1".into()
            }
        );
    }

    #[test]
    fn whitespace_and_crlf_are_tolerated() {
        // Trailing whitespace, CRLF endings and whitespace-only lines all
        // parse to the same hypergraph.
        let unix = "3 2\n0 1\n1 2\n";
        let messy = "3 2\r\n0 1  \r\n   \r\n1 2\t\r\n";
        assert_eq!(from_str(unix).unwrap(), from_str(messy).unwrap());
    }

    #[test]
    fn fuzzish_inputs_never_panic() {
        // A grab-bag of malformed shapes: every one must produce Err, not a
        // panic or an abort.
        for s in [
            "",
            "\n\n\n",
            "# only comments\n",
            "1",
            "1 2 3\n",
            "x",
            "0 0 extra\n",
            "3 1\n\u{1F600}\n",
            "2 1\n0 0\n",
            "3 1\n2 1 0 2\n",
            "18446744073709551615 18446744073709551615\n",
            "3 3\n0\n1\n",
        ] {
            assert!(from_str(s).is_err(), "{s:?} unexpectedly parsed");
        }
    }

    #[test]
    fn round_trip_survives_reparse_of_own_output() {
        // to_string output is always re-parseable, including degenerate
        // hypergraphs.
        for h in [
            hypergraph_from_edges::<Vec<u32>>(0, vec![]),
            hypergraph_from_edges::<Vec<u32>>(5, vec![]),
            hypergraph_from_edges(3, vec![vec![0], vec![1], vec![2]]),
            hypergraph_from_edges(6, vec![vec![0, 1, 2, 3, 4, 5], vec![0, 5]]),
        ] {
            let back = from_str(&to_string(&h)).unwrap();
            assert_eq!(h, back);
        }
    }

    #[test]
    fn file_round_trip() {
        let h = hypergraph_from_edges(4, vec![vec![0, 3], vec![1, 2, 3]]);
        let dir = std::env::temp_dir().join("hypergraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.hg");
        write_file(&h, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(h, back);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn read_file_distinguishes_missing_from_corrupt() {
        let dir = std::env::temp_dir().join("hypergraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let missing = dir.join("no-such-file.hg");
        assert!(matches!(read_file(&missing), Err(ReadError::Io(_))));
        let corrupt = dir.join("corrupt.hg");
        std::fs::write(&corrupt, "not a graph\n").unwrap();
        match read_file(&corrupt) {
            Err(ReadError::Parse(ParseError::BadHeader(_))) => {}
            other => panic!("expected a structured parse error, got {other:?}"),
        }
        // The flattening escape hatch still works and keeps the kinds apart.
        let as_io: io::Error = read_file(&corrupt).unwrap_err().into();
        assert_eq!(as_io.kind(), io::ErrorKind::InvalidData);
        let as_io: io::Error = read_file(&missing).unwrap_err().into();
        assert_eq!(as_io.kind(), io::ErrorKind::NotFound);
        let _ = std::fs::remove_file(&corrupt);
    }

    // The in-place-write hazard this module's atomic writes exist to prevent:
    // a prefix of a valid file can itself be a valid, *smaller* graph.
    #[test]
    fn truncated_text_can_parse_as_a_smaller_valid_graph() {
        let full = "3 2\n0 1\n0 2 1\n";
        let torn = &full[..full.len() - 3]; // "3 2\n0 1\n0 2"
        let h = from_str(torn).expect("the torn prefix is a well-formed file");
        assert_eq!(h.n_edges(), 2);
        assert_eq!(h.edge(1), &[0, 2]); // silently lost vertex 1
    }

    #[test]
    fn write_file_replaces_atomically_and_leaves_no_temp_behind() {
        let dir = std::env::temp_dir().join("hypergraph_io_atomic_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("atomic.hg");
        let old = hypergraph_from_edges(3, vec![vec![0, 1]]);
        let new = hypergraph_from_edges(5, vec![vec![0, 1], vec![2, 3, 4]]);
        write_file(&old, &path).unwrap();
        write_file(&new, &path).unwrap();
        assert_eq!(read_file(&path).unwrap(), new);
        // No temporary siblings survive a successful write.
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .filter(|e| e.file_name().to_string_lossy().contains(".tmp."))
            .collect();
        assert!(leftovers.is_empty(), "leftover temp files: {leftovers:?}");
        let _ = std::fs::remove_dir_all(&dir);
    }

    // A simulated crash mid-write: the temporary holds the partial bytes, the
    // destination is untouched until the rename — so a reader never observes
    // the silently-smaller graph from the test above.
    #[test]
    fn partial_write_never_surfaces_as_a_smaller_graph() {
        let dir = std::env::temp_dir().join("hypergraph_io_crash_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("crash.hg");
        let committed = hypergraph_from_edges(3, vec![vec![0, 1], vec![0, 1, 2]]);
        write_file(&committed, &path).unwrap();
        // Crash simulation: the partial contents of a larger replacement land
        // in a temp sibling (as write_atomic would stage them) and the
        // process dies before the rename.
        let replacement = to_string(&hypergraph_from_edges(3, vec![vec![0, 1], vec![0, 2, 1]]));
        for cut in 0..replacement.len() {
            std::fs::write(dir.join(".crash.hg.tmp.dead.0"), &replacement[..cut]).unwrap();
            // The destination still reads as the committed graph, whatever
            // the torn temp contains.
            assert_eq!(read_file(&path).unwrap(), committed);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    fn demo_batches() -> Vec<Vec<GraphEdit>> {
        vec![
            vec![
                GraphEdit::AddEdge(vec![0, 3]),
                GraphEdit::GrowVertices(2),
                GraphEdit::AddEdge(vec![4, 5]),
            ],
            vec![GraphEdit::RemoveEdge(vec![0, 1])],
            vec![
                GraphEdit::AddEdge(vec![1, 2, 3]),
                GraphEdit::RemoveEdge(vec![4, 5]),
            ],
        ]
    }

    #[test]
    fn wal_round_trip() {
        let base = hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
        let batches = demo_batches();
        let refs: Vec<&[GraphEdit]> = batches.iter().map(|b| b.as_slice()).collect();
        let s = wal_to_string(7, &base, &refs);
        let wal = wal_from_bytes(s.as_bytes()).unwrap();
        assert_eq!(wal.base_epoch, 7);
        assert_eq!(wal.base, base);
        assert_eq!(wal.batches, batches);
        assert_eq!(wal.batches_lost, 0);
        // And through a file, atomically.
        let dir = std::env::temp_dir().join("hypergraph_io_wal_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round.wal");
        write_wal(&path, 7, &base, &refs).unwrap();
        let wal = read_wal(&path).unwrap();
        assert_eq!((wal.base_epoch, wal.batches), (7, batches));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wal_with_no_batches_round_trips() {
        let base = hypergraph_from_edges(2, vec![vec![0, 1]]);
        let s = wal_to_string(0, &base, &[]);
        let wal = wal_from_bytes(s.as_bytes()).unwrap();
        assert_eq!(wal.base, base);
        assert!(wal.batches.is_empty());
        assert_eq!(wal.batches_lost, 0);
    }

    // Truncation at *every* byte boundary: the parser must recover the
    // longest whole-record prefix (torn tail) or report a ParseError (torn
    // header/base) — never panic, and never mis-parse a partial record as a
    // shorter-but-valid one.
    #[test]
    fn wal_truncated_at_every_byte_recovers_a_whole_record_prefix() {
        let base = hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
        let batches = demo_batches();
        let refs: Vec<&[GraphEdit]> = batches.iter().map(|b| b.as_slice()).collect();
        let s = wal_to_string(0, &base, &refs);
        let bytes = s.as_bytes();
        let mut recovered_counts = std::collections::BTreeSet::new();
        for cut in 0..bytes.len() {
            match wal_from_bytes(&bytes[..cut]) {
                Ok(wal) => {
                    // Whatever survived must be an exact prefix of the
                    // original batches — recovery never invents edits.
                    assert!(wal.batches.len() < batches.len(), "cut {cut}");
                    assert_eq!(wal.batches_lost, batches.len() - wal.batches.len());
                    assert_eq!(wal.batches[..], batches[..wal.batches.len()], "cut {cut}");
                    assert_eq!(wal.base, base, "cut {cut}");
                    recovered_counts.insert(wal.batches.len());
                }
                Err(_) => {
                    // Acceptable only while the header/base region is torn —
                    // i.e. before the first batch record is whole.
                }
            }
        }
        // Every proper prefix length was reachable by some cut.
        assert_eq!(
            recovered_counts.into_iter().collect::<Vec<_>>(),
            vec![0, 1, 2],
            "some whole-record prefix was never recovered"
        );
        // The untruncated file still parses in full.
        assert_eq!(wal_from_bytes(bytes).unwrap().batches, batches);
    }

    #[test]
    fn wal_corruption_is_an_error_not_a_truncation() {
        let base = hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
        let batches = demo_batches();
        let refs: Vec<&[GraphEdit]> = batches.iter().map(|b| b.as_slice()).collect();
        let good = wal_to_string(3, &base, &refs);

        // Bad magic / version / header checksum.
        assert!(matches!(
            wal_from_bytes(b"NOTWAL 1 0 0 0 0 0 0\n"),
            Err(ParseError::BadWalHeader(_))
        ));
        assert!(matches!(
            wal_from_bytes(good.replacen("HGWAL 1", "HGWAL 2", 1).as_bytes()),
            Err(ParseError::BadWalHeader(_))
        ));
        assert!(matches!(
            wal_from_bytes(good.replacen(" 3 ", " 4 ", 1).as_bytes()),
            Err(ParseError::BadWalHeader(_)) // checksum no longer matches
        ));

        // Trailing garbage after the announced records.
        let mut trailing = good.clone();
        trailing.push_str("R batch 0 0 0\n");
        assert!(matches!(
            wal_from_bytes(trailing.as_bytes()),
            Err(ParseError::CorruptWalRecord { .. })
        ));

        // A checksummed record whose body fails validation: corrupt the edit
        // count while fixing the frame so the checksum still passes.
        let broken = good.replacen("R batch 1 ", "R batch 2 ", 1);
        assert!(matches!(
            wal_from_bytes(broken.as_bytes()),
            Err(ParseError::CorruptWalRecord { record: 2, .. })
        ));
    }

    #[test]
    fn wal_bit_flips_never_panic() {
        let base = hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
        let batches = demo_batches();
        let refs: Vec<&[GraphEdit]> = batches.iter().map(|b| b.as_slice()).collect();
        let good = wal_to_string(0, &base, &refs);
        for i in 0..good.len() {
            let mut bytes = good.clone().into_bytes();
            bytes[i] ^= 0x20;
            // Any outcome is fine except a panic or invented edits: whatever
            // still parses must be an exact prefix of the true batches (a
            // flipped record fails its checksum, so it can only be dropped,
            // never altered — barring an FNV collision, which a single-bit
            // flip cannot produce here).
            if let Ok(wal) = wal_from_bytes(&bytes) {
                assert_eq!(wal.batches[..], batches[..wal.batches.len()], "flip at {i}");
            }
        }
    }
}
