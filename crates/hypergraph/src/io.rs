//! Plain-text serialization of hypergraphs.
//!
//! The format is line-oriented and human-editable:
//!
//! ```text
//! # optional comment lines
//! n m
//! v1 v2 v3        <- one edge per line, whitespace-separated vertex ids
//! …
//! ```
//!
//! The header records the vertex count `n` and the edge count `m`; the edge
//! count is validated on read. Writing always emits edges sorted as stored.

use std::fmt::Write as _;
use std::fs;
use std::io;
use std::path::Path;

use crate::builder::HypergraphBuilder;
use crate::graph::Hypergraph;

/// Errors produced when parsing the text format.
#[derive(Debug, PartialEq, Eq)]
pub enum ParseError {
    /// The header line `n m` is missing or malformed.
    BadHeader(String),
    /// A vertex id could not be parsed or is out of range.
    BadVertex {
        /// 1-based line number of the offending edge line.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The number of edge lines does not match the header.
    EdgeCountMismatch {
        /// Edge count announced in the header.
        expected: usize,
        /// Edge lines actually present.
        found: usize,
    },
}

impl std::fmt::Display for ParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseError::BadHeader(h) => write!(f, "bad header line: {h:?}"),
            ParseError::BadVertex { line, token } => {
                write!(f, "bad vertex token {token:?} on line {line}")
            }
            ParseError::EdgeCountMismatch { expected, found } => {
                write!(f, "header announced {expected} edges but found {found}")
            }
        }
    }
}

impl std::error::Error for ParseError {}

/// Serializes a hypergraph into the text format.
pub fn to_string(h: &Hypergraph) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "{} {}", h.n_vertices(), h.n_edges());
    for e in h.edges() {
        let mut first = true;
        for &v in e {
            if !first {
                out.push(' ');
            }
            let _ = write!(out, "{v}");
            first = false;
        }
        out.push('\n');
    }
    out
}

/// Parses a hypergraph from the text format.
pub fn from_str(s: &str) -> Result<Hypergraph, ParseError> {
    let mut lines = s
        .lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l.trim()))
        .filter(|(_, l)| !l.is_empty() && !l.starts_with('#'));

    let (hline_no, header) = lines
        .next()
        .ok_or_else(|| ParseError::BadHeader("<empty input>".into()))?;
    let mut it = header.split_whitespace();
    let n: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    let m: usize = it
        .next()
        .and_then(|t| t.parse().ok())
        .ok_or_else(|| ParseError::BadHeader(header.to_string()))?;
    if it.next().is_some() {
        return Err(ParseError::BadHeader(header.to_string()));
    }
    let _ = hline_no;

    let mut builder = HypergraphBuilder::with_capacity(n, m);
    let mut found = 0usize;
    for (line_no, line) in lines {
        let mut edge = Vec::new();
        for token in line.split_whitespace() {
            let v: u32 = token.parse().map_err(|_| ParseError::BadVertex {
                line: line_no,
                token: token.to_string(),
            })?;
            if (v as usize) >= n {
                return Err(ParseError::BadVertex {
                    line: line_no,
                    token: token.to_string(),
                });
            }
            edge.push(v);
        }
        builder.add_edge(edge);
        found += 1;
    }
    if found != m {
        return Err(ParseError::EdgeCountMismatch { expected: m, found });
    }
    Ok(builder.build())
}

/// Writes a hypergraph to a file in the text format.
pub fn write_file<P: AsRef<Path>>(h: &Hypergraph, path: P) -> io::Result<()> {
    fs::write(path, to_string(h))
}

/// Reads a hypergraph from a file in the text format.
pub fn read_file<P: AsRef<Path>>(path: P) -> io::Result<Hypergraph> {
    let s = fs::read_to_string(path)?;
    from_str(&s).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    #[test]
    fn round_trip() {
        let h = hypergraph_from_edges(6, vec![vec![0, 1, 2], vec![3, 5], vec![2, 4]]);
        let s = to_string(&h);
        let back = from_str(&s).unwrap();
        assert_eq!(h, back);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let s = "# a comment\n\n3 2\n0 1\n# another\n1 2\n";
        let h = from_str(s).unwrap();
        assert_eq!(h.n_vertices(), 3);
        assert_eq!(h.n_edges(), 2);
    }

    #[test]
    fn bad_header() {
        assert!(matches!(from_str(""), Err(ParseError::BadHeader(_))));
        assert!(matches!(from_str("x y\n"), Err(ParseError::BadHeader(_))));
        assert!(matches!(
            from_str("3 1 9\n0 1\n"),
            Err(ParseError::BadHeader(_))
        ));
    }

    #[test]
    fn bad_vertex_and_range() {
        let err = from_str("3 1\n0 zebra\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
        let err = from_str("3 1\n0 7\n").unwrap_err();
        assert!(matches!(err, ParseError::BadVertex { .. }));
    }

    #[test]
    fn edge_count_mismatch() {
        let err = from_str("3 2\n0 1\n").unwrap_err();
        assert_eq!(
            err,
            ParseError::EdgeCountMismatch {
                expected: 2,
                found: 1
            }
        );
    }

    #[test]
    fn file_round_trip() {
        let h = hypergraph_from_edges(4, vec![vec![0, 3], vec![1, 2, 3]]);
        let dir = std::env::temp_dir().join("hypergraph_io_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("toy.hg");
        write_file(&h, &path).unwrap();
        let back = read_file(&path).unwrap();
        assert_eq!(h, back);
        let _ = std::fs::remove_file(&path);
    }
}
