//! Graph-level edit scripts: the mutation vocabulary behind the serving
//! layer's epoch-versioned resident registry.
//!
//! A [`GraphEdit`] describes one structural change to a [`Hypergraph`] —
//! add an edge, remove an edge, or extend the vertex id space — and
//! [`apply_edits`] replays a script of them against an existing graph,
//! producing a fresh immutable [`Hypergraph`]. The semantics are chosen so
//! that edit logs are **exactly replayable**:
//!
//! * Edges are normalized exactly like [`HypergraphBuilder::add_edge`]
//!   (sorted, vertex repetitions collapsed), so `AddEdge([2, 1])` and
//!   `AddEdge([1, 2, 2])` denote the same edit.
//! * Application is **strict**: adding an edge that is already present,
//!   removing one that is not, normalizing to an empty edge, or referencing
//!   an out-of-range vertex is an [`EditError`], never a silent no-op. A
//!   script either applies in full or reports the first offending edit, so
//!   two replays of the same log can never diverge on "how the ambiguity was
//!   resolved".
//! * Application **composes**: for any split of a script `s` into `a ++ b`,
//!   `apply_edits(&apply_edits(h, a)?, b)` equals `apply_edits(h, s)` —
//!   edge insertion order is preserved across intermediate rebuilds. This is
//!   what lets the registry replay any log *prefix* from any intermediate
//!   snapshot and land on the identical graph (pinned by `tests/registry.rs`
//!   in the facade crate and by the unit tests below).
//!
//! [`HypergraphBuilder::add_edge`]: crate::builder::HypergraphBuilder::add_edge

use std::collections::BTreeSet;
use std::fmt;

use crate::graph::{Hypergraph, VertexId};

/// One structural change to a [`Hypergraph`] — the unit the serving layer's
/// resident edit logs are made of. See the [module docs](self) for the
/// replay semantics.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum GraphEdit {
    /// Add an edge over the listed vertices (any order, repetitions
    /// collapse). Errors if the normalized edge is empty, references a
    /// vertex outside the current id space, or is already present.
    AddEdge(Vec<VertexId>),
    /// Remove the edge over the listed vertices (normalized the same way).
    /// Errors if no such edge exists.
    RemoveEdge(Vec<VertexId>),
    /// Extend the vertex id space by this many fresh, initially isolated
    /// vertices (they join edges through later `AddEdge`s).
    GrowVertices(u32),
}

impl GraphEdit {
    /// Appends this edit's one-line WAL encoding to `out` (including the
    /// trailing newline) — the record body format of
    /// [`crate::io::write_wal`]:
    ///
    /// ```text
    /// add 0 4 7        <- AddEdge([0, 4, 7])
    /// remove 2 3       <- RemoveEdge([2, 3])
    /// grow 64          <- GrowVertices(64)
    /// ```
    ///
    /// The vertex list is written exactly as stored (un-normalized), so
    /// [`decode_line`](Self::decode_line) round-trips the edit *variant*
    /// byte-for-byte; normalization still happens at [`apply_edits`] time,
    /// identically on both sides of a persist/restore cycle.
    pub fn encode_line(&self, out: &mut String) {
        use std::fmt::Write as _;
        match self {
            GraphEdit::AddEdge(vs) => {
                out.push_str("add");
                for v in vs {
                    let _ = write!(out, " {v}");
                }
            }
            GraphEdit::RemoveEdge(vs) => {
                out.push_str("remove");
                for v in vs {
                    let _ = write!(out, " {v}");
                }
            }
            GraphEdit::GrowVertices(extra) => {
                let _ = write!(out, "grow {extra}");
            }
        }
        out.push('\n');
    }

    /// Parses one [`encode_line`](Self::encode_line) line (without the
    /// newline). Returns `None` for anything outside the grammar — unknown
    /// verbs, signed or non-decimal numbers, ids beyond `u32` — never
    /// panics. Empty vertex lists are accepted (they are representable as
    /// edits and rejected by [`apply_edits`] like any other invalid edit).
    pub fn decode_line(line: &str) -> Option<GraphEdit> {
        let parse_u32 = |t: &str| -> Option<u32> {
            // Strict digits only, matching the text-format parser: no signs,
            // no leading `+`, no stray characters.
            if t.is_empty() || !t.bytes().all(|b| b.is_ascii_digit()) {
                return None;
            }
            t.parse().ok()
        };
        let mut it = line.split_whitespace();
        match it.next()? {
            "add" => it
                .map(parse_u32)
                .collect::<Option<_>>()
                .map(GraphEdit::AddEdge),
            "remove" => it
                .map(parse_u32)
                .collect::<Option<_>>()
                .map(GraphEdit::RemoveEdge),
            "grow" => {
                let extra = parse_u32(it.next()?)?;
                if it.next().is_some() {
                    return None;
                }
                Some(GraphEdit::GrowVertices(extra))
            }
            _ => None,
        }
    }
}

/// Why an edit script could not be applied. The graph is never partially
/// modified: [`apply_edits`] validates as it goes and returns the input
/// graph's state untouched on the first offending edit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EditError {
    /// An edge referenced a vertex at or beyond the current id space.
    VertexOutOfRange {
        /// The offending vertex id.
        vertex: VertexId,
        /// The vertex count at the point the edit was applied.
        n: u32,
    },
    /// An `AddEdge`/`RemoveEdge` normalized to the empty edge (a hypergraph
    /// with an empty edge has no independent set at all — see
    /// [`HypergraphBuilder::add_edge`](crate::builder::HypergraphBuilder::add_edge)).
    EmptyEdge,
    /// `AddEdge` of an edge that is already present (payload: the
    /// normalized edge).
    DuplicateEdge(Vec<VertexId>),
    /// `RemoveEdge` of an edge that is not present (payload: the normalized
    /// edge).
    NoSuchEdge(Vec<VertexId>),
}

impl fmt::Display for EditError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EditError::VertexOutOfRange { vertex, n } => {
                write!(f, "edit references vertex {vertex} outside id space 0..{n}")
            }
            EditError::EmptyEdge => write!(f, "edit normalizes to an empty edge"),
            EditError::DuplicateEdge(e) => write!(f, "edge {e:?} is already present"),
            EditError::NoSuchEdge(e) => write!(f, "no edge {e:?} to remove"),
        }
    }
}

impl std::error::Error for EditError {}

/// Normalizes an edge exactly like the builder does (sorted, repetitions
/// collapsed) and validates it against the current id space.
fn normalize(vertices: &[VertexId], n: u32) -> Result<Vec<VertexId>, EditError> {
    let set: BTreeSet<VertexId> = vertices.iter().copied().collect();
    if set.is_empty() {
        return Err(EditError::EmptyEdge);
    }
    if let Some(&v) = set.last() {
        if v >= n {
            return Err(EditError::VertexOutOfRange { vertex: v, n });
        }
    }
    Ok(set.into_iter().collect())
}

/// Replays an edit script against `h`, producing a fresh [`Hypergraph`].
///
/// Surviving edges keep their relative order and added edges append, so
/// application composes across intermediate rebuilds (see the
/// [module docs](self)); `h` itself is never modified.
///
/// # Errors
/// Returns the first [`EditError`] in script order; on error nothing is
/// applied.
///
/// # Example
/// ```
/// use hypergraph::builder::hypergraph_from_edges;
/// use hypergraph::edit::{apply_edits, GraphEdit};
///
/// let h = hypergraph_from_edges(4, vec![vec![0, 1], vec![1, 2, 3]]);
/// let h2 = apply_edits(
///     &h,
///     &[
///         GraphEdit::RemoveEdge(vec![1, 0]), // normalized: removes {0, 1}
///         GraphEdit::GrowVertices(2),
///         GraphEdit::AddEdge(vec![4, 5]),
///     ],
/// )
/// .unwrap();
/// assert_eq!(h2.n_vertices(), 6);
/// assert_eq!(h2.n_edges(), 2);
/// assert_eq!(h2.edge(0), &[1, 2, 3]);
/// assert_eq!(h2.edge(1), &[4, 5]);
/// ```
pub fn apply_edits(h: &Hypergraph, edits: &[GraphEdit]) -> Result<Hypergraph, EditError> {
    let mut n = h.n_vertices() as u32;
    let mut edges = h.edges_owned();
    let mut present: BTreeSet<Vec<VertexId>> = edges.iter().cloned().collect();
    for edit in edits {
        match edit {
            GraphEdit::AddEdge(vs) => {
                let e = normalize(vs, n)?;
                if !present.insert(e.clone()) {
                    return Err(EditError::DuplicateEdge(e));
                }
                edges.push(e);
            }
            GraphEdit::RemoveEdge(vs) => {
                let e = normalize(vs, n)?;
                if !present.remove(&e) {
                    return Err(EditError::NoSuchEdge(e));
                }
                let i = edges
                    .iter()
                    .position(|x| *x == e)
                    .expect("membership set and edge list agree");
                edges.remove(i);
            }
            GraphEdit::GrowVertices(extra) => {
                n = n
                    .checked_add(*extra)
                    .expect("edit grows the vertex id space beyond u32");
            }
        }
    }
    Ok(Hypergraph::from_sorted_edges(n, edges))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    fn base() -> Hypergraph {
        hypergraph_from_edges(5, vec![vec![0, 1], vec![1, 2, 3], vec![2, 4]])
    }

    #[test]
    fn add_remove_grow_round_trip() {
        let h = apply_edits(
            &base(),
            &[
                GraphEdit::AddEdge(vec![3, 4]),
                GraphEdit::RemoveEdge(vec![1, 0]),
                GraphEdit::GrowVertices(3),
                GraphEdit::AddEdge(vec![5, 6, 7]),
            ],
        )
        .unwrap();
        assert_eq!(h.n_vertices(), 8);
        assert_eq!(h.n_edges(), 4);
        // Survivors keep their order; additions append.
        assert_eq!(h.edge(0), &[1, 2, 3]);
        assert_eq!(h.edge(1), &[2, 4]);
        assert_eq!(h.edge(2), &[3, 4]);
        assert_eq!(h.edge(3), &[5, 6, 7]);
    }

    #[test]
    fn application_composes_across_splits() {
        let script = vec![
            GraphEdit::AddEdge(vec![0, 4]),
            GraphEdit::RemoveEdge(vec![2, 4]),
            GraphEdit::GrowVertices(1),
            GraphEdit::AddEdge(vec![5, 0]),
            GraphEdit::RemoveEdge(vec![0, 1]),
            GraphEdit::AddEdge(vec![1, 4]),
        ];
        let all = apply_edits(&base(), &script).unwrap();
        for split in 0..=script.len() {
            let (a, b) = script.split_at(split);
            let mid = apply_edits(&base(), a).unwrap();
            let two_step = apply_edits(&mid, b).unwrap();
            assert!(two_step == all, "split at {split} diverged");
        }
    }

    #[test]
    fn strict_errors_and_no_partial_application() {
        let h = base();
        let err = apply_edits(
            &h,
            &[
                GraphEdit::AddEdge(vec![0, 2]), // fine
                GraphEdit::AddEdge(vec![1, 0]), // duplicate of {0, 1}
            ],
        )
        .unwrap_err();
        assert_eq!(err, EditError::DuplicateEdge(vec![0, 1]));
        // `h` is untouched by the failed script (apply never mutates input).
        assert_eq!(h.n_edges(), 3);

        assert_eq!(
            apply_edits(&h, &[GraphEdit::RemoveEdge(vec![0, 3])]).unwrap_err(),
            EditError::NoSuchEdge(vec![0, 3])
        );
        assert_eq!(
            apply_edits(&h, &[GraphEdit::AddEdge(vec![9])]).unwrap_err(),
            EditError::VertexOutOfRange { vertex: 9, n: 5 }
        );
        assert_eq!(
            apply_edits(&h, &[GraphEdit::AddEdge(vec![])]).unwrap_err(),
            EditError::EmptyEdge
        );
    }

    #[test]
    fn normalization_matches_builder_semantics() {
        // {2, 1, 1} and {1, 2} are the same edge to both add and remove.
        let h = apply_edits(&base(), &[GraphEdit::AddEdge(vec![3, 3, 0])]).unwrap();
        assert_eq!(h.edge(3), &[0, 3]);
        let h2 = apply_edits(&h, &[GraphEdit::RemoveEdge(vec![0, 0, 3])]).unwrap();
        assert!(h2 == base());
    }

    #[test]
    fn empty_script_is_identity() {
        assert!(apply_edits(&base(), &[]).unwrap() == base());
    }

    #[test]
    fn line_codec_round_trips_every_variant() {
        let edits = [
            GraphEdit::AddEdge(vec![0, 4, 7]),
            GraphEdit::AddEdge(vec![3, 1, 1]), // un-normalized survives as-is
            GraphEdit::RemoveEdge(vec![2, 3]),
            GraphEdit::GrowVertices(64),
            GraphEdit::AddEdge(vec![]), // representable though unapplicable
        ];
        for edit in &edits {
            let mut line = String::new();
            edit.encode_line(&mut line);
            assert!(line.ends_with('\n'));
            assert_eq!(
                GraphEdit::decode_line(line.trim_end()).as_ref(),
                Some(edit),
                "{line:?} did not round-trip"
            );
        }
    }

    #[test]
    fn decode_line_rejects_out_of_grammar_input() {
        for line in [
            "",
            "shrink 3",
            "grow",
            "grow 1 2",
            "grow -1",
            "grow +1",
            "grow 4294967296",
            "add 1 zebra",
            "remove 0x10",
            "ADD 1 2",
        ] {
            assert_eq!(GraphEdit::decode_line(line), None, "{line:?} parsed");
        }
    }

    #[test]
    fn grown_vertices_start_isolated() {
        let h = apply_edits(&base(), &[GraphEdit::GrowVertices(2)]).unwrap();
        assert_eq!(h.n_vertices(), 7);
        assert_eq!(h.n_edges(), 3);
        assert!(h.incident_edges(5).is_empty());
        assert!(h.incident_edges(6).is_empty());
    }
}
