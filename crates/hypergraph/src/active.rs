//! [`ActiveHypergraph`]: the mutable working copy consumed round by round by
//! the iterative MIS algorithms.
//!
//! The Beame–Luby algorithm (Algorithm 2 in the paper) and the SBL algorithm
//! (Algorithm 1) both maintain a hypergraph that shrinks over time:
//!
//! * vertices are *decided* (colored blue = in the independent set, or red =
//!   excluded) and leave the vertex set;
//! * edges lose their blue vertices ("trimming", line 14 of Algorithm 2 /
//!   line 19 of Algorithm 1);
//! * edges that contain another edge as a subset are discarded ("dominated"
//!   edges, lines 16–20 of Algorithm 2);
//! * singleton edges `{v}` are discarded together with their vertex, which can
//!   never join the independent set (lines 21–24 of Algorithm 2);
//! * in SBL, edges containing a red vertex are discarded outright (lines
//!   13–17 of Algorithm 1) because they can never become fully blue.
//!
//! [`ActiveHypergraph`] provides exactly these primitive updates so that the
//! algorithm implementations in the `mis-core` crate read like the pseudocode.
//! Vertex ids are *global* (those of the original hypergraph); nothing is ever
//! relabelled, which is what lets SBL stitch the per-round colorings together.

use std::collections::BTreeSet;

use crate::graph::{Hypergraph, VertexId};
use crate::view::HypergraphView;

/// A mutable hypergraph view over a fixed vertex id space.
///
/// See the [module documentation](self) for the role it plays in the
/// algorithms.
#[derive(Debug, Clone)]
pub struct ActiveHypergraph {
    /// Size of the vertex id space (ids of the original hypergraph).
    id_space: usize,
    /// `alive[v]` — vertex `v` is still undecided.
    alive: Vec<bool>,
    /// Number of `true` entries in `alive`.
    n_alive: usize,
    /// Current edges: sorted vertex lists over alive vertices.
    edges: Vec<Vec<VertexId>>,
}

impl ActiveHypergraph {
    /// Creates an active copy of a full hypergraph: every vertex alive, every
    /// edge present.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        ActiveHypergraph {
            id_space: h.n_vertices(),
            alive: vec![true; h.n_vertices()],
            n_alive: h.n_vertices(),
            edges: h.edges_owned(),
        }
    }

    /// Creates an active hypergraph from raw parts.
    ///
    /// `alive` selects the active vertices out of the id space `0..alive.len()`;
    /// `edges` must be sorted, duplicate-free and only mention alive vertices.
    ///
    /// # Panics
    /// Panics (in debug builds) if an edge mentions a dead or out-of-range
    /// vertex or is not sorted.
    pub fn from_parts(alive: Vec<bool>, edges: Vec<Vec<VertexId>>) -> Self {
        let n_alive = alive.iter().filter(|&&a| a).count();
        let ah = ActiveHypergraph {
            id_space: alive.len(),
            alive,
            n_alive,
            edges,
        };
        ah.debug_validate();
        ah
    }

    /// Size of the vertex id space (ids of the original hypergraph); every
    /// vertex id handled by this view is `< id_space()`.
    #[inline]
    pub fn id_space(&self) -> usize {
        self.id_space
    }

    /// Number of alive vertices.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.n_alive
    }

    /// Number of current edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` if vertex `v` is alive.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.alive[v as usize]
    }

    /// The alive vertices in increasing order.
    pub fn alive_vertices(&self) -> Vec<VertexId> {
        (0..self.id_space as u32)
            .filter(|&v| self.alive[v as usize])
            .collect()
    }

    /// Read-only access to the current edges.
    pub fn edges(&self) -> &[Vec<VertexId>] {
        &self.edges
    }

    /// Maximum cardinality among current edges (0 if edgeless).
    pub fn dimension(&self) -> usize {
        self.edges.iter().map(|e| e.len()).max().unwrap_or(0)
    }

    /// Marks the given vertices dead (decided). Edges are not touched; combine
    /// with [`shrink_edges_by`](Self::shrink_edges_by) or
    /// [`discard_edges_touching`](Self::discard_edges_touching) according to
    /// the algorithm's semantics.
    pub fn kill_vertices<I: IntoIterator<Item = VertexId>>(&mut self, vs: I) {
        for v in vs {
            let slot = &mut self.alive[v as usize];
            if *slot {
                *slot = false;
                self.n_alive -= 1;
            }
        }
    }

    /// Removes the vertices of `set` from every edge (the "trim" step: these
    /// vertices joined the independent set, so the rest of each edge must
    /// still avoid becoming fully blue). Edges that become empty are dropped —
    /// an empty edge can only arise if the caller violated independence, so
    /// this also returns how many edges emptied (0 in correct executions;
    /// tests assert on it).
    pub fn shrink_edges_by(&mut self, set: &[bool]) -> usize {
        let mut emptied = 0;
        for e in &mut self.edges {
            e.retain(|&v| !set[v as usize]);
            if e.is_empty() {
                emptied += 1;
            }
        }
        if emptied > 0 {
            self.edges.retain(|e| !e.is_empty());
        }
        emptied
    }

    /// Discards every edge that contains at least one vertex from `set`
    /// (SBL: edges touching a red vertex can never become fully blue).
    /// Returns the number of edges discarded.
    pub fn discard_edges_touching(&mut self, set: &[bool]) -> usize {
        let before = self.edges.len();
        self.edges.retain(|e| !e.iter().any(|&v| set[v as usize]));
        before - self.edges.len()
    }

    /// Removes every edge that strictly contains another current edge
    /// ("dominated" edges). Exact duplicates keep one representative.
    /// Returns the number of edges removed.
    ///
    /// Runs in `O(Σ|e| · avg-degree)` by probing, for every edge, the edges
    /// incident to its least-frequent vertex.
    pub fn remove_dominated_edges(&mut self) -> usize {
        let m = self.edges.len();
        if m <= 1 {
            return 0;
        }
        // Incidence lists over current edges.
        let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); self.id_space];
        for (i, e) in self.edges.iter().enumerate() {
            for &v in e {
                incidence[v as usize].push(i as u32);
            }
        }
        // Sort edge indices by size so we keep the smaller (containing) edge
        // and drop the larger one; ties keep the earlier index.
        let mut order: Vec<u32> = (0..m as u32).collect();
        order.sort_by_key(|&i| (self.edges[i as usize].len(), i));

        let mut dead = vec![false; m];
        for &i in &order {
            if dead[i as usize] {
                continue;
            }
            let e = &self.edges[i as usize];
            // Any *other* live edge that contains every vertex of e is
            // dominated. Candidates must be incident to the least-degree
            // vertex of e.
            let pivot = e
                .iter()
                .copied()
                .min_by_key(|&v| incidence[v as usize].len())
                .expect("edges are non-empty");
            for &cand in &incidence[pivot as usize] {
                if cand == i || dead[cand as usize] {
                    continue;
                }
                let ce = &self.edges[cand as usize];
                if ce.len() <= e.len() {
                    // Can't strictly contain e (equal-size duplicates were
                    // already deduplicated at build time; if not, keep both —
                    // harmless for correctness).
                    continue;
                }
                if e.iter().all(|&v| ce.binary_search(&v).is_ok()) {
                    dead[cand as usize] = true;
                }
            }
        }
        let removed = dead.iter().filter(|&&d| d).count();
        if removed > 0 {
            let mut idx = 0;
            self.edges.retain(|_| {
                let keep = !dead[idx];
                idx += 1;
                keep
            });
        }
        removed
    }

    /// Removes singleton edges `{v}` and kills their vertex `v` (such a vertex
    /// can never join the independent set). Returns the killed vertices.
    ///
    /// Removing a singleton may not create new singletons by itself (edges do
    /// not shrink here), so a single pass suffices.
    pub fn remove_singleton_edges(&mut self) -> Vec<VertexId> {
        let mut killed = BTreeSet::new();
        for e in &self.edges {
            if e.len() == 1 {
                killed.insert(e[0]);
            }
        }
        if killed.is_empty() {
            return Vec::new();
        }
        self.edges.retain(|e| e.len() != 1);
        // Edges through a killed vertex can never be fully blue any more, so
        // they are dropped as well (the vertex is decided red). This mirrors
        // the effect of V' <- V' \ {v} in Algorithm 2: the edge can never be
        // completed within the remaining vertex set... but note the BL
        // pseudocode only deletes the singleton edge and its vertex; other
        // edges keep the vertex and simply can never be fully marked because
        // the vertex is gone from V'. To keep the invariant "edges only
        // mention alive vertices", we drop the killed vertex from the other
        // edges is NOT correct (it would let them become blue). Instead we
        // discard those edges: they are satisfied forever.
        let mut flag = vec![false; self.id_space];
        for &v in &killed {
            flag[v as usize] = true;
        }
        self.discard_edges_touching(&flag);
        self.kill_vertices(killed.iter().copied());
        killed.into_iter().collect()
    }

    /// The sub-hypergraph induced by the marked vertices, keeping only edges
    /// *fully contained* in the mark set (the `H' = (V', E')` of SBL line 7).
    ///
    /// The returned hypergraph shares the global id space.
    pub fn induced_by(&self, marked: &[bool]) -> ActiveHypergraph {
        let mut alive = vec![false; self.id_space];
        let mut n_alive = 0;
        for v in 0..self.id_space {
            if self.alive[v] && marked[v] {
                alive[v] = true;
                n_alive += 1;
            }
        }
        let edges: Vec<Vec<VertexId>> = self
            .edges
            .iter()
            .filter(|e| e.iter().all(|&v| alive[v as usize]))
            .cloned()
            .collect();
        ActiveHypergraph {
            id_space: self.id_space,
            alive,
            n_alive,
            edges,
        }
    }

    /// Converts the active view into a compact immutable [`Hypergraph`] with
    /// vertices relabelled to `0..n_alive`, returning the hypergraph and the
    /// mapping `new -> old` id.
    pub fn compact(&self) -> (Hypergraph, Vec<VertexId>) {
        let mut new_to_old = Vec::with_capacity(self.n_alive);
        let mut old_to_new = vec![u32::MAX; self.id_space];
        for (v, slot) in old_to_new.iter_mut().enumerate() {
            if self.alive[v] {
                *slot = new_to_old.len() as u32;
                new_to_old.push(v as u32);
            }
        }
        let edges: Vec<Vec<VertexId>> = self
            .edges
            .iter()
            .map(|e| e.iter().map(|&v| old_to_new[v as usize]).collect())
            .collect();
        (
            Hypergraph::from_sorted_edges(new_to_old.len() as u32, edges),
            new_to_old,
        )
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    /// Panics if an edge is unsorted, mentions a dead vertex, or is empty.
    pub fn debug_validate(&self) {
        debug_assert_eq!(
            self.n_alive,
            self.alive.iter().filter(|&&a| a).count(),
            "n_alive out of sync"
        );
        for e in &self.edges {
            debug_assert!(!e.is_empty(), "empty edge");
            debug_assert!(
                e.windows(2).all(|w| w[0] < w[1]),
                "edge not sorted/deduplicated: {e:?}"
            );
            for &v in e {
                debug_assert!((v as usize) < self.id_space, "vertex out of range");
                debug_assert!(self.alive[v as usize], "edge mentions dead vertex {v}");
            }
        }
    }
}

impl HypergraphView for ActiveHypergraph {
    fn id_space(&self) -> usize {
        self.id_space
    }

    fn n_active_vertices(&self) -> usize {
        self.n_alive
    }

    fn n_active_edges(&self) -> usize {
        self.edges.len()
    }

    fn is_active(&self, v: VertexId) -> bool {
        self.alive[v as usize]
    }

    fn active_vertices(&self) -> Vec<VertexId> {
        self.alive_vertices()
    }

    fn edge_slices(&self) -> Box<dyn Iterator<Item = &[VertexId]> + '_> {
        Box::new(self.edges.iter().map(|e| e.as_slice()))
    }

    fn dimension(&self) -> usize {
        ActiveHypergraph::dimension(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    fn toy() -> ActiveHypergraph {
        let h = hypergraph_from_edges(
            6,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 1, 2, 3]],
        );
        ActiveHypergraph::from_hypergraph(&h)
    }

    #[test]
    fn from_hypergraph_copies_everything() {
        let ah = toy();
        assert_eq!(ah.n_alive(), 6);
        assert_eq!(ah.n_edges(), 4);
        assert_eq!(ah.dimension(), 4);
        ah.debug_validate();
    }

    #[test]
    fn kill_and_shrink() {
        let mut ah = toy();
        // Vertex 2 joins the IS: trim it out of every edge.
        let mut set = vec![false; 6];
        set[2] = true;
        ah.kill_vertices([2]);
        let emptied = ah.shrink_edges_by(&set);
        assert_eq!(emptied, 0);
        assert_eq!(ah.n_alive(), 5);
        assert!(ah.edges().iter().all(|e| !e.contains(&2)));
        // Edge {2,3} became {3}; {0,1,2} became {0,1}; {0,1,2,3} became {0,1,3}.
        assert!(ah.edges().contains(&vec![3]));
        assert!(ah.edges().contains(&vec![0, 1]));
        ah.debug_validate();
    }

    #[test]
    fn shrink_reports_emptied_edges() {
        let h = hypergraph_from_edges(3, vec![vec![0, 1]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let set = vec![true, true, false];
        ah.kill_vertices([0, 1]);
        let emptied = ah.shrink_edges_by(&set);
        assert_eq!(emptied, 1);
        assert_eq!(ah.n_edges(), 0);
    }

    #[test]
    fn discard_edges_touching_red() {
        let mut ah = toy();
        let mut red = vec![false; 6];
        red[4] = true;
        let removed = ah.discard_edges_touching(&red);
        assert_eq!(removed, 1); // only {3,4,5}
        assert_eq!(ah.n_edges(), 3);
    }

    #[test]
    fn dominated_edges_are_removed() {
        let mut ah = toy();
        let removed = ah.remove_dominated_edges();
        // {0,1,2,3} strictly contains {0,1,2} and {2,3}.
        assert_eq!(removed, 1);
        assert_eq!(ah.n_edges(), 3);
        assert!(!ah.edges().contains(&vec![0, 1, 2, 3]));
    }

    #[test]
    fn dominated_chain() {
        let h = hypergraph_from_edges(5, vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![3, 4]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let removed = ah.remove_dominated_edges();
        assert_eq!(removed, 2);
        assert_eq!(ah.n_edges(), 2);
        assert!(ah.edges().contains(&vec![0]));
        assert!(ah.edges().contains(&vec![3, 4]));
    }

    #[test]
    fn singleton_removal_kills_vertex_and_satisfied_edges() {
        let h = hypergraph_from_edges(4, vec![vec![1], vec![1, 2], vec![2, 3]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let killed = ah.remove_singleton_edges();
        assert_eq!(killed, vec![1]);
        assert!(!ah.is_alive(1));
        // {1} gone, {1,2} discarded (contains the now-red vertex 1), {2,3} stays.
        assert_eq!(ah.n_edges(), 1);
        assert_eq!(ah.edges()[0], vec![2, 3]);
        ah.debug_validate();
    }

    #[test]
    fn induced_subhypergraph_keeps_only_contained_edges() {
        let ah = toy();
        let mut marked = vec![false; 6];
        for v in [0, 1, 2] {
            marked[v] = true;
        }
        let sub = ah.induced_by(&marked);
        assert_eq!(sub.n_alive(), 3);
        assert_eq!(sub.n_edges(), 1); // only {0,1,2}
        assert_eq!(sub.edges()[0], vec![0, 1, 2]);
        sub.debug_validate();
    }

    #[test]
    fn compact_relabels_densely() {
        let mut ah = toy();
        ah.kill_vertices([0, 2]);
        let mut set = vec![false; 6];
        set[0] = true;
        set[2] = true;
        ah.discard_edges_touching(&set);
        let (h, new_to_old) = ah.compact();
        assert_eq!(h.n_vertices(), 4);
        assert_eq!(new_to_old, vec![1, 3, 4, 5]);
        // Remaining edge {3,4,5} maps to {1,2,3} in new ids.
        assert_eq!(h.n_edges(), 1);
        assert_eq!(h.edge(0), &[1, 2, 3]);
    }

    #[test]
    fn view_impl_matches_direct_accessors() {
        let ah = toy();
        let v: &dyn HypergraphView = &ah;
        assert_eq!(v.n_active_vertices(), ah.n_alive());
        assert_eq!(v.n_active_edges(), ah.n_edges());
        assert_eq!(v.dimension(), 4);
        assert!(v.is_independent_in_view(&[0, 1, 3]));
        assert!(!v.is_independent_in_view(&[2, 3]));
    }
}
