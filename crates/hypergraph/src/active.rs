//! [`ActiveHypergraph`]: the mutable working copy consumed round by round by
//! the iterative MIS algorithms, as a **flat, epoch-stamped engine**.
//!
//! The Beame–Luby algorithm (Algorithm 2 in the paper) and the SBL algorithm
//! (Algorithm 1) both maintain a hypergraph that shrinks over time:
//!
//! * vertices are *decided* (colored blue = in the independent set, or red =
//!   excluded) and leave the vertex set;
//! * edges lose their blue vertices ("trimming", line 14 of Algorithm 2 /
//!   line 19 of Algorithm 1);
//! * edges that contain another edge as a subset are discarded ("dominated"
//!   edges, lines 16–20 of Algorithm 2);
//! * singleton edges `{v}` are discarded together with their vertex, which can
//!   never join the independent set (lines 21–24 of Algorithm 2);
//! * in SBL, edges containing a red vertex are discarded outright (lines
//!   13–17 of Algorithm 1) because they can never become fully blue.
//!
//! # Layout
//!
//! The paper models every one of these updates as `O(1)`-per-element PRAM
//! work, so the engine stores everything in flat arrays instead of per-edge
//! set structures:
//!
//! * a per-vertex `u8` status array plus a compacted, ascending list of the
//!   alive vertices (`alive_slice`), maintained incrementally on kills;
//! * a CSR edge arena (`edge_offsets` / `edge_vertices`) whose per-edge
//!   segments are compacted in place when blue vertices are trimmed, plus a
//!   per-edge live-vertex counter — the live members of edge `e` are always
//!   the sorted prefix `edge_vertices[offsets[e] .. offsets[e] + live_len[e]]`;
//! * a per-edge `u8` status recording *why* an edge left the instance
//!   (discarded through a red vertex, dominated, emptied, singleton);
//! * a compacted live-edge frontier (ascending edge ids), re-compacted in
//!   place (stable, allocation-free) after every batch update;
//! * a per-vertex epoch-stamp array: transient vertex sets (the killed set of
//!   a singleton sweep, the membership set of an independence query) are
//!   represented as `stamp[v] == current_epoch`, so clearing a set is a single
//!   counter bump instead of an `O(n)` wipe or a fresh allocation.
//!
//! Edge trimming and the domination/discard scans run through the
//! rayon-backed [`pram`] primitives (`par_map_segments_into`,
//! `par_map_into`), which fall back to sequential loops below the cutoff and
//! are order-preserving above it, so results are identical across thread
//! counts. The status-array maintenance loops — frontier/alive-list
//! compaction, live-size totals and the invariant counts — additionally run
//! as wide byte sweeps through [`pram::simd`] (SSE2/AVX2 with scalar
//! fallbacks and a `force-scalar` escape hatch) whenever the live fraction
//! is high enough for a dense scan to beat the sparse walk; every backend
//! computes identical results, which the scalar-vs-SIMD parity suites pin. Cost accounting stays in the *algorithm* layer (the `mis-core`
//! crate charges the same work–depth script the pseudocode implies), which
//! keeps `CostTracker` totals independent of the engine.
//!
//! # Lifecycle
//!
//! Engines are built once and then *recycled*: [`ActiveHypergraph::reset_from`]
//! re-initializes an engine to a new instance in place, and
//! [`ActiveHypergraph::induced_by_into`] derives a sampled sub-instance into
//! an existing engine — deriving a **compact incidence index** from the kept
//! edges so the sub keeps the incidence-directed trim/discard fast path with
//! no `O(id_space)` pass. Per-operation scratch lives in an internal
//! `EngineScratch` cache. See the [`ActiveEngine`] docs for the full
//! construct/reset/induce contract.
//!
//! # The [`ActiveEngine`] trait and the reference engine
//!
//! All algorithms in `mis-core` are generic over [`ActiveEngine`], the
//! abstract update interface. Two implementations exist:
//!
//! * [`ActiveHypergraph`] — the flat engine described above (the default);
//! * [`reference::ReferenceActiveHypergraph`] — the original
//!   `Vec<Vec<VertexId>>`/`BTreeSet`-backed implementation, preserved
//!   verbatim behind the `reference-engine` feature (on by default) as the
//!   semantic oracle. The differential suites replay identical edit scripts
//!   and whole algorithm runs against both engines and require identical live
//!   edges, degrees, colorings and cost totals.
//!
//! Vertex ids are *global* (those of the original hypergraph); nothing is
//! ever relabelled, which is what lets SBL stitch the per-round colorings
//! together.

use crate::graph::{EdgeId, Hypergraph, VertexId};
use crate::view::HypergraphView;
use pram::primitives::{par_map, par_map_into, par_map_segments_into, par_tabulate};

const V_ALIVE: u8 = 0;
const V_DEAD: u8 = 1;

/// Edge is still part of the instance.
pub const EDGE_LIVE: u8 = 0;
/// Edge was discarded because it touched a decided-red vertex.
pub const EDGE_DISCARDED: u8 = 1;
/// Edge was removed because it strictly contains another live edge.
pub const EDGE_DOMINATED: u8 = 2;
/// Edge lost all of its vertices to trimming (only possible if the caller
/// violated independence; the algorithms assert this never happens).
pub const EDGE_EMPTIED: u8 = 3;
/// Edge was a singleton `{v}` and was removed together with `v`.
pub const EDGE_SINGLETON: u8 = 4;

/// The abstract update interface of the round-based MIS algorithms: every
/// mutation the SBL/BL/KUW pseudocode performs on its working hypergraph.
///
/// Implementations must be *observationally identical*: given the same
/// sequence of calls they must report the same alive vertices (ascending),
/// the same live edges (same relative order, same sorted member lists) and
/// the same return values. The differential suites
/// (`crates/hypergraph/tests/active_diff.rs` and the facade property tests)
/// enforce this between [`ActiveHypergraph`] and the reference engine.
///
/// # Engine lifecycle: construct vs reset vs induce
///
/// An engine value has three ways of coming to hold an instance, forming the
/// lifecycle the zero-reallocation run pipeline is built on:
///
/// * **Construct** — [`from_hypergraph`](Self::from_hypergraph) builds a
///   fresh engine, allocating every internal buffer. This is the cold path;
///   a server answering a stream of solves pays it once.
/// * **Reset** — [`reset_from`](Self::reset_from) re-initializes an
///   *existing* engine to a (possibly different) hypergraph **in place**,
///   reusing its buffers. Observationally it is identical to constructing a
///   fresh engine from the same hypergraph; only the allocation behaviour
///   differs. The facade's `BatchRunner` parks engines in a
///   [`pram::Workspace`] between solves and resets them on the next one.
/// * **Induce** — [`induced_by`](Self::induced_by) derives a sub-instance
///   engine, allocating it; [`induced_by_into`](Self::induced_by_into)
///   derives the same sub-instance into an existing engine, reusing its
///   buffers (SBL re-induces into one engine slot every sampling round).
///   Both must yield observationally identical sub-engines over the *same
///   global id space* as the parent.
///
/// **Who owns scratch:** transient per-call scratch (epoch stamps, frontier
/// compaction buffers) is owned by the engine itself and is invisible to
/// callers; per-*run* scratch (flag vectors, index lists) is owned by the
/// caller's [`pram::Workspace`] and handed to the algorithm entry points
/// (`mis-core`'s `*_in` functions); per-*stream* state (whole engines) is
/// parked in the workspace's typed slots by the facade. No scratch may ever
/// influence results: a warmed-up engine/workspace and a cold one must make
/// byte-identical decisions, which the pinned-seed batch determinism suite
/// enforces.
///
/// # Concurrency (the serving seam)
///
/// Engines are plain owned data — [`ActiveHypergraph`] (and the reference
/// engine) are `Send + Sync`, which the compile-time assertions in this
/// module pin. The sharded serving layer relies on a sharper property than
/// the auto-traits alone: the induce path reads the parent engine through
/// `&self` only ([`induced_by`](Self::induced_by) /
/// [`induced_by_into`](Self::induced_by_into) never touch hidden shared or
/// interior-mutable state), so one *resident* engine can be shared read-only
/// across N shard workers, each deriving sub-instances into its own
/// shard-local `out` engine concurrently. All `&mut self` operations (trim,
/// discard, reset) happen on those shard-local engines. Implementations of
/// this trait must preserve that split: no interior mutability behind the
/// `&self` methods used for induction.
pub trait ActiveEngine: HypergraphView + Clone {
    /// Creates an active copy of a full hypergraph: every vertex alive, every
    /// edge present.
    fn from_hypergraph(h: &Hypergraph) -> Self;

    /// Re-initializes this engine to an active copy of `h` **in place**,
    /// reusing internal buffers where possible. Observationally identical to
    /// `*self = Self::from_hypergraph(h)`, which is also the default
    /// implementation.
    fn reset_from(&mut self, h: &Hypergraph) {
        *self = Self::from_hypergraph(h);
    }

    /// Number of alive (undecided) vertices.
    fn n_alive(&self) -> usize {
        self.n_active_vertices()
    }

    /// Number of live edges.
    fn n_live_edges(&self) -> usize {
        self.n_active_edges()
    }

    /// Returns `true` if vertex `v` is alive.
    fn is_alive(&self, v: VertexId) -> bool {
        self.is_active(v)
    }

    /// The alive vertices in increasing order.
    fn alive_vertices(&self) -> Vec<VertexId> {
        self.active_vertices()
    }

    /// Writes the alive vertices (increasing order) into `out`, replacing its
    /// contents. The borrowed variant the hot loops use: engines that keep a
    /// compacted alive list serve this with a single memcpy and no
    /// allocation once `out` has warmed up.
    fn alive_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend(self.alive_vertices());
    }

    /// Total size of the live edges, `Σ_e |e|` over live members.
    fn total_live_size(&self) -> usize;

    /// Marks the given vertices dead (decided). Edges are not touched;
    /// combine with [`shrink_edges_by`](Self::shrink_edges_by) or
    /// [`discard_edges_touching`](Self::discard_edges_touching) according to
    /// the algorithm's semantics.
    fn kill_vertices(&mut self, vs: &[VertexId]);

    /// Removes the vertices of `set` from every edge (the "trim" step: these
    /// vertices joined the independent set, so the rest of each edge must
    /// still avoid becoming fully blue). `vs` must list exactly the vertices
    /// flagged in `set` (duplicate-free; implementations may use either
    /// representation). Edges that become empty are dropped — an empty edge
    /// can only arise if the caller violated independence, so this also
    /// returns how many edges emptied (0 in correct executions; tests assert
    /// on it).
    fn shrink_edges_by(&mut self, set: &[bool], vs: &[VertexId]) -> usize;

    /// Discards every edge that contains at least one vertex from `set`
    /// (SBL: edges touching a red vertex can never become fully blue).
    /// `vs` must list exactly the vertices flagged in `set`.
    /// Returns the number of edges discarded.
    fn discard_edges_touching(&mut self, set: &[bool], vs: &[VertexId]) -> usize;

    /// Removes every edge that strictly contains another live edge
    /// ("dominated" edges). Exact duplicates keep both representatives.
    /// Returns the number of edges removed.
    fn remove_dominated_edges(&mut self) -> usize;

    /// Removes singleton edges `{v}` and kills their vertex `v` (such a
    /// vertex can never join the independent set), discarding every other
    /// edge through `v`. Returns the killed vertices, ascending.
    fn remove_singleton_edges(&mut self) -> Vec<VertexId>;

    /// The sub-hypergraph induced by the marked vertices, keeping only edges
    /// *fully contained* in the mark set (the `H' = (V', E')` of SBL line 7).
    /// The returned engine shares the global id space.
    fn induced_by(&self, marked: &[bool]) -> Self;

    /// Derives the same sub-hypergraph as [`induced_by`](Self::induced_by)
    /// into an existing engine, reusing `out`'s buffers. `vs` must list
    /// exactly the vertices flagged in `marked` (any order, duplicate-free;
    /// the same convention as [`shrink_edges_by`](Self::shrink_edges_by)),
    /// which lets implementations find the kept edges through the *parent's*
    /// incidence index instead of scanning every live edge.
    ///
    /// `out` may hold any previous state (a consumed sub-instance from an
    /// earlier round, an engine over a different id space); afterwards it is
    /// observationally identical to `self.induced_by(marked)`. The default
    /// implementation simply overwrites `out`; [`ActiveHypergraph`]
    /// overrides it to derive the kept edges incidence-directed and to equip
    /// the sub-instance with a compact incidence index of its own, so the
    /// incidence-directed trim/discard fast path stays available.
    fn induced_by_into(&self, marked: &[bool], vs: &[VertexId], out: &mut Self) {
        let _ = vs;
        *out = self.induced_by(marked);
    }

    /// Independence oracle: `true` iff some live edge lies entirely inside
    /// `set`. Takes `&mut self` so implementations may use epoch-stamped
    /// scratch instead of allocating a membership array per query.
    fn contains_live_edge_within(&mut self, set: &[VertexId]) -> bool;

    /// The live edges as owned sorted vertex lists, in frontier order
    /// (used by tests and the differential oracle).
    fn live_edges_owned(&self) -> Vec<Vec<VertexId>>;

    /// Converts the active view into a compact immutable [`Hypergraph`] with
    /// vertices relabelled to `0..n_alive`, returning the hypergraph and the
    /// mapping `new -> old` id.
    fn compact(&self) -> (Hypergraph, Vec<VertexId>);

    /// Checks internal invariants (debug builds); used by tests.
    fn validate(&self);
}

/// A mutable hypergraph view over a fixed vertex id space, stored as flat
/// epoch-stamped arrays.
///
/// See the [module documentation](self) for the layout and the role it plays
/// in the algorithms.
#[derive(Debug, Clone)]
pub struct ActiveHypergraph {
    /// Size of the vertex id space (ids of the original hypergraph).
    id_space: usize,
    /// `status[v]` — `V_ALIVE` while vertex `v` is undecided.
    status: Vec<u8>,
    /// Compacted list of alive vertices, always ascending.
    alive_list: Vec<VertexId>,
    /// CSR offsets into `edge_vertices`; fixed at construction.
    edge_offsets: Vec<u32>,
    /// Per-edge sorted vertex runs; live members are compacted to the front
    /// of each segment.
    edge_vertices: Vec<VertexId>,
    /// `live_len[e]` — number of live members of edge `e`.
    live_len: Vec<u32>,
    /// `edge_status[e]` — `EDGE_LIVE` or the reason the edge left.
    edge_status: Vec<u8>,
    /// Compacted frontier of live edge ids, always ascending.
    live_edges: Vec<EdgeId>,
    /// Epoch stamps for transient vertex sets: `stamp[v] == epoch` means "in
    /// the current set".
    stamp: Vec<u32>,
    /// Current epoch of `stamp`.
    epoch: u32,
    /// Vertex→edge incidence of the edge arena *as of construction/induce
    /// time*. Edges only ever lose members, so an edge containing `v` now
    /// was always incident to `v` — which makes the construction-time
    /// incidence a sound over-approximation and enables the
    /// incidence-directed trim/discard fast path.
    incidence: IncidenceIndex,
    /// Reusable per-operation scratch; never observable (see
    /// [`EngineScratch`]).
    scratch: EngineScratch,
}

/// Vertex→edge incidence index of an [`ActiveHypergraph`].
#[derive(Debug, Clone, Default)]
enum IncidenceIndex {
    /// No index: every update uses the scan paths (engines built from raw
    /// parts or by the allocating [`ActiveHypergraph::induced_by`]).
    #[default]
    None,
    /// Indexed directly by vertex id (offsets of length `id_space + 1`),
    /// inherited from the source [`Hypergraph`] for engines built by
    /// [`ActiveHypergraph::from_hypergraph`] / `reset_from`.
    Full {
        /// CSR offsets into `incident`, indexed by vertex id.
        offsets: Vec<u32>,
        /// Concatenated per-vertex lists of incident edge ids.
        incident: Vec<EdgeId>,
    },
    /// Compact index over only the vertices that occur in the instance's
    /// edges (`keys`, ascending; rank lookup by binary search), derived by
    /// [`ActiveHypergraph::induced_by_into`] for sampled sub-instances so
    /// they keep the incidence fast path without an `O(id_space)` table.
    Compact {
        /// The vertices with at least one incident edge, ascending.
        keys: Vec<VertexId>,
        /// CSR offsets into `incident`, of length `keys.len() + 1`.
        offsets: Vec<u32>,
        /// Concatenated per-key lists of incident edge ids.
        incident: Vec<EdgeId>,
    },
}

impl IncidenceIndex {
    /// The edges incident to `v` at index-build time (empty if `v` is
    /// unknown to the index), or `None` if no index exists at all.
    #[inline]
    fn incident(&self, v: VertexId) -> Option<&[EdgeId]> {
        match self {
            IncidenceIndex::None => None,
            IncidenceIndex::Full { offsets, incident } => {
                let lo = offsets[v as usize] as usize;
                let hi = offsets[v as usize + 1] as usize;
                Some(&incident[lo..hi])
            }
            IncidenceIndex::Compact {
                keys,
                offsets,
                incident,
            } => match keys.binary_search(&v) {
                Ok(r) => Some(&incident[offsets[r] as usize..offsets[r + 1] as usize]),
                Err(_) => Some(&[]),
            },
        }
    }

    /// Tears the index down into its (cleared-on-reuse) buffers so a rebuild
    /// can reuse the allocations. Missing buffers come back empty.
    fn take_buffers(&mut self) -> (Vec<VertexId>, Vec<u32>, Vec<EdgeId>) {
        match std::mem::take(self) {
            IncidenceIndex::None => (Vec::new(), Vec::new(), Vec::new()),
            IncidenceIndex::Full { offsets, incident } => (Vec::new(), offsets, incident),
            IncidenceIndex::Compact {
                keys,
                offsets,
                incident,
            } => (keys, offsets, incident),
        }
    }
}

/// Reusable scratch buffers for the engine's own update operations (frontier
/// hit flags, per-segment trim lengths, the pair-sort arena of the dominated
/// sweep and of the compact-incidence build). Purely an allocation cache:
/// every user overwrites what it reads, so scratch contents never influence
/// results — which is why `Clone` hands the copy empty scratch.
#[derive(Debug, Default)]
struct EngineScratch {
    /// Per-frontier-position hit flags (discard scans, induce keep flags).
    hit: Vec<bool>,
    /// Per-frontier-position trimmed lengths (segment trim).
    lens: Vec<u32>,
    /// `(vertex << 32) | position` pairs (dominated sweep, incidence build).
    pairs: Vec<u64>,
    /// Per-frontier-position dominated flags.
    dead: Vec<bool>,
    /// Vertex id scratch (induce mark-set sorting).
    verts: Vec<VertexId>,
}

impl Clone for EngineScratch {
    fn clone(&self) -> Self {
        EngineScratch::default()
    }
}

impl ActiveHypergraph {
    /// `alive_list` must be exactly the ascending ids with `status == V_ALIVE`.
    fn from_edge_lists<'a, I>(
        id_space: usize,
        status: Vec<u8>,
        alive_list: Vec<VertexId>,
        edges: I,
    ) -> Self
    where
        I: Iterator<Item = &'a [VertexId]>,
    {
        let mut edge_offsets = vec![0u32];
        let mut edge_vertices = Vec::new();
        let mut live_len = Vec::new();
        for e in edges {
            edge_vertices.extend_from_slice(e);
            edge_offsets.push(edge_vertices.len() as u32);
            live_len.push(e.len() as u32);
        }
        let m = live_len.len();
        ActiveHypergraph {
            id_space,
            status,
            alive_list,
            edge_offsets,
            edge_vertices,
            live_len,
            edge_status: vec![EDGE_LIVE; m],
            live_edges: (0..m as EdgeId).collect(),
            stamp: vec![0; id_space],
            epoch: 0,
            incidence: IncidenceIndex::None,
            scratch: EngineScratch::default(),
        }
    }

    /// Creates an active copy of a full hypergraph: every vertex alive, every
    /// edge present. Inherits the hypergraph's incidence index, enabling the
    /// incidence-directed trim/discard fast path.
    pub fn from_hypergraph(h: &Hypergraph) -> Self {
        let mut ah =
            Self::from_edge_lists(0, Vec::new(), Vec::new(), std::iter::empty::<&[VertexId]>());
        ah.reset_from(h);
        ah
    }

    /// Re-initializes this engine to an active copy of `h` **in place**,
    /// reusing every internal buffer (status, alive list, edge arena, epoch
    /// stamps, incidence index). Observationally identical to
    /// [`from_hypergraph`](Self::from_hypergraph) — only the allocation
    /// behaviour differs: after a warm-up solve of a same-shaped instance,
    /// resetting performs no allocation at all.
    pub fn reset_from(&mut self, h: &Hypergraph) {
        let n = h.n_vertices();
        let m = h.n_edges();
        self.id_space = n;
        self.status.clear();
        self.status.resize(n, V_ALIVE);
        self.alive_list.clear();
        self.alive_list.extend(0..n as u32);
        let (edge_offsets, edge_vertices) = h.edge_csr();
        self.edge_offsets.clear();
        self.edge_offsets.extend_from_slice(edge_offsets);
        self.edge_vertices.clear();
        self.edge_vertices.extend_from_slice(edge_vertices);
        self.live_len.clear();
        self.live_len
            .extend(edge_offsets.windows(2).map(|w| w[1] - w[0]));
        self.edge_status.clear();
        self.edge_status.resize(m, EDGE_LIVE);
        self.live_edges.clear();
        self.live_edges.extend(0..m as EdgeId);
        // Stale stamps are all <= the current epoch and every reader bumps
        // the epoch before stamping, so only *new* entries need zeroing.
        self.stamp.resize(n, 0);
        let (_keys, mut offsets, mut incident) = self.incidence.take_buffers();
        let (inc_offsets, inc_edges) = h.incidence_csr();
        offsets.clear();
        offsets.extend_from_slice(inc_offsets);
        incident.clear();
        incident.extend_from_slice(inc_edges);
        self.incidence = IncidenceIndex::Full { offsets, incident };
    }

    /// Creates an active hypergraph from raw parts.
    ///
    /// `alive` selects the active vertices out of the id space `0..alive.len()`;
    /// `edges` must be sorted, duplicate-free and only mention alive vertices.
    ///
    /// # Panics
    /// Panics (in debug builds) if an edge mentions a dead or out-of-range
    /// vertex or is not sorted.
    pub fn from_parts(alive: Vec<bool>, edges: Vec<Vec<VertexId>>) -> Self {
        let status: Vec<u8> = alive
            .iter()
            .map(|&a| if a { V_ALIVE } else { V_DEAD })
            .collect();
        let alive_list = (0..alive.len() as u32)
            .filter(|&v| alive[v as usize])
            .collect();
        let ah = Self::from_edge_lists(
            alive.len(),
            status,
            alive_list,
            edges.iter().map(|e| e.as_slice()),
        );
        ah.debug_validate();
        ah
    }

    /// Size of the vertex id space (ids of the original hypergraph); every
    /// vertex id handled by this view is `< id_space()`.
    #[inline]
    pub fn id_space(&self) -> usize {
        self.id_space
    }

    /// Number of alive vertices.
    #[inline]
    pub fn n_alive(&self) -> usize {
        self.alive_list.len()
    }

    /// Number of live edges.
    #[inline]
    pub fn n_edges(&self) -> usize {
        self.live_edges.len()
    }

    /// Returns `true` if vertex `v` is alive.
    #[inline]
    pub fn is_alive(&self, v: VertexId) -> bool {
        self.status[v as usize] == V_ALIVE
    }

    /// The alive vertices in increasing order, as a borrowed slice (no
    /// allocation; the list is maintained incrementally).
    #[inline]
    pub fn alive_slice(&self) -> &[VertexId] {
        &self.alive_list
    }

    /// The alive vertices in increasing order.
    pub fn alive_vertices(&self) -> Vec<VertexId> {
        self.alive_list.clone()
    }

    /// The live edge ids (ascending), indexing into the original edge arena.
    #[inline]
    pub fn live_edge_ids(&self) -> &[EdgeId] {
        &self.live_edges
    }

    /// The sorted live members of edge `e`.
    #[inline]
    pub fn live_edge(&self, e: EdgeId) -> &[VertexId] {
        let lo = self.edge_offsets[e as usize] as usize;
        &self.edge_vertices[lo..lo + self.live_len[e as usize] as usize]
    }

    /// Why edge `e` left the instance (`EDGE_LIVE` if it has not).
    #[inline]
    pub fn edge_status(&self, e: EdgeId) -> u8 {
        self.edge_status[e as usize]
    }

    /// The live edges as owned sorted vertex lists, in frontier order.
    pub fn live_edges_owned(&self) -> Vec<Vec<VertexId>> {
        self.live_edges
            .iter()
            .map(|&e| self.live_edge(e).to_vec())
            .collect()
    }

    /// Total size of the live edges, `Σ_e |e|` over live members.
    ///
    /// When most edges are still live, this runs as a wide masked sum over
    /// the dense status/length arrays (dead edges keep stale `live_len`
    /// values, so the sum must filter by status); once the frontier has
    /// shrunk well below the edge count, the sparse gather over the
    /// frontier is cheaper. Both compute the identical total.
    pub fn total_live_size(&self) -> usize {
        if self.edge_status.len() <= self.live_edges.len().saturating_mul(4) {
            pram::simd::sum_u32_where_u8_eq(&self.live_len, &self.edge_status, EDGE_LIVE)
        } else {
            self.live_edges
                .iter()
                .map(|&e| self.live_len[e as usize] as usize)
                .sum()
        }
    }

    /// Maximum cardinality among live edges (0 if edgeless).
    pub fn dimension(&self) -> usize {
        self.live_edges
            .iter()
            .map(|&e| self.live_len[e as usize] as usize)
            .max()
            .unwrap_or(0)
    }

    /// Bumps the stamp epoch, wiping the previous transient set in `O(1)`.
    fn next_epoch(&mut self) -> u32 {
        if self.epoch == u32::MAX {
            self.stamp.iter_mut().for_each(|s| *s = 0);
            self.epoch = 0;
        }
        self.epoch += 1;
        self.epoch
    }

    /// Rebuilds the live-edge frontier from the per-edge status array,
    /// preserving ascending order: an in-place stable compaction with no
    /// steady-state allocation (the PRAM cost of the step is charged at the
    /// algorithm layer, like every other engine update).
    ///
    /// The frontier invariant (`live_edges` is exactly the ascending
    /// `EDGE_LIVE` positions, pinned by [`debug_validate`](Self::debug_validate))
    /// makes the dense wide sweep over the status array an exact
    /// replacement for the sparse `retain`; the sweep is used while the
    /// frontier is still a sizeable fraction of the edge count, the sparse
    /// walk once it has shrunk. The threshold depends only on instance
    /// state, so the choice — and of course the result — is deterministic.
    fn rebuild_frontier(&mut self) {
        if self.edge_status.len() <= self.live_edges.len().saturating_mul(4) {
            pram::simd::positions_eq_u8(&self.edge_status, EDGE_LIVE, &mut self.live_edges);
        } else {
            let status = &self.edge_status;
            self.live_edges.retain(|&e| status[e as usize] == EDGE_LIVE);
        }
    }

    /// Marks the given vertices dead (decided) and compacts the alive list.
    pub fn kill_vertices(&mut self, vs: &[VertexId]) {
        let mut changed = false;
        for &v in vs {
            let slot = &mut self.status[v as usize];
            if *slot == V_ALIVE {
                *slot = V_DEAD;
                changed = true;
            }
        }
        if changed {
            // Same dense-vs-sparse split as `rebuild_frontier`: the alive
            // list is exactly the ascending `V_ALIVE` positions, so the wide
            // status sweep and the sparse `retain` are interchangeable.
            if self.status.len() <= self.alive_list.len().saturating_mul(4) {
                pram::simd::positions_eq_u8(&self.status, V_ALIVE, &mut self.alive_list);
            } else {
                let status = &self.status;
                self.alive_list.retain(|&v| status[v as usize] == V_ALIVE);
            }
        }
    }

    /// Total number of construction-time incident edges of `vs`, if an
    /// incidence index is available — the cost of the incidence-directed
    /// update path.
    fn incidence_work(&self, vs: &[VertexId]) -> Option<usize> {
        if matches!(self.incidence, IncidenceIndex::None) {
            return None;
        }
        Some(
            vs.iter()
                .map(|&v| self.incidence.incident(v).map_or(0, |inc| inc.len()))
                .sum(),
        )
    }

    /// Removes the vertices of `set` from every live edge. `vs` must list
    /// exactly the set vertices (any order, duplicate-free). Returns the
    /// number of edges that became empty; those edges are dropped.
    ///
    /// Two implementations with identical results: when the trim set's total
    /// incident degree is small compared to the instance (the common case in
    /// the SBL/BL rounds), each trimmed vertex walks its original incidence
    /// list and splices itself out of the affected segments; otherwise every
    /// live segment is compacted in place through the parallel
    /// [`par_map_segments`](pram::primitives::par_map_segments) primitive.
    pub fn shrink_edges_by(&mut self, set: &[bool], vs: &[VertexId]) -> usize {
        if let Some(work) = self.incidence_work(vs) {
            if work.saturating_mul(4) < self.total_live_size() {
                return self.shrink_by_incidence(vs);
            }
        }
        self.shrink_by_segments(set)
    }

    /// Incidence-directed trim: `O(Σ_v deg(v) · log|e|)` in the
    /// construction-time degrees of the trimmed vertices.
    fn shrink_by_incidence(&mut self, vs: &[VertexId]) -> usize {
        let mut emptied = 0usize;
        for &v in vs {
            let incident = self.incidence.incident(v).expect("checked by caller");
            for &e in incident {
                if self.edge_status[e as usize] != EDGE_LIVE {
                    continue;
                }
                let seg_lo = self.edge_offsets[e as usize] as usize;
                let len = self.live_len[e as usize] as usize;
                let seg = &mut self.edge_vertices[seg_lo..seg_lo + len];
                if let Ok(pos) = seg.binary_search(&v) {
                    seg.copy_within(pos + 1.., pos);
                    self.live_len[e as usize] = (len - 1) as u32;
                    if len == 1 {
                        self.edge_status[e as usize] = EDGE_EMPTIED;
                        emptied += 1;
                    }
                }
            }
        }
        if emptied > 0 {
            self.rebuild_frontier();
        }
        emptied
    }

    /// Full-scan trim: every live segment is compacted in place (in parallel
    /// above the pram cutoff).
    fn shrink_by_segments(&mut self, set: &[bool]) -> usize {
        // Carve the live-edge segments out of the arena as disjoint mutable
        // slices (frontier order is ascending, so a split_at_mut sweep works).
        let mut segments: Vec<&mut [VertexId]> = Vec::with_capacity(self.live_edges.len());
        let mut rest: &mut [VertexId] = &mut self.edge_vertices;
        let mut pos = 0usize;
        for &e in &self.live_edges {
            let lo = self.edge_offsets[e as usize] as usize;
            let len = self.live_len[e as usize] as usize;
            let (_, tail) = std::mem::take(&mut rest).split_at_mut(lo - pos);
            let (seg, tail) = tail.split_at_mut(len);
            segments.push(seg);
            rest = tail;
            pos = lo + len;
        }
        let mut new_lens = std::mem::take(&mut self.scratch.lens);
        par_map_segments_into(
            segments,
            |seg| {
                let mut w = 0usize;
                for i in 0..seg.len() {
                    let v = seg[i];
                    if !set[v as usize] {
                        seg[w] = v;
                        w += 1;
                    }
                }
                w as u32
            },
            None,
            &mut new_lens,
        );
        let mut emptied = 0usize;
        for (k, &e) in self.live_edges.iter().enumerate() {
            self.live_len[e as usize] = new_lens[k];
            if new_lens[k] == 0 {
                self.edge_status[e as usize] = EDGE_EMPTIED;
                emptied += 1;
            }
        }
        self.scratch.lens = new_lens;
        if emptied > 0 {
            self.rebuild_frontier();
        }
        emptied
    }

    /// Discards every live edge containing at least one vertex from `set`.
    /// `vs` must list exactly the set vertices (any order, duplicate-free).
    /// Returns the number of edges discarded.
    ///
    /// Like [`shrink_edges_by`](Self::shrink_edges_by), this picks between an
    /// incidence-directed walk of the touched vertices' edges and a parallel
    /// scan of all live edges; the results are identical.
    pub fn discard_edges_touching(&mut self, set: &[bool], vs: &[VertexId]) -> usize {
        if let Some(work) = self.incidence_work(vs) {
            if work.saturating_mul(4) < self.total_live_size() {
                return self.discard_by_incidence(vs);
            }
        }
        self.discard_by_scan(set)
    }

    /// Incidence-directed discard: only the construction-time incident edges
    /// of the touched vertices are inspected. Membership is re-checked
    /// against the *live* members, since a vertex may have been trimmed out
    /// of an edge earlier (such an edge must survive).
    fn discard_by_incidence(&mut self, vs: &[VertexId]) -> usize {
        let mut removed = 0usize;
        for &v in vs {
            let incident = self.incidence.incident(v).expect("checked by caller");
            for &e in incident {
                if self.edge_status[e as usize] != EDGE_LIVE {
                    continue;
                }
                let seg_lo = self.edge_offsets[e as usize] as usize;
                let len = self.live_len[e as usize] as usize;
                if self.edge_vertices[seg_lo..seg_lo + len]
                    .binary_search(&v)
                    .is_ok()
                {
                    self.edge_status[e as usize] = EDGE_DISCARDED;
                    removed += 1;
                }
            }
        }
        if removed > 0 {
            self.rebuild_frontier();
        }
        removed
    }

    /// Full-scan discard over every live edge (in parallel above the pram
    /// cutoff).
    fn discard_by_scan(&mut self, set: &[bool]) -> usize {
        let mut hit = std::mem::take(&mut self.scratch.hit);
        let offsets = &self.edge_offsets;
        let verts = &self.edge_vertices;
        let live_len = &self.live_len;
        par_map_into(
            &self.live_edges,
            |&e| {
                let lo = offsets[e as usize] as usize;
                verts[lo..lo + live_len[e as usize] as usize]
                    .iter()
                    .any(|&v| set[v as usize])
            },
            None,
            &mut hit,
        );
        let removed = self.apply_edge_hits(&hit, EDGE_DISCARDED);
        self.scratch.hit = hit;
        removed
    }

    /// Discards every live edge with a member stamped at `cur`, tagging it
    /// with `reason`. Returns the number of edges discarded.
    fn discard_edges_stamped(&mut self, cur: u32, reason: u8) -> usize {
        let mut hit = std::mem::take(&mut self.scratch.hit);
        let offsets = &self.edge_offsets;
        let verts = &self.edge_vertices;
        let live_len = &self.live_len;
        let stamp = &self.stamp;
        par_map_into(
            &self.live_edges,
            |&e| {
                let lo = offsets[e as usize] as usize;
                verts[lo..lo + live_len[e as usize] as usize]
                    .iter()
                    .any(|&v| stamp[v as usize] == cur)
            },
            None,
            &mut hit,
        );
        let removed = self.apply_edge_hits(&hit, reason);
        self.scratch.hit = hit;
        removed
    }

    /// Tags every frontier edge whose `hit` flag is set with `reason` and
    /// rebuilds the frontier; returns how many edges were tagged.
    fn apply_edge_hits(&mut self, hit: &[bool], reason: u8) -> usize {
        let mut removed = 0usize;
        for (k, &e) in self.live_edges.iter().enumerate() {
            if hit[k] {
                self.edge_status[e as usize] = reason;
                removed += 1;
            }
        }
        if removed > 0 {
            self.rebuild_frontier();
        }
        removed
    }

    /// Removes every live edge that strictly contains another live edge.
    /// Exact duplicates (equal live member sets) keep both representatives.
    /// Returns the number of edges removed.
    ///
    /// Every edge probes the edges incident to its least-frequent member for
    /// strict supersets; the probes are independent, so they run through
    /// [`par_tabulate`]. The removed set is order-independent (an edge is
    /// removed iff *some* live edge is strictly contained in it), which is
    /// what makes the parallel formulation exact.
    pub fn remove_dominated_edges(&mut self) -> usize {
        let m = self.live_edges.len();
        if m <= 1 {
            return 0;
        }
        // Incidence via (vertex, frontier-position) pair sort: `O(T log T)`
        // in the total live size `T`, with no dependence on the id space —
        // crucial for SBL's sampled sub-instances, which inherit the global
        // id space but hold only a handful of vertices. Pairs are packed as
        // `(v << 32) | k` so the u64 sort order equals the tuple order and
        // the arena is reusable scratch.
        let mut pairs = std::mem::take(&mut self.scratch.pairs);
        pairs.clear();
        pairs.reserve(self.total_live_size());
        for (k, &e) in self.live_edges.iter().enumerate() {
            for &v in self.live_edge(e) {
                pairs.push(((v as u64) << 32) | k as u64);
            }
        }
        pairs.sort_unstable();
        // incidence(v) = the contiguous run of pairs with high half v.
        let pairs_ref = &pairs;
        let run_of = |v: VertexId| -> &[u64] {
            let lo = pairs_ref.partition_point(|&p| (p >> 32) < v as u64);
            let hi = pairs_ref.partition_point(|&p| (p >> 32) <= v as u64);
            &pairs_ref[lo..hi]
        };

        let live_edges = &self.live_edges;
        let offsets = &self.edge_offsets;
        let verts = &self.edge_vertices;
        let live_len = &self.live_len;
        let slice_of = |k: usize| -> &[VertexId] {
            let e = live_edges[k] as usize;
            let lo = offsets[e] as usize;
            &verts[lo..lo + live_len[e] as usize]
        };
        let hits: Vec<Vec<u32>> = par_tabulate(
            m,
            |k| {
                let e = slice_of(k);
                // Any *other* live edge that contains every member of e is
                // dominated. Candidates must be incident to the
                // least-frequent member of e.
                let pivot = e
                    .iter()
                    .copied()
                    .min_by_key(|&v| run_of(v).len())
                    .expect("live edges are non-empty");
                let mut out = Vec::new();
                for &pair in run_of(pivot) {
                    let cand = (pair & u32::MAX as u64) as u32;
                    if cand as usize == k {
                        continue;
                    }
                    let ce = slice_of(cand as usize);
                    // Equal-size edges cannot *strictly* contain e.
                    if ce.len() <= e.len() {
                        continue;
                    }
                    if e.iter().all(|&v| ce.binary_search(&v).is_ok()) {
                        out.push(cand);
                    }
                }
                out
            },
            None,
        );
        let mut dead = std::mem::take(&mut self.scratch.dead);
        dead.clear();
        dead.resize(m, false);
        let mut removed = 0usize;
        for hs in &hits {
            for &c in hs {
                if !dead[c as usize] {
                    dead[c as usize] = true;
                    removed += 1;
                }
            }
        }
        if removed > 0 {
            for (k, &e) in self.live_edges.iter().enumerate() {
                if dead[k] {
                    self.edge_status[e as usize] = EDGE_DOMINATED;
                }
            }
            self.rebuild_frontier();
        }
        self.scratch.dead = dead;
        self.scratch.pairs = pairs;
        removed
    }

    /// Removes singleton edges `{v}` and kills their vertex `v` (such a
    /// vertex can never join the independent set). Every other edge through a
    /// killed vertex can never become fully blue any more and is discarded as
    /// well. Returns the killed vertices, ascending.
    pub fn remove_singleton_edges(&mut self) -> Vec<VertexId> {
        let cur = self.next_epoch();
        let mut killed: Vec<VertexId> = Vec::new();
        let mut any = false;
        for &e in &self.live_edges {
            if self.live_len[e as usize] == 1 {
                any = true;
                self.edge_status[e as usize] = EDGE_SINGLETON;
                let v = self.edge_vertices[self.edge_offsets[e as usize] as usize];
                if self.stamp[v as usize] != cur {
                    self.stamp[v as usize] = cur;
                    killed.push(v);
                }
            }
        }
        if !any {
            return Vec::new();
        }
        killed.sort_unstable();
        self.rebuild_frontier();
        let use_incidence = self
            .incidence_work(&killed)
            .is_some_and(|w| w.saturating_mul(4) < self.total_live_size());
        if use_incidence {
            self.discard_by_incidence(&killed);
        } else {
            self.discard_edges_stamped(cur, EDGE_DISCARDED);
        }
        self.kill_vertices(&killed);
        killed
    }

    /// Derives the sub-hypergraph induced by the marked vertices into an
    /// existing engine, reusing `out`'s buffers, and equips it with a
    /// **compact incidence index** derived from the kept edges — so the
    /// sub-instance keeps the incidence-directed trim/discard fast path
    /// without ever touching an `O(id_space)` table. `vs` must list exactly
    /// the marked vertices (any order, duplicate-free).
    ///
    /// When the parent carries an incidence index and the mark set's total
    /// incident degree is small compared to the instance (the common case
    /// for SBL's samples), the kept edges are found by walking the marked
    /// vertices' incidence lists — `O(Σ_v deg(v))` — instead of scanning
    /// every live edge: an edge fully inside the mark set is in particular
    /// incident to a marked vertex, and edges only ever lose members, so the
    /// parent's construction-time incidence is a sound over-approximation.
    /// Candidate edge ids are sorted ascending, which *is* frontier order
    /// (the live-edge frontier is maintained ascending), so both derivations
    /// keep edges in the identical order.
    ///
    /// `out` may hold arbitrary previous state (a consumed sub-instance from
    /// an earlier round, an engine over a different id space). The cost is
    /// `O(n_alive + min(T, Σ_v deg(v) · dim) + T_sub · log T_sub)` where `T`
    /// is the parent's total live size and `T_sub` the sub-instance's —
    /// crucially *not* `O(id_space)`: the previous state is unwound through
    /// `out`'s alive list, and epoch stamps survive reuse by construction.
    ///
    /// Observationally `out` ends up identical to `self.induced_by(marked)`
    /// (the differential suites pin this); only the allocation behaviour and
    /// the availability of the incidence fast path differ.
    pub fn induced_by_into(&self, marked: &[bool], vs: &[VertexId], out: &mut ActiveHypergraph) {
        // Unwind out's previous observable state. The alive list is exactly
        // the set of V_ALIVE entries (engine invariant), so this is
        // O(previous sub size), not O(id_space).
        for &v in &out.alive_list {
            out.status[v as usize] = V_DEAD;
        }
        out.alive_list.clear();
        out.id_space = self.id_space;
        out.status.resize(self.id_space, V_DEAD);
        // Stale stamps are <= out's epoch and readers bump before stamping.
        out.stamp.resize(self.id_space, 0);

        // Alive set of the sub-instance: marked ∩ alive, ascending — derived
        // from `vs` in O(|vs|) (O(|vs| log |vs|) if the caller passed it
        // unsorted) instead of scanning the parent's whole alive list; for
        // SBL's samples `|vs| ≪ n_alive`.
        debug_assert!(
            vs.iter().all(|&v| marked[v as usize]),
            "vs must list exactly the marked vertices"
        );
        debug_assert_eq!(
            vs.len(),
            marked.iter().filter(|&&m| m).count(),
            "vs must list exactly the marked vertices"
        );
        if vs.windows(2).all(|w| w[0] < w[1]) {
            for &v in vs {
                if self.status[v as usize] == V_ALIVE {
                    out.status[v as usize] = V_ALIVE;
                    out.alive_list.push(v);
                }
            }
        } else {
            let mut sorted = std::mem::take(&mut out.scratch.verts);
            sorted.clear();
            sorted.extend_from_slice(vs);
            sorted.sort_unstable();
            for &v in &sorted {
                if self.status[v as usize] == V_ALIVE {
                    out.status[v as usize] = V_ALIVE;
                    out.alive_list.push(v);
                }
            }
            out.scratch.verts = sorted;
        }

        // Start rebuilding out's edge arena; kept edges are appended in
        // frontier order (identical to `induced_by`'s edge order).
        out.edge_offsets.clear();
        out.edge_offsets.push(0);
        out.edge_vertices.clear();
        out.live_len.clear();
        // Incidence-directed derivation: collect the live edges incident to
        // a marked vertex (the only candidates for full containment) in a
        // single walk, bailing out to the full scan if the mark set's
        // incident degree turns out to rival the instance size (same
        // threshold as the trim/discard fast paths). Candidates are sorted
        // ascending, which *is* frontier order.
        let mut use_incidence = !matches!(self.incidence, IncidenceIndex::None);
        if use_incidence {
            let budget = self.total_live_size() / 4;
            let mut cand = std::mem::take(&mut out.scratch.pairs);
            cand.clear();
            let mut walked = 0usize;
            'walk: for &v in vs {
                let incident = self.incidence.incident(v).expect("checked above");
                walked += incident.len();
                if walked > budget {
                    use_incidence = false;
                    break 'walk;
                }
                for &e in incident {
                    if self.edge_status[e as usize] == EDGE_LIVE {
                        cand.push(e as u64);
                    }
                }
            }
            if use_incidence {
                cand.sort_unstable();
                cand.dedup();
                let status_ref: &[u8] = &out.status;
                for &e in &cand {
                    let seg = self.live_edge(e as EdgeId);
                    if seg.iter().all(|&v| status_ref[v as usize] == V_ALIVE) {
                        out.edge_vertices.extend_from_slice(seg);
                        out.edge_offsets.push(out.edge_vertices.len() as u32);
                        out.live_len.push(seg.len() as u32);
                    }
                }
            }
            out.scratch.pairs = cand;
        }
        if !use_incidence {
            // Full scan: keep the live edges fully contained in the sub's
            // alive set.
            let mut keep = std::mem::take(&mut out.scratch.hit);
            {
                let status_ref: &[u8] = &out.status;
                let offsets = &self.edge_offsets;
                let verts = &self.edge_vertices;
                let live_len = &self.live_len;
                par_map_into(
                    &self.live_edges,
                    |&e| {
                        let lo = offsets[e as usize] as usize;
                        verts[lo..lo + live_len[e as usize] as usize]
                            .iter()
                            .all(|&v| status_ref[v as usize] == V_ALIVE)
                    },
                    None,
                    &mut keep,
                );
            }
            for (k, &e) in self.live_edges.iter().enumerate() {
                if keep[k] {
                    let seg = self.live_edge(e);
                    out.edge_vertices.extend_from_slice(seg);
                    out.edge_offsets.push(out.edge_vertices.len() as u32);
                    out.live_len.push(seg.len() as u32);
                }
            }
            out.scratch.hit = keep;
        }
        let m = out.live_len.len();
        out.edge_status.clear();
        out.edge_status.resize(m, EDGE_LIVE);
        out.live_edges.clear();
        out.live_edges.extend(0..m as EdgeId);

        // Compact incidence over the kept edges: a (vertex, edge) pair sort,
        // O(T_sub log T_sub), no dependence on the id space.
        let mut pairs = std::mem::take(&mut out.scratch.pairs);
        pairs.clear();
        pairs.reserve(out.edge_vertices.len());
        for e in 0..m {
            let lo = out.edge_offsets[e] as usize;
            let hi = out.edge_offsets[e + 1] as usize;
            for &v in &out.edge_vertices[lo..hi] {
                pairs.push(((v as u64) << 32) | e as u64);
            }
        }
        pairs.sort_unstable();
        let (mut keys, mut inc_offsets, mut incident) = out.incidence.take_buffers();
        keys.clear();
        inc_offsets.clear();
        incident.clear();
        for &pair in &pairs {
            let v = (pair >> 32) as VertexId;
            let e = (pair & u32::MAX as u64) as EdgeId;
            if keys.last() != Some(&v) {
                keys.push(v);
                inc_offsets.push(incident.len() as u32);
            }
            incident.push(e);
        }
        inc_offsets.push(incident.len() as u32);
        out.incidence = IncidenceIndex::Compact {
            keys,
            offsets: inc_offsets,
            incident,
        };
        out.scratch.pairs = pairs;
        out.debug_validate();
    }

    /// The sub-hypergraph induced by the marked vertices, keeping only edges
    /// *fully contained* in the mark set (the `H' = (V', E')` of SBL line 7).
    ///
    /// The returned engine shares the global id space. This is the
    /// allocating variant (and carries no incidence index); the run pipeline
    /// uses [`induced_by_into`](Self::induced_by_into), and the differential
    /// suites compare the two state-for-state.
    pub fn induced_by(&self, marked: &[bool]) -> ActiveHypergraph {
        let mut status = vec![V_DEAD; self.id_space];
        let mut alive_list = Vec::new();
        for &v in &self.alive_list {
            if marked[v as usize] {
                status[v as usize] = V_ALIVE;
                alive_list.push(v);
            }
        }
        let status_ref = &status;
        let offsets = &self.edge_offsets;
        let verts = &self.edge_vertices;
        let live_len = &self.live_len;
        let keep: Vec<bool> = par_map(
            &self.live_edges,
            |&e| {
                let lo = offsets[e as usize] as usize;
                verts[lo..lo + live_len[e as usize] as usize]
                    .iter()
                    .all(|&v| status_ref[v as usize] == V_ALIVE)
            },
            None,
        );
        let edges = self
            .live_edges
            .iter()
            .enumerate()
            .filter(|&(k, _)| keep[k])
            .map(|(_, &e)| self.live_edge(e));
        Self::from_edge_lists(self.id_space, status, alive_list, edges)
    }

    /// Independence oracle over the live edges: `true` iff some live edge
    /// lies entirely inside `set`. Uses the epoch-stamp scratch, so repeated
    /// queries allocate nothing.
    pub fn contains_live_edge_within(&mut self, set: &[VertexId]) -> bool {
        let cur = self.next_epoch();
        for &v in set {
            self.stamp[v as usize] = cur;
        }
        self.live_edges.iter().any(|&e| {
            let lo = self.edge_offsets[e as usize] as usize;
            self.edge_vertices[lo..lo + self.live_len[e as usize] as usize]
                .iter()
                .all(|&v| self.stamp[v as usize] == cur)
        })
    }

    /// Converts the active view into a compact immutable [`Hypergraph`] with
    /// vertices relabelled to `0..n_alive`, returning the hypergraph and the
    /// mapping `new -> old` id.
    pub fn compact(&self) -> (Hypergraph, Vec<VertexId>) {
        let new_to_old = self.alive_list.clone();
        let mut old_to_new = vec![u32::MAX; self.id_space];
        for (new, &old) in new_to_old.iter().enumerate() {
            old_to_new[old as usize] = new as u32;
        }
        let edges: Vec<Vec<VertexId>> = self
            .live_edges
            .iter()
            .map(|&e| {
                self.live_edge(e)
                    .iter()
                    .map(|&v| old_to_new[v as usize])
                    .collect()
            })
            .collect();
        (
            Hypergraph::from_sorted_edges(new_to_old.len() as u32, edges),
            new_to_old,
        )
    }

    /// Checks internal invariants; used by tests and debug assertions.
    ///
    /// # Panics
    /// Panics (in debug builds) if a live edge is unsorted, mentions a dead
    /// vertex, is empty, or the alive list / frontier is out of sync.
    pub fn debug_validate(&self) {
        debug_assert!(
            self.alive_list.windows(2).all(|w| w[0] < w[1]),
            "alive list not ascending"
        );
        debug_assert_eq!(
            self.alive_list.len(),
            pram::simd::count_eq_u8(&self.status, V_ALIVE),
            "alive list out of sync with status"
        );
        debug_assert!(
            self.live_edges.windows(2).all(|w| w[0] < w[1]),
            "frontier not ascending"
        );
        debug_assert_eq!(
            self.live_edges.len(),
            pram::simd::count_eq_u8(&self.edge_status, EDGE_LIVE),
            "frontier out of sync with edge status"
        );
        for &e in &self.live_edges {
            let edge = self.live_edge(e);
            debug_assert!(!edge.is_empty(), "empty live edge");
            debug_assert!(
                edge.windows(2).all(|w| w[0] < w[1]),
                "edge not sorted/deduplicated: {edge:?}"
            );
            for &v in edge {
                debug_assert!((v as usize) < self.id_space, "vertex out of range");
                debug_assert!(
                    self.status[v as usize] == V_ALIVE,
                    "edge mentions dead vertex {v}"
                );
            }
        }
    }
}

impl HypergraphView for ActiveHypergraph {
    fn id_space(&self) -> usize {
        self.id_space
    }

    fn n_active_vertices(&self) -> usize {
        self.alive_list.len()
    }

    fn n_active_edges(&self) -> usize {
        self.live_edges.len()
    }

    fn is_active(&self, v: VertexId) -> bool {
        self.status[v as usize] == V_ALIVE
    }

    fn active_vertices(&self) -> Vec<VertexId> {
        self.alive_list.clone()
    }

    fn edge_slices(&self) -> Box<dyn Iterator<Item = &[VertexId]> + '_> {
        Box::new(self.live_edges.iter().map(move |&e| self.live_edge(e)))
    }

    fn dimension(&self) -> usize {
        ActiveHypergraph::dimension(self)
    }
}

impl ActiveEngine for ActiveHypergraph {
    fn from_hypergraph(h: &Hypergraph) -> Self {
        ActiveHypergraph::from_hypergraph(h)
    }

    fn reset_from(&mut self, h: &Hypergraph) {
        ActiveHypergraph::reset_from(self, h)
    }

    fn alive_into(&self, out: &mut Vec<VertexId>) {
        out.clear();
        out.extend_from_slice(self.alive_slice());
    }

    fn total_live_size(&self) -> usize {
        ActiveHypergraph::total_live_size(self)
    }

    fn kill_vertices(&mut self, vs: &[VertexId]) {
        ActiveHypergraph::kill_vertices(self, vs)
    }

    fn shrink_edges_by(&mut self, set: &[bool], vs: &[VertexId]) -> usize {
        ActiveHypergraph::shrink_edges_by(self, set, vs)
    }

    fn discard_edges_touching(&mut self, set: &[bool], vs: &[VertexId]) -> usize {
        ActiveHypergraph::discard_edges_touching(self, set, vs)
    }

    fn remove_dominated_edges(&mut self) -> usize {
        ActiveHypergraph::remove_dominated_edges(self)
    }

    fn remove_singleton_edges(&mut self) -> Vec<VertexId> {
        ActiveHypergraph::remove_singleton_edges(self)
    }

    fn induced_by(&self, marked: &[bool]) -> Self {
        ActiveHypergraph::induced_by(self, marked)
    }

    fn induced_by_into(&self, marked: &[bool], vs: &[VertexId], out: &mut Self) {
        ActiveHypergraph::induced_by_into(self, marked, vs, out)
    }

    fn contains_live_edge_within(&mut self, set: &[VertexId]) -> bool {
        ActiveHypergraph::contains_live_edge_within(self, set)
    }

    fn live_edges_owned(&self) -> Vec<Vec<VertexId>> {
        ActiveHypergraph::live_edges_owned(self)
    }

    fn compact(&self) -> (Hypergraph, Vec<VertexId>) {
        ActiveHypergraph::compact(self)
    }

    fn validate(&self) {
        self.debug_validate()
    }
}

#[cfg(feature = "reference-engine")]
pub mod reference {
    //! The original `Vec<Vec<VertexId>>`-backed `ActiveHypergraph`, preserved
    //! as the semantic oracle for the flat engine.
    //!
    //! This is the pre-flat implementation, kept byte-for-byte where possible
    //! (only the construction and trait plumbing changed). It is compiled
    //! behind the `reference-engine` feature (on by default) and used by:
    //!
    //! * `crates/hypergraph/tests/active_diff.rs` — random edit scripts
    //!   replayed against both engines;
    //! * the facade's `tests/mis_properties.rs` — whole algorithm runs
    //!   compared decision-for-decision;
    //! * the `bench` crate's `BENCH_activeset.json` regression guard.
    //!
    //! Do not optimise this module: its value is that it stays simple and
    //! obviously correct.

    use std::collections::BTreeSet;

    use super::ActiveEngine;
    use crate::graph::{Hypergraph, VertexId};
    use crate::view::HypergraphView;

    /// A mutable hypergraph view over a fixed vertex id space, backed by
    /// per-edge `Vec`s (the pre-flat representation).
    #[derive(Debug, Clone)]
    pub struct ReferenceActiveHypergraph {
        /// Size of the vertex id space (ids of the original hypergraph).
        id_space: usize,
        /// `alive[v]` — vertex `v` is still undecided.
        alive: Vec<bool>,
        /// Number of `true` entries in `alive`.
        n_alive: usize,
        /// Current edges: sorted vertex lists over alive vertices.
        edges: Vec<Vec<VertexId>>,
    }

    impl ReferenceActiveHypergraph {
        /// Creates an active copy of a full hypergraph.
        pub fn from_hypergraph(h: &Hypergraph) -> Self {
            ReferenceActiveHypergraph {
                id_space: h.n_vertices(),
                alive: vec![true; h.n_vertices()],
                n_alive: h.n_vertices(),
                edges: h.edges_owned(),
            }
        }

        /// Number of alive vertices.
        pub fn n_alive(&self) -> usize {
            self.n_alive
        }

        /// Read-only access to the current edges.
        pub fn edges(&self) -> &[Vec<VertexId>] {
            &self.edges
        }

        /// The alive vertices in increasing order.
        pub fn alive_vertices(&self) -> Vec<VertexId> {
            (0..self.id_space as u32)
                .filter(|&v| self.alive[v as usize])
                .collect()
        }

        fn kill_vertices_impl(&mut self, vs: &[VertexId]) {
            for &v in vs {
                let slot = &mut self.alive[v as usize];
                if *slot {
                    *slot = false;
                    self.n_alive -= 1;
                }
            }
        }

        fn shrink_edges_by_impl(&mut self, set: &[bool]) -> usize {
            let mut emptied = 0;
            for e in &mut self.edges {
                e.retain(|&v| !set[v as usize]);
                if e.is_empty() {
                    emptied += 1;
                }
            }
            if emptied > 0 {
                self.edges.retain(|e| !e.is_empty());
            }
            emptied
        }

        fn discard_edges_touching_impl(&mut self, set: &[bool]) -> usize {
            let before = self.edges.len();
            self.edges.retain(|e| !e.iter().any(|&v| set[v as usize]));
            before - self.edges.len()
        }

        fn remove_dominated_edges_impl(&mut self) -> usize {
            let m = self.edges.len();
            if m <= 1 {
                return 0;
            }
            let mut incidence: Vec<Vec<u32>> = vec![Vec::new(); self.id_space];
            for (i, e) in self.edges.iter().enumerate() {
                for &v in e {
                    incidence[v as usize].push(i as u32);
                }
            }
            let mut order: Vec<u32> = (0..m as u32).collect();
            order.sort_by_key(|&i| (self.edges[i as usize].len(), i));

            let mut dead = vec![false; m];
            for &i in &order {
                if dead[i as usize] {
                    continue;
                }
                let e = &self.edges[i as usize];
                let pivot = e
                    .iter()
                    .copied()
                    .min_by_key(|&v| incidence[v as usize].len())
                    .expect("edges are non-empty");
                for &cand in &incidence[pivot as usize] {
                    if cand == i || dead[cand as usize] {
                        continue;
                    }
                    let ce = &self.edges[cand as usize];
                    if ce.len() <= e.len() {
                        continue;
                    }
                    if e.iter().all(|&v| ce.binary_search(&v).is_ok()) {
                        dead[cand as usize] = true;
                    }
                }
            }
            let removed = dead.iter().filter(|&&d| d).count();
            if removed > 0 {
                let mut idx = 0;
                self.edges.retain(|_| {
                    let keep = !dead[idx];
                    idx += 1;
                    keep
                });
            }
            removed
        }

        fn remove_singleton_edges_impl(&mut self) -> Vec<VertexId> {
            let mut killed = BTreeSet::new();
            for e in &self.edges {
                if e.len() == 1 {
                    killed.insert(e[0]);
                }
            }
            if killed.is_empty() {
                return Vec::new();
            }
            self.edges.retain(|e| e.len() != 1);
            let mut flag = vec![false; self.id_space];
            for &v in &killed {
                flag[v as usize] = true;
            }
            self.discard_edges_touching_impl(&flag);
            let killed: Vec<VertexId> = killed.into_iter().collect();
            self.kill_vertices_impl(&killed);
            killed
        }

        fn induced_by_impl(&self, marked: &[bool]) -> Self {
            let mut alive = vec![false; self.id_space];
            let mut n_alive = 0;
            for v in 0..self.id_space {
                if self.alive[v] && marked[v] {
                    alive[v] = true;
                    n_alive += 1;
                }
            }
            let edges: Vec<Vec<VertexId>> = self
                .edges
                .iter()
                .filter(|e| e.iter().all(|&v| alive[v as usize]))
                .cloned()
                .collect();
            ReferenceActiveHypergraph {
                id_space: self.id_space,
                alive,
                n_alive,
                edges,
            }
        }

        /// Checks internal invariants.
        pub fn debug_validate(&self) {
            debug_assert_eq!(
                self.n_alive,
                self.alive.iter().filter(|&&a| a).count(),
                "n_alive out of sync"
            );
            for e in &self.edges {
                debug_assert!(!e.is_empty(), "empty edge");
                debug_assert!(
                    e.windows(2).all(|w| w[0] < w[1]),
                    "edge not sorted/deduplicated: {e:?}"
                );
                for &v in e {
                    debug_assert!((v as usize) < self.id_space, "vertex out of range");
                    debug_assert!(self.alive[v as usize], "edge mentions dead vertex {v}");
                }
            }
        }
    }

    impl HypergraphView for ReferenceActiveHypergraph {
        fn id_space(&self) -> usize {
            self.id_space
        }

        fn n_active_vertices(&self) -> usize {
            self.n_alive
        }

        fn n_active_edges(&self) -> usize {
            self.edges.len()
        }

        fn is_active(&self, v: VertexId) -> bool {
            self.alive[v as usize]
        }

        fn active_vertices(&self) -> Vec<VertexId> {
            self.alive_vertices()
        }

        fn edge_slices(&self) -> Box<dyn Iterator<Item = &[VertexId]> + '_> {
            Box::new(self.edges.iter().map(|e| e.as_slice()))
        }
    }

    impl ActiveEngine for ReferenceActiveHypergraph {
        fn from_hypergraph(h: &Hypergraph) -> Self {
            ReferenceActiveHypergraph::from_hypergraph(h)
        }

        fn total_live_size(&self) -> usize {
            self.edges.iter().map(|e| e.len()).sum()
        }

        fn kill_vertices(&mut self, vs: &[VertexId]) {
            self.kill_vertices_impl(vs)
        }

        fn shrink_edges_by(&mut self, set: &[bool], _vs: &[VertexId]) -> usize {
            self.shrink_edges_by_impl(set)
        }

        fn discard_edges_touching(&mut self, set: &[bool], _vs: &[VertexId]) -> usize {
            self.discard_edges_touching_impl(set)
        }

        fn remove_dominated_edges(&mut self) -> usize {
            self.remove_dominated_edges_impl()
        }

        fn remove_singleton_edges(&mut self) -> Vec<VertexId> {
            self.remove_singleton_edges_impl()
        }

        fn induced_by(&self, marked: &[bool]) -> Self {
            self.induced_by_impl(marked)
        }

        fn contains_live_edge_within(&mut self, set: &[VertexId]) -> bool {
            let mut member = vec![false; self.id_space];
            for &v in set {
                member[v as usize] = true;
            }
            self.edges
                .iter()
                .any(|e| e.iter().all(|&v| member[v as usize]))
        }

        fn live_edges_owned(&self) -> Vec<Vec<VertexId>> {
            self.edges.clone()
        }

        fn compact(&self) -> (Hypergraph, Vec<VertexId>) {
            let mut new_to_old = Vec::with_capacity(self.n_alive);
            let mut old_to_new = vec![u32::MAX; self.id_space];
            for (v, slot) in old_to_new.iter_mut().enumerate() {
                if self.alive[v] {
                    *slot = new_to_old.len() as u32;
                    new_to_old.push(v as u32);
                }
            }
            let edges: Vec<Vec<VertexId>> = self
                .edges
                .iter()
                .map(|e| e.iter().map(|&v| old_to_new[v as usize]).collect())
                .collect();
            (
                Hypergraph::from_sorted_edges(new_to_old.len() as u32, edges),
                new_to_old,
            )
        }

        fn validate(&self) {
            self.debug_validate()
        }
    }
}

/// Compile-time audit of the Send/Sync bounds the sharded serving layer
/// relies on: resident engines are shared read-only across shard worker
/// threads (`Sync`) and shard-local engines move into long-lived workers
/// (`Send`). If a future engine change introduces `Rc`/`RefCell`/raw-pointer
/// state, this stops compiling instead of the serve layer subtly breaking.
#[allow(dead_code)]
fn assert_engines_are_send_and_sync() {
    fn assert_send_sync<T: Send + Sync>() {}
    assert_send_sync::<Hypergraph>();
    assert_send_sync::<ActiveHypergraph>();
    #[cfg(feature = "reference-engine")]
    assert_send_sync::<reference::ReferenceActiveHypergraph>();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::hypergraph_from_edges;

    fn toy() -> ActiveHypergraph {
        let h = hypergraph_from_edges(
            6,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 1, 2, 3]],
        );
        ActiveHypergraph::from_hypergraph(&h)
    }

    #[test]
    fn from_hypergraph_copies_everything() {
        let ah = toy();
        assert_eq!(ah.n_alive(), 6);
        assert_eq!(ah.n_edges(), 4);
        assert_eq!(ah.dimension(), 4);
        assert_eq!(ah.total_live_size(), 12);
        ah.debug_validate();
    }

    #[test]
    fn kill_and_shrink() {
        let mut ah = toy();
        // Vertex 2 joins the IS: trim it out of every edge.
        let mut set = vec![false; 6];
        set[2] = true;
        ah.kill_vertices(&[2]);
        let emptied = ah.shrink_edges_by(&set, &[2]);
        assert_eq!(emptied, 0);
        assert_eq!(ah.n_alive(), 5);
        assert_eq!(ah.alive_slice(), &[0, 1, 3, 4, 5]);
        let edges = ah.live_edges_owned();
        assert!(edges.iter().all(|e| !e.contains(&2)));
        // Edge {2,3} became {3}; {0,1,2} became {0,1}; {0,1,2,3} became {0,1,3}.
        assert!(edges.contains(&vec![3]));
        assert!(edges.contains(&vec![0, 1]));
        assert!(edges.contains(&vec![0, 1, 3]));
    }

    #[test]
    fn shrink_reports_emptied_edges() {
        let h = hypergraph_from_edges(3, vec![vec![0, 1]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let set = vec![true, true, false];
        ah.kill_vertices(&[0, 1]);
        let emptied = ah.shrink_edges_by(&set, &[0, 1]);
        assert_eq!(emptied, 1);
        assert_eq!(ah.n_edges(), 0);
        assert_eq!(ah.edge_status(0), EDGE_EMPTIED);
        ah.debug_validate();
    }

    #[test]
    fn discard_edges_touching_red() {
        let mut ah = toy();
        let mut red = vec![false; 6];
        red[4] = true;
        let removed = ah.discard_edges_touching(&red, &[4]);
        assert_eq!(removed, 1); // only {3,4,5}
        assert_eq!(ah.n_edges(), 3);
        assert_eq!(ah.edge_status(2), EDGE_DISCARDED);
    }

    #[test]
    fn dominated_edges_are_removed() {
        let mut ah = toy();
        let removed = ah.remove_dominated_edges();
        // {0,1,2,3} strictly contains {0,1,2} and {2,3}.
        assert_eq!(removed, 1);
        assert_eq!(ah.n_edges(), 3);
        assert!(!ah.live_edges_owned().contains(&vec![0, 1, 2, 3]));
        assert_eq!(ah.edge_status(3), EDGE_DOMINATED);
    }

    #[test]
    fn dominated_chain() {
        let h = hypergraph_from_edges(5, vec![vec![0], vec![0, 1], vec![0, 1, 2], vec![3, 4]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let removed = ah.remove_dominated_edges();
        assert_eq!(removed, 2);
        assert_eq!(ah.n_edges(), 2);
        let edges = ah.live_edges_owned();
        assert!(edges.contains(&vec![0]));
        assert!(edges.contains(&vec![3, 4]));
    }

    #[test]
    fn equal_live_sets_are_both_kept() {
        // {0,1,2} and {0,1,3} both trim to {0,1}: neither strictly contains
        // the other, so the dominated sweep keeps both (matching the
        // reference engine's behaviour for post-trim duplicates).
        let h = hypergraph_from_edges(4, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let mut set = vec![false; 4];
        set[2] = true;
        set[3] = true;
        ah.kill_vertices(&[2, 3]);
        ah.shrink_edges_by(&set, &[2, 3]);
        assert_eq!(ah.remove_dominated_edges(), 0);
        assert_eq!(ah.n_edges(), 2);
    }

    #[test]
    fn singleton_removal_kills_vertex_and_satisfied_edges() {
        let h = hypergraph_from_edges(4, vec![vec![1], vec![1, 2], vec![2, 3]]);
        let mut ah = ActiveHypergraph::from_hypergraph(&h);
        let killed = ah.remove_singleton_edges();
        assert_eq!(killed, vec![1]);
        assert!(!ah.is_alive(1));
        // {1} gone, {1,2} discarded (contains the now-red vertex 1), {2,3} stays.
        assert_eq!(ah.n_edges(), 1);
        assert_eq!(ah.live_edges_owned(), vec![vec![2, 3]]);
        ah.debug_validate();
    }

    #[test]
    fn induced_subhypergraph_keeps_only_contained_edges() {
        let ah = toy();
        let mut marked = vec![false; 6];
        for v in [0, 1, 2] {
            marked[v] = true;
        }
        let sub = ah.induced_by(&marked);
        assert_eq!(sub.n_alive(), 3);
        assert_eq!(sub.n_edges(), 1); // only {0,1,2}
        assert_eq!(sub.live_edges_owned(), vec![vec![0, 1, 2]]);
        sub.debug_validate();
    }

    #[test]
    fn compact_relabels_densely() {
        let mut ah = toy();
        ah.kill_vertices(&[0, 2]);
        let mut set = vec![false; 6];
        set[0] = true;
        set[2] = true;
        ah.discard_edges_touching(&set, &[0, 2]);
        let (h, new_to_old) = ah.compact();
        assert_eq!(h.n_vertices(), 4);
        assert_eq!(new_to_old, vec![1, 3, 4, 5]);
        // Remaining edge {3,4,5} maps to {1,2,3} in new ids.
        assert_eq!(h.n_edges(), 1);
        assert_eq!(h.edge(0), &[1, 2, 3]);
    }

    #[test]
    fn view_impl_matches_direct_accessors() {
        let ah = toy();
        let v: &dyn HypergraphView = &ah;
        assert_eq!(v.n_active_vertices(), ah.n_alive());
        assert_eq!(v.n_active_edges(), ah.n_edges());
        assert_eq!(v.dimension(), 4);
        assert!(v.is_independent_in_view(&[0, 1, 3]));
        assert!(!v.is_independent_in_view(&[2, 3]));
    }

    #[test]
    fn contains_live_edge_within_matches_view_oracle() {
        let mut ah = toy();
        for set in [vec![0u32, 1, 3], vec![2, 3], vec![3, 4, 5], vec![]] {
            let expected = !ah.is_independent_in_view(&set);
            assert_eq!(ah.contains_live_edge_within(&set), expected, "{set:?}");
        }
    }

    #[test]
    fn epoch_stamps_do_not_leak_between_queries() {
        let mut ah = toy();
        // First query stamps {0,1,2}; second query with a disjoint set must
        // not see those stamps.
        assert!(ah.contains_live_edge_within(&[0, 1, 2]));
        assert!(!ah.contains_live_edge_within(&[3, 4]));
        assert!(ah.contains_live_edge_within(&[3, 4, 5]));
    }

    #[test]
    fn from_parts_round_trips() {
        let ah = ActiveHypergraph::from_parts(
            vec![true, false, true, true],
            vec![vec![0, 2], vec![2, 3]],
        );
        assert_eq!(ah.n_alive(), 3);
        assert_eq!(ah.n_edges(), 2);
        assert_eq!(ah.alive_slice(), &[0, 2, 3]);
    }

    #[test]
    fn reset_from_matches_fresh_construction() {
        let h1 = hypergraph_from_edges(
            6,
            vec![vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 1, 2, 3]],
        );
        let h2 = hypergraph_from_edges(4, vec![vec![0, 3], vec![1, 2, 3]]);
        // Dirty the engine thoroughly on h1, then reset to h2 and compare
        // against a fresh engine — including behaviour, not just state.
        let mut recycled = ActiveHypergraph::from_hypergraph(&h1);
        recycled.remove_dominated_edges();
        recycled.kill_vertices(&[0, 2]);
        let mut set = vec![false; 6];
        set[0] = true;
        set[2] = true;
        recycled.discard_edges_touching(&set, &[0, 2]);
        assert!(recycled.contains_live_edge_within(&[3, 4, 5]));

        recycled.reset_from(&h2);
        let fresh = ActiveHypergraph::from_hypergraph(&h2);
        assert_eq!(recycled.n_alive(), fresh.n_alive());
        assert_eq!(recycled.alive_vertices(), fresh.alive_vertices());
        assert_eq!(recycled.live_edges_owned(), fresh.live_edges_owned());
        assert_eq!(recycled.id_space(), fresh.id_space());
        recycled.debug_validate();
        // Epoch-stamped queries must not leak pre-reset state.
        assert!(recycled.contains_live_edge_within(&[0, 3]));
        assert!(!recycled.contains_live_edge_within(&[0, 1, 2]));
        // And the incidence fast path must be live again after reset.
        let mut a = recycled.clone();
        let mut b = fresh.clone();
        let mut blue = vec![false; 4];
        blue[3] = true;
        a.kill_vertices(&[3]);
        b.kill_vertices(&[3]);
        assert_eq!(
            a.shrink_edges_by(&blue, &[3]),
            b.shrink_edges_by(&blue, &[3])
        );
        assert_eq!(a.live_edges_owned(), b.live_edges_owned());
    }

    #[test]
    fn induced_by_into_matches_induced_by_on_dirty_reuse() {
        let h = hypergraph_from_edges(
            8,
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 1, 2, 3],
                vec![5, 6, 7],
            ],
        );
        let parent = ActiveHypergraph::from_hypergraph(&h);
        // Reused target engine, deliberately dirty and over a different id
        // space.
        let mut out = ActiveHypergraph::from_parts(vec![true, true, false], vec![vec![0, 1]]);
        for mark_set in [vec![0u32, 1, 2, 3], vec![2, 3, 4, 5], vec![], vec![5, 6, 7]] {
            let mut marked = vec![false; 8];
            for &v in &mark_set {
                marked[v as usize] = true;
            }
            let expected = parent.induced_by(&marked);
            parent.induced_by_into(&marked, &mark_set, &mut out);
            assert_eq!(out.n_alive(), expected.n_alive(), "{mark_set:?}");
            assert_eq!(out.alive_vertices(), expected.alive_vertices());
            assert_eq!(out.live_edges_owned(), expected.live_edges_owned());
            assert_eq!(out.id_space(), expected.id_space());
            out.debug_validate();
        }
        // The compact incidence must direct updates to the same results as
        // the expected (index-free) sub-engine.
        let mut marked = vec![false; 8];
        for v in [0, 1, 2, 3] {
            marked[v] = true;
        }
        let mut expected = parent.induced_by(&marked);
        parent.induced_by_into(&marked, &[0, 1, 2, 3], &mut out);
        let killed_a = out.remove_singleton_edges();
        let killed_b = expected.remove_singleton_edges();
        assert_eq!(killed_a, killed_b);
        let mut blue = vec![false; 8];
        blue[1] = true;
        out.kill_vertices(&[1]);
        expected.kill_vertices(&[1]);
        assert_eq!(
            out.shrink_edges_by(&blue, &[1]),
            expected.shrink_edges_by(&blue, &[1])
        );
        assert_eq!(out.live_edges_owned(), expected.live_edges_owned());
    }

    #[test]
    fn induced_by_into_of_edgeless_mark_set() {
        let ah = toy();
        let mut out = ActiveHypergraph::from_parts(vec![true; 2], vec![vec![0, 1]]);
        let marked = vec![false; 6];
        ah.induced_by_into(&marked, &[], &mut out);
        assert_eq!(out.n_alive(), 0);
        assert_eq!(out.n_edges(), 0);
        out.debug_validate();
    }

    #[cfg(feature = "reference-engine")]
    #[test]
    fn flat_and_reference_agree_on_a_small_script() {
        use super::reference::ReferenceActiveHypergraph;
        let h = hypergraph_from_edges(
            8,
            vec![
                vec![0, 1, 2],
                vec![2, 3],
                vec![3, 4, 5],
                vec![0, 1, 2, 3],
                vec![6],
                vec![5, 6, 7],
            ],
        );
        let mut flat = ActiveHypergraph::from_hypergraph(&h);
        let mut reference = ReferenceActiveHypergraph::from_hypergraph(&h);

        let same = |f: &ActiveHypergraph, r: &ReferenceActiveHypergraph| {
            assert_eq!(f.n_alive(), ActiveEngine::n_alive(r));
            assert_eq!(f.alive_vertices(), ActiveEngine::alive_vertices(r));
            assert_eq!(f.live_edges_owned(), ActiveEngine::live_edges_owned(r));
            assert_eq!(HypergraphView::dimension(f), HypergraphView::dimension(r));
        };

        assert_eq!(
            flat.remove_singleton_edges(),
            ActiveEngine::remove_singleton_edges(&mut reference)
        );
        same(&flat, &reference);

        assert_eq!(
            flat.remove_dominated_edges(),
            ActiveEngine::remove_dominated_edges(&mut reference)
        );
        same(&flat, &reference);

        let mut blue = vec![false; 8];
        blue[2] = true;
        flat.kill_vertices(&[2]);
        ActiveEngine::kill_vertices(&mut reference, &[2]);
        assert_eq!(
            flat.shrink_edges_by(&blue, &[2]),
            ActiveEngine::shrink_edges_by(&mut reference, &blue, &[2])
        );
        same(&flat, &reference);

        let mut red = vec![false; 8];
        red[4] = true;
        flat.kill_vertices(&[4]);
        ActiveEngine::kill_vertices(&mut reference, &[4]);
        assert_eq!(
            flat.discard_edges_touching(&red, &[4]),
            ActiveEngine::discard_edges_touching(&mut reference, &red, &[4])
        );
        same(&flat, &reference);

        let mut marked = vec![false; 8];
        for v in [0, 1, 3, 5] {
            marked[v] = true;
        }
        let fs = flat.induced_by(&marked);
        let rs = ActiveEngine::induced_by(&reference, &marked);
        same(&fs, &rs);
    }
}
