//! The Kim–Vu-style improvement of Section 4 of the paper.
//!
//! Kelsen's Corollary 3 bounds the one-stage migration of edges from co-size
//! `k` to co-size `j` around a set `X` by `(log n)^{2^{k−j}+1} · Δ_{|X|+k}(H)`
//! (summed over `k > j`). Section 4 plugs the Kim–Vu polynomial concentration
//! inequality into the same setting and obtains (Corollary 3/4 of the paper):
//!
//! ```text
//! Pr[ S(X,j,k) > (1 + a_{k−j} λ^{k−j}) · (Δ_{|X|+k}(H))^j ] ≤ 2e² · e^{−λ} · n^{k−j−1}
//! a_i = 8^i · (i!)^{1/2}
//! ```
//!
//! and with `λ = Θ(log² n)` the per-stage increase bound becomes
//! `Σ_{k>j} (log n)^{2(k−j)} · Δ_k(H)` — polynomially rather than
//! exponentially many log factors.
//!
//! This module provides both bounds so experiment E6 can compare them against
//! each other and against the migration actually observed in instrumented BL
//! runs.

/// `a_i = 8^i · sqrt(i!)` from the paper's Corollary 3.
pub fn kim_vu_a(i: u32) -> f64 {
    let mut fact = 1.0f64;
    for t in 1..=i {
        fact *= t as f64;
    }
    8f64.powi(i as i32) * fact.sqrt()
}

/// The Kim–Vu per-(j,k) threshold `(1 + a_{k−j} λ^{k−j}) · Δ^j` where `Δ`
/// stands for `Δ_{|X|+k}(H)`.
pub fn kim_vu_threshold(delta_k: f64, j: u32, k: u32, lambda: f64) -> f64 {
    assert!(k > j, "need k > j");
    let i = k - j;
    (1.0 + kim_vu_a(i) * lambda.powi(i as i32)) * delta_k.powi(j as i32)
}

/// The Kim–Vu failure probability `2e² · e^{−λ} · n^{k−j−1}` (log₂ space).
pub fn kim_vu_failure_log2(n: usize, j: u32, k: u32, lambda: f64) -> f64 {
    assert!(k > j);
    let ln2 = std::f64::consts::LN_2;
    (2.0 * std::f64::consts::E.powi(2)).log2() - lambda / ln2
        + ((k - j - 1) as f64) * (n.max(1) as f64).log2()
}

/// Kelsen's per-stage migration bound (Corollary 2 in the paper's numbering):
/// `Σ_{k>j} (log n)^{2^{k−j}+1} · Δ_k(H)`, in log₂ space of each term summed
/// in linear space when possible — returns the *linear* value, which may be
/// `inf` for large `d`. Use [`kelsen_migration_terms_log2`] for the safe form.
pub fn kelsen_migration_bound(n: usize, j: usize, deltas: &[f64]) -> f64 {
    kelsen_migration_terms_log2(n, j, deltas)
        .into_iter()
        .map(|t| 2f64.powf(t))
        .sum()
}

/// The individual log₂ terms `log2[(log n)^{2^{k−j}+1} · Δ_k]` for `k > j`,
/// where `deltas[k]` is `Δ_k(H)` (index by dimension, entries below `j+1`
/// ignored). Terms with `Δ_k = 0` are skipped.
pub fn kelsen_migration_terms_log2(n: usize, j: usize, deltas: &[f64]) -> Vec<f64> {
    let log_n = (n.max(2) as f64).log2();
    let mut out = Vec::new();
    for (k, &delta_k) in deltas.iter().enumerate() {
        if k <= j || delta_k <= 0.0 {
            continue;
        }
        let exp = 2f64.powi((k - j) as i32) + 1.0;
        out.push(exp * log_n.log2() + delta_k.log2());
    }
    out
}

/// The improved (Kim–Vu, Corollary 4) per-stage migration bound:
/// `Σ_{k>j} (log n)^{2(k−j)} · Δ_k(H)` (linear scale; may be large but
/// overflows far later than Kelsen's).
pub fn kim_vu_migration_bound(n: usize, j: usize, deltas: &[f64]) -> f64 {
    kim_vu_migration_terms_log2(n, j, deltas)
        .into_iter()
        .map(|t| 2f64.powf(t))
        .sum()
}

/// The individual log₂ terms `log2[(log n)^{2(k−j)} · Δ_k]` for `k > j`.
pub fn kim_vu_migration_terms_log2(n: usize, j: usize, deltas: &[f64]) -> Vec<f64> {
    let log_n = (n.max(2) as f64).log2();
    let mut out = Vec::new();
    for (k, &delta_k) in deltas.iter().enumerate() {
        if k <= j || delta_k <= 0.0 {
            continue;
        }
        let exp = 2.0 * (k - j) as f64;
        out.push(exp * log_n.log2() + delta_k.log2());
    }
    out
}

/// The trivial worst-case bound the paper contrasts both results with:
/// `Σ_{k>j} Δ_k(H)^{k}` — "all higher-dimensional edges migrating down".
/// Returned in linear scale (can be astronomically large).
pub fn trivial_migration_bound(j: usize, deltas: &[f64]) -> f64 {
    deltas
        .iter()
        .enumerate()
        .filter(|(k, &d)| *k > j && d > 0.0)
        .map(|(k, &d)| d.powi(k as i32))
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_coefficients() {
        assert!((kim_vu_a(1) - 8.0).abs() < 1e-12);
        assert!((kim_vu_a(2) - 64.0 * 2f64.sqrt()).abs() < 1e-9);
        assert!((kim_vu_a(3) - 512.0 * 6f64.sqrt()).abs() < 1e-9);
    }

    #[test]
    fn threshold_grows_with_gap() {
        let t1 = kim_vu_threshold(10.0, 1, 2, 4.0);
        let t2 = kim_vu_threshold(10.0, 1, 3, 4.0);
        assert!(t2 > t1);
        // j exponent: Δ^j dominates when Δ large.
        let t_j2 = kim_vu_threshold(10.0, 2, 3, 4.0);
        assert!(t_j2 > t1);
    }

    #[test]
    fn failure_probability_drops_with_lambda() {
        let p1 = kim_vu_failure_log2(1 << 16, 1, 3, 10.0);
        let p2 = kim_vu_failure_log2(1 << 16, 1, 3, 200.0);
        assert!(p2 < p1);
    }

    #[test]
    fn improved_bound_is_smaller_than_kelsen() {
        // Δ_k = 4 for k = 3..6, n = 2^16, j = 2.
        let mut deltas = vec![0.0; 7];
        deltas[3..7].fill(4.0);
        let n = 1 << 16;
        let kel = kelsen_migration_bound(n, 2, &deltas);
        let kv = kim_vu_migration_bound(n, 2, &deltas);
        assert!(kv < kel, "kim-vu {kv} should beat kelsen {kel}");
        // Both should be finite here and dominate the largest Δ_k.
        assert!(kv.is_finite() && kel.is_finite());
        assert!(kv >= 4.0);
    }

    #[test]
    fn per_term_exponents_match_paper() {
        // For k = j+1 the Kelsen exponent is 2^1 + 1 = 3 and the Kim-Vu
        // exponent is 2(k-j) = 2: one full log factor saved on the very first
        // term, which the paper highlights as the dominant one.
        let n = 1 << 16;
        let deltas = vec![0.0, 0.0, 0.0, 5.0]; // Δ_3 = 5, j = 2
        let kel = kelsen_migration_terms_log2(n, 2, &deltas);
        let kv = kim_vu_migration_terms_log2(n, 2, &deltas);
        assert_eq!(kel.len(), 1);
        assert_eq!(kv.len(), 1);
        let log_log_n = (n as f64).log2().log2();
        assert!((kel[0] - (3.0 * log_log_n + 5f64.log2())).abs() < 1e-9);
        assert!((kv[0] - (2.0 * log_log_n + 5f64.log2())).abs() < 1e-9);
    }

    #[test]
    fn trivial_bound_dominates_everything() {
        let deltas = vec![0.0, 0.0, 0.0, 50.0, 20.0];
        let triv = trivial_migration_bound(2, &deltas);
        assert!((triv - (50f64.powi(3) + 20f64.powi(4))).abs() < 1e-6);
        let n = 1 << 12;
        assert!(triv > kim_vu_migration_bound(n, 2, &deltas) || triv > 0.0);
    }

    #[test]
    fn empty_deltas_give_zero() {
        assert_eq!(kelsen_migration_bound(1024, 2, &[]), 0.0);
        assert_eq!(kim_vu_migration_bound(1024, 2, &[0.0; 5]), 0.0);
        assert_eq!(trivial_migration_bound(2, &[0.0; 5]), 0.0);
    }
}
