//! Weighted hypergraph polynomials: `S(H, w, p)`, `P(H, w, p, x)` and
//! `D(H, w, p)` from Kelsen's concentration bound (Theorem 3 of the paper).
//!
//! The random variable of interest is the polynomial
//!
//! ```text
//! S(H, w, p) = Σ_{e ∈ E(H)} w(e) · C_e      where C_e = Π_{v ∈ e} C_v
//! ```
//!
//! with the `C_v` i.i.d. Bernoulli(`p`) marking indicators. The quantity the
//! bound is phrased against is not the plain expectation but the maximum
//! expected *partial derivative*
//!
//! ```text
//! P(H, w, p, x) = Σ_{e ⊇ x} w(e) · p^{|e| − |x|},     D(H, w, p) = max_x P(H, w, p, x)
//! ```
//!
//! (the expected weighted number of edges around `x` that become fully marked
//! given that `x` itself is fully marked). This module computes all three
//! exactly, evaluates `S` against concrete markings (used by the migration
//! experiment E6 to compare the bound with observed behaviour), and builds the
//! specific weighted "migration" hypergraph `(H', w')` the paper constructs to
//! bound how many edges of co-size `k` around a set `X` can collapse to
//! co-size `j` in one stage.

use std::collections::HashMap;

use hypergraph::view::HypergraphView;
use hypergraph::VertexId;

/// A hypergraph with positive edge weights, as used by Kelsen's Theorem 3.
#[derive(Debug, Clone, Default)]
pub struct WeightedHypergraph {
    /// Number of vertices (`n(H)` in the theorem).
    pub n: usize,
    /// Edges as sorted vertex lists, paired with their weights.
    pub edges: Vec<(Vec<VertexId>, f64)>,
}

impl WeightedHypergraph {
    /// Creates an empty weighted hypergraph on `n` vertices.
    pub fn new(n: usize) -> Self {
        WeightedHypergraph {
            n,
            edges: Vec::new(),
        }
    }

    /// Adds an edge with the given weight. The vertex list is sorted and
    /// deduplicated; zero-weight or empty edges are ignored.
    pub fn add_edge(&mut self, mut vertices: Vec<VertexId>, weight: f64) {
        vertices.sort_unstable();
        vertices.dedup();
        if vertices.is_empty() || weight <= 0.0 {
            return;
        }
        self.edges.push((vertices, weight));
    }

    /// Number of weighted edges `m(H)`.
    pub fn n_edges(&self) -> usize {
        self.edges.len()
    }

    /// Dimension: the maximum edge cardinality (0 when empty).
    pub fn dimension(&self) -> usize {
        self.edges.iter().map(|(e, _)| e.len()).max().unwrap_or(0)
    }

    /// Expectation of `S(H, w, p)`: `Σ_e w(e) p^{|e|}`.
    pub fn expectation(&self, p: f64) -> f64 {
        self.edges
            .iter()
            .map(|(e, w)| w * p.powi(e.len() as i32))
            .sum()
    }

    /// The partial-derivative expectation `P(H, w, p, x)` for a sorted set `x`.
    ///
    /// Only edges containing `x` contribute; each contributes
    /// `w(e) · p^{|e|−|x|}`.
    pub fn partial_expectation(&self, p: f64, x: &[VertexId]) -> f64 {
        self.edges
            .iter()
            .filter(|(e, _)| is_subset(x, e))
            .map(|(e, w)| w * p.powi((e.len() - x.len()) as i32))
            .sum()
    }

    /// `D(H, w, p) = max_{x ⊆ V} P(H, w, p, x)`.
    ///
    /// Only subsets of edges can achieve the maximum for non-empty `x` (other
    /// sets have `P = 0`), and the empty set gives the plain expectation, so
    /// the maximisation enumerates edge subsets — `O(m · 2^dim)`.
    pub fn derivative_bound(&self, p: f64) -> f64 {
        let mut best = self.expectation(p);
        let mut seen: HashMap<Vec<VertexId>, ()> = HashMap::new();
        for (e, _) in &self.edges {
            let k = e.len();
            assert!(
                k <= 20,
                "derivative_bound: edge of size {k} would make subset enumeration intractable"
            );
            let full: u32 = if k == 32 { u32::MAX } else { (1u32 << k) - 1 };
            for mask in 1..=full {
                let x: Vec<VertexId> = e
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &v)| v)
                    .collect();
                if seen.insert(x.clone(), ()).is_none() {
                    let val = self.partial_expectation(p, &x);
                    if val > best {
                        best = val;
                    }
                }
            }
        }
        best
    }

    /// Evaluates the polynomial `S(H, w, ·)` against a concrete 0/1 marking:
    /// the weighted number of edges whose vertices are all marked.
    pub fn evaluate(&self, marked: &[bool]) -> f64 {
        self.edges
            .iter()
            .filter(|(e, _)| e.iter().all(|&v| marked[v as usize]))
            .map(|(_, w)| *w)
            .sum()
    }
}

fn is_subset(x: &[VertexId], e: &[VertexId]) -> bool {
    // Both sorted; standard merge-style subset check.
    let mut it = e.iter();
    'outer: for &xv in x {
        for &ev in it.by_ref() {
            if ev == xv {
                continue 'outer;
            }
            if ev > xv {
                return false;
            }
        }
        return false;
    }
    true
}

/// Builds the *migration* weighted hypergraph `(H', w')` of Section 3 (and
/// Lemma 3/4 of Kelsen): given the current hypergraph `H`, a set `X` and
/// co-sizes `j < k`, the edges of `H'` are all `(k−j)`-subsets `Y` of the
/// `k`-co-size neighbourhoods of `X`, and `w'(Y) = |N_j(X ∪ Y, H)|` counts how
/// many co-size-`j` edges around `X` would be created if `Y` were added to the
/// independent set. The polynomial `S(H', w', p)` then upper-bounds the
/// one-stage increase of `|N_j(X, H)|`.
pub fn migration_polynomial<V: HypergraphView + ?Sized>(
    view: &V,
    x: &[VertexId],
    j: usize,
    k: usize,
) -> WeightedHypergraph {
    assert!(j >= 1 && k > j, "need 1 <= j < k");
    let mut out = WeightedHypergraph::new(view.id_space());
    // Collect N_k(X): the k-element co-sets of edges of size |X| + k containing X.
    let mut co_sets: Vec<Vec<VertexId>> = Vec::new();
    for e in view.edge_slices() {
        if e.len() == x.len() + k && is_subset(x, e) {
            let y: Vec<VertexId> = e.iter().copied().filter(|v| !x.contains(v)).collect();
            co_sets.push(y);
        }
    }
    // Edge set X_{j,k}: all (k-j)-subsets Y of elements of N_k(X,H).
    // Weight w'(Y) = number of Z in N_k(X) with Y ⊆ Z — because each such Z
    // would leave a co-size-j remainder around X ∪ Y if Y joined the IS.
    let mut weights: HashMap<Vec<VertexId>, f64> = HashMap::new();
    let take = k - j;
    for z in &co_sets {
        // Enumerate (k-j)-subsets of z.
        let masks = subsets_of_size(z.len(), take);
        for mask in masks {
            let y: Vec<VertexId> = z
                .iter()
                .enumerate()
                .filter(|(i, _)| mask & (1 << i) != 0)
                .map(|(_, &v)| v)
                .collect();
            *weights.entry(y).or_insert(0.0) += 1.0;
        }
    }
    for (y, w) in weights {
        out.add_edge(y, w);
    }
    out
}

/// All bitmasks over `n` items with exactly `k` bits set (n ≤ 25 by assert).
fn subsets_of_size(n: usize, k: usize) -> Vec<u32> {
    assert!(n <= 25, "subset enumeration over {n} items is intractable");
    if k > n {
        return Vec::new();
    }
    let mut out = Vec::new();
    for mask in 0u32..(1u32 << n) {
        if mask.count_ones() as usize == k {
            out.push(mask);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use hypergraph::builder::hypergraph_from_edges;

    #[test]
    fn expectation_and_partial() {
        let mut wh = WeightedHypergraph::new(4);
        wh.add_edge(vec![0, 1], 2.0);
        wh.add_edge(vec![0, 1, 2], 1.0);
        wh.add_edge(vec![2, 3], 4.0);
        let p = 0.5;
        // E[S] = 2*0.25 + 1*0.125 + 4*0.25 = 0.5 + 0.125 + 1.0
        assert!((wh.expectation(p) - 1.625).abs() < 1e-12);
        // P(x = {0,1}) = 2*p^0 + 1*p^1 = 2.5
        assert!((wh.partial_expectation(p, &[0, 1]) - 2.5).abs() < 1e-12);
        // P(x = {2}) = 1*p^2 + 4*p^1 = 0.25 + 2.0
        assert!((wh.partial_expectation(p, &[2]) - 2.25).abs() < 1e-12);
        // P of a set contained in no edge is 0.
        assert_eq!(wh.partial_expectation(p, &[0, 3]), 0.0);
        // D is the max over all subsets, here achieved by x = {2,3}: the full
        // edge of weight 4 contributes 4·p⁰ = 4.
        assert!((wh.partial_expectation(p, &[2, 3]) - 4.0).abs() < 1e-12);
        assert!((wh.derivative_bound(p) - 4.0).abs() < 1e-12);
        // D dominates the expectation, as the paper notes.
        assert!(wh.derivative_bound(p) >= wh.expectation(p));
    }

    #[test]
    fn evaluate_counts_fully_marked_edges() {
        let mut wh = WeightedHypergraph::new(4);
        wh.add_edge(vec![0, 1], 2.0);
        wh.add_edge(vec![2, 3], 5.0);
        let marked = vec![true, true, true, false];
        assert_eq!(wh.evaluate(&marked), 2.0);
        let all = vec![true; 4];
        assert_eq!(wh.evaluate(&all), 7.0);
        let none = vec![false; 4];
        assert_eq!(wh.evaluate(&none), 0.0);
    }

    #[test]
    fn degenerate_edges_ignored() {
        let mut wh = WeightedHypergraph::new(3);
        wh.add_edge(vec![], 1.0);
        wh.add_edge(vec![1], 0.0);
        wh.add_edge(vec![1], -2.0);
        assert_eq!(wh.n_edges(), 0);
        assert_eq!(wh.dimension(), 0);
        assert_eq!(wh.expectation(0.3), 0.0);
    }

    #[test]
    fn subset_check() {
        assert!(is_subset(&[1, 3], &[0, 1, 2, 3]));
        assert!(!is_subset(&[1, 4], &[0, 1, 2, 3]));
        assert!(is_subset(&[], &[0, 1]));
        assert!(!is_subset(&[5], &[]));
    }

    #[test]
    fn migration_polynomial_small_case() {
        // H has edges {x, a, b} and {x, a, c} with X = {x=0}, so
        // N_2(X) = { {a,b}, {a,c} } (k = 2). For j = 1, the migration edges are
        // all 1-subsets of those co-sets: {a} (weight 2: both co-sets contain
        // a), {b} (weight 1), {c} (weight 1).
        let h = hypergraph_from_edges(4, vec![vec![0, 1, 2], vec![0, 1, 3]]);
        let wh = migration_polynomial(&h, &[0], 1, 2);
        assert_eq!(wh.n_edges(), 3);
        let weight_of = |v: u32| {
            wh.edges
                .iter()
                .find(|(e, _)| e == &vec![v])
                .map(|(_, w)| *w)
                .unwrap_or(0.0)
        };
        assert_eq!(weight_of(1), 2.0);
        assert_eq!(weight_of(2), 1.0);
        assert_eq!(weight_of(3), 1.0);
        // D(H',w',p) with p small: max partial derivative is at x={a}: 2.
        assert!((wh.derivative_bound(0.01) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn migration_polynomial_empty_when_no_k_edges() {
        let h = hypergraph_from_edges(4, vec![vec![0, 1]]);
        let wh = migration_polynomial(&h, &[0], 1, 2);
        assert_eq!(wh.n_edges(), 0);
    }

    #[test]
    fn subsets_of_size_enumeration() {
        assert_eq!(subsets_of_size(4, 0), vec![0]);
        assert_eq!(subsets_of_size(3, 3), vec![0b111]);
        assert_eq!(subsets_of_size(4, 2).len(), 6);
        assert!(subsets_of_size(3, 5).is_empty());
    }
}
