//! The Chernoff bound used in the SBL analysis (Lemma 1 of the paper) and the
//! derived failure-probability estimates for the three events A, B, C of
//! Section 2.2.
//!
//! * **Event A** — some SBL round marks fewer than `p·n_i/2` vertices. Lemma 1
//!   bounds each round by `e^{−p·n_i/8} ≤ e^{−1/(8p)}`, and over
//!   `r = 2 log n / p` rounds the union bound gives `r · e^{−1/(8p)}`.
//! * **Event B** — some sampled edge exceeds the dimension cap `d`. The paper
//!   bounds it by `r · m · p^{d+1}`, and chooses `d` so this is at most `1/n`.
//! * **Event C** — some BL invocation fails; bounded by `r · n^{−Θ(log n)}`.
//!
//! Experiments E3 and E4 compare these analytic estimates with empirical
//! failure counts from instrumented SBL runs.

/// Lower-tail Chernoff bound of Lemma 1:
/// `Pr[ X_1 + … + X_n ≤ pn − a ] ≤ e^{−a²/(2pn)}`.
pub fn chernoff_lower_tail(p: f64, n: f64, a: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p) && n >= 0.0 && a >= 0.0);
    if p == 0.0 || n == 0.0 {
        return if a > 0.0 { 0.0 } else { 1.0 };
    }
    (-a * a / (2.0 * p * n)).exp().min(1.0)
}

/// Probability that one SBL round marks fewer than `p·n_i/2` vertices
/// (event A for a single round): `e^{−p·n_i/8}`.
pub fn event_a_single_round(p: f64, n_i: f64) -> f64 {
    chernoff_lower_tail(p, n_i, p * n_i / 2.0)
}

/// Union bound for event A over `rounds` rounds, each with at least
/// `min_alive ≥ 1/p²` vertices: `rounds · e^{−1/(8p)}` (the paper's bound).
pub fn event_a_total(p: f64, rounds: f64) -> f64 {
    (rounds * (-1.0 / (8.0 * p)).exp()).min(1.0)
}

/// The paper's bound for event B: the probability that *some* edge of size
/// `> d` is ever fully marked, over `rounds` rounds with `m` edges and
/// per-vertex marking probability `p`: `rounds · m · p^{d+1}`.
pub fn event_b_total(p: f64, m: f64, d: u32, rounds: f64) -> f64 {
    (rounds * m * p.powi(d as i32 + 1)).min(1.0)
}

/// The dimension the paper derives so that event B has probability ≤ 1/n:
/// `d = log(r·m·n)/log(1/p) − 1` (real-valued; the algorithm uses `⌈·⌉` or the
/// closed form of `params::SblParams`).
pub fn event_b_dimension(p: f64, m: f64, n: f64, rounds: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    (rounds * m * n).ln() / (1.0 / p).ln() - 1.0
}

/// The paper's round bound `r = 2 log n / p` (base-2 log, matching `params`).
pub fn round_bound(n: f64, p: f64) -> f64 {
    2.0 * n.log2() / p
}

/// Number of rounds needed for `(1 − p/2)^r ≤ 1/(p²·n)` — the geometric-decay
/// form the round bound is derived from. Returns the smallest such `r`.
pub fn rounds_until_tail(n: f64, p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0);
    let target = 1.0 / (p * p * n);
    (target.ln() / (1.0 - p / 2.0).ln()).ceil().max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chernoff_basic_shape() {
        // Larger deviation → smaller probability.
        let p1 = chernoff_lower_tail(0.5, 1000.0, 10.0);
        let p2 = chernoff_lower_tail(0.5, 1000.0, 100.0);
        assert!(p2 < p1);
        assert!(p1 <= 1.0 && p2 > 0.0);
        // Zero deviation gives the trivial bound 1.
        assert_eq!(chernoff_lower_tail(0.5, 100.0, 0.0), 1.0);
        // Degenerate inputs.
        assert_eq!(chernoff_lower_tail(0.0, 100.0, 5.0), 0.0);
    }

    #[test]
    fn event_a_matches_formula() {
        let p = 0.1;
        let n_i = 1000.0;
        let single = event_a_single_round(p, n_i);
        assert!((single - (-p * n_i / 8.0).exp()).abs() < 1e-12);
        // With n_i >= 1/p², the single-round bound is at most e^{-1/(8p)}.
        let n_i = 1.0 / (p * p);
        assert!(event_a_single_round(p, n_i) <= (-1.0 / (8.0 * p)).exp() + 1e-12);
        // The union bound is r times that.
        assert!(event_a_total(p, 10.0) <= 10.0 * (-1.0 / (8.0 * p)).exp());
    }

    #[test]
    fn event_b_shrinks_with_dimension() {
        let p = 0.05;
        let b3 = event_b_total(p, 1000.0, 3, 50.0);
        let b6 = event_b_total(p, 1000.0, 6, 50.0);
        assert!(b6 < b3);
        // The derived dimension indeed pushes the bound to ~1/n.
        let n = 10_000.0;
        let d = event_b_dimension(p, 1000.0, n, 50.0);
        let b = event_b_total(p, 1000.0, d.ceil() as u32, 50.0);
        assert!(b <= 1.0 / n * 1.5, "b = {b}");
    }

    #[test]
    fn round_bounds_agree() {
        let n = 10_000.0;
        let p = 0.05;
        // The closed form r = 2 log n / p dominates the exact geometric count.
        assert!(round_bound(n, p) >= rounds_until_tail(n, p));
        // Both grow as p shrinks (n large enough that the 1/p² threshold is
        // far below n for both probabilities).
        let n = 1e8;
        assert!(round_bound(n, 0.01) > round_bound(n, 0.1));
        assert!(rounds_until_tail(n, 0.01) > rounds_until_tail(n, 0.1));
    }
}
