//! Concentration inequalities and potential functions from the SBL paper's
//! analysis (Sections 2.2, 3 and 4).
//!
//! The paper's contribution is as much the *analysis* as the algorithm: it
//! shows that Kelsen's study of the Beame–Luby (BL) algorithm survives a
//! super-constant dimension bound once the potential-function recurrence is
//! repaired, and that modern polynomial concentration bounds (Kim–Vu,
//! Schudy–Sviridenko) tighten the per-stage edge-migration estimate. This
//! crate makes every quantity appearing in that analysis computable, so the
//! experiments can confront bounds with instrumented algorithm runs:
//!
//! * [`weighted`] — the weighted edge-marking polynomial `S(H,w,p)`, its
//!   partial-derivative expectations `P`/`D`, and the migration hypergraph
//!   `(H', w')` used by Lemma 3/4.
//! * [`kelsen`] — Theorem 3 (Kelsen's concentration bound): the threshold
//!   factor `k(H)`, failure probability `p(H)`, and the Corollary-1
//!   specialisation `δ = log² n`.
//! * [`kimvu`] — the Section-4 improvement: Kim–Vu coefficients, thresholds,
//!   and the improved migration bound `Σ (log n)^{2(k−j)} Δ_k` next to
//!   Kelsen's `Σ (log n)^{2^{k−j}+1} Δ_k`.
//! * [`potential`] — the `f`/`F` recurrences (Kelsen's original, the paper's
//!   `d²` repair, and the Section-4.1 minimal form), the potentials `v_i`,
//!   thresholds `T_j`, stage counts `q_j`, and the admissibility checks that
//!   delimit Theorem 2.
//! * [`chernoff`] — Lemma 1 and the event A/B/C failure estimates of the SBL
//!   analysis.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod chernoff;
pub mod kelsen;
pub mod kimvu;
pub mod potential;
pub mod weighted;

pub use potential::{Potential, Recurrence};
pub use weighted::{migration_polynomial, WeightedHypergraph};

/// Commonly used items.
pub mod prelude {
    pub use crate::chernoff;
    pub use crate::kelsen;
    pub use crate::kimvu;
    pub use crate::potential::{factorial, Potential, Recurrence};
    pub use crate::weighted::{migration_polynomial, WeightedHypergraph};
}
