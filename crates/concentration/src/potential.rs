//! The potential functions of Kelsen's analysis and the paper's Theorem-2
//! modification.
//!
//! Kelsen tracks the progress of the BL algorithm through the values
//!
//! ```text
//! v_d(H) = Δ_d(H),      v_i(H) = max{ Δ_i(H), (log n)^{f(i)} · v_{i+1}(H) }   (2 ≤ i < d)
//! T_j    = v_2(H) / (log n)^{F(j−1)},        F(i) = Σ_{j=2}^{i} f(j),  F(1) = 0
//! λ(n)   = 2 log log n / log n
//! q_j    = 2^{d(d+1)} · (log log n) · (log n)^{F(j−1)(j−1)+2}
//! ```
//!
//! and proves (Lemma 5) that `v_2` does not grow over polylogarithmically many
//! stages and halves every `q_d` stages, giving the `O((log n)^{(d+4)!})`
//! stage bound of Theorem 2.
//!
//! Kelsen's original recurrence is `f(2) = 7`, `f(i) = (i−1)·Σ_{j<i} f(j) + 7`;
//! the paper shows this choice breaks down once `d` is super-constant (the
//! `2^{d(d+1)}` factor can no longer be absorbed) and replaces the additive
//! constant by `d²`:  `f(i) = (i−1)·Σ_{j<i} f(j) + d²`, equivalently
//! `F(i) = i·F(i−1) + d²`. This module implements both recurrences, the
//! per-(j,k) migration exponents, and the admissibility checks
//! (`d(d+1) ≤ (log log n)(d²−8)` and Lemma 6), so the experiments can map out
//! exactly where each analysis applies — which is the content of experiment
//! E10 and of the paper's Section 4.1 discussion.
//!
//! All potentially astronomical quantities are available in log₂ space.

/// Which additive constant the `f`/`F` recurrence uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Recurrence {
    /// Kelsen's original choice: `f(2) = 7`, additive constant 7.
    KelsenOriginal,
    /// The paper's Theorem-2 choice: additive constant `d²`.
    PaperDSquared,
    /// The Section-4.1 lower bound: the minimal `F` satisfying
    /// `F(j) ≥ F(j−1)·j + 5` that any analysis of this shape must obey.
    MinimalSection41,
}

/// The potential-function configuration for a hypergraph on `n` vertices with
/// dimension bound `d`.
#[derive(Debug, Clone, Copy)]
pub struct Potential {
    /// Number of vertices of the ambient hypergraph.
    pub n: usize,
    /// Dimension (bound) of the hypergraph the BL analysis runs on.
    pub d: u32,
    /// Which recurrence to use for `f`/`F`.
    pub recurrence: Recurrence,
}

impl Potential {
    /// Creates a configuration. Requires `n ≥ 3` and `d ≥ 2`.
    pub fn new(n: usize, d: u32, recurrence: Recurrence) -> Self {
        assert!(n >= 3, "need n >= 3");
        assert!(d >= 2, "the potential functions are defined for d >= 2");
        Potential { n, d, recurrence }
    }

    /// `log₂ n` of the configuration (base-2 throughout, see `params`).
    pub fn log_n(&self) -> f64 {
        (self.n as f64).log2()
    }

    /// `log log n`.
    pub fn log_log_n(&self) -> f64 {
        self.log_n().log2().max(f64::MIN_POSITIVE)
    }

    /// The additive constant of the recurrence (`7`, `d²` or `5`).
    pub fn constant(&self) -> f64 {
        match self.recurrence {
            Recurrence::KelsenOriginal => 7.0,
            Recurrence::PaperDSquared => (self.d as f64) * (self.d as f64),
            Recurrence::MinimalSection41 => 5.0,
        }
    }

    /// `f(i)`: `f(2) = c`, `f(i) = (i−1)·F(i−1) + c`.
    ///
    /// Grows factorially; returned as `f64` (may be `inf` for large `i`).
    pub fn f(&self, i: u32) -> f64 {
        assert!(i >= 2, "f is defined for i >= 2");
        (i as f64 - 1.0) * self.big_f(i - 1) + self.constant()
    }

    /// `F(i) = Σ_{j=2}^{i} f(j)` with `F(1) = 0`; satisfies
    /// `F(i) = i·F(i−1) + c`.
    pub fn big_f(&self, i: u32) -> f64 {
        if i <= 1 {
            return 0.0;
        }
        let c = self.constant();
        let mut acc = 0.0f64;
        for t in 2..=i {
            acc = (t as f64) * acc + c;
        }
        acc
    }

    /// `λ(n) = 2 log log n / log n` — the slack the induction tolerates.
    pub fn lambda(&self) -> f64 {
        2.0 * self.log_log_n() / self.log_n()
    }

    /// log₂ of `q_j = 2^{d(d+1)} · (log log n) · (log n)^{F(j−1)(j−1)+2}` —
    /// the number of consecutive stages needed to knock a large `Δ_j` down.
    pub fn q_log2(&self, j: u32) -> f64 {
        let d = self.d as f64;
        d * (d + 1.0)
            + self.log_log_n().log2()
            + (self.big_f(j - 1) * (j as f64 - 1.0) + 2.0) * self.log_n().log2()
    }

    /// The per-(j,k) migration exponent appearing in the key claim:
    /// `2^{k−j+1} + F(j−1)·j − F(k−1) + 2` (equals
    /// `2^{k−j+1} + 2 − c + F(j) − F(k−1)` by the recurrence).
    pub fn migration_exponent(&self, j: u32, k: u32) -> f64 {
        assert!(k > j && j >= 2);
        2f64.powi((k - j + 1) as i32) + self.big_f(j - 1) * (j as f64) - self.big_f(k - 1) + 2.0
    }

    /// Lemma 6: for `k > j+1` the exponent is at most `6 − d²` — i.e. the
    /// `k = j+1` term dominates the sum. Returns `true` when the inequality
    /// holds for the given pair.
    pub fn lemma6_holds(&self, j: u32, k: u32) -> bool {
        if k <= j + 1 {
            return true; // lemma only speaks about k > j+1
        }
        let d2 = (self.d as f64) * (self.d as f64);
        self.migration_exponent(j, k) + d2 - self.constant() - self.big_f(j - 1) * (j as f64)
            + self.big_f(j)
            <= 6.0
            || self.migration_exponent_normalized(j, k) <= 6.0 - d2
    }

    /// The normalized exponent of Lemma 6, `2^{k−j+1} + 2 − d² + F(j) − F(k−1)`
    /// (meaningful for the paper's `d²` recurrence; computed with the
    /// configured constant in general).
    pub fn migration_exponent_normalized(&self, j: u32, k: u32) -> f64 {
        assert!(k > j && j >= 2);
        2f64.powi((k - j + 1) as i32) + 2.0 - self.constant() + self.big_f(j) - self.big_f(k - 1)
    }

    /// The key claim of the Theorem-2 proof, for a fixed `j`:
    ///
    /// ```text
    /// 2^{d(d+1)} · Σ_{k>j} (log n)^{exponent(j,k)}  ≤  2 / (log n + 2 log log n)
    /// ```
    ///
    /// Returns `true` if it holds. Terms are evaluated in a saturating way:
    /// exponents so negative that the term underflows count as 0, and any
    /// overflow makes the claim fail.
    pub fn migration_claim_holds(&self, j: u32) -> bool {
        assert!(j >= 2);
        if j >= self.d {
            return true; // no k > j within the dimension, nothing to migrate
        }
        let log_n = self.log_n();
        let d = self.d as f64;
        let lhs_factor_log2 = d * (d + 1.0);
        let mut sum = 0.0f64;
        for k in (j + 1)..=self.d {
            let expo = self.migration_exponent(j, k);
            let term_log2 = expo * log_n.log2();
            let total_log2 = lhs_factor_log2 + term_log2;
            if total_log2 > 1023.0 {
                return false; // overflow — claim certainly violated
            }
            sum += 2f64.powf(total_log2);
        }
        let rhs = 2.0 / (log_n + 2.0 * self.log_log_n());
        sum <= rhs
    }

    /// `true` when the key claim holds for **every** `j` in `2..d` — i.e. the
    /// whole Theorem-2 induction goes through for this `(n, d, recurrence)`.
    pub fn analysis_admissible(&self) -> bool {
        (2..self.d).all(|j| self.migration_claim_holds(j))
    }

    /// The closed-form sufficient condition the paper derives for its `d²`
    /// recurrence: `d(d+1) ≤ (log log n)(d² − 8)`.
    pub fn closed_form_inequality_holds(&self) -> bool {
        let d = self.d as f64;
        d * (d + 1.0) <= self.log_log_n() * (d * d - 8.0)
    }

    /// The Theorem-2 dimension bound `d ≤ log log n / (4 log log log n)` for
    /// this `n` (base-2 logs). `None` when the iterated logs are undefined.
    pub fn theorem2_dimension_bound(&self) -> Option<f64> {
        let l2 = self.log_log_n();
        let l3 = l2.log2();
        if l3 <= 0.0 {
            return None;
        }
        Some(l2 / (4.0 * l3))
    }

    /// log₂ of the Theorem-2 stage bound `(log n)^{(d+4)!}`.
    pub fn stage_bound_log2(&self) -> f64 {
        factorial(self.d + 4) * self.log_n().log2()
    }

    /// Verifies the inequality used at the end of the Theorem-2 proof:
    /// `log n · q_d ≤ (log n)^{(d+4)!}`, i.e. the stage bound indeed dominates
    /// the number of stages the potential argument needs.
    pub fn stage_bound_dominates(&self) -> bool {
        self.log_n().log2() + self.q_log2(self.d) <= self.stage_bound_log2()
    }

    /// Verifies `F(i) ≤ d² · (i+2)!` (the auxiliary induction the paper uses
    /// to prove [`stage_bound_dominates`](Self::stage_bound_dominates)).
    /// Only meaningful for the `d²` recurrence but checked literally for any.
    pub fn f_bounded_by_factorial(&self, i: u32) -> bool {
        let d2 = (self.d as f64) * (self.d as f64);
        self.big_f(i) <= d2 * factorial(i + 2)
    }

    /// The potential values `v_i` in log₂ space, from the measured maximum
    /// normalized degrees `deltas[i] = Δ_i(H)` (index by dimension `i`,
    /// `2 ≤ i ≤ d`; other entries ignored). Entries with `Δ_i = 0` contribute
    /// `-∞`. Returns a vector `v_log2` with the same indexing; `v_log2[2]` is
    /// the universal threshold the analysis tracks.
    pub fn v_log2(&self, deltas: &[f64]) -> Vec<f64> {
        let d = self.d as usize;
        let log_log = self.log_n().log2();
        let mut v = vec![f64::NEG_INFINITY; d + 1];
        let delta_log2 = |i: usize| -> f64 {
            deltas
                .get(i)
                .copied()
                .filter(|&x| x > 0.0)
                .map(|x| x.log2())
                .unwrap_or(f64::NEG_INFINITY)
        };
        if d >= 2 {
            v[d] = delta_log2(d);
            for i in (2..d).rev() {
                let scaled = self.f(i as u32) * log_log + v[i + 1];
                v[i] = delta_log2(i).max(scaled);
            }
        }
        v
    }

    /// The threshold `T_j` in log₂ space, from `v_2` (log₂) :
    /// `T_j = v_2 / (log n)^{F(j−1)}`.
    pub fn threshold_log2(&self, v2_log2: f64, j: u32) -> f64 {
        v2_log2 - self.big_f(j - 1) * self.log_n().log2()
    }
}

/// `x!` as `f64` (exact up to 170!, `inf` beyond — fine for exponents).
pub fn factorial(x: u32) -> f64 {
    let mut acc = 1.0f64;
    for t in 2..=x {
        acc *= t as f64;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pot(n: usize, d: u32, r: Recurrence) -> Potential {
        Potential::new(n, d, r)
    }

    #[test]
    fn kelsen_recurrence_values() {
        let p = pot(1 << 16, 4, Recurrence::KelsenOriginal);
        // F(1) = 0, F(2) = 7, F(3) = 3*7 + 7 = 28, F(4) = 4*28 + 7 = 119.
        assert_eq!(p.big_f(1), 0.0);
        assert_eq!(p.big_f(2), 7.0);
        assert_eq!(p.big_f(3), 28.0);
        assert_eq!(p.big_f(4), 119.0);
        // f(2) = 7, f(3) = 2*F(2) + 7 = 21, f(4) = 3*F(3) + 7 = 91.
        assert_eq!(p.f(2), 7.0);
        assert_eq!(p.f(3), 21.0);
        assert_eq!(p.f(4), 91.0);
        // Consistency: F(i) = F(i-1) + f(i).
        assert_eq!(p.big_f(4), p.big_f(3) + p.f(4));
    }

    #[test]
    fn paper_recurrence_values() {
        let p = pot(1 << 16, 3, Recurrence::PaperDSquared);
        // c = 9: F(2) = 9, F(3) = 3*9 + 9 = 36.
        assert_eq!(p.constant(), 9.0);
        assert_eq!(p.big_f(2), 9.0);
        assert_eq!(p.big_f(3), 36.0);
        assert_eq!(p.f(3), 2.0 * 9.0 + 9.0);
    }

    #[test]
    fn paper_fix_kills_the_k_equals_j_plus_1_degeneracy() {
        // The paper's motivating computation: with Kelsen's F, the k = j+1
        // exponent is −1 (independent of d), so the whole claim reduces to
        // 2^{d(d+1)} ≤ log n/(log n + 2 log log n) < 1, which fails.
        let n = 1usize << 20;
        let kel = pot(n, 5, Recurrence::KelsenOriginal);
        for j in 2..5u32 {
            // exponent with original F: 2^{2} + F(j-1)j - F(j) + 2 = 6 - 7 = -1.
            assert_eq!(kel.migration_exponent(j, j + 1), -1.0);
        }
        // With the d² recurrence the same exponent is 6 - d², strongly negative.
        let pap = pot(n, 5, Recurrence::PaperDSquared);
        for j in 2..5u32 {
            assert_eq!(pap.migration_exponent(j, j + 1), 6.0 - 25.0);
        }
    }

    #[test]
    fn lemma6_monotone_terms() {
        let p = pot(1 << 20, 6, Recurrence::PaperDSquared);
        for j in 2..6u32 {
            for k in (j + 2)..=6u32 {
                assert!(
                    p.migration_exponent_normalized(j, k) <= 6.0 - 36.0,
                    "lemma 6 violated at j={j}, k={k}"
                );
                assert!(p.lemma6_holds(j, k));
            }
        }
    }

    #[test]
    fn closed_form_and_full_claim_agree_qualitatively() {
        // For moderate d and huge n, the paper's analysis is admissible; for d
        // too large relative to n it is not.
        let good = pot(1 << 30, 4, Recurrence::PaperDSquared);
        assert!(good.closed_form_inequality_holds());
        assert!(good.analysis_admissible());

        // d = 3 makes d² − 8 = 1, so the closed form needs log log n ≥ 12,
        // i.e. n ≥ 2^4096 — far beyond any practical n. The full claim fails
        // too: the k = j+1 term is (log n)^{-3} which cannot absorb 2^{12}.
        let bad = pot(1 << 30, 3, Recurrence::PaperDSquared);
        assert!(!bad.closed_form_inequality_holds());
        assert!(!bad.analysis_admissible());
    }

    #[test]
    fn kelsen_original_fails_for_superconstant_d() {
        // The whole point of the paper's Section 3.1: with the original
        // recurrence the claim fails (for any n) once d is allowed to grow,
        // because of the −1 exponent term.
        let p = pot(1 << 26, 6, Recurrence::KelsenOriginal);
        assert!(!p.analysis_admissible());
        // While the paper's recurrence survives at the same (n, d) as long as
        // the closed-form inequality holds.
        let q = pot(1 << 26, 4, Recurrence::PaperDSquared);
        assert_eq!(q.analysis_admissible(), q.closed_form_inequality_holds());
    }

    #[test]
    fn q_and_stage_bounds() {
        let p = pot(1 << 16, 3, Recurrence::PaperDSquared);
        assert!(p.q_log2(2) > 0.0);
        assert!(p.q_log2(3) >= p.q_log2(2));
        assert!(p.stage_bound_log2() > 0.0);
        assert!(p.stage_bound_dominates());
        for i in 1..=3 {
            assert!(p.f_bounded_by_factorial(i));
        }
    }

    #[test]
    fn lambda_shrinks_with_n() {
        let a = pot(1 << 10, 3, Recurrence::PaperDSquared).lambda();
        let b = pot(1 << 24, 3, Recurrence::PaperDSquared).lambda();
        assert!(b < a);
        assert!(b > 0.0);
    }

    #[test]
    fn v_and_thresholds() {
        let p = pot(1 << 16, 4, Recurrence::PaperDSquared);
        // Δ_2 = 8, Δ_3 = 4, Δ_4 = 2 (indices by dimension).
        let deltas = vec![0.0, 0.0, 8.0, 4.0, 2.0];
        let v = p.v_log2(&deltas);
        // v_4 = log2 2 = 1.
        assert!((v[4] - 1.0).abs() < 1e-12);
        // v_3 = max(log2 4, f(3)·log2(log n) + v_4) — the scaled term dominates.
        assert!(v[3] >= p.f(3) * 4.0_f64.log2() + 1.0 - 1e-9);
        // v_2 >= v_3 scaled again, and thresholds decrease with j.
        assert!(v[2] >= v[3]);
        let t2 = p.threshold_log2(v[2], 2);
        let t3 = p.threshold_log2(v[2], 3);
        assert!(t3 < t2);
        assert_eq!(t2, v[2]); // F(1) = 0
    }

    #[test]
    fn v_handles_zero_deltas() {
        let p = pot(1 << 16, 3, Recurrence::PaperDSquared);
        let v = p.v_log2(&[0.0; 4]);
        assert!(v[2].is_infinite() && v[2] < 0.0);
        assert!(v[3].is_infinite() && v[3] < 0.0);
    }

    #[test]
    fn factorial_values() {
        assert_eq!(factorial(0), 1.0);
        assert_eq!(factorial(1), 1.0);
        assert_eq!(factorial(5), 120.0);
        assert_eq!(factorial(7), 5040.0);
    }

    #[test]
    #[should_panic(expected = "d >= 2")]
    fn rejects_dimension_one() {
        let _ = Potential::new(100, 1, Recurrence::PaperDSquared);
    }

    #[test]
    fn section41_minimal_recurrence() {
        // Section 4.1: any valid F must satisfy F(j) >= F(j-1)·j + 5; the
        // MinimalSection41 recurrence realises it with equality.
        let p = pot(1 << 20, 5, Recurrence::MinimalSection41);
        for j in 2..=5u32 {
            assert!(p.big_f(j) >= p.big_f(j - 1) * (j as f64) + 5.0 - 1e-9);
        }
    }
}
