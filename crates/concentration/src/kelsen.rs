//! Kelsen's concentration bound (Theorem 3 of the paper / Theorem 1 in
//! Kelsen's 1992 paper) and its Corollary 1 specialisation.
//!
//! The statement: for a weighted hypergraph `(H, w)` with `dim(H) = d > 0`,
//! `n(H) = n ≥ 3`, any `0 < p ≤ 1` and `δ > 1`,
//!
//! ```text
//! Pr[ S(H,w,p) > k(H) · D(H,w,p) ] < p(H)
//! k(H) = ((log n + 2) · δ)^{2^d − 1}
//! p(H) = (2^d · ⌈log n⌉ · m(H))^{d−1} · log n · (4e/δ)^{(δ−1)/4}
//! ```
//!
//! With `δ = log² n` this yields Corollary 1: the threshold becomes
//! `(log n)^{2^{d+1}} · D` and the failure probability `n^{-Θ(log n log log n)}`.
//!
//! The quantities involved overflow `f64` long before they become
//! uninteresting (e.g. `(log n)^{2^{d+1}}` for `d = 6`), so every function here
//! is computed **in log₂ space** and the linear-scale convenience wrappers
//! saturate at `f64::INFINITY` when the true value does not fit.

/// log₂ of the threshold factor `k(H) = ((log n + 2) · δ)^{2^d − 1}`.
///
/// `n ≥ 3`, `d ≥ 1`, `δ > 1` (asserted).
pub fn kelsen_k_log2(n: usize, d: u32, delta: f64) -> f64 {
    assert!(n >= 3, "Theorem 3 requires n >= 3");
    assert!(d >= 1, "Theorem 3 requires d >= 1");
    assert!(delta > 1.0, "Theorem 3 requires delta > 1");
    let log_n = (n as f64).log2();
    let base = (log_n + 2.0) * delta;
    let exponent = 2f64.powi(d as i32) - 1.0;
    exponent * base.log2()
}

/// The threshold factor `k(H)` on a linear scale (∞ if it overflows `f64`).
pub fn kelsen_k(n: usize, d: u32, delta: f64) -> f64 {
    2f64.powf(kelsen_k_log2(n, d, delta))
}

/// log₂ of the failure probability
/// `p(H) = (2^d ⌈log n⌉ m)^{d−1} · log n · (4e/δ)^{(δ−1)/4}`.
///
/// Returns `f64::NEG_INFINITY` when the probability underflows (i.e. is far
/// smaller than the smallest positive double) — which is the common case the
/// theorem is designed for.
pub fn kelsen_failure_log2(n: usize, d: u32, m: usize, delta: f64) -> f64 {
    assert!(n >= 3 && d >= 1 && delta > 1.0);
    let log_n = (n as f64).log2();
    let ceil_log_n = log_n.ceil().max(1.0);
    let poly = (d as f64) + ceil_log_n.log2() + (m.max(1) as f64).log2();
    let first = (d as f64 - 1.0) * poly;
    let second = log_n.log2();
    let third = ((delta - 1.0) / 4.0) * (4.0 * std::f64::consts::E / delta).log2();
    first + second + third
}

/// The failure probability on a linear scale (0 if it underflows).
pub fn kelsen_failure(n: usize, d: u32, m: usize, delta: f64) -> f64 {
    2f64.powf(kelsen_failure_log2(n, d, m, delta))
}

/// Corollary 1: with `δ = log² n` the threshold factor becomes
/// `(log n)^{2^{d+1}}`. Returns its log₂.
///
/// (The paper states the cleaner exponent `2^{d+1}`; the exact Theorem-3
/// factor with `δ = log²n` is `((log n + 2) log² n)^{2^d − 1}` whose log is
/// within a constant factor — both are provided so the experiment can show
/// they agree asymptotically.)
pub fn corollary1_threshold_log2(n: usize, d: u32) -> f64 {
    assert!(n >= 3 && d >= 1);
    let log_n = (n as f64).log2();
    2f64.powi(d as i32 + 1) * log_n.log2()
}

/// The exact Theorem-3 factor with `δ = log² n`, in log₂ space.
pub fn corollary1_exact_factor_log2(n: usize, d: u32) -> f64 {
    let log_n = (n as f64).log2();
    kelsen_k_log2(n, d, (log_n * log_n).max(1.0 + f64::EPSILON))
}

/// Corollary 1 failure probability exponent: the probability is
/// `n^{-Θ(log n · log log n)}`; this returns the (positive) exponent
/// `log n · log log n` so callers can report `n^{-Θ(·)}` shapes.
pub fn corollary1_failure_exponent(n: usize) -> f64 {
    let log_n = (n as f64).log2().max(1.0);
    log_n * log_n.log2().max(1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k_factor_matches_hand_computation() {
        // n = 16, d = 2, δ = 2: k = ((4 + 2) * 2)^(2^2 - 1) = 12^3 = 1728.
        let k = kelsen_k(16, 2, 2.0);
        assert!((k - 1728.0).abs() < 1e-6);
        assert!((kelsen_k_log2(16, 2, 2.0) - 1728f64.log2()).abs() < 1e-9);
    }

    #[test]
    fn k_factor_grows_with_dimension() {
        let k2 = kelsen_k_log2(1 << 20, 2, 4.0);
        let k3 = kelsen_k_log2(1 << 20, 3, 4.0);
        let k5 = kelsen_k_log2(1 << 20, 5, 4.0);
        assert!(k3 > k2);
        assert!(k5 > k3);
    }

    #[test]
    fn failure_probability_shrinks_with_delta() {
        // Larger δ → smaller failure probability (the (4e/δ)^((δ-1)/4) term).
        let p_small = kelsen_failure_log2(1 << 16, 3, 1000, 16.0);
        let p_large = kelsen_failure_log2(1 << 16, 3, 1000, 256.0);
        assert!(p_large < p_small);
    }

    #[test]
    fn corollary1_delta_log_squared_is_tiny_probability() {
        let n = 1usize << 16;
        let log_n = (n as f64).log2();
        let delta = log_n * log_n;
        let p_log2 = kelsen_failure_log2(n, 3, 10_000, delta);
        // The probability should be at most n^{-c log n log log n}-ish, i.e. its
        // log2 should be hugely negative.
        assert!(p_log2 < -100.0, "p_log2 = {p_log2}");
        assert!(kelsen_failure(n, 3, 10_000, delta) < 1e-30);
    }

    #[test]
    fn corollary1_threshold_shape() {
        // (log n)^{2^{d+1}}: for n = 2^16, d = 2 → 16^8 = 2^32.
        let t = corollary1_threshold_log2(1 << 16, 2);
        assert!((t - 32.0).abs() < 1e-9);
        // The exact Theorem-3 factor with δ = log²n is within a constant
        // multiple in the exponent.
        let exact = corollary1_exact_factor_log2(1 << 16, 2);
        assert!(exact > 0.0);
        assert!(exact / t < 2.0 && t / exact < 2.0);
    }

    #[test]
    fn failure_exponent_monotone() {
        assert!(corollary1_failure_exponent(1 << 20) > corollary1_failure_exponent(1 << 10));
    }

    #[test]
    #[should_panic(expected = "n >= 3")]
    fn rejects_tiny_n() {
        let _ = kelsen_k_log2(2, 2, 2.0);
    }

    #[test]
    #[should_panic(expected = "delta > 1")]
    fn rejects_bad_delta() {
        let _ = kelsen_k_log2(16, 2, 1.0);
    }
}
