//! Shared workload builders and reporting helpers for the benchmarks and the
//! `experiments` harness.
//!
//! Every experiment in EXPERIMENTS.md states its workload in terms of the
//! functions here, so the criterion benches and the harness binary measure
//! exactly the same instances.

pub mod baseline;
pub mod load;

use hypergraph::{generate, Hypergraph};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// The fixed base seed used by every experiment (reproducibility).
pub const BASE_SEED: u64 = 0x5BA1_2014;

/// A seeded RNG for workload `tag` (so different experiments do not share
/// random streams).
pub fn rng_for(tag: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(BASE_SEED ^ tag)
}

/// E1/E5 workload: a general hypergraph in the paper regime (`m ≈ n^β`,
/// clamped to at least `n/8` edges so small instances are non-trivial), edge
/// sizes 2..=16.
pub fn paper_workload(n: usize, seed: u64) -> Hypergraph {
    let mut rng = rng_for(seed.wrapping_mul(31).wrapping_add(n as u64));
    generate::paper_regime(&mut rng, n, (n / 8).max(16), 16)
}

/// E2 workload: a `d`-uniform hypergraph with `m = 2n` edges.
pub fn uniform_workload(n: usize, d: usize, seed: u64) -> Hypergraph {
    let mut rng = rng_for(seed.wrapping_mul(97).wrapping_add((n * 10 + d) as u64));
    generate::d_uniform(&mut rng, n, 2 * n, d)
}

/// E9 workload: a random linear hypergraph with edges of size 3.
pub fn linear_workload(n: usize, seed: u64) -> Hypergraph {
    let mut rng = rng_for(seed.wrapping_mul(193).wrapping_add(n as u64));
    generate::linear(&mut rng, n, (2 * n) / 3, 3)
}

/// Renders a markdown table (used by the experiments harness so its output can
/// be pasted into EXPERIMENTS.md verbatim).
pub fn markdown_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    out.push_str("| ");
    out.push_str(&headers.join(" | "));
    out.push_str(" |\n|");
    for _ in headers {
        out.push_str("---|");
    }
    out.push('\n');
    for row in rows {
        out.push_str("| ");
        out.push_str(&row.join(" | "));
        out.push_str(" |\n");
    }
    out
}

/// Geometric mean of a slice (0 if empty or any non-positive entry).
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() || xs.iter().any(|&x| x <= 0.0) {
        return 0.0;
    }
    (xs.iter().map(|x| x.ln()).sum::<f64>() / xs.len() as f64).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workloads_are_reproducible() {
        assert_eq!(paper_workload(256, 1), paper_workload(256, 1));
        assert_eq!(uniform_workload(128, 3, 2), uniform_workload(128, 3, 2));
        assert_eq!(linear_workload(128, 3), linear_workload(128, 3));
        assert_ne!(paper_workload(256, 1), paper_workload(256, 2));
    }

    #[test]
    fn workload_shapes() {
        let h = paper_workload(512, 0);
        assert_eq!(h.n_vertices(), 512);
        assert!(h.n_edges() >= 16);
        let u = uniform_workload(100, 3, 0);
        assert_eq!(u.n_edges(), 200);
        assert_eq!(u.dimension(), 3);
        let l = linear_workload(120, 0);
        assert!(l.n_edges() > 0);
    }

    #[test]
    fn markdown_and_geomean() {
        let t = markdown_table(&["a", "b"], &[vec!["1".into(), "2".into()]]);
        assert!(t.contains("| a | b |"));
        assert!(t.contains("| 1 | 2 |"));
        assert!((geomean(&[2.0, 8.0]) - 4.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(geomean(&[1.0, 0.0]), 0.0);
    }
}
