//! Deterministic open-loop load plans for the serve-net latency harness.
//!
//! The `net` experiment measures the MISP socket front-end under a load shape
//! that looks like production traffic rather than a uniform sweep:
//!
//! * **open-loop arrivals** — request send times are drawn up front from an
//!   exponential inter-arrival distribution and the sender paces to that
//!   schedule regardless of how fast responses come back, so queueing delay
//!   shows up in the latency percentiles instead of being coordinated away;
//! * **heavy-tailed request sizes** — induced-query sizes follow a bounded
//!   Pareto, so most requests are small but a deterministic minority are
//!   orders of magnitude larger;
//! * **hot-tenant skew** — a configurable share of requests come from one hot
//!   tenant, the rest spread uniformly over the remaining tenants.
//!
//! Everything is a pure function of [`LoadConfig`]: two calls to [`plan`]
//! with the same config yield byte-identical schedules, which is what lets
//! `BENCH_net.json` carry an exact outcome fingerprint across runs.

use rand::{Rng, RngCore};

/// A uniform draw from [0, 1) with 53 random bits (the same construction
/// `Rng::gen_bool` uses).
fn unit_f64(rng: &mut impl RngCore) -> f64 {
    (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Shape parameters for one deterministic load plan.
#[derive(Debug, Clone, PartialEq)]
pub struct LoadConfig {
    /// Seed for the plan's private RNG stream (xored into [`crate::BASE_SEED`]).
    pub seed: u64,
    /// Number of requests in the plan.
    pub requests: usize,
    /// Mean of the exponential inter-arrival distribution, in microseconds.
    pub mean_interarrival_us: f64,
    /// Total tenant count; tenant `0` is the hot tenant.
    pub tenants: u64,
    /// Probability that a request belongs to the hot tenant.
    pub hot_share: f64,
    /// Smallest induced-query size (inclusive).
    pub min_query: usize,
    /// Largest induced-query size (inclusive cap on the Pareto tail).
    pub max_query: usize,
    /// Pareto tail index; values near 1 give the heaviest (bounded) tail.
    pub tail_alpha: f64,
}

/// One scheduled request in an open-loop plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Arrival {
    /// Scheduled send time, as an offset from the start of the stream.
    pub at_us: u64,
    /// Owning tenant (0 is the hot tenant).
    pub tenant: u64,
    /// Induced-query size drawn from the bounded Pareto.
    pub query_size: usize,
    /// Per-request solve seed (also deterministic).
    pub solve_seed: u64,
}

/// Draws the full arrival schedule for `config`. Arrival times are
/// non-decreasing; every field is a pure function of the config.
pub fn plan(config: &LoadConfig) -> Vec<Arrival> {
    assert!(config.tenants >= 1, "need at least the hot tenant");
    assert!(
        (0.0..=1.0).contains(&config.hot_share),
        "hot_share must be a probability"
    );
    assert!(
        config.min_query >= 1 && config.min_query <= config.max_query,
        "query size bounds must satisfy 1 <= min <= max"
    );
    assert!(config.tail_alpha > 0.0, "tail_alpha must be positive");
    let mut rng = crate::rng_for(0x6E65_7400 ^ config.seed);
    let mut clock_us = 0.0f64;
    let mut out = Vec::with_capacity(config.requests);
    for i in 0..config.requests {
        // Exponential inter-arrival via inverse CDF; 1-u keeps ln's argument
        // in (0, 1].
        let u = unit_f64(&mut rng);
        clock_us += -config.mean_interarrival_us * (1.0 - u).ln();
        // Bounded Pareto: min * v^(-1/alpha), clamped at max.
        let v = unit_f64(&mut rng).max(f64::MIN_POSITIVE);
        let size = (config.min_query as f64 * v.powf(-1.0 / config.tail_alpha))
            .min(config.max_query as f64) as usize;
        let tenant = if unit_f64(&mut rng) < config.hot_share || config.tenants == 1 {
            0
        } else {
            rng.gen_range(1..config.tenants)
        };
        out.push(Arrival {
            at_us: clock_us as u64,
            tenant,
            query_size: size.clamp(config.min_query, config.max_query),
            solve_seed: config.seed ^ (i as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15),
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> LoadConfig {
        LoadConfig {
            seed: 7,
            requests: 512,
            mean_interarrival_us: 150.0,
            tenants: 5,
            hot_share: 0.6,
            min_query: 16,
            max_query: 2048,
            tail_alpha: 1.1,
        }
    }

    #[test]
    fn plans_are_reproducible_and_seed_sensitive() {
        assert_eq!(plan(&config()), plan(&config()));
        let other = LoadConfig {
            seed: 8,
            ..config()
        };
        assert_ne!(plan(&config()), plan(&other));
    }

    #[test]
    fn arrivals_are_monotone_and_sizes_bounded() {
        let c = config();
        let p = plan(&c);
        assert_eq!(p.len(), c.requests);
        for w in p.windows(2) {
            assert!(w[0].at_us <= w[1].at_us);
        }
        for a in &p {
            assert!((c.min_query..=c.max_query).contains(&a.query_size));
            assert!(a.tenant < c.tenants);
        }
    }

    #[test]
    fn hot_tenant_dominates_and_tail_is_heavy() {
        let p = plan(&config());
        let hot = p.iter().filter(|a| a.tenant == 0).count();
        // hot_share = 0.6 over 512 draws: well away from both 1/5 and 1.
        assert!(hot > p.len() / 2, "hot tenant got {hot}/{}", p.len());
        assert!(hot < p.len());
        // A bounded Pareto with alpha ~ 1 must produce both near-min and
        // near-max sizes in 512 draws.
        assert!(p.iter().any(|a| a.query_size <= 32));
        assert!(p.iter().any(|a| a.query_size >= 1024));
    }
}
