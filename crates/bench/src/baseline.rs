//! The bench-regression gate: parse the `BENCH_*.json` artifacts and compare
//! a fresh run against a committed baseline.
//!
//! The `experiments` bin emits three JSON artifacts (`BENCH_activeset.json`,
//! `BENCH_batch.json`, `BENCH_serve.json`). Committed copies live in
//! `bench/baselines/`; CI re-runs the guards and then invokes
//! `experiments --check-against bench/baselines`, which routes through
//! [`check_against`] per artifact. The gate fails the job on
//!
//! * **fingerprint mismatches** — deterministic fields (`work`, `depth`,
//!   `rounds`, outcome fingerprints, admission counters, …) must match the
//!   baseline *exactly*, and the `*_identical` determinism flags must be
//!   `true`;
//! * **wall-time regressions** — every `*_ms` field may exceed its baseline
//!   by at most the tolerance band;
//! * **speedup erosion** — every `speedup*` field must stay above
//!   baseline ÷ (1 + tolerance), a multiplicative floor that stays live at
//!   any band width;
//! * **schema drift** — a baseline key or array element missing from the
//!   fresh artifact.
//!
//! Host-dependent fields (`host_parallelism`, throughputs, prose
//! descriptions, the scaling-assertion note) are deliberately ignored, so a
//! baseline recorded on one machine gates runs on another: the deterministic
//! fields carry the regression teeth, the banded fields catch catastrophic
//! slowdowns.
//!
//! The vendored `serde` has no JSON parser, so this module carries a minimal
//! recursive-descent one — sufficient for the artifacts we emit and strict
//! enough to reject malformed files loudly.

/// A parsed JSON value (numbers are kept as `f64`; the artifacts only emit
/// integers small enough to round-trip exactly).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// Any number
    Num(f64),
    /// A string
    Str(String),
    /// An array
    Arr(Vec<Json>),
    /// An object, in source order (duplicate keys rejected at parse)
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Parses `s` as a single JSON document (trailing whitespace allowed).
    pub fn parse(s: &str) -> Result<Json, String> {
        let b = s.as_bytes();
        let mut pos = 0usize;
        let v = parse_value(b, &mut pos)?;
        skip_ws(b, &mut pos);
        if pos != b.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(v)
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as a number, if it is one.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(b: &[u8], pos: &mut usize, lit: &str) -> Result<(), String> {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(format!("expected `{lit}` at byte {pos}", pos = *pos))
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'n') => expect(b, pos, "null").map(|()| Json::Null),
        Some(b't') => expect(b, pos, "true").map(|()| Json::Bool(true)),
        Some(b'f') => expect(b, pos, "false").map(|()| Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            loop {
                items.push(parse_value(b, pos)?);
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Json::Arr(items));
                    }
                    _ => return Err(format!("expected `,` or `]` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members: Vec<(String, Json)> = Vec::new();
            skip_ws(b, pos);
            if b.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            loop {
                skip_ws(b, pos);
                let key = parse_string(b, pos)?;
                if members.iter().any(|(k, _)| *k == key) {
                    return Err(format!("duplicate key {key:?}"));
                }
                skip_ws(b, pos);
                expect(b, pos, ":")?;
                let value = parse_value(b, pos)?;
                members.push((key, value));
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Json::Obj(members));
                    }
                    _ => return Err(format!("expected `,` or `}}` at byte {pos}", pos = *pos)),
                }
            }
        }
        Some(_) => parse_number(b, pos),
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, String> {
    if b.get(*pos) != Some(&b'"') {
        return Err(format!("expected string at byte {pos}", pos = *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b't') => out.push('\t'),
                    Some(b'r') => out.push('\r'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")
                            .and_then(|h| std::str::from_utf8(h).map_err(|_| "bad \\u escape"))
                            .map_err(String::from)?;
                        let code =
                            u32::from_str_radix(hex, 16).map_err(|_| "bad \\u escape hex")?;
                        out.push(char::from_u32(code).ok_or("non-scalar \\u escape")?);
                        *pos += 4;
                    }
                    _ => return Err(format!("bad escape at byte {pos}", pos = *pos)),
                }
                *pos += 1;
            }
            Some(&c) => {
                // Multi-byte UTF-8 is copied through verbatim.
                let start = *pos;
                let width = match c {
                    0x00..=0x7F => 1,
                    0xC0..=0xDF => 2,
                    0xE0..=0xEF => 3,
                    _ => 4,
                };
                let chunk = b
                    .get(start..start + width)
                    .ok_or("truncated UTF-8 sequence")?;
                out.push_str(std::str::from_utf8(chunk).map_err(|e| e.to_string())?);
                *pos += width;
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, String> {
    let start = *pos;
    while *pos < b.len() && matches!(b[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E') {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|e| e.to_string())?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| format!("bad number {text:?} at byte {start}"))
}

/// FNV-1a over a byte string — the stable 64-bit hash behind the
/// `outcome_fingerprint` fields the artifacts carry (platform- and
/// run-independent for deterministic inputs, unlike `DefaultHasher`).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// The outcome of one [`check_against`] comparison.
#[derive(Debug)]
pub struct CheckReport {
    /// Leaf values compared under a non-ignore rule.
    pub compared: usize,
    /// Human-readable failure descriptions (empty = gate passes).
    pub failures: Vec<String>,
}

impl CheckReport {
    /// `true` if the fresh artifact is within the gate.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }
}

/// How a leaf value is gated, keyed on its JSON member name.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Rule {
    /// Must equal the baseline exactly (deterministic fields).
    Exact,
    /// Must be `true` in the fresh artifact (and match the baseline).
    DeterminismFlag,
    /// fresh ≤ baseline × (1 + tolerance).
    WallTimeCeiling,
    /// fresh ≥ baseline ÷ (1 + tolerance).
    SpeedupFloor,
    /// Not gated (host-dependent or informative).
    Ignore,
}

fn rule_for(key: &str) -> Rule {
    match key {
        // Deterministic outputs: any drift is a reproducibility regression.
        "work"
        | "depth"
        | "rounds"
        | "warm_fresh_allocations"
        | "outcome_fingerprint"
        | "set_fingerprint" => Rule::Exact,
        // Deterministic admission / rewarm accounting (emitted only for the
        // deterministic routing policies).
        "submitted" | "admitted" | "denied_quota" | "denied_in_flight" | "delivered"
        | "rewarm_hits" | "rewarm_misses" => Rule::Exact,
        // Workload identity: a mismatch means the entries are misaligned.
        "experiment" | "kind" | "n" | "m" | "instances" | "requests" | "tenant" | "tenants"
        | "policy" | "shards" => Rule::Exact,
        // Retention accounting in the mutation entry is deterministic: the
        // same edit stream against the same `keep_last` yields the same
        // bound and eviction count.
        "retention_keep_last" | "retention_snapshots_max" | "retention_evictions" => Rule::Exact,
        "sets_identical"
        | "costs_identical"
        | "outcomes_identical"
        | "deterministic_replay"
        | "replay_identical"
        | "wal_replay_identical"
        | "retention_latest_identical"
        | "mapped_identical"
        | "wire_identical" => Rule::DeterminismFlag,
        // Coldstart workload identity: the storage tier and resident
        // footprint of the snapshot under test are deterministic.
        "storage" | "bytes_resident" => Rule::Exact,
        k if k.ends_with("_ms") || k == "ms" => Rule::WallTimeCeiling,
        k if k.starts_with("speedup") => Rule::SpeedupFloor,
        _ => Rule::Ignore,
    }
}

/// Compares a freshly emitted artifact against a committed baseline.
///
/// `tolerance` is the relative band for the wall-time and speedup rules
/// (e.g. `0.5` = a fresh `*_ms` may be up to 1.5× its baseline and a fresh
/// `speedup*` no less than baseline ÷ 1.5). Exact-rule fields ignore the band.
/// Returns `Err` only for unparseable input; gate verdicts are in the
/// [`CheckReport`].
pub fn check_against(fresh: &str, baseline: &str, tolerance: f64) -> Result<CheckReport, String> {
    let fresh = Json::parse(fresh).map_err(|e| format!("fresh artifact: {e}"))?;
    let baseline = Json::parse(baseline).map_err(|e| format!("baseline artifact: {e}"))?;
    let mut report = CheckReport {
        compared: 0,
        failures: Vec::new(),
    };
    walk("$", "", &baseline, &fresh, tolerance, &mut report);
    Ok(report)
}

fn walk(path: &str, key: &str, base: &Json, fresh: &Json, tol: f64, report: &mut CheckReport) {
    match (base, fresh) {
        (Json::Obj(members), Json::Obj(_)) => {
            for (k, bv) in members {
                let child = format!("{path}.{k}");
                match fresh.get(k) {
                    Some(fv) => walk(&child, k, bv, fv, tol, report),
                    None => report.failures.push(format!(
                        "{child}: present in baseline, missing from fresh run"
                    )),
                }
            }
        }
        (Json::Arr(bs), Json::Arr(fs)) => {
            if bs.len() != fs.len() {
                report.failures.push(format!(
                    "{path}: baseline has {} entries, fresh run has {}",
                    bs.len(),
                    fs.len()
                ));
                return;
            }
            for (i, (bv, fv)) in bs.iter().zip(fs).enumerate() {
                // Elements inherit the array's key for rule lookup.
                walk(&format!("{path}[{i}]"), key, bv, fv, tol, report);
            }
        }
        _ => check_leaf(path, key, base, fresh, tol, report),
    }
}

fn check_leaf(
    path: &str,
    key: &str,
    base: &Json,
    fresh: &Json,
    tol: f64,
    report: &mut CheckReport,
) {
    let rule = rule_for(key);
    if rule == Rule::Ignore {
        return;
    }
    report.compared += 1;
    match rule {
        Rule::Exact | Rule::DeterminismFlag => {
            if base != fresh {
                report.failures.push(format!(
                    "{path}: fingerprint mismatch (baseline {base:?}, fresh {fresh:?})"
                ));
            } else if rule == Rule::DeterminismFlag && *fresh != Json::Bool(true) {
                report.failures.push(format!(
                    "{path}: determinism flag is {fresh:?}, expected true"
                ));
            }
        }
        Rule::WallTimeCeiling | Rule::SpeedupFloor => {
            let (Some(b), Some(f)) = (base.as_f64(), fresh.as_f64()) else {
                report.failures.push(format!(
                    "{path}: expected numbers (baseline {base:?}, fresh {fresh:?})"
                ));
                return;
            };
            if b <= 0.0 {
                return; // degenerate baseline — nothing meaningful to gate
            }
            if rule == Rule::WallTimeCeiling && f > b * (1.0 + tol) {
                report.failures.push(format!(
                    "{path}: wall-time regression ({f:.4} vs baseline {b:.4}, \
                     ceiling {:.4})",
                    b * (1.0 + tol)
                ));
            }
            // Multiplicative floor (baseline ÷ band, mirroring the ceiling's
            // baseline × band): stays a live gate at any tolerance, unlike
            // `b * (1 - tol)`, which goes negative — and therefore dead —
            // once the band exceeds 1.
            if rule == Rule::SpeedupFloor && f < b / (1.0 + tol) {
                report.failures.push(format!(
                    "{path}: speedup regression ({f:.4} vs baseline {b:.4}, \
                     floor {:.4})",
                    b / (1.0 + tol)
                ));
            }
        }
        Rule::Ignore => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const FRESH: &str = r#"{
      "experiment": "serve_sharded_runner",
      "host_parallelism": 4,
      "largest_workload": {"kind": "query", "n": 262144, "speedup_vs_1shard": 1.9},
      "workloads": [
        {"kind": "query", "n": 262144, "instances": 100, "sequential_ms": 64.2,
         "outcomes_identical": true, "outcome_fingerprint": "0x00ff00ff00ff00ff",
         "shards": [{"shards": 1, "ms": 65.0, "speedup_vs_sequential": 0.99},
                    {"shards": 8, "ms": 33.0, "speedup_vs_sequential": 1.95}]}
      ]
    }"#;

    #[test]
    fn parser_round_trips_artifact_shapes() {
        let v = Json::parse(FRESH).unwrap();
        assert_eq!(
            v.get("experiment"),
            Some(&Json::Str("serve_sharded_runner".into()))
        );
        let wl = match v.get("workloads") {
            Some(Json::Arr(a)) => &a[0],
            other => panic!("bad workloads: {other:?}"),
        };
        assert_eq!(wl.get("n").and_then(Json::as_f64), Some(262144.0));
        assert_eq!(wl.get("outcomes_identical"), Some(&Json::Bool(true)));
        // Escapes and rejects.
        assert_eq!(Json::parse(r#""a\nA""#).unwrap(), Json::Str("a\nA".into()));
        assert!(Json::parse("{\"a\": 1,}").is_err());
        assert!(Json::parse("{\"a\": 1} x").is_err());
        assert!(Json::parse("{\"a\": 1, \"a\": 2}").is_err());
    }

    #[test]
    fn identical_artifacts_pass() {
        let report = check_against(FRESH, FRESH, 0.0).unwrap();
        assert!(report.passed(), "failures: {:?}", report.failures);
        assert!(report.compared >= 10);
    }

    /// The satellite acceptance check: a doctored baseline trips the gate.
    #[test]
    fn doctored_baseline_trips_on_wall_time() {
        // Baseline claims the sequential path ran 4× faster than the fresh
        // run measured — a seeded synthetic regression.
        let doctored = FRESH.replace("\"sequential_ms\": 64.2", "\"sequential_ms\": 16.0");
        let report = check_against(FRESH, &doctored, 0.5).unwrap();
        assert!(!report.passed());
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("wall-time regression") && f.contains("sequential_ms")),
            "failures: {:?}",
            report.failures
        );
        // A generous band swallows it again.
        assert!(check_against(FRESH, &doctored, 5.0).unwrap().passed());
    }

    #[test]
    fn doctored_baseline_trips_on_fingerprint_mismatch() {
        let doctored = FRESH.replace("0x00ff00ff00ff00ff", "0x0123456789abcdef");
        let report = check_against(FRESH, &doctored, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("fingerprint mismatch") && f.contains("outcome_fingerprint")),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn false_determinism_flag_trips_even_when_baseline_agrees() {
        let broken = FRESH.replace(
            "\"outcomes_identical\": true",
            "\"outcomes_identical\": false",
        );
        let report = check_against(&broken, &broken, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("determinism flag")),
            "failures: {:?}",
            report.failures
        );
    }

    /// The PR-7 gate: `wal_replay_identical` (and its retention siblings)
    /// are determinism flags — `false` trips even when baseline agrees, and
    /// the retention accounting gates exactly.
    #[test]
    fn wal_replay_and_retention_fields_gate() {
        let fresh = FRESH.replace(
            "\"outcomes_identical\": true,",
            "\"outcomes_identical\": true, \"wal_replay_identical\": true, \
             \"retention_latest_identical\": true, \"retention_keep_last\": 1, \
             \"retention_snapshots_max\": 2, \"retention_evictions\": 3,",
        );
        assert!(check_against(&fresh, &fresh, 0.0).unwrap().passed());
        let broken = fresh.replace(
            "\"wal_replay_identical\": true",
            "\"wal_replay_identical\": false",
        );
        let report = check_against(&broken, &broken, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("determinism flag") && f.contains("wal_replay_identical")),
            "failures: {:?}",
            report.failures
        );
        let drifted = fresh.replace("\"retention_evictions\": 3", "\"retention_evictions\": 7");
        let report = check_against(&fresh, &drifted, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("retention_evictions")),
            "failures: {:?}",
            report.failures
        );
    }

    /// The coldstart gate: `mapped_identical` is a determinism flag and the
    /// snapshot's storage tier + resident footprint gate exactly.
    #[test]
    fn coldstart_fields_gate() {
        let fresh = FRESH.replace(
            "\"outcomes_identical\": true,",
            "\"outcomes_identical\": true, \"mapped_identical\": true, \
             \"storage\": \"mapped\", \"bytes_resident\": 12582944,",
        );
        assert!(check_against(&fresh, &fresh, 0.0).unwrap().passed());
        let broken = fresh.replace("\"mapped_identical\": true", "\"mapped_identical\": false");
        let report = check_against(&broken, &broken, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("determinism flag") && f.contains("mapped_identical")),
            "failures: {:?}",
            report.failures
        );
        let drifted = fresh.replace("\"storage\": \"mapped\"", "\"storage\": \"owned\"");
        let report = check_against(&fresh, &drifted, 10.0).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("fingerprint mismatch") && f.contains("storage")),
            "failures: {:?}",
            report.failures
        );
    }

    #[test]
    fn speedup_floor_and_schema_drift_trip() {
        let doctored = FRESH.replace("\"speedup_vs_1shard\": 1.9", "\"speedup_vs_1shard\": 6.0");
        let report = check_against(FRESH, &doctored, 0.5).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("speedup regression")),
            "failures: {:?}",
            report.failures
        );

        // A key present in the baseline but dropped from the fresh artifact.
        let fresh_missing = FRESH.replace("\"host_parallelism\": 4,", "");
        let report = check_against(&fresh_missing, FRESH, 0.5).unwrap();
        assert!(
            report
                .failures
                .iter()
                .any(|f| f.contains("missing from fresh run")),
            "failures: {:?}",
            report.failures
        );

        // Host-dependent fields never gate.
        let other_host = FRESH.replace("\"host_parallelism\": 4", "\"host_parallelism\": 96");
        assert!(check_against(&other_host, FRESH, 0.5).unwrap().passed());
    }

    #[test]
    fn fnv1a_is_stable() {
        // Pinned values: the fingerprint fields in committed baselines
        // depend on this hash never changing.
        assert_eq!(fnv1a(b""), 0xCBF2_9CE4_8422_2325);
        assert_eq!(fnv1a(b"a"), 0xAF63_DC4C_8601_EC8C);
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
    }
}
