//! The experiment harness: regenerates every experiment listed in DESIGN.md §4
//! and EXPERIMENTS.md, printing markdown tables that can be pasted into
//! EXPERIMENTS.md verbatim.
//!
//! Usage:
//!
//! ```text
//! cargo run --release -p bench --bin experiments            # all experiments
//! cargo run --release -p bench --bin experiments -- e1 e5   # a subset
//! cargo run --release -p bench --bin experiments -- --quick # smaller sweeps
//!
//! # The CI bench-regression gate: compare freshly emitted BENCH_*.json in
//! # the working directory against committed baselines (default tolerance
//! # band 0.5; exits non-zero on any regression or fingerprint mismatch).
//! cargo run --release -p bench --bin experiments -- \
//!     --check-against bench/baselines [--tolerance 0.5] [activeset batch serve coldstart net]
//! ```

use bench::{linear_workload, markdown_table, paper_workload, rng_for, uniform_workload};
use concentration::chernoff;
use concentration::kimvu;
use concentration::potential::{Potential, Recurrence};
use hypergraph::degree::DegreeTable;
use hypergraph::params::SblParams;
use hypergraph::{ActiveHypergraph, HypergraphStats};
use hypergraph_mis::batch::BatchRunner;
use mis_core::prelude::*;
use pram::cost::CostTracker;
use pram::pool::with_threads;
use std::fmt::Write as _;
use std::time::Instant;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut quick = false;
    let mut check_against: Option<String> = None;
    let mut tolerance = 0.5f64;
    let mut selected: Vec<String> = Vec::new();
    let mut it = args.into_iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--quick" => quick = true,
            "--check-against" => {
                check_against = Some(it.next().expect("--check-against needs a directory"));
            }
            "--tolerance" => {
                tolerance = it
                    .next()
                    .expect("--tolerance needs a value")
                    .parse()
                    .expect("--tolerance needs a number");
            }
            a if a.starts_with("--") => panic!("unknown flag {a}"),
            _ => selected.push(arg),
        }
    }
    let want =
        |tag: &str| selected.is_empty() || selected.iter().any(|s| s.eq_ignore_ascii_case(tag));

    // Every run states which SIMD paths are live, so a pasted table or a CI
    // log is never ambiguous about what actually executed.
    println!(
        "simd: keystream={} ({} blocks/op), sweeps={} ({} bytes/op)",
        rand_chacha::simd::active_path(),
        rand_chacha::simd::backend().lanes(),
        pram::simd::active_path(),
        pram::simd::active().u8_lanes(),
    );

    if let Some(dir) = check_against {
        run_bench_regression_gate(&dir, tolerance, &want);
        return;
    }

    if want("e1") {
        e1_sbl_scaling(quick);
    }
    if want("e2") {
        e2_bl_stages(quick);
    }
    if want("e3") {
        e3_event_b(quick);
    }
    if want("e4") {
        e4_event_a(quick);
    }
    if want("e5") {
        e5_shootout(quick);
    }
    if want("e6") {
        e6_migration(quick);
    }
    if want("e7") {
        e7_potential_decay(quick);
    }
    if want("e8") {
        e8_threads(quick);
    }
    if want("e9") {
        e9_special_classes(quick);
    }
    if want("e10") {
        e10_admissibility();
    }
    #[cfg(feature = "reference-engine")]
    if want("activeset") {
        activeset_engine_guard(quick);
    }
    #[cfg(not(feature = "reference-engine"))]
    if want("activeset") {
        println!("activeset: skipped (requires the `reference-engine` feature)");
    }
    if want("batch") {
        batch_runner_experiment(quick);
    }
    if want("serve") {
        serve_experiment(quick);
    }
    if want("coldstart") {
        coldstart_experiment(quick);
    }
    if want("net") {
        net_experiment(quick);
    }
}

/// The CI bench-regression gate (`--check-against <dir>`): compares each
/// freshly emitted `BENCH_*.json` in the working directory against the
/// committed copy in `<dir>`, with a tolerance band on wall times and
/// speedups and exact matching on deterministic fields (see
/// [`bench::baseline`]). Exits non-zero on the first artifact set with
/// failures, so CI fails on wall-time regressions or fingerprint mismatches.
fn run_bench_regression_gate(dir: &str, tolerance: f64, want: &impl Fn(&str) -> bool) {
    println!("## bench-regression gate: fresh BENCH_*.json vs {dir} (tolerance {tolerance})\n");
    let mut compared = 0usize;
    let mut failures: Vec<String> = Vec::new();
    for tag in ["activeset", "batch", "serve", "coldstart", "net"] {
        if !want(tag) {
            continue;
        }
        let file = format!("BENCH_{tag}.json");
        let baseline_path = std::path::Path::new(dir).join(&file);
        let fresh = std::fs::read_to_string(&file).unwrap_or_else(|e| {
            panic!("missing fresh artifact {file} (run the guards first): {e}")
        });
        let baseline = std::fs::read_to_string(&baseline_path)
            .unwrap_or_else(|e| panic!("missing baseline {}: {e}", baseline_path.display()));
        let report = bench::baseline::check_against(&fresh, &baseline, tolerance)
            .unwrap_or_else(|e| panic!("{file}: {e}"));
        println!(
            "{file}: {} values gated, {} failure(s)",
            report.compared,
            report.failures.len()
        );
        compared += report.compared;
        failures.extend(report.failures.into_iter().map(|f| format!("{file} {f}")));
    }
    if !failures.is_empty() {
        eprintln!("\nbench-regression gate FAILED:");
        for f in &failures {
            eprintln!("  {f}");
        }
        std::process::exit(1);
    }
    println!("\nbench-regression gate passed ({compared} values within policy)");
}

/// The sharded-serving experiment: the PR-3 batch workloads (induced query
/// streams against a resident graph, and independent full SBL solves), now
/// pushed through the [`ShardedRunner`](hypergraph_mis::serve::ShardedRunner)
/// at 1, 2, 4 and 8 shards and compared
/// against the sequential `BatchRunner::solve` path (the 1-shard amortized
/// baseline, no threads, no queues).
///
/// Per-request outcomes must be **byte-identical** across every shard count
/// and the sequential path — asserted here on fingerprints (seed, set, cost
/// totals, trace). Wall times and aggregate throughputs go to
/// `BENCH_serve.json` (consumed by CI as an artifact; the scaling target is
/// ≥ 2× aggregate throughput at 8 shards on the largest query workload,
/// which needs ≥ a few real cores — the JSON records `host_parallelism` so a
/// single-core host's ≈1× is interpretable, matching the E8 caveat).
fn serve_experiment(quick: bool) {
    use hypergraph_mis::serve::{
        AdmissionConfig, Algorithm, EpochPin, ResidentRegistry, RetentionPolicy, RoutePolicy,
        ServeConfig, ShardedRunner, SolveError, SolveFingerprint, SolveRequest, TenantId,
        TenantQuota,
    };
    use std::sync::Arc;

    println!("\n## serve — sharded worker-pool serving vs the sequential BatchRunner path\n");
    let instances = 100usize;
    let iters = if quick { 3 } else { 5 };
    let shard_counts = [1usize, 2, 4, 8];
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut largest: Option<(usize, f64)> = None;

    // Workload builders mirror the batch experiment exactly; only the
    // execution layer differs.
    let mut workloads: Vec<(&str, usize, Arc<ResidentRegistry>, Vec<SolveRequest>)> = Vec::new();
    for n in [16384usize, 65536, 262144] {
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(uniform_workload(n, 3, 0xBA7C));
        let qsize = 512;
        let requests: Vec<SolveRequest> = (0..instances)
            .map(|i| {
                let mut rng = rng_for(0xBA7C_1000 + (n + i) as u64);
                let mut q: Vec<u32> = (0..n as u32).collect();
                for k in 0..qsize {
                    let j = rand::Rng::gen_range(&mut rng, k..n);
                    q.swap(k, j);
                }
                q.truncate(qsize);
                q.sort_unstable();
                SolveRequest::induced(resident, q)
                    .algorithm(Algorithm::Bl(BlConfig::default()))
                    .seed(0xBA7C_2000 + (n * 131 + i) as u64)
                    .tenant(TenantId(i as u64 % 4))
                    .build()
            })
            .collect();
        workloads.push(("query", n, Arc::new(registry), requests));
    }
    for n in [1024usize, 4096] {
        let registry = Arc::new(ResidentRegistry::new());
        let requests: Vec<SolveRequest> = (0..instances)
            .map(|i| {
                SolveRequest::adhoc(Arc::new(paper_workload(n, 0xBA7C + i as u64)))
                    .algorithm(Algorithm::Sbl(SblConfig::default()))
                    .seed(0xBA7C_0000 + (n * 1000 + i) as u64)
                    .tenant(TenantId(i as u64 % 4))
                    .build()
            })
            .collect();
        workloads.push(("sbl_stream", n, registry, requests));
    }

    for (kind, n, registry, requests) in &workloads {
        // Sequential baseline: one BatchRunner, no threads, no queues.
        let mut best_seq = f64::INFINITY;
        let mut reference: Vec<SolveFingerprint> = Vec::new();
        for it in 0..iters {
            let mut runner = BatchRunner::new();
            let t0 = Instant::now();
            let outs: Vec<SolveFingerprint> = requests
                .iter()
                .map(|r| runner.solve(registry, r).fingerprint())
                .collect();
            best_seq = best_seq.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                reference = outs;
            }
        }

        let mut shard_summaries = Vec::new();
        let mut ms_by_shards: Vec<(usize, f64)> = Vec::new();
        for &shards in &shard_counts {
            let config = ServeConfig {
                shards,
                queue_depth: 64,
                threads_per_shard: Some(1),
                ..ServeConfig::default()
            };
            let mut best = f64::INFINITY;
            for it in 0..iters {
                let mut runner = ShardedRunner::new(Arc::clone(registry), &config);
                let t0 = Instant::now();
                let outs = runner.run_stream(requests.clone());
                best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                if it == 0 {
                    assert_eq!(outs.len(), reference.len());
                    for (i, out) in outs.iter().enumerate() {
                        assert!(
                            out.fingerprint() == reference[i],
                            "serve {kind}: shards={shards} diverged from the sequential \
                             BatchRunner path (n={n}, request {i})"
                        );
                    }
                }
            }
            ms_by_shards.push((shards, best));
            let speedup = best_seq / best;
            let throughput = instances as f64 / (best / 1e3);
            shard_summaries.push(format!(
                "{{\"shards\": {shards}, \"ms\": {best:.4}, \"speedup_vs_sequential\": \
                 {speedup:.3}, \"throughput_per_s\": {throughput:.1}}}"
            ));
            rows.push(vec![
                kind.to_string(),
                n.to_string(),
                shards.to_string(),
                format!("{best_seq:.2}"),
                format!("{best:.2}"),
                format!("{speedup:.2}x"),
                format!("{throughput:.0}"),
            ]);
        }
        // Aggregate-throughput scaling of the shard sweep itself: 8 shards
        // vs 1 shard (both through the serve layer, so queueing overhead is
        // on both sides of the ratio).
        let ms1 = ms_by_shards
            .iter()
            .find(|&&(s, _)| s == 1)
            .expect("1-shard run")
            .1;
        let ms8 = ms_by_shards
            .iter()
            .find(|&&(s, _)| s == 8)
            .expect("8-shard run")
            .1;
        if *kind == "query" {
            largest = Some((*n, ms1 / ms8));
        }
        entries.push(format!(
            concat!(
                "    {{\"kind\": \"{}\", \"n\": {}, \"instances\": {}, ",
                "\"sequential_ms\": {:.4}, \"outcomes_identical\": true, ",
                "\"outcome_fingerprint\": \"{}\", \"speedup_8v1\": {:.3}, \"shards\": [{}]}}"
            ),
            kind,
            n,
            instances,
            best_seq,
            fingerprint_hex(&reference),
            ms1 / ms8,
            shard_summaries.join(", "),
        ));
    }

    // --- Tenant mix: an interleaved tenant-tagged query stream at 4 shards
    // under each routing policy. Outcomes must be byte-identical across
    // policies (and to the sequential path); the per-tenant rewarm report
    // makes the affinity win observable rather than asserted. ---
    // 6 tenants over 4 shards: the tenant count is deliberately not a
    // multiple of the shard count, so round-robin genuinely scatters each
    // tenant (ticket stride 6 mod 4 cycles) while affinity pins it.
    let mix_tenants = 6u64;
    let mix_total = 96usize;
    let mix_n = 65536usize;
    let (mix_registry, mix_requests) = {
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(uniform_workload(mix_n, 3, 0x7E4A));
        let requests: Vec<SolveRequest> = (0..mix_total)
            .map(|i| {
                let mut rng = rng_for(0x7E4A_1000 + i as u64);
                let qsize = 512;
                let mut q: Vec<u32> = (0..mix_n as u32).collect();
                for k in 0..qsize {
                    let j = rand::Rng::gen_range(&mut rng, k..mix_n);
                    q.swap(k, j);
                }
                q.truncate(qsize);
                q.sort_unstable();
                SolveRequest::induced(resident, q)
                    .algorithm(Algorithm::Bl(BlConfig::default()))
                    .seed(0x7E4A_2000 + i as u64)
                    .tenant(TenantId(i as u64 % mix_tenants))
                    .build()
            })
            .collect();
        (Arc::new(registry), requests)
    };
    let mut seq_runner = BatchRunner::new();
    let mix_reference: Vec<SolveFingerprint> = mix_requests
        .iter()
        .map(|r| seq_runner.solve(&mix_registry, r).fingerprint())
        .collect();
    let per_tenant_delivered = mix_total as u64 / mix_tenants;
    let mut policy_rows = Vec::new();
    let mut policy_summaries = Vec::new();
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::TenantAffinity,
        RoutePolicy::LeastQueued,
    ] {
        let config = ServeConfig {
            shards: 4,
            queue_depth: 64,
            threads_per_shard: Some(1),
            route: policy,
            ..ServeConfig::default()
        };
        let mut best = f64::INFINITY;
        let mut rewarms: Vec<(u64, u64, u64)> = Vec::new();
        for it in 0..iters {
            let mut runner = ShardedRunner::new(Arc::clone(&mix_registry), &config);
            let t0 = Instant::now();
            let outs = if policy == RoutePolicy::TenantAffinity && it == 0 {
                // Exercise streaming collection inside the guard: it must
                // yield a permutation with identical per-ticket payloads.
                for r in mix_requests.iter().cloned() {
                    runner.submit(r);
                }
                let mut outs: Vec<_> = runner.collect_streaming(mix_requests.len()).collect();
                outs.sort_by_key(|o| o.ticket);
                outs
            } else {
                runner.run_stream(mix_requests.clone())
            };
            best = best.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                for (i, out) in outs.iter().enumerate() {
                    assert!(
                        out.fingerprint() == mix_reference[i],
                        "serve tenant_mix: {} diverged from the sequential path (request {i})",
                        policy.name()
                    );
                }
            }
            // One generation's rewarm ledger (deterministic for the
            // deterministic routing policies).
            let pool = runner.shutdown();
            rewarms = pool.tenant_rewarms();
        }
        let (hits, misses) = rewarms
            .iter()
            .fold((0u64, 0u64), |(h, m), e| (h + e.1, m + e.2));
        policy_rows.push(vec![
            policy.name().to_string(),
            format!("{best:.2}"),
            format!("{:.0}", mix_total as f64 / (best / 1e3)),
            hits.to_string(),
            misses.to_string(),
        ]);
        // LeastQueued placement is scheduling-dependent, so its rewarm split
        // is telemetry we deliberately keep out of the committed artifact.
        let rewarm_fields = if policy == RoutePolicy::LeastQueued {
            String::new()
        } else {
            let per_tenant = rewarms
                .iter()
                .map(|&(tenant, h, m)| {
                    format!(
                        "{{\"tenant\": {tenant}, \"delivered\": {per_tenant_delivered}, \
                         \"throughput_per_s\": {:.1}, \"rewarm_hits\": {h}, \
                         \"rewarm_misses\": {m}}}",
                        per_tenant_delivered as f64 / (best / 1e3)
                    )
                })
                .collect::<Vec<_>>()
                .join(", ");
            format!(
                ", \"rewarm_hits\": {hits}, \"rewarm_misses\": {misses}, \
                 \"per_tenant\": [{per_tenant}]"
            )
        };
        policy_summaries.push(format!(
            "{{\"policy\": \"{}\", \"ms\": {best:.4}{rewarm_fields}}}",
            policy.name()
        ));
    }
    entries.push(format!(
        concat!(
            "    {{\"kind\": \"tenant_mix\", \"n\": {}, \"tenants\": {}, \"instances\": {}, ",
            "\"outcomes_identical\": true, \"outcome_fingerprint\": \"{}\", ",
            "\"policies\": [{}]}}"
        ),
        mix_n,
        mix_tenants,
        mix_total,
        fingerprint_hex(&mix_reference),
        policy_summaries.join(", "),
    ));
    println!("### tenant mix — {mix_tenants} tenants, 4 shards, routing policies\n");
    println!(
        "{}",
        markdown_table(
            &["policy", "ms", "req/s", "rewarm hits", "rewarm misses"],
            &policy_rows
        )
    );

    // --- Admission: rejection-as-data under deterministic per-tenant
    // quotas; the decisions must replay identically. ---
    let adm_total = 60usize;
    let (adm_registry, adm_requests) = {
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(uniform_workload(4096, 3, 0xADA1));
        let requests: Vec<SolveRequest> = (0..adm_total)
            .map(|i| {
                let mut rng = rng_for(0xADA1_1000 + i as u64);
                let qsize = 128;
                let mut q: Vec<u32> = (0..4096u32).collect();
                for k in 0..qsize {
                    let j = rand::Rng::gen_range(&mut rng, k..4096);
                    q.swap(k, j);
                }
                q.truncate(qsize);
                q.sort_unstable();
                SolveRequest::induced(resident, q)
                    .algorithm(Algorithm::Greedy)
                    .seed(0xADA1_2000 + i as u64)
                    .tenant(TenantId(i as u64 % 3))
                    .build()
            })
            .collect();
        (Arc::new(registry), requests)
    };
    let adm_config = ServeConfig {
        shards: 4,
        queue_depth: 64,
        threads_per_shard: Some(1),
        route: RoutePolicy::RoundRobin,
        admission: AdmissionConfig {
            default_quota: None,
            per_tenant: vec![
                // Tenant 0: a refilling token bucket. Tenant 1: an in-flight
                // cap (submit-all-then-collect keeps it saturated). Tenant 2
                // stays unquoted.
                (
                    TenantId(0),
                    TenantQuota {
                        burst: 6,
                        refill_every: 5,
                        max_in_flight: None,
                    },
                ),
                (
                    TenantId(1),
                    TenantQuota {
                        burst: u64::MAX,
                        refill_every: 0,
                        max_in_flight: Some(2),
                    },
                ),
            ],
        },
    };
    let mut adm_replays = Vec::new();
    for _ in 0..2 {
        let mut runner = ShardedRunner::new(Arc::clone(&adm_registry), &adm_config);
        let outs = runner.run_stream(adm_requests.clone());
        for out in &outs {
            match &out.error {
                None => {}
                Some(SolveError::AdmissionDenied { .. }) => {}
                Some(e) => panic!("serve admission: unexpected failure {e:?}"),
            }
        }
        let fps: Vec<SolveFingerprint> = outs.iter().map(|o| o.fingerprint()).collect();
        adm_replays.push((fps, runner.stats()));
    }
    assert!(
        adm_replays[0].0 == adm_replays[1].0,
        "serve admission: decisions did not replay deterministically"
    );
    let adm_stats = &adm_replays[0].1;
    let adm_per_tenant = adm_stats
        .per_tenant
        .iter()
        .map(|t| {
            format!(
                "{{\"tenant\": {}, \"submitted\": {}, \"admitted\": {}, \
                 \"denied_quota\": {}, \"denied_in_flight\": {}, \"delivered\": {}}}",
                t.tenant.0,
                t.submitted,
                t.admitted,
                t.denied_quota,
                t.denied_in_flight,
                t.delivered
            )
        })
        .collect::<Vec<_>>()
        .join(", ");
    entries.push(format!(
        concat!(
            "    {{\"kind\": \"admission\", \"requests\": {}, \"deterministic_replay\": true, ",
            "\"outcome_fingerprint\": \"{}\", \"admitted\": {}, \"denied\": {}, ",
            "\"per_tenant\": [{}]}}"
        ),
        adm_total,
        fingerprint_hex(&adm_replays[0].0),
        adm_stats.admitted,
        adm_stats.denied,
        adm_per_tenant,
    ));
    println!(
        "### admission — {adm_total} requests, 3 tenants: {} admitted, {} denied \
         (replay-deterministic)\n",
        adm_stats.admitted, adm_stats.denied
    );

    // --- Mutation: the epoch-versioned registry's copy-on-write path vs the
    // pre-PR-6 alternative (tear everything down and re-register per graph
    // version). Both arms answer the same query waves against the same graph
    // versions; the mutate arm `apply`s mid-stream on one long-lived runner
    // (warm pools, pinned in-flight requests), the rebuild arm replays the
    // edit-log prefix into a fresh registry + fresh cold runner per epoch.
    // Replay determinism is asserted, not assumed: the mutate arm's
    // fingerprints must agree across shard counts, collection modes and the
    // sequential path, and the rebuild arm must reproduce every payload. ---
    use hypergraph::edit::{apply_edits, GraphEdit};
    use hypergraph_mis::serve::Epoch;
    let mut_n = 8192usize;
    let mut_waves = 5usize; // epochs 0..=4
    let mut_queries = if quick { 24 } else { 48 };
    let mut_base = uniform_workload(mut_n, 3, 0x0ED1);
    // Deterministic edit batches: each removes two current edges, adds two
    // fresh 4-vertex edges (the base is 3-uniform, so they are never
    // duplicates), and one batch grows the id space.
    let mut_batches: Vec<Vec<GraphEdit>> = {
        let mut batches = Vec::new();
        let mut cur = mut_base.clone();
        for k in 0..mut_waves - 1 {
            let i1 = (k * 131 + 7) % cur.n_edges();
            let mut i2 = (k * 257 + 3) % cur.n_edges();
            if i2 == i1 {
                i2 = (i2 + 1) % cur.n_edges();
            }
            let mut batch = vec![
                GraphEdit::RemoveEdge(cur.edge(i1 as u32).to_vec()),
                GraphEdit::RemoveEdge(cur.edge(i2 as u32).to_vec()),
                GraphEdit::AddEdge((0..4).map(|j| (400 * k + j) as u32).collect()),
                GraphEdit::AddEdge((0..4).map(|j| (400 * k + 200 + j) as u32).collect()),
            ];
            if k == 1 {
                batch.push(GraphEdit::GrowVertices(64));
            }
            cur = apply_edits(&cur, &batch).expect("mutation bench edit script is valid");
            batches.push(batch);
        }
        batches
    };
    // Query waves: induced BL queries over the *base* vertex range, valid at
    // every epoch; wave w is pinned (via Latest-at-submit) to epoch w.
    let mut_requests: Vec<Vec<(u64, Vec<u32>)>> = (0..mut_waves)
        .map(|w| {
            (0..mut_queries)
                .map(|i| {
                    let mut rng = rng_for(0x0ED1_1000 + (w * 1000 + i) as u64);
                    let qsize = 256;
                    let mut q: Vec<u32> = (0..mut_n as u32).collect();
                    for k in 0..qsize {
                        let j = rand::Rng::gen_range(&mut rng, k..mut_n);
                        q.swap(k, j);
                    }
                    q.truncate(qsize);
                    q.sort_unstable();
                    (0x0ED1_2000 + (w * 1000 + i) as u64, q)
                })
                .collect()
        })
        .collect();
    let mut_request = |resident, seed: u64, q: &Vec<u32>| {
        SolveRequest::induced(resident, q.clone())
            .algorithm(Algorithm::Bl(BlConfig::default()))
            .seed(seed)
            .tenant(TenantId(seed % 3))
            .build()
    };

    // Mutate arm: one registry, one runner, `apply` between waves.
    let mut mutate_ms = f64::INFINITY;
    let mut mut_reference: Vec<SolveFingerprint> = Vec::new();
    for (it, &(shards, streaming)) in [(4usize, false), (1, false), (4, true)]
        .iter()
        .cycle()
        .take(iters.max(3))
        .enumerate()
    {
        let t0 = Instant::now();
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(mut_base.clone());
        let registry = Arc::new(registry);
        let config = ServeConfig {
            shards,
            queue_depth: 64,
            threads_per_shard: Some(1),
            ..ServeConfig::default()
        };
        let mut runner = ShardedRunner::new(Arc::clone(&registry), &config);
        for (w, wave) in mut_requests.iter().enumerate() {
            for (seed, q) in wave {
                runner.submit(mut_request(resident, *seed, q));
            }
            // Mutate while this wave is still in flight: its requests were
            // pinned at submit, so the bump can never retarget them.
            if let Some(batch) = mut_batches.get(w) {
                let bumped = registry.apply(resident, batch).expect("valid edit batch");
                assert_eq!(bumped, Epoch(w as u64 + 1));
            }
        }
        let total = mut_waves * mut_queries;
        let outs = if streaming {
            let mut outs: Vec<_> = runner.collect_streaming(total).collect();
            outs.sort_by_key(|o| o.ticket);
            outs
        } else {
            runner.collect_ordered(total)
        };
        mutate_ms = mutate_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        let fps: Vec<SolveFingerprint> = outs.iter().map(|o| o.fingerprint()).collect();
        for (w, wave_fps) in fps.chunks(mut_queries).enumerate() {
            for fp in wave_fps {
                assert_eq!(fp.1, Some(Epoch(w as u64)), "wave {w} mispinned");
            }
        }
        if it == 0 {
            mut_reference = fps;
        } else {
            assert!(
                fps == mut_reference,
                "serve mutation: shards={shards} streaming={streaming} diverged from the \
                 first mutate-arm run"
            );
        }
    }
    // Sequential reference: the same submit/apply sequence through a
    // BatchRunner (Latest resolves at execution time, which on this path is
    // submission time), so the mutate arm is pinned against the single-shard
    // special case too.
    {
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(mut_base.clone());
        let registry = Arc::new(registry);
        let mut runner = BatchRunner::new();
        let mut fps: Vec<SolveFingerprint> = Vec::new();
        for (w, wave) in mut_requests.iter().enumerate() {
            for (seed, q) in wave {
                fps.push(
                    runner
                        .solve(&registry, &mut_request(resident, *seed, q))
                        .fingerprint(),
                );
            }
            if let Some(batch) = mut_batches.get(w) {
                registry.apply(resident, batch).expect("valid edit batch");
            }
        }
        assert!(
            fps == mut_reference,
            "serve mutation: sequential BatchRunner path diverged from the mutate arm"
        );
    }

    // Rebuild arm: per epoch, replay the log prefix from scratch into a
    // fresh registry and a fresh (cold) runner — what serving a mutable
    // graph costs without the epoch-versioned registry.
    let mut rebuild_ms = f64::INFINITY;
    for it in 0..iters {
        let t0 = Instant::now();
        let mut log: Vec<GraphEdit> = Vec::new();
        let mut fps: Vec<SolveFingerprint> = Vec::new();
        for (w, wave) in mut_requests.iter().enumerate() {
            let graph = apply_edits(&mut_base, &log).expect("valid edit log prefix");
            let mut registry = ResidentRegistry::new();
            let resident = registry.register(graph);
            let registry = Arc::new(registry);
            let config = ServeConfig {
                shards: 4,
                queue_depth: 64,
                threads_per_shard: Some(1),
                ..ServeConfig::default()
            };
            let mut runner = ShardedRunner::new(Arc::clone(&registry), &config);
            for (seed, q) in wave {
                runner.submit(mut_request(resident, *seed, q));
            }
            fps.extend(
                runner
                    .collect_ordered(wave.len())
                    .iter()
                    .map(|o| o.fingerprint()),
            );
            if let Some(batch) = mut_batches.get(w) {
                log.extend(batch.iter().cloned());
            }
        }
        rebuild_ms = rebuild_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        if it == 0 {
            // Replay determinism: identical payloads, epoch field aside (the
            // rebuilt registries are always at epoch 0).
            assert_eq!(fps.len(), mut_reference.len());
            for (fresh, reference) in fps.iter().zip(&mut_reference) {
                let payload_matches = fresh.0 == reference.0
                    && fresh.2 == reference.2
                    && fresh.3 == reference.3
                    && fresh.4 == reference.4
                    && fresh.5 == reference.5
                    && fresh.6 == reference.6
                    && fresh.7 == reference.7;
                assert!(
                    payload_matches,
                    "serve mutation: rebuilt-from-log outcome diverged (seed {})",
                    reference.0
                );
            }
        }
    }
    // --- Restart-replay: the WAL is the cross-process determinism oracle.
    // Persist the registry mid-workload (epoch 2) and at the end of the
    // mutation stream, restore each WAL into a fresh in-process registry,
    // and re-answer every query wave the persisted prefix covers, pinned to
    // its epoch. Restore preserves epoch numbers, so the fingerprints must
    // match the mutate arm's bit for bit — the `wal_replay_identical` gate
    // consumed by `--check-against`. ---
    let wal_replay_identical = {
        let mut registry = ResidentRegistry::new();
        let resident = registry.register(mut_base.clone());
        let pid = std::process::id();
        let mid_path = std::env::temp_dir().join(format!("bench-serve-mid-{pid}.wal"));
        let end_path = std::env::temp_dir().join(format!("bench-serve-end-{pid}.wal"));
        for (w, batch) in mut_batches.iter().enumerate() {
            registry.apply(resident, batch).expect("valid edit batch");
            if w + 1 == 2 {
                registry
                    .persist(resident, &mid_path)
                    .expect("persist mid-workload WAL");
            }
        }
        registry
            .persist(resident, &end_path)
            .expect("persist end-of-workload WAL");
        let mut identical = true;
        for path in [&mid_path, &end_path] {
            let mut restored = ResidentRegistry::new();
            let rid = restored.restore(path).expect("restore WAL");
            std::fs::remove_file(path).ok();
            let epochs = restored.current_epoch(rid).0 as usize + 1;
            let mut runner = BatchRunner::new();
            for (w, wave) in mut_requests.iter().take(epochs).enumerate() {
                for ((seed, q), reference) in wave.iter().zip(&mut_reference[w * mut_queries..]) {
                    let req = SolveRequest::induced(rid, q.clone())
                        .algorithm(Algorithm::Bl(BlConfig::default()))
                        .seed(*seed)
                        .tenant(TenantId(*seed % 3))
                        .pin(EpochPin::At(Epoch(w as u64)))
                        .build();
                    identical &= runner.solve(&restored, &req).fingerprint() == *reference;
                }
            }
        }
        assert!(
            identical,
            "serve mutation: restored-from-WAL outcomes diverged from the live registry"
        );
        identical
    };

    // --- Retention: the same mutate workload under `keep_last = 1` must
    // answer identically — in-flight requests hold their snapshot Arcs and
    // Latest pins only ever resolve to live epochs — while the snapshot
    // count stays bounded at keep_last + 2 (base + latest always retained). ---
    let retention_keep_last = 1u64;
    let (retention_snapshots_max, retention_evictions, retention_latest_identical) = {
        let mut registry =
            ResidentRegistry::with_retention(RetentionPolicy::keep_last(retention_keep_last));
        let resident = registry.register(mut_base.clone());
        let registry = Arc::new(registry);
        let config = ServeConfig {
            shards: 4,
            queue_depth: 64,
            threads_per_shard: Some(1),
            ..ServeConfig::default()
        };
        let mut runner = ShardedRunner::new(Arc::clone(&registry), &config);
        let mut snapshots_max = registry.retained_snapshots(resident);
        for (w, wave) in mut_requests.iter().enumerate() {
            for (seed, q) in wave {
                runner.submit(mut_request(resident, *seed, q));
            }
            if let Some(batch) = mut_batches.get(w) {
                registry.apply(resident, batch).expect("valid edit batch");
            }
            snapshots_max = snapshots_max.max(registry.retained_snapshots(resident));
        }
        let fps: Vec<SolveFingerprint> = runner
            .collect_ordered(mut_waves * mut_queries)
            .iter()
            .map(|o| o.fingerprint())
            .collect();
        assert!(
            snapshots_max <= retention_keep_last as usize + 2,
            "serve mutation: keep_last={retention_keep_last} retained {snapshots_max} snapshots"
        );
        let identical = fps == mut_reference;
        assert!(
            identical,
            "serve mutation: keep_last retention perturbed live outcomes"
        );
        (snapshots_max, registry.evictions(resident), identical)
    };

    let mutate_speedup = rebuild_ms / mutate_ms;
    entries.push(format!(
        concat!(
            "    {{\"kind\": \"mutation\", \"n\": {}, \"epochs\": {}, ",
            "\"queries_per_epoch\": {}, \"mutate_ms\": {:.4}, \"rebuild_ms\": {:.4}, ",
            "\"mutate_vs_rebuild_speedup\": {:.3}, \"replay_identical\": true, ",
            "\"wal_replay_identical\": {}, \"retention_keep_last\": {}, ",
            "\"retention_snapshots_max\": {}, \"retention_evictions\": {}, ",
            "\"retention_latest_identical\": {}, \"outcome_fingerprint\": \"{}\"}}"
        ),
        mut_n,
        mut_waves,
        mut_queries,
        mutate_ms,
        rebuild_ms,
        mutate_speedup,
        wal_replay_identical,
        retention_keep_last,
        retention_snapshots_max,
        retention_evictions,
        retention_latest_identical,
        fingerprint_hex(&mut_reference),
    ));
    println!(
        "### mutation — {mut_waves} epochs x {mut_queries} induced queries (n={mut_n}): \
         mutate {mutate_ms:.2} ms vs rebuild {rebuild_ms:.2} ms ({mutate_speedup:.2}x; \
         replay-identical, WAL-replay-identical, keep_last={retention_keep_last} retention \
         bounded at {retention_snapshots_max} snapshots / {retention_evictions} evictions)\n"
    );

    println!(
        "{}",
        markdown_table(
            &[
                "workload",
                "n",
                "shards",
                "sequential ms",
                "serve ms",
                "speedup",
                "req/s"
            ],
            &rows
        )
    );

    // --- The shard-scaling assertion (CI satellite): with real cores, the
    // serve layer must deliver aggregate throughput at 8 shards ≥ 1.5× the
    // 1-shard path on the largest query workload. Single-core hosts record
    // the ratio without asserting (the E8 caveat). ---
    let (largest_n, largest_speedup) = largest.expect("at least one query workload");
    let host = pram::pool::available_parallelism();
    let scaling_assertion = if host >= 4 {
        assert!(
            largest_speedup >= 1.5,
            "serve: aggregate throughput at 8 shards is only {largest_speedup:.2}x the 1-shard \
             path on a {host}-way host (query n={largest_n}; target >= 1.5x)"
        );
        format!("asserted (host_parallelism={host}: {largest_speedup:.2}x >= 1.5x)")
    } else {
        println!(
            "warning: shard-scaling assertion skipped — host_parallelism={host} < 4 (the E8 \
             caveat); recording {largest_speedup:.2}x for the CI artifact"
        );
        format!("record-only (host_parallelism={host} < 4)")
    };

    let mut json = String::from("{\n  \"experiment\": \"serve_sharded_runner\",\n");
    let _ = writeln!(
        json,
        "  \"baseline\": \"sequential BatchRunner::solve over the request stream (single-shard \
         amortized path: one workspace, no threads, no queues)\",\n  \
         \"candidate\": \"ShardedRunner (N worker shards, per-shard WorkspacePool affinity, \
         tenant routing + admission, bounded queues, ordered/streaming collection)\",\n  \
         \"iters\": {iters},\n  \"host_parallelism\": {host},\n  \
         \"scaling_assertion\": \"{scaling_assertion}\",\n  \
         \"largest_workload\": {{\"kind\": \"query\", \"n\": {largest_n}, \
         \"instances\": {instances}, \"shards\": 8, \
         \"speedup_vs_1shard\": {largest_speedup:.3}}},\n  \
         \"workloads\": ["
    );
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_serve.json", &json).expect("write BENCH_serve.json");
    println!(
        "wrote BENCH_serve.json (largest workload: query n={largest_n}, 8 shards: \
         {largest_speedup:.2}x vs 1 shard; host parallelism {host})\n"
    );
}

/// The cold-start experiment (the PR-9 tentpole gate): how fast does a
/// resident graph go from a file on disk to its first answered query, per
/// storage tier?
///
/// Three arms, each timed from cold (registry construction + engine build +
/// one induced BL query) on the same `uniform_workload` graphs:
///
/// * `parse_build` — the text format: `read_file` (full parse + validation +
///   counting-sort rebuild) then `register`;
/// * `restore` — the PR-7 WAL: `ResidentRegistry::restore` (header parse +
///   CSR text + empty edit log replay);
/// * `open_mapped` — the HGCSR snapshot: `ResidentRegistry::open_mapped`
///   (checksummed header validation + zero-copy `mmap` of the four arrays).
///
/// The first-query fingerprints of all three arms must be byte-identical
/// (`mapped_identical`, a determinism flag in the gate), as must a
/// steady-state query stream on the owned vs the mapped registry — the
/// storage tier is invisible to outcomes. Wall times go to
/// `BENCH_coldstart.json` (banded in the gate); the acceptance bar is
/// `open_mapped` first-query latency ≥ 5× faster than parse+build on the
/// largest workload, asserted here.
fn coldstart_experiment(quick: bool) {
    use hypergraph_mis::serve::{
        Algorithm, ResidentRegistry, SolveFingerprint, SolveRequest, TenantId,
    };
    use std::sync::Arc;

    println!("\n## coldstart — parse+build vs WAL restore vs mmap open, file to first answer\n");
    let iters = if quick { 3 } else { 5 };
    let steady_queries = 64usize;
    let pid = std::process::id();
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut largest: Option<(usize, f64)> = None;

    for n in [65536usize, 262144] {
        let graph = uniform_workload(n, 3, 0xC01D);
        let m = graph.n_edges();
        let text_path = std::env::temp_dir().join(format!("bench-coldstart-{pid}-{n}.txt"));
        let wal_path = std::env::temp_dir().join(format!("bench-coldstart-{pid}-{n}.wal"));
        let csr_path = std::env::temp_dir().join(format!("bench-coldstart-{pid}-{n}.hgcsr"));
        hypergraph::io::write_file(&graph, &text_path).expect("write coldstart text snapshot");
        hypergraph::io::write_wal(&wal_path, 0, &graph, &[]).expect("write coldstart WAL");
        hypergraph::io::write_csr(&graph, &csr_path).expect("write coldstart CSR snapshot");

        // The first query every arm must answer from cold, and the
        // steady-state stream the warm registries then serve.
        let query_for = |i: usize| -> Arc<Vec<u32>> {
            let mut rng = rng_for(0xC01D_1000 + (n + i) as u64);
            let qsize = 512;
            let mut q: Vec<u32> = (0..n as u32).collect();
            for k in 0..qsize {
                let j = rand::Rng::gen_range(&mut rng, k..n);
                q.swap(k, j);
            }
            q.truncate(qsize);
            q.sort_unstable();
            Arc::new(q)
        };
        let request = |id, i: usize| {
            SolveRequest::induced(id, query_for(i))
                .algorithm(Algorithm::Bl(BlConfig::default()))
                .seed(0xC01D_2000 + (n * 131 + i) as u64)
                .tenant(TenantId(i as u64 % 4))
                .build()
        };

        // One cold run per arm per iteration: file → registry (engine build
        // included) → first answered query. `min` over iterations, like
        // every other wall-time in these artifacts.
        let mut arm_ms = [f64::INFINITY; 3];
        let mut arm_prints: [Option<SolveFingerprint>; 3] = [None, None, None];
        for _ in 0..iters {
            for (arm, best) in arm_ms.iter_mut().enumerate() {
                let t0 = Instant::now();
                let mut registry = ResidentRegistry::new();
                let id = match arm {
                    0 => registry.register(
                        hypergraph::io::read_file(&text_path).expect("parse coldstart text"),
                    ),
                    1 => registry.restore(&wal_path).expect("restore coldstart WAL"),
                    _ => registry
                        .open_mapped(&csr_path)
                        .expect("open coldstart CSR snapshot"),
                };
                let mut runner = BatchRunner::new();
                let fp = runner.solve(&registry, &request(id, 0)).fingerprint();
                *best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                if let Some(prev) = &arm_prints[arm] {
                    assert!(*prev == fp, "coldstart: arm {arm} did not replay (n={n})");
                } else {
                    arm_prints[arm] = Some(fp);
                }
            }
        }
        let [parse_ms, restore_ms, mapped_ms] = arm_ms;
        let first_print = arm_prints[0].clone().expect("iters >= 1");
        let mapped_identical = arm_prints.iter().all(|p| p.as_ref() == Some(&first_print));
        assert!(
            mapped_identical,
            "coldstart: storage tiers disagree on the first query (n={n})"
        );

        // Steady state: the same query stream through the warm owned and
        // warm mapped registries — per-query fingerprints must agree.
        let mut owned_registry = ResidentRegistry::new();
        let owned_id = owned_registry.register(graph.clone());
        let mut mapped_registry = ResidentRegistry::new();
        let mapped_id = mapped_registry
            .open_mapped(&csr_path)
            .expect("open coldstart CSR snapshot");
        let mapped_stats = HypergraphStats::compute(mapped_registry.latest(mapped_id).graph());
        let mut steady = [f64::INFINITY; 2];
        let mut steady_prints: Vec<Vec<SolveFingerprint>> = Vec::new();
        for (arm, best) in steady.iter_mut().enumerate() {
            let (registry, id) = if arm == 0 {
                (&owned_registry, owned_id)
            } else {
                (&mapped_registry, mapped_id)
            };
            let mut prints = Vec::new();
            for it in 0..iters {
                let mut runner = BatchRunner::new();
                let t0 = Instant::now();
                let fps: Vec<SolveFingerprint> = (0..steady_queries)
                    .map(|i| runner.solve(registry, &request(id, i)).fingerprint())
                    .collect();
                *best = best.min(t0.elapsed().as_secs_f64() * 1e3);
                if it == 0 {
                    prints = fps;
                }
            }
            steady_prints.push(prints);
        }
        let [steady_owned_ms, steady_mapped_ms] = steady;
        assert!(
            steady_prints[0] == steady_prints[1],
            "coldstart: steady-state owned vs mapped outcomes diverged (n={n})"
        );
        let steady_throughput = steady_queries as f64 / (steady_mapped_ms / 1e3);

        let speedup_parse = parse_ms / mapped_ms;
        let speedup_restore = restore_ms / mapped_ms;
        largest = Some((n, speedup_parse));
        println!("workload n={n}: {}", mapped_stats.one_line());
        rows.push(vec![
            n.to_string(),
            m.to_string(),
            mapped_stats.bytes_resident.to_string(),
            format!("{parse_ms:.2}"),
            format!("{restore_ms:.2}"),
            format!("{mapped_ms:.2}"),
            format!("{speedup_parse:.1}x"),
            format!("{steady_throughput:.0}"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"kind\": \"coldstart\", \"n\": {}, \"m\": {}, ",
                "\"bytes_resident\": {}, \"storage\": \"{}\", ",
                "\"parse_build_ms\": {:.4}, \"restore_ms\": {:.4}, ",
                "\"open_mapped_ms\": {:.4}, \"speedup_mapped_vs_parse\": {:.3}, ",
                "\"speedup_mapped_vs_restore\": {:.3}, \"mapped_identical\": {}, ",
                "\"outcome_fingerprint\": \"{}\", \"steady_queries\": {}, ",
                "\"steady_owned_ms\": {:.4}, \"steady_mapped_ms\": {:.4}, ",
                "\"steady_throughput_per_s\": {:.1}}}"
            ),
            n,
            m,
            mapped_stats.bytes_resident,
            mapped_stats.storage,
            parse_ms,
            restore_ms,
            mapped_ms,
            speedup_parse,
            speedup_restore,
            mapped_identical,
            fingerprint_hex(&steady_prints[0]),
            steady_queries,
            steady_owned_ms,
            steady_mapped_ms,
            steady_throughput,
        ));
        std::fs::remove_file(&text_path).ok();
        std::fs::remove_file(&wal_path).ok();
        std::fs::remove_file(&csr_path).ok();
    }

    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "bytes",
                "parse+build ms",
                "restore ms",
                "mmap open ms",
                "mapped speedup",
                "steady req/s"
            ],
            &rows
        )
    );

    // The tentpole acceptance bar: on the largest resident workload, the
    // mapped tier must reach its first answer ≥ 5× faster than parsing and
    // rebuilding from text.
    let (largest_n, largest_speedup) = largest.expect("at least one workload");
    assert!(
        largest_speedup >= 5.0,
        "coldstart: open_mapped first-query latency is only {largest_speedup:.2}x faster than \
         parse+build on the largest workload (n={largest_n}; target >= 5x)"
    );

    let mut json = String::from("{\n  \"experiment\": \"coldstart_resident_graphs\",\n");
    let _ = writeln!(
        json,
        "  \"baseline\": \"parse+build from the text snapshot (read_file: full parse, \
         validation, counting-sort rebuild, then register + engine build)\",\n  \
         \"candidate\": \"open_mapped on the HGCSR snapshot (checksummed header validation + \
         zero-copy mmap of the four CSR arrays, engine built over the mapping)\",\n  \
         \"iters\": {iters},\n  \
         \"largest_workload\": {{\"kind\": \"coldstart\", \"n\": {largest_n}, \
         \"speedup_mapped_vs_parse\": {largest_speedup:.3}}},\n  \
         \"workloads\": ["
    );
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_coldstart.json", &json).expect("write BENCH_coldstart.json");
    println!(
        "\nwrote BENCH_coldstart.json (largest workload n={largest_n}: open_mapped \
         {largest_speedup:.2}x faster to first answer than parse+build)\n"
    );
}

/// The serve-net experiment (the PR-10 tentpole gate): the `MISP 1` socket
/// front-end under a deterministic open-loop load plan ([`bench::load`]).
///
/// The load shape is production-flavoured rather than a uniform sweep:
/// exponential inter-arrivals paced by a sender thread regardless of
/// response progress (so queueing delay lands in the percentiles instead of
/// being coordinated away), bounded-Pareto induced-query sizes (most
/// requests small, a deterministic minority 30× larger), and a hot tenant
/// owning ~60% of the stream. Two arms per shard count:
///
/// * `slo` — paced sends; per-request latency is measured from the request's
///   *scheduled* send time to reply receipt, percentiles over the stream
///   (min across iterations, like every wall time here);
/// * `saturation` — the same requests submitted back-to-back with no pacing;
///   throughput from first submit to last reply.
///
/// Every wire outcome must be byte-identical (by fingerprint) to an
/// in-process [`BatchRunner`] solve of the same request — `wire_identical`,
/// a determinism flag in the gate, plus the exact-matched
/// `outcome_fingerprint`. Latency percentiles go to `BENCH_net.json` and are
/// banded by the gate.
fn net_experiment(quick: bool) {
    use bench::load::{plan, LoadConfig};
    use hypergraph_mis::net::{Client, NetConfig, Server};
    use hypergraph_mis::serve::{
        Algorithm, ResidentRegistry, ServeConfig, SolveFingerprint, SolveRequest, TenantId,
    };
    use std::sync::Arc;
    use std::time::Duration;

    println!("\n## net — MISP loopback serving under deterministic open-loop load\n");
    let iters = if quick { 3 } else { 5 };
    let n = 16384usize;
    let load = LoadConfig {
        seed: 0x6E73,
        requests: if quick { 96 } else { 192 },
        mean_interarrival_us: 500.0,
        tenants: 4,
        hot_share: 0.6,
        min_query: 32,
        max_query: 1024,
        tail_alpha: 1.1,
    };
    let schedule = plan(&load);

    let mut registry = ResidentRegistry::new();
    let resident = registry.register(uniform_workload(n, 3, 0x6E73));
    let registry = Arc::new(registry);
    let requests: Vec<SolveRequest> = schedule
        .iter()
        .map(|a| {
            let mut rng = rng_for(0x6E73_1000 ^ a.solve_seed);
            let mut q: Vec<u32> = (0..n as u32).collect();
            for k in 0..a.query_size {
                let j = rand::Rng::gen_range(&mut rng, k..n);
                q.swap(k, j);
            }
            q.truncate(a.query_size);
            q.sort_unstable();
            SolveRequest::induced(resident, q)
                .algorithm(Algorithm::Bl(BlConfig::default()))
                .seed(a.solve_seed)
                .tenant(TenantId(a.tenant))
                .build()
        })
        .collect();

    // The in-process ground truth every wire outcome is compared against.
    let mut seq = BatchRunner::new();
    let reference: Vec<SolveFingerprint> = requests
        .iter()
        .map(|r| seq.solve(&registry, r).fingerprint())
        .collect();
    let hot_requests = schedule.iter().filter(|a| a.tenant == 0).count();

    let percentile = |sorted_us: &[u64], q: f64| -> f64 {
        let idx = ((sorted_us.len() - 1) as f64 * q).round() as usize;
        sorted_us[idx] as f64 / 1e3
    };

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    for shards in [1usize, 4] {
        let config = NetConfig {
            serve: ServeConfig {
                shards,
                queue_depth: 64,
                threads_per_shard: Some(1),
                ..ServeConfig::default()
            },
            ..NetConfig::default()
        };
        let (mut p50, mut p95, mut p99) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
        let mut saturation_rps = 0.0f64;
        for it in 0..iters {
            // --- SLO arm: open-loop paced sends. ---
            let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), &config)
                .expect("net: bind loopback server");
            let client = Client::connect(server.local_addr()).expect("net: connect");
            let (mut tx, mut rx) = client.split().expect("net: split");
            let start = Instant::now();
            let sender = {
                let schedule = schedule.clone();
                let requests = requests.clone();
                std::thread::spawn(move || {
                    for (arrival, request) in schedule.iter().zip(&requests) {
                        let due = Duration::from_micros(arrival.at_us);
                        while let Some(wait) = due.checked_sub(start.elapsed()) {
                            if wait.is_zero() {
                                break;
                            }
                            std::thread::sleep(wait.min(Duration::from_micros(200)));
                        }
                        tx.submit(request).expect("net: submit");
                    }
                })
            };
            let mut latencies_us = vec![0u64; requests.len()];
            for _ in 0..requests.len() {
                let reply = rx.recv().expect("net: recv");
                let done = start.elapsed();
                let idx = reply.correlation as usize;
                let scheduled = Duration::from_micros(schedule[idx].at_us);
                latencies_us[idx] =
                    done.checked_sub(scheduled).unwrap_or_default().as_micros() as u64;
                if it == 0 {
                    assert!(
                        reply.outcome.fingerprint() == reference[idx],
                        "net: wire outcome diverged from the in-process BatchRunner \
                         (shards={shards}, request {idx})"
                    );
                }
            }
            sender.join().expect("net: sender thread");
            let stats = server.shutdown();
            assert_eq!(
                stats.delivered,
                requests.len() as u64,
                "net: delivered count (shards={shards})"
            );
            assert_eq!(
                stats.connections[0].protocol_errors, 0,
                "net: protocol errors on a clean connection (shards={shards})"
            );
            latencies_us.sort_unstable();
            p50 = p50.min(percentile(&latencies_us, 0.50));
            p95 = p95.min(percentile(&latencies_us, 0.95));
            p99 = p99.min(percentile(&latencies_us, 0.99));

            // --- Saturation arm: the same stream, no pacing. ---
            let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), &config)
                .expect("net: bind loopback server");
            let client = Client::connect(server.local_addr()).expect("net: connect");
            let (mut tx, mut rx) = client.split().expect("net: split");
            let t0 = Instant::now();
            let burst = {
                let requests = requests.clone();
                std::thread::spawn(move || {
                    for request in &requests {
                        tx.submit(request).expect("net: submit");
                    }
                })
            };
            for _ in 0..requests.len() {
                rx.recv().expect("net: recv");
            }
            let elapsed = t0.elapsed().as_secs_f64();
            burst.join().expect("net: burst thread");
            server.shutdown();
            saturation_rps = saturation_rps.max(requests.len() as f64 / elapsed);
        }
        rows.push(vec![
            shards.to_string(),
            load.requests.to_string(),
            format!("{p50:.2}"),
            format!("{p95:.2}"),
            format!("{p99:.2}"),
            format!("{saturation_rps:.0}"),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"kind\": \"loopback\", \"shards\": {}, \"requests\": {}, ",
                "\"tenants\": {}, \"hot_tenant_requests\": {}, ",
                "\"p50_ms\": {:.4}, \"p95_ms\": {:.4}, \"p99_ms\": {:.4}, ",
                "\"saturation_rps\": {:.1}, \"wire_identical\": true, ",
                "\"outcome_fingerprint\": \"{}\"}}"
            ),
            shards,
            load.requests,
            load.tenants,
            hot_requests,
            p50,
            p95,
            p99,
            saturation_rps,
            fingerprint_hex(&reference),
        ));
    }
    println!(
        "{}",
        markdown_table(
            &[
                "shards",
                "requests",
                "p50 ms",
                "p95 ms",
                "p99 ms",
                "saturation req/s"
            ],
            &rows
        )
    );

    let mut json = String::from("{\n  \"experiment\": \"net_misp_loopback\",\n");
    let _ = writeln!(
        json,
        "  \"protocol\": \"MISP 1 (length-prefixed frames, FNV-1a payload checksums)\",\n  \
         \"load\": \"open-loop exponential arrivals (mean {:.0}us), bounded-Pareto induced \
         query sizes {}..={} (alpha {}), hot tenant 0 of {} at {:.0}% share\",\n  \
         \"requests\": {},\n  \"iters\": {iters},\n  \"n\": {n},\n  \"workloads\": [",
        load.mean_interarrival_us,
        load.min_query,
        load.max_query,
        load.tail_alpha,
        load.tenants,
        load.hot_share * 100.0,
        load.requests,
    );
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_net.json", &json).expect("write BENCH_net.json");
    println!("wrote BENCH_net.json (every wire outcome fingerprint-identical in-process)\n");
}

/// A stable hex fingerprint over a sequence of per-request outcomes (FNV-1a
/// chained over their debug encodings) — the exact-match determinism field
/// the bench-regression gate compares across runs and hosts. One chain for
/// every artifact, so the scheme can never silently diverge between them.
fn fingerprint_hex<T: std::fmt::Debug>(items: &[T]) -> String {
    use bench::baseline::fnv1a;
    let mut acc = 0u64;
    for item in items {
        let h = fnv1a(format!("{item:?}").as_bytes());
        let mut chain = [0u8; 16];
        chain[..8].copy_from_slice(&acc.to_le_bytes());
        chain[8..].copy_from_slice(&h.to_le_bytes());
        acc = fnv1a(&chain);
    }
    format!("0x{acc:016x}")
}

/// The batch-serving experiment: streams of 100 MIS solves answered
/// back-to-back, once *cold* (the rebuild pipeline: every solve materializes
/// its instance from scratch — fresh engine, allocating `induced_by` with no
/// incidence index and an `O(n + Σ|e|)` pass per query, fresh flag scratch
/// per subcall; the pre-workspace execution path, preserved in `mis_core` as
/// the measurable baseline) and once *amortized* (one [`BatchRunner`]
/// workspace reused across the whole stream: engines reset or re-induced in
/// place with a compact incidence, flag/index buffers recycled).
///
/// Two workload families, matching the two serving shapes the ROADMAP north
/// star cares about:
///
/// * `query` — the headline: a large hypergraph stays resident and each
///   instance is "solve the MIS of the sub-hypergraph induced by this vertex
///   subset" (BL on the induced engine). Cold pays the `O(id_space)` +
///   full-edge-scan derivation per query; amortized derives the sub through
///   the parent's incidence in `O(|query| + Σ deg)` via `induced_by_into`.
/// * `sbl_stream` — 100 independent full SBL solves, cold vs amortized.
///
/// Asserts that both arms return identical independent sets and identical
/// cost totals for every instance, and writes the wall times to
/// `BENCH_batch.json` (consumed by CI as an artifact; the acceptance bar is
/// a ≥ 1.3× amortized speedup on the largest workload).
fn batch_runner_experiment(quick: bool) {
    println!(
        "\n## batch — cold (rebuild pipeline) vs amortized (workspace-reusing) solve streams\n"
    );
    let instances = 100usize;
    let iters = if quick { 3 } else { 7 };
    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut largest: Option<(usize, f64)> = None;

    // --- Family 1: query streams against a resident hypergraph. ---
    // Fixed-size queries against a growing resident graph: the amortized
    // derivation costs O(|query|) while the cold one costs O(database), so
    // the gap widens with scale — the point of the serving architecture.
    for n in [16384usize, 65536, 262144] {
        let base = uniform_workload(n, 3, 0xBA7C);
        let resident = ActiveHypergraph::from_hypergraph(&base);
        let qsize = 512;
        let queries: Vec<Vec<u32>> = (0..instances)
            .map(|i| {
                let mut rng = rng_for(0xBA7C_1000 + (n + i) as u64);
                let mut q: Vec<u32> = (0..n as u32).collect();
                for k in 0..qsize {
                    let j = rand::Rng::gen_range(&mut rng, k..n);
                    q.swap(k, j);
                }
                q.truncate(qsize);
                q.sort_unstable();
                q
            })
            .collect();
        let solve_rng = |i: usize| rng_for(0xBA7C_2000 + (n * 131 + i) as u64);
        let bl_cfg = BlConfig::default();
        let mut marked = vec![false; n];

        // Cold arm: every query derives its sub-instance from scratch.
        let mut best_cold = f64::INFINITY;
        let mut cold_outcomes: Vec<BatchOutcome> = Vec::new();
        for it in 0..iters {
            let t0 = Instant::now();
            let outs: Vec<BatchOutcome> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    for &v in q {
                        marked[v as usize] = true;
                    }
                    let mut sub = resident.induced_by(&marked);
                    for &v in q {
                        marked[v as usize] = false;
                    }
                    let mut cost = CostTracker::new();
                    let (set, _) =
                        mis_core::bl::bl_on_active(&mut sub, &mut solve_rng(i), &bl_cfg, &mut cost);
                    let c = cost.cost();
                    (set, (c.work, c.depth, cost.rounds()))
                })
                .collect();
            best_cold = best_cold.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                cold_outcomes = outs;
            }
        }

        // Amortized arm: one engine slot + workspace across the stream.
        let mut best_amortized = f64::INFINITY;
        let mut amortized_outcomes: Vec<BatchOutcome> = Vec::new();
        let mut warm_allocations = 0u64;
        for it in 0..iters {
            let mut runner = BatchRunner::new();
            let mut slot = ActiveHypergraph::from_parts(Vec::new(), Vec::new());
            let t0 = Instant::now();
            let outs: Vec<BatchOutcome> = queries
                .iter()
                .enumerate()
                .map(|(i, q)| {
                    for &v in q {
                        marked[v as usize] = true;
                    }
                    resident.induced_by_into(&marked, q, &mut slot);
                    for &v in q {
                        marked[v as usize] = false;
                    }
                    let mut cost = CostTracker::new();
                    let (set, _) = mis_core::bl::bl_on_active_in(
                        &mut slot,
                        &mut solve_rng(i),
                        &bl_cfg,
                        &mut cost,
                        runner.workspace_mut(),
                    );
                    let c = cost.cost();
                    (set, (c.work, c.depth, cost.rounds()))
                })
                .collect();
            best_amortized = best_amortized.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                amortized_outcomes = outs;
                let before = runner.workspace().fresh_allocations();
                for &v in &queries[0] {
                    marked[v as usize] = true;
                }
                resident.induced_by_into(&marked, &queries[0], &mut slot);
                for &v in &queries[0] {
                    marked[v as usize] = false;
                }
                let mut cost = CostTracker::new();
                let _ = mis_core::bl::bl_on_active_in(
                    &mut slot,
                    &mut solve_rng(0),
                    &bl_cfg,
                    &mut cost,
                    runner.workspace_mut(),
                );
                warm_allocations = runner.workspace().fresh_allocations() - before;
            }
        }

        let (sets_identical, costs_identical) =
            compare_outcomes(&cold_outcomes, &amortized_outcomes);
        assert!(
            sets_identical && costs_identical,
            "batch query: cold and amortized solves disagree (n={n})"
        );
        // Spot-check independence of the answers against the resident state.
        for (i, q) in queries.iter().enumerate().take(5) {
            for &v in q {
                marked[v as usize] = true;
            }
            let mut sub = resident.induced_by(&marked);
            for &v in q {
                marked[v as usize] = false;
            }
            assert!(
                !sub.contains_live_edge_within(&amortized_outcomes[i].0),
                "batch query: answer not independent (n={n}, query {i})"
            );
        }

        let speedup = best_cold / best_amortized;
        largest = Some((n, speedup));
        push_batch_row(
            &mut rows,
            &mut entries,
            "query",
            n,
            instances,
            best_cold,
            best_amortized,
            warm_allocations,
            sets_identical,
            costs_identical,
            &fingerprint_hex(&cold_outcomes),
        );
    }

    // --- Family 2: independent full SBL solves. ---
    let cfg = SblConfig::default();
    for n in [1024usize, 4096] {
        let hs: Vec<_> = (0..instances)
            .map(|i| paper_workload(n, 0xBA7C + i as u64))
            .collect();
        let solve_rng = |i: usize| rng_for(0xBA7C_0000 + (n * 1000 + i) as u64);

        let mut best_cold = f64::INFINITY;
        let mut cold_outcomes: Vec<BatchOutcome> = Vec::new();
        for it in 0..iters {
            let t0 = Instant::now();
            let outs: Vec<BatchOutcome> = hs
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    let out = mis_core::sbl::sbl_mis_rebuild(h, &mut solve_rng(i), &cfg);
                    let c = out.cost.cost();
                    (
                        out.independent_set,
                        (c.work, c.depth, out.cost.rounds() as u64),
                    )
                })
                .collect();
            best_cold = best_cold.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                cold_outcomes = outs;
            }
        }

        let mut best_amortized = f64::INFINITY;
        let mut amortized_outcomes: Vec<BatchOutcome> = Vec::new();
        let mut warm_allocations = 0u64;
        for it in 0..iters {
            let mut runner = BatchRunner::new();
            let t0 = Instant::now();
            let outs: Vec<BatchOutcome> = hs
                .iter()
                .enumerate()
                .map(|(i, h)| {
                    let out = runner.sbl(h, &mut solve_rng(i), &cfg);
                    let c = out.cost.cost();
                    (out.independent_set, (c.work, c.depth, out.cost.rounds()))
                })
                .collect();
            best_amortized = best_amortized.min(t0.elapsed().as_secs_f64() * 1e3);
            if it == 0 {
                for (i, out) in outs.iter().enumerate() {
                    verify_mis(&hs[i], &out.0).expect("batch sbl: invalid MIS");
                }
                amortized_outcomes = outs;
                let before = runner.workspace().fresh_allocations();
                let _ = runner.sbl(&hs[0], &mut solve_rng(0), &cfg);
                warm_allocations = runner.workspace().fresh_allocations() - before;
            }
        }

        let (sets_identical, costs_identical) =
            compare_outcomes(&cold_outcomes, &amortized_outcomes);
        assert!(
            sets_identical && costs_identical,
            "batch sbl: cold and amortized solves disagree (n={n})"
        );
        push_batch_row(
            &mut rows,
            &mut entries,
            "sbl_stream",
            n,
            instances,
            best_cold,
            best_amortized,
            warm_allocations,
            sets_identical,
            costs_identical,
            &fingerprint_hex(&cold_outcomes),
        );
    }

    println!(
        "{}",
        markdown_table(
            &[
                "workload",
                "n",
                "instances",
                "cold ms",
                "amortized ms",
                "speedup",
                "warm fresh allocs"
            ],
            &rows
        )
    );
    let (largest_n, largest_speedup) = largest.expect("at least one workload");
    let mut json = String::from("{\n  \"experiment\": \"batch_runner\",\n");
    let _ = writeln!(
        json,
        "  \"baseline\": \"cold solves (rebuild pipeline: fresh engine / allocating induced_by \
         per instance, fresh scratch per subcall)\",\n  \
         \"candidate\": \"BatchRunner (one Workspace amortized across the stream: reset_from / \
         induced_by_into with compact incidence + pooled scratch)\",\n  \
         \"iters\": {iters},\n  \
         \"largest_workload\": {{\"kind\": \"query\", \"n\": {largest_n}, \
         \"instances\": {instances}, \"speedup\": {largest_speedup:.3}}},\n  \
         \"workloads\": ["
    );
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_batch.json", &json).expect("write BENCH_batch.json");
    println!(
        "wrote BENCH_batch.json (largest workload: query n={largest_n}: {largest_speedup:.2}x amortized speedup)\n"
    );
}

/// Per-instance batch outcome: `(independent set, (work, depth, rounds))`.
type BatchOutcome = (Vec<u32>, (u64, u64, u64));

/// Compares per-instance outcomes of the two batch arms.
fn compare_outcomes(cold: &[BatchOutcome], amortized: &[BatchOutcome]) -> (bool, bool) {
    let sets = cold.len() == amortized.len() && cold.iter().zip(amortized).all(|(c, a)| c.0 == a.0);
    let costs = cold.iter().zip(amortized).all(|(c, a)| c.1 == a.1);
    (sets, costs)
}

#[allow(clippy::too_many_arguments)]
fn push_batch_row(
    rows: &mut Vec<Vec<String>>,
    entries: &mut Vec<String>,
    kind: &str,
    n: usize,
    instances: usize,
    cold_ms: f64,
    amortized_ms: f64,
    warm_allocations: u64,
    sets_identical: bool,
    costs_identical: bool,
    fingerprint: &str,
) {
    let speedup = cold_ms / amortized_ms;
    rows.push(vec![
        kind.to_string(),
        n.to_string(),
        instances.to_string(),
        format!("{cold_ms:.2}"),
        format!("{amortized_ms:.2}"),
        format!("{speedup:.2}x"),
        warm_allocations.to_string(),
    ]);
    entries.push(format!(
        concat!(
            "    {{\"kind\": \"{}\", \"n\": {}, \"instances\": {}, \"cold_ms\": {:.4}, ",
            "\"amortized_ms\": {:.4}, \"speedup\": {:.3}, ",
            "\"warm_fresh_allocations\": {}, \"outcome_fingerprint\": \"{}\", ",
            "\"sets_identical\": {}, \"costs_identical\": {}}}"
        ),
        kind,
        n,
        instances,
        cold_ms,
        amortized_ms,
        speedup,
        warm_allocations,
        fingerprint,
        sets_identical,
        costs_identical,
    ));
}

/// Engine regression guard: SBL on the `sbl_scaling` workloads, run on both
/// the flat `ActiveHypergraph` engine and the pre-flat reference engine, with
/// identical seeds. Asserts the engines make identical decisions (same
/// independent set, same cost totals) and records wall time and per-round
/// cost for both into `BENCH_activeset.json` (consumed by CI as an artifact;
/// the acceptance bar is a ≥ 2× speedup on the largest workload).
#[cfg(feature = "reference-engine")]
fn activeset_engine_guard(quick: bool) {
    use hypergraph::ReferenceActiveHypergraph;
    use rand::RngCore as _;
    println!("\n## activeset — flat engine vs reference engine on the sbl_scaling workloads\n");
    let iters = if quick { 3 } else { 7 };

    // Micro-throughput of the two vectorized hot loops, measured through the
    // same entry points the engines use. The `_ms` keys gate as wall-time
    // ceilings in the regression checker, so a silently rotted SIMD path
    // (e.g. detection regressing to scalar) fails CI even when the
    // end-to-end engine timings are too noisy to show it.
    let rng_words: usize = if quick { 1 << 18 } else { 1 << 20 };
    let mut rng_fill_ms = f64::INFINITY;
    let mut sink = 0u64;
    for _ in 0..iters {
        let mut rng = rng_for(0x51AD);
        let t0 = Instant::now();
        for _ in 0..rng_words / 2 {
            sink = sink.wrapping_add(rng.next_u64());
        }
        rng_fill_ms = rng_fill_ms.min(t0.elapsed().as_secs_f64() * 1e3);
    }
    std::hint::black_box(sink);

    // One "sweep op" = the three wide primitives the engine leans on
    // (live count, frontier compaction, masked live-size sum) over a status
    // array with an ~80% live fraction, like a young frontier.
    let sweep_bytes: usize = if quick { 1 << 19 } else { 1 << 21 };
    let status: Vec<u8> = (0..sweep_bytes).map(|i| u8::from(i % 5 == 0)).collect();
    let weights: Vec<u32> = (0..sweep_bytes).map(|i| (i as u32) & 0x3FF).collect();
    let mut compacted: Vec<u32> = Vec::new();
    let mut sweep_ms = f64::INFINITY;
    for _ in 0..iters {
        let t0 = Instant::now();
        let live = pram::simd::count_eq_u8(&status, 0);
        pram::simd::positions_eq_u8(&status, 0, &mut compacted);
        let mass = pram::simd::sum_u32_where_u8_eq(&weights, &status, 0);
        sweep_ms = sweep_ms.min(t0.elapsed().as_secs_f64() * 1e3);
        assert_eq!(live, compacted.len(), "activeset: sweep self-check failed");
        std::hint::black_box(mass);
    }
    println!(
        "keystream fill [{}]: {rng_fill_ms:.3} ms / {rng_words} words; \
         status sweeps [{}]: {sweep_ms:.3} ms / {sweep_bytes} bytes\n",
        rand_chacha::simd::active_path(),
        pram::simd::active_path(),
    );

    let mut rows = Vec::new();
    let mut entries = Vec::new();
    let mut largest: Option<(usize, f64)> = None;
    for n in [256usize, 1024, 4096, 16384] {
        let h = paper_workload(n, 1);
        let cfg = SblConfig::default();

        let mut best_ref = f64::INFINITY;
        let mut reference = None;
        for _ in 0..iters {
            let mut rng = rng_for(n as u64);
            let t0 = Instant::now();
            let out = sbl_mis_with_engine::<ReferenceActiveHypergraph, _>(&h, &mut rng, &cfg);
            best_ref = best_ref.min(t0.elapsed().as_secs_f64() * 1e3);
            reference = Some(out);
        }
        let reference = reference.expect("iters >= 1");

        let mut best_flat = f64::INFINITY;
        let mut flat = None;
        for _ in 0..iters {
            let mut rng = rng_for(n as u64);
            let t0 = Instant::now();
            let out = sbl_mis_with_engine::<ActiveHypergraph, _>(&h, &mut rng, &cfg);
            best_flat = best_flat.min(t0.elapsed().as_secs_f64() * 1e3);
            flat = Some(out);
        }
        let flat = flat.expect("iters >= 1");

        verify_mis(&h, &flat.independent_set).expect("activeset: invalid MIS");
        assert_eq!(
            flat.independent_set, reference.independent_set,
            "activeset: engines disagree on the independent set (n={n})"
        );
        let (fc, rc) = (flat.cost.cost(), reference.cost.cost());
        assert_eq!(
            (fc.work, fc.depth, flat.cost.rounds()),
            (rc.work, rc.depth, reference.cost.rounds()),
            "activeset: engines disagree on cost totals (n={n})"
        );

        let rounds = flat.cost.rounds().max(1);
        let speedup = best_ref / best_flat;
        largest = Some((n, speedup));
        rows.push(vec![
            n.to_string(),
            h.n_edges().to_string(),
            format!("{best_ref:.2}"),
            format!("{best_flat:.2}"),
            format!("{speedup:.2}x"),
            rounds.to_string(),
            format!("{:.3}", best_ref / rounds as f64),
            format!("{:.3}", best_flat / rounds as f64),
            (fc.work / rounds).to_string(),
        ]);
        entries.push(format!(
            concat!(
                "    {{\"n\": {}, \"m\": {}, \"reference_ms\": {:.4}, \"flat_ms\": {:.4}, ",
                "\"speedup\": {:.3}, \"rounds\": {}, \"work\": {}, \"depth\": {}, ",
                "\"reference_ms_per_round\": {:.5}, \"flat_ms_per_round\": {:.5}, ",
                "\"work_per_round\": {}, \"set_fingerprint\": \"0x{:016x}\", ",
                "\"sets_identical\": true, \"costs_identical\": true}}"
            ),
            n,
            h.n_edges(),
            best_ref,
            best_flat,
            speedup,
            rounds,
            fc.work,
            fc.depth,
            best_ref / rounds as f64,
            best_flat / rounds as f64,
            fc.work / rounds,
            bench::baseline::fnv1a(format!("{:?}", flat.independent_set).as_bytes()),
        ));
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "reference ms",
                "flat ms",
                "speedup",
                "rounds",
                "ref ms/round",
                "flat ms/round",
                "work/round"
            ],
            &rows
        )
    );
    let (largest_n, largest_speedup) = largest.expect("at least one workload");
    let mut json = String::from("{\n  \"experiment\": \"activeset_engine_guard\",\n");
    let _ = writeln!(
        json,
        "  \"baseline\": \"ReferenceActiveHypergraph (pre-flat Vec/BTreeSet engine)\",\n  \
         \"candidate\": \"ActiveHypergraph (flat epoch-stamped engine)\",\n  \
         \"iters\": {iters},\n  \
         \"simd\": {{\"keystream\": \"{}\", \"keystream_blocks_per_op\": {}, \
         \"sweeps\": \"{}\", \"sweep_bytes_per_op\": {}, \"forced_scalar\": {}}},\n  \
         \"rng_words\": {rng_words},\n  \"rng_fill_ms\": {rng_fill_ms:.4},\n  \
         \"sweep_bytes\": {sweep_bytes},\n  \"sweep_ms\": {sweep_ms:.4},\n  \
         \"largest_workload\": {{\"n\": {largest_n}, \"speedup\": {largest_speedup:.3}}},\n  \
         \"workloads\": [",
        rand_chacha::simd::active_path(),
        rand_chacha::simd::backend().lanes(),
        pram::simd::active_path(),
        pram::simd::active().u8_lanes(),
        rand_chacha::simd::forced_scalar() || pram::simd::forced_scalar(),
    );
    json.push_str(&entries.join(",\n"));
    json.push_str("\n  ]\n}\n");
    std::fs::write("BENCH_activeset.json", &json).expect("write BENCH_activeset.json");
    println!(
        "wrote BENCH_activeset.json (largest workload n={largest_n}: {largest_speedup:.2}x)\n"
    );
}

fn ns(quick: bool, full: &[usize], small: &[usize]) -> Vec<usize> {
    if quick {
        small.to_vec()
    } else {
        full.to_vec()
    }
}

/// E1 — Theorem 1: SBL parallel time on paper-regime hypergraphs scales far
/// below √n.
fn e1_sbl_scaling(quick: bool) {
    println!("\n## E1 — SBL scaling on paper-regime hypergraphs (Theorem 1)\n");
    let mut rows = Vec::new();
    for n in ns(
        quick,
        &[256, 512, 1024, 2048, 4096, 8192],
        &[256, 1024, 4096],
    ) {
        let h = paper_workload(n, 1);
        let mut rng = rng_for(n as u64);
        let t0 = Instant::now();
        let out = sbl_mis(&h, &mut rng);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        verify_mis(&h, &out.independent_set).expect("E1: invalid MIS");
        let c = out.cost.cost();
        rows.push(vec![
            n.to_string(),
            h.n_edges().to_string(),
            h.dimension().to_string(),
            out.trace.n_rounds().to_string(),
            out.trace.total_bl_stages().to_string(),
            c.depth.to_string(),
            format!("{:.1}", (n as f64).sqrt()),
            format!("{:.1}", ms),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "dim",
                "SBL rounds",
                "BL stages",
                "PRAM depth",
                "sqrt(n)",
                "wall ms"
            ],
            &rows
        )
    );
}

/// E2 — Theorem 2: BL stage counts on d-uniform hypergraphs grow
/// polylogarithmically.
fn e2_bl_stages(quick: bool) {
    println!("\n## E2 — Beame–Luby stage counts (Theorem 2)\n");
    let mut rows = Vec::new();
    for d in [2usize, 3, 4] {
        for n in ns(quick, &[256, 1024, 4096], &[256, 1024]) {
            let h = uniform_workload(n, d, 2);
            let mut rng = rng_for((n * d) as u64);
            let out = bl_mis(&h, &mut rng, &BlConfig::default());
            verify_mis(&h, &out.independent_set).expect("E2: invalid MIS");
            let stages = out.trace.n_stages();
            let logn = (n as f64).log2();
            rows.push(vec![
                d.to_string(),
                n.to_string(),
                stages.to_string(),
                format!("{:.1}", logn),
                format!("{:.2}", stages as f64 / logn),
                format!("{:.1}", (n as f64).sqrt()),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &["d", "n", "BL stages", "log2 n", "stages/log n", "sqrt(n)"],
            &rows
        )
    );
}

/// E3 — event B: sampled-edge dimension failures vs the analytic bound
/// r·m·p^{d+1}.
fn e3_event_b(quick: bool) {
    println!("\n## E3 — Event B: oversized sampled edges vs analytic bound\n");
    let trials = if quick { 10 } else { 40 };
    let mut rows = Vec::new();
    for n in ns(quick, &[512, 2048], &[512]) {
        let h = paper_workload(n, 3);
        let params = SblParams::practical_default(n);
        let mut total_rounds = 0usize;
        let mut total_failures = 0usize;
        for t in 0..trials {
            let mut rng = rng_for(0xE3_0000 + (n * 131 + t) as u64);
            let out = sbl_mis(&h, &mut rng);
            total_rounds += out.trace.n_rounds();
            total_failures += out.trace.total_dimension_failures();
        }
        let empirical = total_failures as f64 / total_rounds.max(1) as f64;
        let bound =
            chernoff::event_b_total(params.p, h.n_edges() as f64, params.d_cap() as u32, 1.0);
        rows.push(vec![
            n.to_string(),
            h.n_edges().to_string(),
            format!("{:.3}", params.p),
            params.d_cap().to_string(),
            total_rounds.to_string(),
            total_failures.to_string(),
            format!("{:.4}", empirical),
            format!("{:.4}", bound),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "m",
                "p",
                "d cap",
                "rounds (all trials)",
                "failures",
                "failures/round",
                "per-round bound r=1"
            ],
            &rows
        )
    );
}

/// E4 — event A: per-round decided fraction vs the Chernoff bound p/2.
fn e4_event_a(quick: bool) {
    println!("\n## E4 — Event A: per-round progress vs the Chernoff bound\n");
    let mut rows = Vec::new();
    for n in ns(quick, &[1024, 4096], &[1024]) {
        let h = paper_workload(n, 4);
        let mut rng = rng_for(0xE4_0000 + n as u64);
        let out = sbl_mis(&h, &mut rng);
        verify_mis(&h, &out.independent_set).expect("E4: invalid MIS");
        let p = out.params.p;
        let fractions = out.trace.per_round_decided_fraction();
        let slow = fractions.iter().filter(|&&f| f < p / 2.0).count();
        let min = fractions.iter().cloned().fold(f64::INFINITY, f64::min);
        let mean = fractions.iter().sum::<f64>() / fractions.len().max(1) as f64;
        rows.push(vec![
            n.to_string(),
            format!("{:.3}", p),
            out.trace.n_rounds().to_string(),
            format!("{:.3}", mean),
            format!("{:.3}", if min.is_finite() { min } else { 0.0 }),
            format!("{:.3}", p / 2.0),
            slow.to_string(),
            format!(
                "{:.2e}",
                chernoff::event_a_total(p, out.trace.n_rounds() as f64)
            ),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "p",
                "rounds",
                "mean decided frac",
                "min decided frac",
                "p/2",
                "slow rounds",
                "event A bound"
            ],
            &rows
        )
    );
}

/// E5 — the headline comparison: SBL vs KUW vs greedy (and BL where it
/// applies).
fn e5_shootout(quick: bool) {
    println!("\n## E5 — SBL vs KUW vs greedy (parallel time comparison)\n");
    let mut rows = Vec::new();
    for n in ns(quick, &[512, 1024, 2048, 4096], &[512, 2048]) {
        let h = paper_workload(n, 5);
        let mut rng = rng_for(0xE5_0000 + n as u64);

        let t0 = Instant::now();
        let sbl = sbl_mis(&h, &mut rng);
        let sbl_ms = t0.elapsed().as_secs_f64() * 1e3;
        verify_mis(&h, &sbl.independent_set).unwrap();

        let t0 = Instant::now();
        let kuw = kuw_mis(&h, &mut rng);
        let kuw_ms = t0.elapsed().as_secs_f64() * 1e3;
        verify_mis(&h, &kuw.independent_set).unwrap();

        let t0 = Instant::now();
        let g = greedy_mis(&h, None);
        let g_ms = t0.elapsed().as_secs_f64() * 1e3;
        verify_mis(&h, &g.independent_set).unwrap();

        rows.push(vec![
            n.to_string(),
            sbl.trace.n_rounds().to_string(),
            sbl.cost.cost().depth.to_string(),
            format!("{:.1}", sbl_ms),
            kuw.trace.n_rounds().to_string(),
            kuw.cost.cost().depth.to_string(),
            format!("{:.1}", kuw_ms),
            g.cost.cost().depth.to_string(),
            format!("{:.1}", g_ms),
            format!("{:.1}", (n as f64).sqrt()),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "SBL rounds",
                "SBL depth",
                "SBL ms",
                "KUW rounds",
                "KUW depth",
                "KUW ms",
                "greedy depth",
                "greedy ms",
                "sqrt(n)"
            ],
            &rows
        )
    );
}

/// E6 — per-stage degree migration: observed increase vs Kelsen vs Kim–Vu
/// bounds.
fn e6_migration(quick: bool) {
    println!("\n## E6 — Degree migration per BL stage: observed vs bounds (Section 4)\n");
    let mut rows = Vec::new();
    for n in ns(quick, &[512, 2048], &[512]) {
        let h = uniform_workload(n, 4, 6);
        let mut rng = rng_for(0xE6_0000 + n as u64);
        let cfg = BlConfig {
            track_potentials: true,
            ..BlConfig::default()
        };
        let out = bl_mis(&h, &mut rng, &cfg);
        verify_mis(&h, &out.independent_set).unwrap();
        let observed = out.trace.max_delta_increase_by_dimension();
        // Degree profile of the initial hypergraph feeds the analytic bounds.
        let table = DegreeTable::build(&h);
        let dim = h.dimension();
        let deltas: Vec<f64> = (0..=dim).map(|i| table.delta_i(i)).collect();
        for j in 2..dim {
            let obs = observed.get(j).copied().unwrap_or(0.0);
            let kel = kimvu::kelsen_migration_bound(n, j, &deltas);
            let kv = kimvu::kim_vu_migration_bound(n, j, &deltas);
            rows.push(vec![
                n.to_string(),
                j.to_string(),
                format!("{:.2}", obs),
                format!("{:.3e}", kv),
                format!("{:.3e}", kel),
                format!("{:.1}x", if kv > 0.0 { kel / kv } else { 0.0 }),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "j",
                "observed max increase",
                "Kim-Vu bound",
                "Kelsen bound",
                "Kelsen/Kim-Vu"
            ],
            &rows
        )
    );
}

/// E7 — decay of the universal potential v₂(H_s) over BL stages (Lemma 5).
fn e7_potential_decay(quick: bool) {
    println!("\n## E7 — Potential v2(H_s) over BL stages (Lemma 5)\n");
    let n = if quick { 512 } else { 2048 };
    let h = uniform_workload(n, 3, 7);
    let mut rng = rng_for(0xE7_0000 + n as u64);
    let cfg = BlConfig {
        track_potentials: true,
        ..BlConfig::default()
    };
    let out = bl_mis(&h, &mut rng, &cfg);
    verify_mis(&h, &out.independent_set).unwrap();
    let pot = Potential::new(n, 3, Recurrence::PaperDSquared);
    let mut rows = Vec::new();
    let step = (out.trace.n_stages() / 12).max(1);
    for (i, s) in out.trace.stages.iter().enumerate() {
        if i % step != 0 && i + 1 != out.trace.n_stages() {
            continue;
        }
        let v = pot.v_log2(&s.deltas_by_dimension);
        let v2 = v.get(2).copied().unwrap_or(f64::NEG_INFINITY);
        rows.push(vec![
            s.stage.to_string(),
            s.n_alive.to_string(),
            s.m.to_string(),
            format!("{:.2}", s.delta),
            if v2.is_finite() {
                format!("{:.1}", v2)
            } else {
                "-inf".into()
            },
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &["stage", "alive", "edges", "Δ(H_s)", "log2 v2(H_s)"],
            &rows
        )
    );
}

/// E8 — wall-clock scaling with thread count (work–depth execution).
fn e8_threads(quick: bool) {
    println!("\n## E8 — Wall-clock vs thread count (rayon execution)\n");
    let n = if quick { 20_000 } else { 60_000 };
    let h = paper_workload(n, 8);
    println!("workload: {}\n", HypergraphStats::compute(&h).one_line());
    let mut rows = Vec::new();
    let mut baseline = None;
    for threads in [1usize, 2, 4] {
        let h = h.clone();
        let ms = with_threads(threads, move || {
            let mut rng = rng_for(0xE8_0000);
            let t0 = Instant::now();
            let out = sbl_mis(&h, &mut rng);
            verify_mis(&h, &out.independent_set).unwrap();
            t0.elapsed().as_secs_f64() * 1e3
        });
        let base = *baseline.get_or_insert(ms);
        rows.push(vec![
            threads.to_string(),
            format!("{:.1}", ms),
            format!("{:.2}x", base / ms),
        ]);
    }
    println!(
        "{}",
        markdown_table(&["threads", "SBL wall ms", "speedup vs 1 thread"], &rows)
    );
    println!(
        "note: the CI host exposes {} logical CPU(s); with a single core the speedup column is expected to stay ≈1.0x — the work/depth ratio reported in E1/E5 is the model-level parallelism claim.",
        pram::pool::available_parallelism()
    );
}

/// E9 — special classes: dimension ≤ 3 (Beame–Luby RNC case) and linear
/// hypergraphs (Łuczak–Szymańska).
fn e9_special_classes(quick: bool) {
    println!("\n## E9 — Special classes: 3-uniform and linear hypergraphs\n");
    let mut rows = Vec::new();
    for n in ns(quick, &[512, 2048], &[512]) {
        let h3 = uniform_workload(n, 3, 9);
        let mut rng = rng_for(0xE9_0000 + n as u64);
        let bl = bl_mis(&h3, &mut rng, &BlConfig::default());
        verify_mis(&h3, &bl.independent_set).unwrap();

        let hl = linear_workload(n, 9);
        let lin = linear_mis(&hl, &mut rng).expect("generated hypergraph is linear");
        verify_mis(&hl, &lin.independent_set).unwrap();
        let bl_on_linear = bl_mis(&hl, &mut rng, &BlConfig::default());
        verify_mis(&hl, &bl_on_linear.independent_set).unwrap();

        rows.push(vec![
            n.to_string(),
            bl.trace.n_stages().to_string(),
            hl.n_edges().to_string(),
            lin.trace.n_stages().to_string(),
            bl_on_linear.trace.n_stages().to_string(),
        ]);
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "BL stages (3-uniform)",
                "linear m",
                "LS stages (linear)",
                "BL stages (linear)"
            ],
            &rows
        )
    );
}

/// E10 — where each potential-function recurrence admits the Theorem-2
/// analysis.
fn e10_admissibility() {
    println!("\n## E10 — Admissibility of the Theorem-2 analysis (recurrence comparison)\n");
    let mut rows = Vec::new();
    for log2n in [16u32, 24, 32, 48, 64] {
        let n = if log2n >= 63 {
            usize::MAX
        } else {
            1usize << log2n
        };
        for d in [3u32, 4, 5, 6, 8] {
            let paper = Potential::new(n, d, Recurrence::PaperDSquared);
            let kelsen = Potential::new(n, d, Recurrence::KelsenOriginal);
            let bound = paper
                .theorem2_dimension_bound()
                .map(|b| format!("{b:.2}"))
                .unwrap_or_else(|| "n/a".into());
            rows.push(vec![
                format!("2^{log2n}"),
                d.to_string(),
                bound,
                yesno(paper.closed_form_inequality_holds()),
                yesno(paper.analysis_admissible()),
                yesno(kelsen.analysis_admissible()),
            ]);
        }
    }
    println!(
        "{}",
        markdown_table(
            &[
                "n",
                "d",
                "Thm2 d-bound",
                "closed form d(d+1)<=(loglog n)(d^2-8)",
                "paper recurrence admissible",
                "Kelsen recurrence admissible"
            ],
            &rows
        )
    );
}

fn yesno(b: bool) -> String {
    if b {
        "yes".into()
    } else {
        "no".into()
    }
}
