//! Substrate benchmark: the PRAM primitives (scan, compact, reduce) that the
//! algorithms are built on, plus the degree-table construction that dominates
//! each BL stage.
//!
//! Run with `cargo bench -p bench --bench primitives`.

use bench::{rng_for, uniform_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use hypergraph::degree::DegreeTable;
use pram::prelude::*;
use rand::Rng;
use std::time::Duration;

fn primitives(c: &mut Criterion) {
    let mut group = c.benchmark_group("substrate_primitives");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let mut rng = rng_for(21);
    let data: Vec<u64> = (0..200_000).map(|_| rng.gen_range(0..1000)).collect();

    group.bench_function("exclusive_scan_200k", |b| {
        b.iter(|| exclusive_scan(&data, None).1)
    });
    group.bench_function("compact_200k", |b| {
        b.iter(|| par_compact_indices(&data, |&x| x % 3 == 0, None).len())
    });
    group.bench_function("sum_200k", |b| b.iter(|| par_sum_by(&data, |&x| x, None)));

    let h = uniform_workload(2048, 4, 22);
    group.bench_function("degree_table_n2048_d4", |b| {
        b.iter(|| DegreeTable::build(&h).delta())
    });
    group.finish();
}

criterion_group!(benches, primitives);
criterion_main!(benches);
