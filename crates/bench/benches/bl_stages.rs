//! E2 — Beame–Luby on d-uniform hypergraphs (the Theorem 2 regime).
//!
//! Run with `cargo bench -p bench --bench bl_stages`.

use bench::{rng_for, uniform_workload};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::prelude::*;
use std::time::Duration;

fn bl_stages(c: &mut Criterion) {
    let mut group = c.benchmark_group("e2_bl_stages");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for d in [2usize, 3, 4] {
        for n in [256usize, 1024] {
            let h = uniform_workload(n, d, 2);
            let id = BenchmarkId::new(format!("d{d}"), n);
            group.bench_with_input(id, &h, |b, h| {
                b.iter(|| {
                    let mut rng = rng_for((n * d) as u64);
                    bl_mis(h, &mut rng, &BlConfig::default()).trace.n_stages()
                })
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bl_stages);
criterion_main!(benches);
