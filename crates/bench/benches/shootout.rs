//! E5 — SBL vs KUW vs greedy vs permutation on the same paper-regime
//! instance.
//!
//! Run with `cargo bench -p bench --bench shootout`.

use bench::{paper_workload, rng_for};
use criterion::{criterion_group, criterion_main, Criterion};
use mis_core::prelude::*;
use std::time::Duration;

fn shootout(c: &mut Criterion) {
    let n = 2048usize;
    let h = paper_workload(n, 5);
    let mut group = c.benchmark_group("e5_shootout_n2048");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    group.bench_function("sbl", |b| {
        b.iter(|| {
            let mut rng = rng_for(1);
            sbl_mis(&h, &mut rng).independent_set.len()
        })
    });
    group.bench_function("kuw", |b| {
        b.iter(|| {
            let mut rng = rng_for(2);
            kuw_mis(&h, &mut rng).independent_set.len()
        })
    });
    group.bench_function("greedy", |b| {
        b.iter(|| greedy_mis(&h, None).independent_set.len())
    });
    group.bench_function("permutation", |b| {
        b.iter(|| {
            let mut rng = rng_for(3);
            permutation_rounds_mis(&h, &mut rng).independent_set.len()
        })
    });
    group.finish();
}

criterion_group!(benches, shootout);
criterion_main!(benches);
