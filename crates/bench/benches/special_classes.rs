//! E9 — special hypergraph classes: 3-uniform (Beame–Luby's RNC case) and
//! linear hypergraphs (Łuczak–Szymańska), comparing BL with the specialised
//! linear algorithm.
//!
//! Run with `cargo bench -p bench --bench special_classes`.

use bench::{linear_workload, rng_for, uniform_workload};
use criterion::{criterion_group, criterion_main, Criterion};
use mis_core::prelude::*;
use std::time::Duration;

fn special_classes(c: &mut Criterion) {
    let mut group = c.benchmark_group("e9_special_classes");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));

    let h3 = uniform_workload(1024, 3, 9);
    group.bench_function("bl_3uniform_n1024", |b| {
        b.iter(|| {
            let mut rng = rng_for(11);
            bl_mis(&h3, &mut rng, &BlConfig::default())
                .independent_set
                .len()
        })
    });

    let hl = linear_workload(1024, 9);
    group.bench_function("linear_ls_n1024", |b| {
        b.iter(|| {
            let mut rng = rng_for(12);
            linear_mis(&hl, &mut rng).unwrap().independent_set.len()
        })
    });
    group.bench_function("bl_on_linear_n1024", |b| {
        b.iter(|| {
            let mut rng = rng_for(13);
            bl_mis(&hl, &mut rng, &BlConfig::default())
                .independent_set
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, special_classes);
criterion_main!(benches);
