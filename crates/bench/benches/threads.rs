//! E8 — SBL wall-clock time under dedicated rayon pools of 1, 2 and 4
//! threads.
//!
//! Run with `cargo bench -p bench --bench threads`.

use bench::{paper_workload, rng_for};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::prelude::*;
use pram::pool::with_threads;
use std::time::Duration;

fn threads(c: &mut Criterion) {
    let h = paper_workload(8192, 8);
    let mut group = c.benchmark_group("e8_threads");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for t in [1usize, 2, 4] {
        group.bench_with_input(BenchmarkId::from_parameter(t), &t, |b, &t| {
            b.iter(|| {
                let h = h.clone();
                with_threads(t, move || {
                    let mut rng = rng_for(0xE8);
                    sbl_mis(&h, &mut rng).independent_set.len()
                })
            })
        });
    }
    group.finish();
}

criterion_group!(benches, threads);
criterion_main!(benches);
