//! E1 — SBL wall-clock scaling on paper-regime hypergraphs.
//!
//! Run with `cargo bench -p bench --bench sbl_scaling`.

use bench::{paper_workload, rng_for};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mis_core::prelude::*;
use std::time::Duration;

fn sbl_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("e1_sbl_scaling");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    for n in [1024usize, 4096, 16384] {
        let h = paper_workload(n, 1);
        group.bench_with_input(BenchmarkId::from_parameter(n), &h, |b, h| {
            b.iter(|| {
                let mut rng = rng_for(n as u64);
                sbl_mis(h, &mut rng).independent_set.len()
            })
        });
    }
    group.finish();
}

criterion_group!(benches, sbl_scaling);
criterion_main!(benches);
