//! Tenant-aware serving: affinity routing, per-tenant admission control and
//! streaming collection across 4 worker shards.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The scenario: a server keeps two tenants resident — a task-conflict
//! hypergraph ("jobs") and a register-interference hypergraph ("registers")
//! — and answers an interleaved request stream: full solves, plus induced
//! queries ("which of *these* jobs can run together?") answered against the
//! resident graphs without rebuilding them. Each tenant is pinned to a home
//! shard by `RoutePolicy::TenantAffinity`, so its queries rewarm the same
//! shard-local parked engines; a third "free-tier" tenant runs under a
//! token-bucket quota and sees its over-quota requests come back as
//! `AdmissionDenied` *outcomes*, not errors. Mid-stream, a **live mutation**
//! lands on the jobs tenant (a new job with fresh conflicts): requests
//! already submitted stay pinned to epoch 0 and later ones run against
//! epoch 1 — the epoch-versioned registry publishes the new snapshot
//! copy-on-write, with no re-registering and no stalled queries. The first
//! responses are streamed out as they complete; the rest are collected in
//! submission order. Every admitted outcome is reproducible from its
//! `(snapshot, algorithm, seed)` alone — including pinned replays of
//! pre-mutation outcomes after the graph has moved on.
//!
//! The session ends with the **durability lifecycle**: `persist` writes the
//! jobs tenant's `(snapshot₀, edit log)` as a checksummed WAL, `compact`
//! truncates the live history (pins below the new floor answer
//! `EpochEvicted` as outcome data, counted in the pool's eviction ledger),
//! and `restore` rebuilds the full pre-compaction history in a fresh
//! registry — the epoch-0 answer reproduces bit-for-bit across the process
//! boundary. Persist before compact: the WAL is what keeps truncated
//! history recoverable. Finally the **mapped tier**: `persist_snapshot`
//! checkpoints the compacted head as a checksummed CSR snapshot and
//! `open_mapped` serves it zero-copy from a read-only file mapping — the
//! post-mutation answer reproduces from the file without parsing or
//! rebuilding anything. The last word goes over the wire: a `MISP 1`
//! loopback `Server` answers the same solve out of process, and the reply
//! frame is fingerprint-identical to the in-process answer.

use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::{affinity_shard, SolveError};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

const JOBS: TenantId = TenantId(0);
const REGISTERS: TenantId = TenantId(1);
const FREE_TIER: TenantId = TenantId(2);

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);

    // --- Tenants: registered once, resident for the whole session. ---
    let mut registry = ResidentRegistry::new();
    let jobs = registry.register(generate::paper_regime(&mut rng, 2_000, 400, 12));
    let registers = registry.register(generate::d_uniform(&mut rng, 1_200, 2_400, 3));
    let registry = Arc::new(registry);
    println!(
        "tenants: jobs ({} vertices, {} conflicts), registers ({} vertices, {} clashes)",
        registry.latest(jobs).graph().n_vertices(),
        registry.latest(jobs).graph().n_edges(),
        registry.latest(registers).graph().n_vertices(),
        registry.latest(registers).graph().n_edges(),
    );

    // --- The serving layer: 4 shards, affinity routing, a free-tier quota. ---
    let config = ServeConfig {
        shards: 4,
        queue_depth: 16,
        threads_per_shard: Some(1),
        route: RoutePolicy::TenantAffinity,
        admission: AdmissionConfig {
            default_quota: None, // paying tenants are unquoted
            per_tenant: vec![(
                FREE_TIER,
                TenantQuota {
                    burst: 3,
                    refill_every: 8, // one token back per 8 submissions
                    max_in_flight: None,
                },
            )],
        },
    };
    for (name, tenant) in [
        ("jobs", JOBS),
        ("registers", REGISTERS),
        ("free", FREE_TIER),
    ] {
        println!(
            "  {name:>9} tenant → home shard {}",
            affinity_shard(tenant, 4)
        );
    }
    let mut server = ShardedRunner::new(Arc::clone(&registry), &config);

    // --- An interleaved request stream: all three tenants. ---
    let mut labels: Vec<&str> = Vec::new();
    for batch in 0..6u64 {
        // A full SBL solve of the jobs tenant under a fresh seed.
        server.submit(
            SolveRequest::for_graph(jobs)
                .algorithm(Algorithm::Sbl(SblConfig::default()))
                .seed(100 + batch)
                .tenant(JOBS)
                .build(),
        );
        labels.push("jobs/full sbl");

        // "Can this subset of jobs run together?" — induced BL query.
        let subset: Vec<u32> = (0..2_000u32)
            .filter(|v| (v * 7 + batch as u32).is_multiple_of(13))
            .collect();
        server.submit(
            SolveRequest::induced(jobs, subset)
                .algorithm(Algorithm::Bl(BlConfig::default()))
                .seed(200 + batch)
                .tenant(JOBS)
                .build(),
        );
        labels.push("jobs/induced bl");

        // A greedy sweep over a window of the registers tenant.
        let window: Vec<u32> = (batch as u32 * 150..batch as u32 * 150 + 300).collect();
        server.submit(
            SolveRequest::induced(registers, window)
                .algorithm(Algorithm::Greedy)
                .seed(300 + batch)
                .tenant(REGISTERS)
                .build(),
        );
        labels.push("registers/induced greedy");

        // The free tier hammers the server: one query per batch, but only a
        // bucket of 3 (+1 per 8 submissions) is admitted.
        server.submit(
            SolveRequest::induced(registers, (0..64 + batch as u32).collect::<Vec<_>>())
                .algorithm(Algorithm::Kuw)
                .seed(400 + batch)
                .tenant(FREE_TIER)
                .build(),
        );
        labels.push("free/induced kuw");
    }

    // --- A live mutation, mid-stream: a new job arrives, conflicting with
    // two existing ones. The 24 in-flight requests were pinned to epoch 0 at
    // submission, so the bump can never retarget them; requests submitted
    // *after* it run against epoch 1. No re-registering, no rebuild for the
    // pinned queries — the registry publishes the next snapshot
    // copy-on-write. ---
    let new_job = registry.latest(jobs).graph().n_vertices() as u32;
    let bumped = registry
        .apply(
            jobs,
            &[
                GraphEdit::GrowVertices(1),
                GraphEdit::AddEdge(vec![new_job, 17, 42]),
            ],
        )
        .expect("valid live edit");
    println!(
        "\nlive mutation: job {new_job} registered with conflicts {{17, 42}} → jobs tenant now \
         at epoch {} ({} vertices, {} conflicts); 24 in-flight requests stay pinned to epoch 0",
        bumped.0,
        registry.latest(jobs).graph().n_vertices(),
        registry.latest(jobs).graph().n_edges(),
    );
    server.submit(
        SolveRequest::for_graph(jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100) // same seed as ticket 0 — but a different snapshot now
            .tenant(JOBS)
            .build(),
    );
    labels.push("jobs/full sbl @e1");
    server.submit(
        SolveRequest::induced(jobs, vec![new_job, 17, 42, 99])
            .algorithm(Algorithm::Bl(BlConfig::default()))
            .seed(201)
            .tenant(JOBS)
            .build(),
    );
    labels.push("jobs/induced bl @e1");

    // --- Streaming collection: the first 8 outcomes as they complete
    // (out of ticket order; admission denials complete instantly). ---
    println!("\nstreaming the first 8 completions (arrival order):");
    let mut collected: Vec<SolveOutcome> = Vec::new();
    for out in server.collect_streaming(8) {
        let verdict = match &out.error {
            Some(SolveError::AdmissionDenied { reason, .. }) => format!("DENIED ({reason:?})"),
            Some(e) => format!("failed ({e:?})"),
            None => format!("|MIS| = {}", out.independent_set.len()),
        };
        println!(
            "  ticket {:>2} ({:<24}) on shard {}: {}",
            out.ticket, labels[out.ticket as usize], out.shard, verdict
        );
        collected.push(out);
    }

    // --- Ordered collection for the rest: submission order, whatever the
    // shard scheduling did. ---
    let rest = server.collect_outstanding();
    println!(
        "\n{:<26} {:>6} {:>5} {:>8} {:>10} {:>6}",
        "request (ordered tail)", "ticket", "shard", "|MIS|", "work", "rounds"
    );
    for out in &rest {
        println!(
            "{:<26} {:>6} {:>5} {:>8} {:>10} {:>6}",
            labels[out.ticket as usize],
            out.ticket,
            out.shard,
            out.independent_set.len(),
            out.work,
            out.rounds,
        );
    }
    collected.extend(rest);
    collected.sort_by_key(|o| o.ticket);

    // Full solves are verifiable directly against the resident graph;
    // admitted requests never fail, denied ones are data.
    let mut denied = 0;
    for (out, label) in collected.iter().zip(&labels) {
        // Epoch pinning: everything submitted before the live mutation ran
        // against epoch 0, everything after against epoch 1 — regardless of
        // when each shard got to it.
        if out.error.is_none() {
            let expected = if out.ticket < 24 { Epoch(0) } else { Epoch(1) };
            assert_eq!(out.epoch, Some(expected), "{label}: wrong epoch");
        }
        match &out.error {
            None => {
                assert_eq!(
                    out.shard,
                    affinity_shard(out.tenant, 4),
                    "affinity violated"
                );
                if label.contains("full") {
                    let snap = registry
                        .snapshot_at(jobs, out.epoch.expect("resident solves carry their epoch"))
                        .expect("every epoch's snapshot stays addressable");
                    verify_mis(snap.graph(), &out.independent_set)
                        .expect("served answer is not a maximal independent set");
                }
            }
            Some(SolveError::AdmissionDenied { tenant, .. }) => {
                assert_eq!(*tenant, FREE_TIER);
                denied += 1;
            }
            Some(e) => panic!("{label} failed: {e:?}"),
        }
    }

    // --- Accounting: per-tenant admission and per-shard routing. ---
    let stats = server.stats();
    println!("\nper-tenant accounting ({}):", stats.policy.name());
    for t in &stats.per_tenant {
        println!(
            "  tenant {:?}: {} submitted, {} admitted, {} denied, home shards {:?}",
            t.tenant.0,
            t.submitted,
            t.admitted,
            t.denied(),
            t.shards
        );
    }
    assert_eq!(denied as u64, stats.denied);

    // Determinism: replaying a request's (snapshot, algorithm, seed) on a
    // cold sequential runner reproduces the served answer bit-for-bit. The
    // registry has moved on to epoch 1, so the replay *pins* epoch 0 — old
    // epochs stay answerable as long as their snapshots are retained.
    let replay = BatchRunner::new().solve(
        &registry,
        &SolveRequest::for_graph(jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100)
            .pin(EpochPin::At(Epoch(0)))
            .tenant(JOBS)
            .build(),
    );
    assert_eq!(replay.fingerprint(), collected[0].fingerprint());
    println!(
        "\nreplayed ticket 0 sequentially, pinned at epoch 0: identical outcome \
         (determinism contract holds across the mutation)"
    );
    // Same seed, different snapshot: ticket 24 answered epoch 1, so its
    // fingerprint legitimately differs from ticket 0's.
    assert_ne!(collected[24].fingerprint(), collected[0].fingerprint());

    // The rewarm report: with affinity routing each tenant first-touches
    // exactly one shard's workspace and every later request is a hit.
    let pool = server.shutdown();
    println!(
        "shutdown: {} workspaces parked, {} fresh allocations across the session",
        pool.parked(),
        pool.fresh_allocations()
    );
    for (tenant, hits, misses) in pool.tenant_rewarms() {
        println!("  tenant {tenant}: {hits} rewarm hits, {misses} first-touch misses");
        assert_eq!(misses, 1, "affinity keeps every tenant on one warm shard");
    }
    // The per-graph epoch ledger makes the mutation visible on the shards:
    // the jobs home shard saw exactly one epoch change (0 → 1).
    let (epoch_hits, epoch_rewarms) = pool.graph_epoch_totals();
    println!(
        "  resident graphs: {epoch_hits} same-epoch touches, {epoch_rewarms} epoch \
         changes/first touches observed by the shards"
    );

    // --- The durability lifecycle: persist → compact → restore. The edit
    // history *is* a write-ahead log; persisting it before compaction is
    // what keeps truncated history recoverable. ---
    let wal = std::env::temp_dir().join(format!("serving-jobs-{}.wal", std::process::id()));
    registry.persist(jobs, &wal).expect("persist jobs WAL");
    let compacted = registry.compact(jobs);
    println!(
        "\npersisted the jobs tenant to a WAL, then compacted the live registry onto epoch {}: \
         {} snapshot retained, edit log emptied, epoch numbering preserved",
        compacted.0,
        registry.retained_snapshots(jobs),
    );

    // A second serve generation over the same warmed pool: a pin below the
    // compaction floor comes back as an `EpochEvicted` *outcome* — the epoch
    // was real history, which distinguishes it from `UnknownEpoch` ("never
    // reached") — and the pool's eviction ledger counts the touch.
    let mut server = ShardedRunner::with_pool(Arc::clone(&registry), &config, pool);
    server.submit(
        SolveRequest::for_graph(jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100)
            .pin(EpochPin::At(Epoch(0))) // pre-compaction history
            .tenant(JOBS)
            .build(),
    );
    server.submit(
        SolveRequest::for_graph(jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100)
            .pin(EpochPin::Latest) // the compacted head still serves
            .tenant(JOBS)
            .build(),
    );
    let outs = server.collect_outstanding();
    match &outs[0].error {
        Some(SolveError::EpochEvicted { epoch, floor, .. }) => println!(
            "  epoch {} pin → EpochEvicted outcome (retention floor is epoch {})",
            epoch.0, floor.0
        ),
        other => panic!("expected an EpochEvicted outcome, got {other:?}"),
    }
    assert!(outs[1].error.is_none(), "the compacted head still serves");
    assert_eq!(outs[1].epoch, Some(compacted));
    let pool = server.shutdown();
    println!(
        "  pool eviction ledger: {} evicted-pin touch(es) recorded by the shards",
        pool.graph_eviction_total()
    );
    assert_eq!(pool.graph_eviction_total(), 1);

    // Restore rebuilds the full pre-compaction history in a fresh registry —
    // a stand-in for a fresh process after a deploy. Ticket 0's epoch-0
    // answer reproduces bit-for-bit across the boundary: determinism is now
    // cross-process, `(persisted snapshot₀ + log prefix, algorithm, seed)`
    // fixes the outcome.
    let mut restored_registry = ResidentRegistry::new();
    let restored_jobs = restored_registry.restore(&wal).expect("restore jobs WAL");
    std::fs::remove_file(&wal).ok();
    let replay = BatchRunner::new().solve(
        &restored_registry,
        &SolveRequest::for_graph(restored_jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100)
            .pin(EpochPin::At(Epoch(0)))
            .tenant(JOBS)
            .build(),
    );
    assert_eq!(replay.fingerprint(), collected[0].fingerprint());
    println!(
        "restored the WAL into a fresh registry: the epoch-0 answer is identical across the \
         process boundary"
    );

    // --- The mapped tier: `persist_snapshot` checkpoints the compacted head
    // as a checksummed CSR snapshot (the graph alone — no log, no epoch
    // history), and `open_mapped` registers it zero-copy from a read-only
    // file mapping. Ticket 24 answered this very graph (epoch 1, now the
    // compacted head) under seed 100, so the mapped tier must reproduce its
    // answer — the storage tier is invisible to outcomes. ---
    let snapshot = std::env::temp_dir().join(format!("serving-jobs-{}.hgcsr", std::process::id()));
    registry
        .persist_snapshot(jobs, &snapshot)
        .expect("persist jobs CSR snapshot");
    let mut mapped_registry = ResidentRegistry::new();
    let mapped_jobs = mapped_registry
        .open_mapped(&snapshot)
        .expect("open mapped jobs snapshot");
    let mapped_graph = mapped_registry.latest(mapped_jobs);
    assert_eq!(mapped_graph.graph().storage_kind(), "mapped");
    assert!(mapped_graph.graph() == registry.latest(jobs).graph());
    let mapped_replay = BatchRunner::new().solve(
        &mapped_registry,
        &SolveRequest::for_graph(mapped_jobs)
            .algorithm(Algorithm::Sbl(SblConfig::default()))
            .seed(100)
            .tenant(JOBS)
            .build(),
    );
    std::fs::remove_file(&snapshot).ok();
    // The epoch numbering restarts at 0 (the snapshot carries no history),
    // but the answer payload is bit-identical.
    assert_eq!(mapped_replay.independent_set, collected[24].independent_set);
    assert_eq!(
        (mapped_replay.work, mapped_replay.rounds),
        (collected[24].work, collected[24].rounds)
    );
    println!(
        "checkpointed the compacted head as a CSR snapshot and reopened it mmap-backed \
         (storage tier \"mapped\"): the post-mutation answer reproduces zero-copy from the file"
    );

    // --- The wire: the same service, out of process. `Server::bind` puts a
    // `MISP 1` socket front-end over a `ShardedRunner` on the mapped
    // registry; the reply that comes back over TCP is byte-identical (by
    // fingerprint) to the in-process solve above — the transport, like the
    // storage tier, is invisible to outcomes. ---
    use hypergraph_mis::net::{Client, NetConfig, Server};
    let net_config = NetConfig {
        serve: ServeConfig {
            shards: 2,
            queue_depth: 8,
            threads_per_shard: Some(1),
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    };
    let wire_server = Server::bind("127.0.0.1:0", Arc::new(mapped_registry), &net_config)
        .expect("bind loopback MISP server");
    let mut client = Client::connect(wire_server.local_addr()).expect("connect to loopback");
    let correlation = client
        .submit(
            &SolveRequest::for_graph(mapped_jobs)
                .algorithm(Algorithm::Sbl(SblConfig::default()))
                .seed(100)
                .tenant(JOBS)
                .build(),
        )
        .expect("submit over the wire");
    let reply = client.recv().expect("receive the reply frame");
    assert_eq!(reply.correlation, correlation);
    assert_eq!(reply.outcome.fingerprint(), mapped_replay.fingerprint());
    let stats = wire_server.shutdown();
    assert_eq!(stats.delivered, 1);
    println!(
        "served the same solve over a MISP 1 loopback socket: the wire reply is \
         fingerprint-identical to the in-process answer"
    );
}
