//! Multi-tenant serving: two resident graphs, mixed algorithms, ordered
//! collection across 4 worker shards.
//!
//! ```text
//! cargo run --release --example serving
//! ```
//!
//! The scenario: a server keeps two tenants resident — a task-conflict
//! hypergraph ("jobs") and a register-interference hypergraph ("registers")
//! — and answers an interleaved request stream: full solves, plus induced
//! queries ("which of *these* jobs can run together?") answered against the
//! resident graphs without rebuilding them. Responses are collected in
//! submission order, and every outcome is reproducible from its seed alone.

use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);

    // --- Tenants: registered once, resident for the whole session. ---
    let mut registry = ResidentRegistry::new();
    let jobs = registry.register(generate::paper_regime(&mut rng, 2_000, 400, 12));
    let registers = registry.register(generate::d_uniform(&mut rng, 1_200, 2_400, 3));
    let registry = Arc::new(registry);
    println!(
        "tenants: jobs ({} vertices, {} conflicts), registers ({} vertices, {} clashes)",
        registry.graph(jobs).n_vertices(),
        registry.graph(jobs).n_edges(),
        registry.graph(registers).n_vertices(),
        registry.graph(registers).n_edges(),
    );

    // --- The serving layer: 4 shards, bounded queues. ---
    let config = ServeConfig {
        shards: 4,
        queue_depth: 16,
        threads_per_shard: Some(1),
    };
    let mut server = ShardedRunner::new(Arc::clone(&registry), &config);

    // --- An interleaved request stream: both tenants, mixed algorithms. ---
    let mut expectations: Vec<(&str, GraphId)> = Vec::new();
    for batch in 0..6u64 {
        // A full SBL solve of the jobs tenant under a fresh seed.
        server.submit(SolveRequest {
            target: Target::Resident(jobs),
            algorithm: Algorithm::Sbl(SblConfig::default()),
            seed: 100 + batch,
        });
        expectations.push(("jobs/full sbl", jobs));

        // "Can this subset of jobs run together?" — induced BL query.
        let subset: Vec<u32> = (0..2_000u32)
            .filter(|v| (v * 7 + batch as u32).is_multiple_of(13))
            .collect();
        server.submit(SolveRequest {
            target: Target::Induced {
                graph: jobs,
                vertices: Arc::new(subset),
            },
            algorithm: Algorithm::Bl(BlConfig::default()),
            seed: 200 + batch,
        });
        expectations.push(("jobs/induced bl", jobs));

        // A greedy sweep over a window of the registers tenant.
        let window: Vec<u32> = (batch as u32 * 150..batch as u32 * 150 + 300).collect();
        server.submit(SolveRequest {
            target: Target::Induced {
                graph: registers,
                vertices: Arc::new(window),
            },
            algorithm: Algorithm::Greedy,
            seed: 300 + batch,
        });
        expectations.push(("registers/induced greedy", registers));
    }

    // --- Ordered collection: responses in submission order, whatever the
    // shard scheduling did. ---
    let outcomes = server.collect_outstanding();
    println!(
        "\n{:<26} {:>6} {:>5} {:>8} {:>10} {:>6}",
        "request", "ticket", "shard", "|MIS|", "work", "rounds"
    );
    for (out, (label, _)) in outcomes.iter().zip(&expectations) {
        println!(
            "{:<26} {:>6} {:>5} {:>8} {:>10} {:>6}",
            label,
            out.ticket,
            out.shard,
            out.independent_set.len(),
            out.work,
            out.rounds,
        );
    }

    // Full solves are verifiable directly against the resident graph.
    for (out, (label, graph)) in outcomes.iter().zip(&expectations) {
        assert!(out.error.is_none(), "{label} failed");
        if matches!(label, s if s.contains("full")) {
            verify_mis(registry.graph(*graph), &out.independent_set)
                .expect("served answer is not a maximal independent set");
        }
    }

    // Determinism: replaying a request's (graph, algorithm, seed) on a cold
    // sequential runner reproduces the served answer bit-for-bit.
    let replay = BatchRunner::new().solve(
        &registry,
        &SolveRequest {
            target: Target::Resident(jobs),
            algorithm: Algorithm::Sbl(SblConfig::default()),
            seed: 100,
        },
    );
    assert_eq!(replay.fingerprint(), outcomes[0].fingerprint());
    println!("\nreplayed ticket 0 sequentially: identical outcome (determinism contract holds)");

    let pool = server.shutdown();
    println!(
        "shutdown: {} workspaces parked, {} fresh allocations across the session",
        pool.parked(),
        pool.fresh_allocations()
    );
}
