//! Quickstart: build a hypergraph, run the SBL algorithm, verify the result.
//!
//! Run with `cargo run --release --example quickstart`.

use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(2014);

    // 1. Build a hypergraph by hand …
    let mut b = HypergraphBuilder::new(8);
    b.add_edge([0, 1, 2]);
    b.add_edge([2, 3, 4]);
    b.add_edge([4, 5]);
    b.add_edge([5, 6, 7]);
    let small = b.build();
    let out = sbl_mis(&small, &mut rng);
    println!(
        "hand-built hypergraph ({}): MIS = {:?}",
        HypergraphStats::compute(&small).one_line(),
        out.independent_set
    );
    verify_mis(&small, &out.independent_set).expect("SBL must return a maximal independent set");

    // 2. … or generate one in the paper's regime (general hypergraph, m ≤ n^β).
    let h = generate::paper_regime(&mut rng, 2_000, 200, 14);
    println!(
        "\npaper-regime instance: {}",
        HypergraphStats::compute(&h).one_line()
    );

    let out = sbl_mis(&h, &mut rng);
    verify_mis(&h, &out.independent_set).expect("valid MIS");
    println!(
        "SBL: |MIS| = {}, sampling rounds = {}, BL stages = {}, PRAM work = {}, depth = {}",
        out.independent_set.len(),
        out.trace.n_rounds(),
        out.trace.total_bl_stages(),
        out.cost.cost().work,
        out.cost.cost().depth,
    );

    // 3. Compare against the baselines the paper discusses.
    let g = greedy_mis(&h, None);
    let k = kuw_mis(&h, &mut rng);
    println!(
        "greedy: |MIS| = {} (sequential); KUW: |MIS| = {} in {} rounds",
        g.independent_set.len(),
        k.independent_set.len(),
        k.trace.n_rounds()
    );
}
