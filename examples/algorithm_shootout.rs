//! Side-by-side comparison of every MIS algorithm in the workspace on the same
//! instances: SBL, Beame–Luby (when the dimension allows), KUW, sequential
//! greedy, permutation greedy, and the linear-hypergraph specialisation (on
//! linear instances).
//!
//! Run with `cargo run --release --example algorithm_shootout`.

use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::time::Instant;

fn time<T>(f: impl FnOnce() -> T) -> (T, f64) {
    let t0 = Instant::now();
    let out = f();
    (out, t0.elapsed().as_secs_f64() * 1e3)
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(1);

    println!("== 3-uniform hypergraph (BL's home turf) ==");
    let h = generate::d_uniform(&mut rng, 2_000, 4_000, 3);
    shootout(&h, &mut rng, true);

    println!("\n== general hypergraph in the paper regime (edges up to size 16) ==");
    let h = generate::paper_regime(&mut rng, 2_000, 300, 16);
    shootout(&h, &mut rng, h.dimension() <= 6);

    println!("\n== linear hypergraph (Łuczak–Szymańska case) ==");
    let h = generate::linear(&mut rng, 2_000, 1_200, 3);
    shootout(&h, &mut rng, true);
    let mut r2 = rng.clone();
    let (lin, ms) = time(|| linear_mis(&h, &mut r2).expect("input is linear"));
    verify_mis(&h, &lin.independent_set).unwrap();
    println!(
        "{:12} |MIS| = {:5} | rounds = {:4} | {:8.2} ms",
        "linear-LS",
        lin.independent_set.len(),
        lin.trace.n_stages(),
        ms
    );
}

fn shootout(h: &Hypergraph, rng: &mut ChaCha8Rng, run_bl: bool) {
    println!("instance: {}", HypergraphStats::compute(h).one_line());

    let (sbl, ms) = time(|| sbl_mis(h, rng));
    verify_mis(h, &sbl.independent_set).unwrap();
    println!(
        "{:12} |MIS| = {:5} | rounds = {:4} | depth = {:8} | {:8.2} ms",
        "SBL",
        sbl.independent_set.len(),
        sbl.trace.n_rounds(),
        sbl.cost.cost().depth,
        ms
    );

    if run_bl {
        let (bl, ms) = time(|| bl_mis(h, rng, &BlConfig::default()));
        verify_mis(h, &bl.independent_set).unwrap();
        println!(
            "{:12} |MIS| = {:5} | stages = {:4} | depth = {:8} | {:8.2} ms",
            "Beame-Luby",
            bl.independent_set.len(),
            bl.trace.n_stages(),
            bl.cost.cost().depth,
            ms
        );
    }

    let (kuw, ms) = time(|| kuw_mis(h, rng));
    verify_mis(h, &kuw.independent_set).unwrap();
    println!(
        "{:12} |MIS| = {:5} | rounds = {:4} | depth = {:8} | {:8.2} ms",
        "KUW",
        kuw.independent_set.len(),
        kuw.trace.n_rounds(),
        kuw.cost.cost().depth,
        ms
    );

    let (g, ms) = time(|| greedy_mis(h, None));
    verify_mis(h, &g.independent_set).unwrap();
    println!(
        "{:12} |MIS| = {:5} | rounds = {:4} | depth = {:8} | {:8.2} ms",
        "greedy",
        g.independent_set.len(),
        1,
        g.cost.cost().depth,
        ms
    );

    let (p, ms) = time(|| permutation_rounds_mis(h, rng));
    verify_mis(h, &p.independent_set).unwrap();
    println!(
        "{:12} |MIS| = {:5} | rounds = {:4} | depth = {:8} | {:8.2} ms",
        "permutation",
        p.independent_set.len(),
        p.rounds,
        p.cost.cost().depth,
        ms
    );
}
