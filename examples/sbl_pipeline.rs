//! A look inside one SBL run: per-round progress, dimension-check failures,
//! the analytic failure bounds of Section 2.2, and the PRAM cost model.
//!
//! Run with `cargo run --release --example sbl_pipeline`.

use concentration::chernoff;
use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(31337);
    let n = 4_000;
    let h = generate::paper_regime(&mut rng, n, 400, 16);
    println!("instance: {}", HypergraphStats::compute(&h).one_line());

    let cfg = SblConfig::default();
    let out = sbl_mis_with(&h, &mut rng, &cfg);
    verify_mis(&h, &out.independent_set).expect("valid MIS");

    println!(
        "\nparameters: p = {:.4}, dimension cap d = {}, tail threshold 1/p² = {}",
        out.params.p, out.params.dimension_cap, out.params.tail_threshold
    );

    println!("\nround | alive   | sampled | dim(H') | fails | added | rejected | BL stages");
    for r in &out.trace.rounds {
        println!(
            "{:5} | {:7} | {:7} | {:7} | {:5} | {:5} | {:8} | {:9}",
            r.round,
            r.n_alive,
            r.sampled,
            r.sample_dimension,
            r.dimension_failures,
            r.added,
            r.rejected,
            r.bl_stages
        );
    }
    println!(
        "tail: {:?} over {} vertices",
        out.trace.tail, out.trace.tail_vertices
    );

    // The analytic failure estimates the paper's Section 2.2 works with.
    let p = out.params.p;
    let rounds = out.trace.n_rounds() as f64;
    println!("\nanalysis of this run:");
    println!(
        "  event A (slow round) bound      : {:.3e}  (observed slow rounds: {})",
        chernoff::event_a_total(p, rounds),
        out.trace
            .rounds
            .iter()
            .filter(|r| (r.sampled as f64) < p * r.n_alive as f64 / 2.0)
            .count()
    );
    println!(
        "  event B (big sampled edge) bound: {:.3e}  (observed dimension failures: {})",
        chernoff::event_b_total(
            p,
            h.n_edges() as f64,
            out.params.dimension_cap as u32,
            rounds
        ),
        out.trace.total_dimension_failures()
    );

    // PRAM cost summary (Brent: time ≈ work/P + depth).
    let c = out.cost.cost();
    println!(
        "\nPRAM cost model: work = {}, depth = {}, rounds = {}, implied processors = {}",
        c.work,
        c.depth,
        out.cost.rounds(),
        c.processors()
    );
    println!(
        "for comparison, sequential greedy work = {}",
        greedy_mis(&h, None).cost.cost().work
    );
}
