//! Batch job scheduling with group conflicts as hypergraph MIS.
//!
//! Jobs (vertices) compete for shared resources. A *conflict group* is a set
//! of jobs that cannot all run in the same batch — e.g. together they
//! oversubscribe a GPU pool, a license pool, or a data-staging link. Picking a
//! batch = picking an independent set of the conflict hypergraph; a *maximal*
//! independent set is a batch that cannot be grown, which is what a
//! work-conserving scheduler wants.
//!
//! This example builds a synthetic cluster workload, uses SBL to carve out
//! batch after batch, and reports how many batches are needed to drain the
//! queue (a simple hypergraph-coloring-by-repeated-MIS scheduler).
//!
//! Run with `cargo run --release --example job_scheduling`.

use hypergraph_mis::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// A synthetic conflict workload: `n_jobs` jobs, `n_resources` resources, each
/// job uses a few resources; every resource with more simultaneous demand than
/// its capacity contributes conflict hyperedges.
fn build_workload(rng: &mut impl Rng, n_jobs: usize, n_resources: usize) -> Hypergraph {
    let mut users: Vec<Vec<u32>> = vec![Vec::new(); n_resources];
    for job in 0..n_jobs {
        let uses = rng.gen_range(1..=3);
        for _ in 0..uses {
            let r = rng.gen_range(0..n_resources);
            users[r].push(job as u32);
        }
    }
    let mut b = HypergraphBuilder::new(n_jobs);
    for (r, jobs) in users.iter().enumerate() {
        let capacity = 2 + (r % 3); // capacities 2..=4
        if jobs.len() > capacity {
            // Any capacity+1 of these jobs conflict; a few random minimal
            // conflict groups keep the instance sparse but meaningful.
            let mut group = jobs.clone();
            for _ in 0..3 {
                for i in 0..=capacity {
                    let j = rng.gen_range(i..group.len());
                    group.swap(i, j);
                }
                b.add_edge(group[..=capacity].to_vec());
            }
        }
    }
    b.build()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(99);
    let n_jobs = 1_200;
    let h = build_workload(&mut rng, n_jobs, 300);
    println!(
        "workload: {} jobs, {} conflict groups, largest group {}",
        h.n_vertices(),
        h.n_edges(),
        h.dimension()
    );

    // Drain the queue: repeatedly schedule a maximal independent batch among
    // the remaining jobs.
    let mut remaining: Vec<bool> = vec![true; n_jobs];
    let mut n_remaining = n_jobs;
    let mut batch_no = 0usize;
    while n_remaining > 0 {
        // Restrict the conflict hypergraph to the remaining jobs. Jobs already
        // scheduled are excluded by re-building over the remaining id space
        // (ids are stable, which keeps reporting simple).
        let mut b = HypergraphBuilder::new(n_jobs);
        for e in h.edges() {
            if e.iter().all(|&v| remaining[v as usize]) {
                b.add_edge(e.iter().copied());
            }
        }
        let sub = b.build();

        let out = sbl_mis(&sub, &mut rng);
        verify_mis(&sub, &out.independent_set).expect("valid MIS for the batch");
        let batch: Vec<u32> = out
            .independent_set
            .iter()
            .copied()
            .filter(|&v| remaining[v as usize])
            .collect();

        batch_no += 1;
        for &v in &batch {
            remaining[v as usize] = false;
        }
        n_remaining -= batch.len();
        println!(
            "batch {batch_no:2}: scheduled {:4} jobs ({} left)",
            batch.len(),
            n_remaining
        );
        if batch.is_empty() {
            // Guard against an infinite loop if a job conflicts with itself
            // (cannot happen with this generator, but cheap to check).
            break;
        }
    }
    println!("\ndrained {n_jobs} jobs in {batch_no} conflict-free batches");
}
