//! Register allocation / conflict avoidance as hypergraph MIS.
//!
//! A classical use of independent sets: variables (vertices) conflict in
//! groups — e.g. a group of temporaries that are all live at the same program
//! point cannot *all* be kept in registers if the group exceeds the register
//! budget. Modelling each "too many live at once" group as a hyperedge, a
//! maximal independent set is a maximal set of temporaries that can be kept in
//! registers without ever exhausting the register file, and maximality means
//! no further temporary can be promoted.
//!
//! Run with `cargo run --release --example register_allocation`.

use hypergraph_mis::prelude::*;
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Synthesises live ranges for `n_vars` temporaries over a straight-line
/// program of `program_len` points, then emits one hyperedge per program point
/// where more than `registers` temporaries are simultaneously live.
fn build_conflict_hypergraph(
    rng: &mut impl Rng,
    n_vars: usize,
    program_len: usize,
    registers: usize,
) -> Hypergraph {
    // Random live intervals.
    let intervals: Vec<(usize, usize)> = (0..n_vars)
        .map(|_| {
            let start = rng.gen_range(0..program_len);
            let len = rng.gen_range(1..=program_len / 4);
            (start, (start + len).min(program_len))
        })
        .collect();

    let mut b = HypergraphBuilder::new(n_vars);
    for point in 0..program_len {
        let live: Vec<u32> = intervals
            .iter()
            .enumerate()
            .filter(|(_, &(s, e))| s <= point && point < e)
            .map(|(i, _)| i as u32)
            .collect();
        if live.len() > registers {
            // The full live set means "not all of these can stay in
            // registers"; it keeps the hypergraph small and its edges large —
            // exactly the general-hypergraph case SBL is designed for.
            b.add_edge(live);
        }
    }
    b.build()
}

fn main() {
    let mut rng = ChaCha8Rng::seed_from_u64(7);
    let n_vars = 600;
    let registers = 8;
    let h = build_conflict_hypergraph(&mut rng, n_vars, 400, registers);
    println!(
        "conflict hypergraph over {n_vars} temporaries ({} over-pressure points, dimension {})",
        h.n_edges(),
        h.dimension()
    );

    let out = sbl_mis(&h, &mut rng);
    verify_mis(&h, &out.independent_set).expect("valid MIS");
    println!(
        "SBL promoted {} temporaries to registers (maximal: no further temporary fits), \
         using {} sampling rounds and {} BL stages",
        out.independent_set.len(),
        out.trace.n_rounds(),
        out.trace.total_bl_stages()
    );

    // A greedy allocation for comparison (sizes may differ — both are maximal,
    // neither is maximum).
    let greedy = greedy_mis(&h, None);
    println!(
        "sequential greedy promoted {} temporaries",
        greedy.independent_set.len()
    );
}
