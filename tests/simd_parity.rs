//! Scalar-vs-SIMD parity: the vectorized hot loops (ChaCha8 keystream
//! batches in `rand_chacha::simd`, status sweeps in `pram::simd`) must be
//! *observationally invisible* — random seeds and fill lengths produce
//! identical byte streams on every backend, and whole algorithm runs make
//! identical decisions whether the sweeps run scalar or wide.
//!
//! The in-crate tests already pin known-answer vectors and batch-level
//! backend agreement; this suite closes the loop at the facade level, where
//! the real consumers live: the RNG stream as the algorithms consume it
//! (mixed `next_u32`/`next_u64` patterns across refill seams) and the
//! end-to-end independent sets + cost accounting of SBL/BL runs.

use hypergraph_mis::hypergraph::Hypergraph;
use hypergraph_mis::prelude::*;
use proptest::prelude::*;
use rand::{RngCore, SeedableRng};
use rand_chacha::{simd as rng_simd, ChaCha8Rng};

/// 32 seed bytes + the little-endian key words `ChaCha8Rng::from_seed`
/// derives from them, expanded deterministically from a `u64`.
fn seed_and_key(seed: u64) -> ([u8; 32], [u32; 8]) {
    let mut seeder = ChaCha8Rng::seed_from_u64(seed);
    let mut bytes = [0u8; 32];
    for chunk in bytes.chunks_exact_mut(4) {
        chunk.copy_from_slice(&seeder.next_u32().to_le_bytes());
    }
    let key = core::array::from_fn(|i| {
        u32::from_le_bytes([
            bytes[4 * i],
            bytes[4 * i + 1],
            bytes[4 * i + 2],
            bytes[4 * i + 3],
        ])
    });
    (bytes, key)
}

/// The first `words` keystream words for `key`, computed with the scalar
/// reference batch fill only.
fn scalar_reference_stream(key: &[u32; 8], words: usize) -> Vec<u32> {
    let mut stream = Vec::with_capacity(words.next_multiple_of(rng_simd::BATCH_WORDS));
    let mut counter = 0u64;
    while stream.len() < words {
        let mut batch = [0u32; rng_simd::BATCH_WORDS];
        rng_simd::fill_batch_scalar(key, counter, &mut batch);
        stream.extend_from_slice(&batch);
        counter += rng_simd::BATCH_BLOCKS as u64;
    }
    stream
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Random seeds × random consumption patterns: the `ChaCha8Rng` stream
    /// (whatever backend filled its batches) equals the scalar reference
    /// word for word, under arbitrary interleavings of `next_u32` and
    /// `next_u64` that repeatedly cross refill seams.
    #[test]
    fn rng_stream_matches_scalar_reference(
        seed in 0u64..u64::MAX,
        pattern in prop::collection::vec(0u8..3u8, 1..300),
    ) {
        let (seed_bytes, key) = seed_and_key(seed);
        // Upper bound on consumed words: 2 per pattern entry.
        let reference = scalar_reference_stream(&key, 2 * pattern.len());
        let mut rng = ChaCha8Rng::from_seed(seed_bytes);
        let mut at = 0usize;
        for step in pattern {
            if step == 0 {
                prop_assert_eq!(rng.next_u32(), reference[at]);
                at += 1;
            } else {
                let expected =
                    u64::from(reference[at]) | (u64::from(reference[at + 1]) << 32);
                prop_assert_eq!(rng.next_u64(), expected);
                at += 2;
            }
        }
    }

    /// Random seeds × random batch counters: every available keystream
    /// backend fills the identical batch.
    #[test]
    fn rng_backends_fill_identical_batches(
        seed in 0u64..u64::MAX,
        counter in 0u64..u64::MAX,
    ) {
        let (_, key) = seed_and_key(seed);
        let mut expected = [0u32; rng_simd::BATCH_WORDS];
        rng_simd::fill_batch_scalar(&key, counter, &mut expected);
        for backend in rng_simd::available_backends() {
            let mut got = [0u32; rng_simd::BATCH_WORDS];
            rng_simd::fill_batch_using(backend, &key, counter, &mut got);
            prop_assert!(
                got == expected,
                "backend {:?} diverged at counter {:#x}",
                backend,
                counter
            );
        }
    }
}

/// Everything a run observably produces, for cross-path comparison.
type Outcome = (Vec<u32>, u64, u64, u64);

fn run_sbl(h: &Hypergraph, seed: u64) -> Outcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = sbl_mis(h, &mut rng);
    assert!(verify_mis(h, &out.independent_set).is_ok());
    (
        out.independent_set,
        out.cost.cost().work,
        out.cost.cost().depth,
        out.cost.rounds(),
    )
}

fn run_bl(h: &Hypergraph, seed: u64) -> Outcome {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let out = bl_mis(h, &mut rng, &BlConfig::default());
    assert!(verify_mis(h, &out.independent_set).is_ok());
    (
        out.independent_set,
        out.cost.cost().work,
        out.cost.cost().depth,
        out.cost.rounds(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random graphs × random seeds: whole SBL/BL runs make byte-identical
    /// decisions (same set, same work/depth/rounds) with the status sweeps
    /// pinned to the scalar loops as with the auto-detected wide path.
    #[test]
    fn engine_decisions_identical_forced_scalar_vs_auto(
        gseed in 0u64..u64::MAX,
        seed in 0u64..u64::MAX,
        n in 60usize..320,
    ) {
        let mut grng = ChaCha8Rng::seed_from_u64(gseed);
        let m = (n / 6).max(8);
        let h = generate::paper_regime(&mut grng, n, m, 8);

        let auto_sbl = run_sbl(&h, seed);
        let scalar_sbl =
            pram::simd::with_capability(pram::simd::Capability::Scalar, || run_sbl(&h, seed));
        prop_assert_eq!(&auto_sbl, &scalar_sbl);

        let auto_bl = run_bl(&h, seed);
        let scalar_bl =
            pram::simd::with_capability(pram::simd::Capability::Scalar, || run_bl(&h, seed));
        prop_assert_eq!(&auto_bl, &scalar_bl);
    }
}

/// Every *individual* sweep capability (not just scalar vs the widest)
/// yields the same outcomes on a fixed workload.
#[test]
fn all_sweep_capabilities_agree_end_to_end() {
    let mut grng = ChaCha8Rng::seed_from_u64(0xCAFE);
    let h = generate::paper_regime(&mut grng, 500, 80, 10);
    let baseline = run_sbl(&h, 41);
    for cap in pram::simd::available() {
        let got = pram::simd::with_capability(cap, || run_sbl(&h, 41));
        assert_eq!(
            got, baseline,
            "sweep capability {cap:?} changed the outcome"
        );
    }
}
