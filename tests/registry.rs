//! The epoch-versioned resident registry: snapshot-pinned queries and
//! deterministic edit-log replay.
//!
//! The contract under test (the PR-6 determinism contract): outcomes are a
//! pure function of `(snapshot, log-prefix, algorithm, seed)` —
//!
//! * replaying any prefix of a resident's edit log from any earlier snapshot
//!   reproduces the later snapshot's graph exactly;
//! * a query pinned to an epoch returns byte-identical outcomes no matter
//!   how far the log has grown since;
//! * interleaved mutate/query streams agree outcome-for-outcome across
//!   1/2/4/8 shards, all three routing policies and both collection modes
//!   with the sequential [`BatchRunner`] path, when run against identically
//!   constructed registries mutated at identical stream positions.
//!
//! PR 7 extends the contract across process boundaries: a registry persisted
//! as `(snapshot₀, edit log)` via [`ResidentRegistry::persist`] and restored
//! with [`ResidentRegistry::restore`] answers every epoch-pinned and
//! latest-pinned query byte-identical to the original, a torn WAL tail
//! recovers the longest whole-record prefix (never a mis-parse, never a
//! panic), and retention (`RetentionPolicy::keep_last`) bounds the snapshot
//! count while answering below-floor pins with `EpochEvicted` outcome data.
//!
//! Runs in both the default and `--no-default-features` configurations (it
//! only touches the flat engine).

use hypergraph_mis::hypergraph::io::ReadError;
use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::{SolveError, SolveFingerprint, SolveOutcome};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn base_graph() -> Hypergraph {
    generate::d_uniform(&mut rng(31), 150, 240, 3)
}

/// A fresh registry holding the (seeded, hence identical) base graph —
/// every configuration under test rebuilds its own copy so mutations in one
/// run can never leak into another.
fn fresh_registry() -> (Arc<ResidentRegistry>, GraphId) {
    let mut registry = ResidentRegistry::new();
    let id = registry.register(base_graph());
    (Arc::new(registry), id)
}

/// A deterministic edit batch that is valid at *any* epoch: two fresh
/// vertices joined to existing ones, plus the removal of whatever edge
/// currently sits at a position derived from `k`.
fn edit_batch(registry: &ResidentRegistry, id: GraphId, k: usize) -> Vec<GraphEdit> {
    let snap = registry.latest(id);
    let n = snap.graph().n_vertices() as u32;
    let m = snap.graph().n_edges();
    vec![
        GraphEdit::GrowVertices(2),
        GraphEdit::AddEdge(vec![n, n + 1, (k as u32 * 13) % n]),
        GraphEdit::RemoveEdge(snap.graph().edge(((k * 71 + 5) % m) as u32).to_vec()),
    ]
}

/// A deterministic pseudo-random query set over the base id range (valid at
/// every epoch — mutations only grow the id space).
fn query(size: usize, seed: u64) -> Arc<Vec<u32>> {
    let mut r = rng(0xEC0C ^ seed);
    let n = 150usize;
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for k in 0..size.min(n) {
        let j = rand::Rng::gen_range(&mut r, k..n);
        ids.swap(k, j);
    }
    ids.truncate(size.min(n));
    ids.sort_unstable();
    Arc::new(ids)
}

/// The interleaved mutate/query stream: `Query` submits one request,
/// `Mutate` applies the k-th deterministic edit batch.
#[derive(Clone, Copy)]
enum Step {
    Query(u64),
    Mutate(usize),
}

fn stream() -> Vec<Step> {
    let mut steps = Vec::new();
    let mut k = 0usize;
    for i in 0..30u64 {
        steps.push(Step::Query(i));
        if i % 7 == 6 {
            steps.push(Step::Mutate(k));
            k += 1;
        }
    }
    steps
}

fn request_builder(id: GraphId, seed: u64) -> SolveRequestBuilder {
    let algorithm = match seed % 3 {
        0 => Algorithm::Bl(BlConfig::default()),
        1 => Algorithm::Kuw,
        _ => Algorithm::Greedy,
    };
    let builder = if seed % 5 == 4 {
        SolveRequest::for_graph(id)
    } else {
        SolveRequest::induced(id, query(32, seed))
    };
    builder
        .algorithm(algorithm)
        .seed(0x6E0C_0000 + seed)
        .tenant(TenantId(seed % 3))
}

fn request(id: GraphId, seed: u64) -> SolveRequest {
    request_builder(id, seed).build()
}

/// Replaying any prefix of the edit log from any earlier snapshot lands on
/// the identical graph: for all `j <= k`,
/// `apply_edits(snap_j, log[snap_j.log_len .. snap_k.log_len]) == snap_k`.
#[test]
fn replaying_any_log_prefix_reproduces_every_snapshot() {
    let (registry, id) = fresh_registry();
    for k in 0..5 {
        let batch = edit_batch(&registry, id, k);
        registry.apply(id, &batch).expect("valid edit batch");
    }
    let log = registry.edit_log(id);
    let epochs = registry.current_epoch(id).0 + 1;
    assert_eq!(epochs, 6);
    for j in 0..epochs {
        let from = registry.snapshot_at(id, Epoch(j)).expect("retained");
        for k in j..epochs {
            let to = registry.snapshot_at(id, Epoch(k)).expect("retained");
            let replayed = apply_edits(from.graph(), &log[from.log_len()..to.log_len()])
                .expect("log slices replay cleanly");
            assert!(
                replayed == *to.graph(),
                "replaying log[{}..{}] from epoch {j} did not reproduce epoch {k}",
                from.log_len(),
                to.log_len()
            );
        }
    }
}

/// A query pinned to an epoch returns byte-identical outcomes no matter how
/// many mutations have landed since; `Latest` tracks the head.
#[test]
fn pinned_queries_survive_later_mutations() {
    let (registry, id) = fresh_registry();
    let mut runner = BatchRunner::new();
    // seed % 3 == 2: greedy induced — fully deterministic.
    let pinned = |pin| request_builder(id, 2).pin(pin).build();
    let before = runner
        .solve(&registry, &pinned(EpochPin::At(Epoch(0))))
        .fingerprint();
    for k in 0..4 {
        let batch = edit_batch(&registry, id, k);
        registry.apply(id, &batch).expect("valid edit batch");
        let again = runner
            .solve(&registry, &pinned(EpochPin::At(Epoch(0))))
            .fingerprint();
        assert_eq!(
            again,
            before,
            "epoch-0 pin diverged after {} mutation(s)",
            k + 1
        );
        let latest = runner
            .solve(&registry, &pinned(EpochPin::Latest))
            .fingerprint();
        assert_eq!(
            latest.1,
            Some(Epoch(k as u64 + 1)),
            "Latest tracks the head"
        );
    }
}

/// The headline pin: one interleaved mutate/query stream, run against
/// identically constructed registries with mutations at identical stream
/// positions, agrees outcome-for-outcome across 1/2/4/8 shards × all three
/// routing policies × both collection modes with the sequential
/// `BatchRunner` path.
#[test]
fn interleaved_mutate_query_streams_are_configuration_invariant() {
    let steps = stream();

    // Sequential reference: Latest resolves at execution time, which on
    // this path is submission time — the same logical order every sharded
    // configuration resolves in.
    let reference: Vec<SolveFingerprint> = {
        let (registry, id) = fresh_registry();
        let mut runner = BatchRunner::new();
        let mut fps = Vec::new();
        for step in &steps {
            match *step {
                Step::Query(seed) => {
                    fps.push(runner.solve(&registry, &request(id, seed)).fingerprint())
                }
                Step::Mutate(k) => {
                    let batch = edit_batch(&registry, id, k);
                    registry.apply(id, &batch).expect("valid edit batch");
                }
            }
        }
        fps
    };
    assert!(
        reference.iter().any(|fp| fp.1 != Some(Epoch(0))),
        "the stream must actually cross epochs"
    );

    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::TenantAffinity,
        RoutePolicy::LeastQueued,
    ] {
        for shards in [1usize, 2, 4, 8] {
            for streaming in [false, true] {
                let (registry, id) = fresh_registry();
                let config = ServeConfig {
                    shards,
                    queue_depth: 8,
                    threads_per_shard: Some(1),
                    route: policy,
                    ..ServeConfig::default()
                };
                let mut runner = ShardedRunner::new(Arc::clone(&registry), &config);
                let mut submitted = 0usize;
                for step in &steps {
                    match *step {
                        Step::Query(seed) => {
                            runner.submit(request(id, seed));
                            submitted += 1;
                        }
                        Step::Mutate(k) => {
                            let batch = edit_batch(&registry, id, k);
                            registry.apply(id, &batch).expect("valid edit batch");
                        }
                    }
                }
                let mut outs: Vec<SolveOutcome> = if streaming {
                    runner.collect_streaming(submitted).collect()
                } else {
                    runner.collect_ordered(submitted)
                };
                outs.sort_by_key(|o| o.ticket);
                assert_eq!(outs.len(), reference.len());
                for (i, out) in outs.iter().enumerate() {
                    assert_eq!(
                        out.fingerprint(),
                        reference[i],
                        "{policy:?} shards={shards} streaming={streaming}, request {i}: \
                         outcome diverged from the sequential mutate/query reference"
                    );
                }
            }
        }
    }
}

/// An empty batch is the shared-structure fast path: no epoch bump, no new
/// snapshot, and the returned epoch is the current one.
#[test]
fn empty_batch_does_not_bump_the_epoch() {
    let (registry, id) = fresh_registry();
    assert_eq!(registry.apply(id, &[]).unwrap(), Epoch(0));
    assert_eq!(registry.current_epoch(id), Epoch(0));
    let batch = edit_batch(&registry, id, 0);
    registry.apply(id, &batch).unwrap();
    assert_eq!(registry.apply(id, &[]).unwrap(), Epoch(1));
    assert_eq!(registry.current_epoch(id), Epoch(1));
    assert_eq!(registry.edit_log(id).len(), batch.len());
}

/// A failing batch is atomic: the first offending edit rejects the whole
/// script, leaving epoch, log and snapshot untouched — even when earlier
/// edits in the same batch were individually valid.
#[test]
fn failing_batches_are_atomic() {
    let (registry, id) = fresh_registry();
    let before = registry.latest(id);
    let existing = before.graph().edge(0).to_vec();
    let err = registry
        .apply(
            id,
            &[
                GraphEdit::GrowVertices(5),           // valid
                GraphEdit::AddEdge(existing.clone()), // duplicate: rejects all
            ],
        )
        .unwrap_err();
    assert_eq!(err, EditError::DuplicateEdge(existing));
    assert_eq!(registry.current_epoch(id), Epoch(0));
    assert!(registry.edit_log(id).is_empty());
    let after = registry.latest(id);
    assert!(
        after.graph() == before.graph(),
        "a rejected batch must not modify the graph"
    );
}

/// Pinning an epoch the graph has never reached is an outcome, not a panic —
/// and mutation makes previously unknown epochs addressable.
#[test]
fn unknown_epoch_pins_come_back_as_outcomes() {
    let (registry, id) = fresh_registry();
    let mut runner = BatchRunner::new();
    let at_one = request_builder(id, 2).pin(EpochPin::At(Epoch(1))).build();
    let out = runner.solve(&registry, &at_one);
    assert_eq!(
        out.error,
        Some(SolveError::UnknownEpoch {
            graph: id,
            epoch: Epoch(1)
        })
    );
    assert_eq!(out.epoch, None);
    assert!(out.independent_set.is_empty());

    let batch = edit_batch(&registry, id, 0);
    registry.apply(id, &batch).expect("valid edit batch");
    let out = runner.solve(&registry, &at_one);
    assert!(out.error.is_none(), "epoch 1 exists after one mutation");
    assert_eq!(out.epoch, Some(Epoch(1)));
}

/// A unique scratch path for WAL round-trip tests (tests run concurrently,
/// so names carry the pid and a per-process counter).
fn temp_wal(tag: &str) -> std::path::PathBuf {
    use std::sync::atomic::{AtomicU64, Ordering};
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let k = NEXT.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!(
        "hgmis-registry-{tag}-{}-{k}.wal",
        std::process::id()
    ))
}

/// The headline durability pin: a registry persisted mid-mutation-stream and
/// restored into a fresh registry answers every epoch-pinned and
/// latest-pinned query byte-identical to the original — same epochs, same
/// `log_len` watermarks, same solve fingerprints.
#[test]
fn persisted_and_restored_registries_answer_identically() {
    let (registry, id) = fresh_registry();
    for k in 0..5 {
        let batch = edit_batch(&registry, id, k);
        registry.apply(id, &batch).expect("valid edit batch");
    }
    let path = temp_wal("roundtrip");
    registry.persist(id, &path).expect("persist");
    let mut restored = ResidentRegistry::new();
    let rid = restored.restore(&path).expect("restore");
    std::fs::remove_file(&path).ok();

    assert_eq!(restored.base_epoch(rid), registry.base_epoch(id));
    assert_eq!(restored.current_epoch(rid), registry.current_epoch(id));
    assert_eq!(restored.edit_log(rid)[..], registry.edit_log(id)[..]);
    let epochs = registry.current_epoch(id).0 + 1;
    for e in 0..epochs {
        let a = registry.snapshot_at(id, Epoch(e)).expect("retained");
        let b = restored
            .snapshot_at(rid, Epoch(e))
            .expect("restore rebuilds every epoch");
        assert_eq!(a.log_len(), b.log_len(), "epoch {e} log watermark");
        assert!(a.graph() == b.graph(), "epoch {e} graph diverged");
    }

    let mut ra = BatchRunner::new();
    let mut rb = BatchRunner::new();
    for seed in 0..9u64 {
        for e in 0..epochs {
            let pa = request_builder(id, seed)
                .pin(EpochPin::At(Epoch(e)))
                .build();
            let pb = request_builder(rid, seed)
                .pin(EpochPin::At(Epoch(e)))
                .build();
            assert_eq!(
                ra.solve(&registry, &pa).fingerprint(),
                rb.solve(&restored, &pb).fingerprint(),
                "epoch-{e}-pinned query {seed} diverged across the persist/restore boundary"
            );
        }
        assert_eq!(
            ra.solve(&registry, &request(id, seed)).fingerprint(),
            rb.solve(&restored, &request(rid, seed)).fingerprint(),
            "latest-pinned query {seed} diverged across the persist/restore boundary"
        );
    }
}

/// Truncating the WAL at *every* byte boundary either restores the longest
/// whole-record prefix of the original registry or reports
/// `ReadError::Parse` — never a panic, never a registry built from a
/// half-written record.
#[test]
fn torn_wal_tails_restore_a_whole_record_prefix() {
    let mut registry = ResidentRegistry::new();
    let id = registry.register(generate::d_uniform(&mut rng(77), 30, 40, 3));
    for k in 0..3 {
        let batch = edit_batch(&registry, id, k);
        registry.apply(id, &batch).expect("valid edit batch");
    }
    let path = temp_wal("torn");
    registry.persist(id, &path).expect("persist");
    let bytes = std::fs::read(&path).expect("read back");
    std::fs::remove_file(&path).ok();

    let log = registry.edit_log(id);
    let cut_path = temp_wal("torn-cut");
    let mut recovered = std::collections::BTreeSet::new();
    for cut in 0..=bytes.len() {
        std::fs::write(&cut_path, &bytes[..cut]).expect("write truncation");
        let mut fresh = ResidentRegistry::new();
        match fresh.restore(&cut_path) {
            Ok(rid) => {
                let k = fresh.current_epoch(rid).0;
                recovered.insert(k);
                let watermark = registry
                    .snapshot_at(id, Epoch(k))
                    .expect("recovered epoch exists in the original")
                    .log_len();
                assert_eq!(
                    fresh.edit_log(rid)[..],
                    log[..watermark],
                    "cut at byte {cut}: recovered log is not a whole-record prefix"
                );
                assert!(
                    fresh.latest(rid).graph()
                        == registry.snapshot_at(id, Epoch(k)).unwrap().graph(),
                    "cut at byte {cut}: recovered graph diverged from epoch {k}"
                );
            }
            Err(ReadError::Parse(_)) => {} // corrupt-not-torn: error as data
            Err(ReadError::Io(e)) => panic!("cut at byte {cut}: unexpected io error: {e}"),
        }
    }
    std::fs::remove_file(&cut_path).ok();
    assert_eq!(
        recovered.into_iter().collect::<Vec<_>>(),
        vec![0, 1, 2, 3],
        "every whole-record prefix length must be recoverable"
    );
}

/// `keep_last = K` bounds the snapshot count at `K + 2` (base + latest are
/// always retained) without perturbing latest-pinned outcomes, and answers
/// below-floor pins with `EpochEvicted` — as outcome data, through both the
/// sequential and the sharded path, with the eviction visible in the pool's
/// ledger.
#[test]
fn retention_bounds_snapshots_and_reports_evictions_as_outcomes() {
    const K: u64 = 2;
    let mut keep = ResidentRegistry::with_retention(RetentionPolicy::keep_last(K));
    let id = keep.register(base_graph());
    let keep = Arc::new(keep);
    let (all, all_id) = fresh_registry(); // keep-all reference
    for k in 0..6 {
        let batch = edit_batch(&all, all_id, k);
        keep.apply(id, &batch).expect("valid edit batch");
        all.apply(all_id, &batch).expect("valid edit batch");
        assert!(
            keep.retained_snapshots(id) <= (K + 2) as usize,
            "snapshot count must stay bounded under sustained mutation"
        );
    }
    assert_eq!(keep.current_epoch(id), Epoch(6));
    let floor = keep.retention_floor(id);
    assert_eq!(floor, Epoch(5));
    assert_eq!(keep.evictions(id), 4); // epochs 1..=4 dropped

    // Retention never perturbs what Latest answers.
    let mut ra = BatchRunner::new();
    let mut rb = BatchRunner::new();
    for seed in 0..6u64 {
        assert_eq!(
            ra.solve(&keep, &request(id, seed)).fingerprint(),
            rb.solve(&all, &request(all_id, seed)).fingerprint(),
            "latest-pinned query {seed} diverged between keep_last and keep-all"
        );
    }

    // Three-way pin semantics, all as outcome data.
    let at = |e| request_builder(id, 2).pin(EpochPin::At(Epoch(e))).build();
    assert!(
        ra.solve(&keep, &at(0)).error.is_none(),
        "base stays resident"
    );
    assert!(
        ra.solve(&keep, &at(5)).error.is_none(),
        "floor stays resident"
    );
    let out = ra.solve(&keep, &at(3));
    assert_eq!(
        out.error,
        Some(SolveError::EpochEvicted {
            graph: id,
            epoch: Epoch(3),
            floor,
        })
    );
    assert_eq!(out.epoch, None);
    assert!(out.independent_set.is_empty());
    assert_eq!(
        ra.solve(&keep, &at(9)).error,
        Some(SolveError::UnknownEpoch {
            graph: id,
            epoch: Epoch(9),
        })
    );

    // The sharded path answers identically and counts the evicted pins.
    let config = ServeConfig {
        shards: 2,
        queue_depth: 8,
        threads_per_shard: Some(1),
        ..ServeConfig::default()
    };
    let mut runner = ShardedRunner::new(Arc::clone(&keep), &config);
    for _ in 0..3 {
        runner.submit(at(3));
    }
    for out in runner.collect_ordered(3) {
        assert_eq!(
            out.error,
            Some(SolveError::EpochEvicted {
                graph: id,
                epoch: Epoch(3),
                floor,
            })
        );
    }
    let pool = runner.shutdown();
    assert_eq!(pool.graph_eviction_total(), 3);
}

/// `edit_log` hands out the live `Arc` — O(1), no per-call clone — and a
/// held log is an immutable snapshot: later mutation copies-on-write instead
/// of mutating what the caller holds.
#[test]
fn edit_log_is_shared_not_recloned() {
    let (registry, id) = fresh_registry();
    let batch = edit_batch(&registry, id, 0);
    registry.apply(id, &batch).expect("valid edit batch");
    let a1 = registry.edit_log(id);
    let a2 = registry.edit_log(id);
    assert!(
        Arc::ptr_eq(&a1, &a2),
        "edit_log must return the same Arc, not a fresh clone"
    );
    let next = edit_batch(&registry, id, 1);
    registry.apply(id, &next).expect("valid edit batch");
    assert_eq!(a1.len(), batch.len(), "held logs are immutable snapshots");
    assert_eq!(registry.edit_log(id).len(), batch.len() + next.len());
}

/// Specification of one random-but-valid edit: materialized against the
/// current graph state, so scripts never reference stale structure.
fn materialize_edit(graph: &Hypergraph, spec: (u8, u64)) -> GraphEdit {
    let (kind, r) = spec;
    let n = graph.n_vertices() as u32;
    let m = graph.n_edges();
    match kind % 3 {
        // Always-fresh edge: one new vertex guarantees no duplicate.
        0 => GraphEdit::AddEdge(vec![(r % n as u64) as u32, n]),
        1 if m > 0 => GraphEdit::RemoveEdge(graph.edge((r % m as u64) as u32).to_vec()),
        _ => GraphEdit::GrowVertices((r % 3) as u32 + 1),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Random edit scripts, random batch boundaries: every snapshot is
    /// reproducible from every earlier one by replaying the log slice, and
    /// a pinned solve of each epoch equals (payload-for-payload) a solve of
    /// the replayed graph registered in a fresh registry.
    #[test]
    fn prop_random_edit_scripts_replay_deterministically(
        specs in prop::collection::vec((any::<u8>(), any::<u64>()), 1..16),
        boundaries in prop::collection::btree_set(0usize..16, 0..4),
        query_seed in 0u64..1000,
    ) {
        let (registry, id) = fresh_registry();
        // Apply the script in batches, tracking expectations separately.
        let mut batch: Vec<GraphEdit> = Vec::new();
        for (i, &spec) in specs.iter().enumerate() {
            // Materialize against base ⊕ log ⊕ pending batch — exactly what
            // the registry will see when the batch lands.
            let staged = {
                let snap = registry.latest(id);
                apply_edits(snap.graph(), &batch).expect("staged prefix is valid")
            };
            // A grow edit must precede any AddEdge that uses the new vertex
            // id; materialize_edit's AddEdge case references vertex `n`, so
            // grow first.
            let edit = materialize_edit(&staged, spec);
            if matches!(edit, GraphEdit::AddEdge(_)) {
                batch.push(GraphEdit::GrowVertices(1));
            }
            batch.push(edit);
            if boundaries.contains(&i) {
                registry.apply(id, &batch).expect("materialized batch is valid");
                batch.clear();
            }
        }
        if !batch.is_empty() {
            registry.apply(id, &batch).expect("materialized batch is valid");
        }

        let log = registry.edit_log(id);
        let epochs = registry.current_epoch(id).0 + 1;
        let mut runner = BatchRunner::new();
        for k in 0..epochs {
            let snap = registry.snapshot_at(id, Epoch(k)).expect("retained");
            // (1) Structural replay: epoch k from epoch 0.
            let replayed =
                apply_edits(&base_graph(), &log[..snap.log_len()]).expect("log prefix replays");
            prop_assert!(replayed == *snap.graph(), "epoch {} structural replay", k);
            // (2) Outcome replay: a pinned solve against the registry equals
            // the same solve against the replayed graph in a fresh registry
            // (payload-for-payload; the fresh registry is at epoch 0, so the
            // epoch field is compared separately).
            let pinned = request_builder(id, query_seed % 30)
                .pin(EpochPin::At(Epoch(k)))
                .build();
            let out = runner.solve(&registry, &pinned);
            prop_assert_eq!(out.epoch, Some(Epoch(k)));

            let mut fresh = ResidentRegistry::new();
            let fresh_id = fresh.register(replayed);
            let fresh_req = request_builder(fresh_id, query_seed % 30)
                .pin(EpochPin::Latest)
                .build();
            let fresh_out = BatchRunner::new().solve(&fresh, &fresh_req);
            let a = out.fingerprint();
            let b = fresh_out.fingerprint();
            prop_assert_eq!(a.0, b.0);
            prop_assert_eq!(&a.2, &b.2);
            prop_assert_eq!((a.3, a.4, a.5), (b.3, b.4, b.5));
            prop_assert_eq!(&a.6, &b.6);
            prop_assert_eq!(&a.7, &b.7);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Random edit scripts with random batch boundaries survive a full
    /// persist → restore round trip: identical epochs, identical log,
    /// identical per-epoch graphs and identical solve fingerprints.
    #[test]
    fn prop_wal_round_trip_is_byte_identical(
        specs in prop::collection::vec((any::<u8>(), any::<u64>()), 1..12),
        boundaries in prop::collection::btree_set(0usize..12, 0..4),
        query_seed in 0u64..1000,
    ) {
        let (registry, id) = fresh_registry();
        let mut batch: Vec<GraphEdit> = Vec::new();
        for (i, &spec) in specs.iter().enumerate() {
            let staged = {
                let snap = registry.latest(id);
                apply_edits(snap.graph(), &batch).expect("staged prefix is valid")
            };
            let edit = materialize_edit(&staged, spec);
            if matches!(edit, GraphEdit::AddEdge(_)) {
                batch.push(GraphEdit::GrowVertices(1));
            }
            batch.push(edit);
            if boundaries.contains(&i) {
                registry.apply(id, &batch).expect("materialized batch is valid");
                batch.clear();
            }
        }
        if !batch.is_empty() {
            registry.apply(id, &batch).expect("materialized batch is valid");
        }

        let path = temp_wal("prop");
        registry.persist(id, &path).expect("persist");
        let mut restored = ResidentRegistry::new();
        let rid = restored.restore(&path).expect("restore");
        std::fs::remove_file(&path).ok();

        prop_assert_eq!(restored.current_epoch(rid), registry.current_epoch(id));
        prop_assert_eq!(&restored.edit_log(rid)[..], &registry.edit_log(id)[..]);
        let epochs = registry.current_epoch(id).0 + 1;
        for e in 0..epochs {
            let a = registry.snapshot_at(id, Epoch(e)).expect("retained");
            let b = restored.snapshot_at(rid, Epoch(e)).expect("restored");
            prop_assert!(a.log_len() == b.log_len(), "epoch {} watermark", e);
            prop_assert!(a.graph() == b.graph(), "epoch {} graph", e);
        }
        let qa = request(id, query_seed % 30);
        let qb = request(rid, query_seed % 30);
        prop_assert_eq!(
            BatchRunner::new().solve(&registry, &qa).fingerprint(),
            BatchRunner::new().solve(&restored, &qb).fingerprint()
        );
    }
}
