//! Pinned-seed determinism of the zero-reallocation batch pipeline.
//!
//! The contract under test: workspace reuse is *invisible*. For the same
//! `(hypergraph, seed, config)`, a [`BatchRunner`] solve — whether the
//! runner is brand new or warmed by an arbitrary stream of earlier solves,
//! and at any rayon thread count — returns outcomes bit-identical to the
//! cold entry points and to the preserved pre-workspace rebuild pipeline.

use hypergraph_mis::batch::BatchRunner;
use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn stream(n: usize, count: usize) -> Vec<Hypergraph> {
    (0..count)
        .map(|i| {
            let mut r = rng(0xBA7C + i as u64);
            match i % 3 {
                0 => generate::paper_regime(&mut r, n, n / 8, 10),
                1 => generate::mixed_dimension(&mut r, n, n, &[2, 3, 4, 5]),
                _ => generate::d_uniform(&mut r, n, 2 * n, 3),
            }
        })
        .collect()
}

type SblFingerprint = (Vec<u32>, Vec<u32>, Vec<u32>, String, u64, u64, u64);

fn sbl_fingerprint(out: &SblOutcome) -> SblFingerprint {
    (
        out.independent_set.clone(),
        out.coloring.blues(),
        out.coloring.reds(),
        format!("{:?}", out.trace),
        out.cost.cost().work,
        out.cost.cost().depth,
        out.cost.rounds(),
    )
}

/// Same seeds ⇒ identical sets, colorings, traces and cost totals, whether
/// each instance is solved cold, amortized on a shared runner, or through
/// the preserved rebuild pipeline.
#[test]
fn amortized_cold_and_rebuild_agree_instance_for_instance() {
    let hs = stream(160, 9);
    let cfg = SblConfig::default();
    let mut runner = BatchRunner::new();
    for (i, h) in hs.iter().enumerate() {
        let seed = 0x5EED + i as u64;
        let amortized = runner.sbl(h, &mut rng(seed), &cfg);
        let cold = sbl_mis_with(h, &mut rng(seed), &cfg);
        let rebuild = mis_core::sbl::sbl_mis_rebuild(h, &mut rng(seed), &cfg);
        assert_eq!(
            sbl_fingerprint(&amortized),
            sbl_fingerprint(&cold),
            "instance {i}: amortized vs cold"
        );
        assert_eq!(
            sbl_fingerprint(&amortized),
            sbl_fingerprint(&rebuild),
            "instance {i}: amortized vs rebuild baseline"
        );
        assert_eq!(verify_mis(h, &amortized.independent_set), Ok(()));
    }
}

/// A warmed runner keeps agreeing at every thread count (workspace reuse
/// must not introduce any scheduling-dependent state).
#[test]
fn batch_outcomes_are_thread_count_invariant() {
    let hs = stream(120, 4);
    let cfg = SblConfig::default();
    let baseline: Vec<SblFingerprint> = {
        let mut runner = BatchRunner::new();
        hs.iter()
            .enumerate()
            .map(|(i, h)| sbl_fingerprint(&runner.sbl(h, &mut rng(i as u64), &cfg)))
            .collect()
    };
    for threads in [1usize, 2, 4] {
        let hs = hs.clone();
        let cfg = cfg.clone();
        let got: Vec<SblFingerprint> = with_threads(threads, move || {
            let mut runner = BatchRunner::new();
            hs.iter()
                .enumerate()
                .map(|(i, h)| sbl_fingerprint(&runner.sbl(h, &mut rng(i as u64), &cfg)))
                .collect()
        });
        assert_eq!(got, baseline, "threads={threads}");
    }
}

/// Every algorithm the runner exposes matches its cold counterpart on a
/// warmed workspace — including interleaved usage, so pooled buffers are
/// provably clean across algorithms.
#[test]
fn all_runner_algorithms_match_cold_entry_points() {
    let hs = stream(100, 6);
    let mut runner = BatchRunner::new();
    for (i, h) in hs.iter().enumerate() {
        let seed = 0xA150 + i as u64;
        let a = runner.bl(h, &mut rng(seed), &BlConfig::default());
        let c = bl_mis(h, &mut rng(seed), &BlConfig::default());
        assert_eq!(a.independent_set, c.independent_set, "bl {i}");
        assert_eq!(a.trace, c.trace, "bl trace {i}");

        let a = runner.kuw(h, &mut rng(seed ^ 1));
        let c = kuw_mis(h, &mut rng(seed ^ 1));
        assert_eq!(a.independent_set, c.independent_set, "kuw {i}");

        let a = runner.greedy(h, None);
        let c = greedy_mis(h, None);
        assert_eq!(a.independent_set, c.independent_set, "greedy {i}");
        assert_eq!(a.cost.cost().work, c.cost.cost().work, "greedy work {i}");

        let a = runner.permutation(h, &mut rng(seed ^ 2));
        let c = permutation_mis(h, &mut rng(seed ^ 2));
        assert_eq!(a.independent_set, c.independent_set, "permutation {i}");
        assert_eq!(a.permutation, c.permutation, "permutation order {i}");

        if check_linear(h).is_ok() {
            let a = runner.linear(h, &mut rng(seed ^ 3)).unwrap();
            let c = linear_mis(h, &mut rng(seed ^ 3)).unwrap();
            assert_eq!(a.independent_set, c.independent_set, "linear {i}");
        }
    }
}

/// The zero-reallocation property itself: after one warm-up solve, a stream
/// of same-shaped solves performs no fresh pool allocations at all.
#[test]
fn warm_runner_stops_allocating() {
    let h = {
        let mut r = rng(77);
        generate::paper_regime(&mut r, 300, 60, 10)
    };
    let cfg = SblConfig::default();
    let mut runner = BatchRunner::new();
    let _ = runner.sbl(&h, &mut rng(0), &cfg);
    let _ = runner.sbl(&h, &mut rng(1), &cfg);
    let warm = runner.workspace().fresh_allocations();
    assert!(warm > 0, "warm-up must have populated the pools");
    for seed in 2..12u64 {
        let out = runner.sbl(&h, &mut rng(seed), &cfg);
        assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
    }
    assert_eq!(
        runner.workspace().fresh_allocations(),
        warm,
        "a warmed workspace must serve same-shaped solves allocation-free"
    );
}

/// `sbl_mis_rebuild` is the frozen cold baseline (see its `# Stability`
/// rustdoc): it must keep a **workspace-free** signature so no caller can
/// ever thread buffer reuse into it. The function-pointer binding stops
/// compiling if a `Workspace` parameter sneaks in.
#[test]
fn rebuild_baseline_takes_no_workspace() {
    let pinned: fn(&Hypergraph, &mut ChaCha8Rng, &SblConfig) -> SblOutcome =
        mis_core::sbl::sbl_mis_rebuild::<ChaCha8Rng>;
    let h = {
        let mut r = rng(3);
        generate::paper_regime(&mut r, 80, 20, 8)
    };
    let out = pinned(&h, &mut rng(5), &SblConfig::default());
    assert_eq!(
        sbl_fingerprint(&out),
        sbl_fingerprint(&sbl_mis_with(&h, &mut rng(5), &SblConfig::default()))
    );
}

/// Streams of *different-shaped* instances still deterministically match
/// cold solves (pools grow to the largest shape and stay correct).
#[test]
fn mixed_size_streams_stay_correct() {
    let sizes = [40usize, 300, 12, 150, 80];
    let cfg = SblConfig::default();
    let mut runner = BatchRunner::new();
    for (i, &n) in sizes.iter().enumerate() {
        let mut r = rng(0x517E + i as u64);
        let h = generate::paper_regime(&mut r, n, (n / 4).max(2), 8);
        let seed = 0xD00D + i as u64;
        let a = runner.sbl(&h, &mut rng(seed), &cfg);
        let c = sbl_mis_with(&h, &mut rng(seed), &cfg);
        assert_eq!(sbl_fingerprint(&a), sbl_fingerprint(&c), "size {n}");
    }
}
