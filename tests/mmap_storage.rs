//! Mapped-tier storage parity: solves served from an `mmap`-backed CSR
//! snapshot ([`hypergraph::io::open_mapped`] via
//! [`ResidentRegistry::open_mapped`]) are fingerprint-identical to the same
//! solves served from heap-owned arenas, across all six algorithms and every
//! request shape — the storage tier is invisible to outcomes by
//! construction (the two tiers expose the very same CSR words).
//!
//! Also pins the out-of-core machinery end to end: LRU spill under a byte
//! cap, transparent page-in on the request path, and the per-shard
//! spill/page-in ledger mirroring through both the sequential
//! [`BatchRunner`] and the sharded runner.
//!
//! Runs in both the default and `--no-default-features` configurations (it
//! only touches the flat engine).

use hypergraph_mis::hypergraph::io::write_csr;
use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::SolveFingerprint;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::path::PathBuf;
use std::sync::Arc;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn temp_csr(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("hgmis-mmap-{tag}-{}.hgcsr", std::process::id()))
}

/// The two tenant graphs: a general 3-uniform instance for the five general
/// algorithms and a linear instance for [`Algorithm::Linear`].
fn general_graph() -> Hypergraph {
    generate::d_uniform(&mut rng(41), 200, 320, 3)
}

fn linear_graph() -> Hypergraph {
    generate::linear(&mut rng(42), 160, 100, 3)
}

/// A deterministic pseudo-random query set over the first `n` ids.
fn query(n: usize, size: usize, seed: u64) -> Arc<Vec<u32>> {
    let mut r = rng(0x0CCA ^ seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for k in 0..size.min(n) {
        let j = rand::Rng::gen_range(&mut r, k..n);
        ids.swap(k, j);
    }
    ids.truncate(size.min(n));
    ids.sort_unstable();
    Arc::new(ids)
}

/// One request per algorithm (resident and induced shapes) against the two
/// resident tenants, identical across registries by construction.
fn stream(general: GraphId, linear: GraphId) -> Vec<SolveRequest> {
    let mut requests = Vec::new();
    let algorithms = [
        Algorithm::Sbl(SblConfig::default()),
        Algorithm::Bl(BlConfig::default()),
        Algorithm::Kuw,
        Algorithm::Greedy,
        Algorithm::Permutation,
    ];
    for (i, algorithm) in algorithms.into_iter().enumerate() {
        let seed = 0x3A99_0000 + i as u64;
        requests.push(
            SolveRequest::for_graph(general)
                .algorithm(algorithm.clone())
                .seed(seed)
                .tenant(TenantId(i as u64 % 3))
                .build(),
        );
        requests.push(
            SolveRequest::induced(general, query(200, 64, seed))
                .algorithm(algorithm)
                .seed(seed ^ 0xF00D)
                .tenant(TenantId(i as u64 % 3))
                .build(),
        );
    }
    requests.push(
        SolveRequest::for_graph(linear)
            .algorithm(Algorithm::Linear)
            .seed(0x3A99_0100)
            .tenant(TenantId(1))
            .build(),
    );
    requests
}

fn run(registry: &ResidentRegistry, requests: &[SolveRequest]) -> Vec<SolveFingerprint> {
    let mut runner = BatchRunner::new();
    requests
        .iter()
        .map(|r| runner.solve(registry, r).fingerprint())
        .collect()
}

/// The headline parity pin: the same request stream against an owned-tier
/// registry and a mapped-tier registry (opened from persisted snapshots of
/// the same graphs) agrees fingerprint-for-fingerprint — independent sets,
/// work, depth, rounds and traces included — for all six algorithms.
#[test]
fn mapped_and_owned_solves_are_fingerprint_identical() {
    let pg = temp_csr("parity-general");
    let pl = temp_csr("parity-linear");
    write_csr(&general_graph(), &pg).unwrap();
    write_csr(&linear_graph(), &pl).unwrap();

    let mut owned = ResidentRegistry::new();
    let og = owned.register(general_graph());
    let ol = owned.register(linear_graph());

    let mut mapped = ResidentRegistry::new();
    let mg = mapped.open_mapped(&pg).unwrap();
    let ml = mapped.open_mapped(&pl).unwrap();
    assert_eq!(mapped.latest(mg).graph().storage_kind(), "mapped");
    assert_eq!(owned.latest(og).graph().storage_kind(), "owned");
    assert_eq!(mapped.latest(mg).graph(), owned.latest(og).graph());

    let owned_prints = run(&owned, &stream(og, ol));
    let mapped_prints = run(&mapped, &stream(mg, ml));
    assert_eq!(owned_prints.len(), 11);
    for (i, (o, m)) in owned_prints.iter().zip(&mapped_prints).enumerate() {
        assert_eq!(o, m, "request {i} diverged between storage tiers");
    }
    std::fs::remove_file(&pg).ok();
    std::fs::remove_file(&pl).ok();
}

/// A mapped resident mutates like any other: the edit log layers on top of
/// the mapped base, and outcomes keep agreeing with an identically mutated
/// owned registry at every epoch.
#[test]
fn mutated_mapped_residents_stay_outcome_identical() {
    let path = temp_csr("mutate");
    write_csr(&general_graph(), &path).unwrap();

    let mut owned = ResidentRegistry::new();
    let oid = owned.register(general_graph());
    let mut mapped = ResidentRegistry::new();
    let mid = mapped.open_mapped(&path).unwrap();

    let edits = vec![
        GraphEdit::GrowVertices(2),
        GraphEdit::AddEdge(vec![200, 201, 7]),
        GraphEdit::RemoveEdge(general_graph().edge(11).to_vec()),
    ];
    assert_eq!(owned.apply(oid, &edits).unwrap(), Epoch(1));
    assert_eq!(mapped.apply(mid, &edits).unwrap(), Epoch(1));

    let mut runner = BatchRunner::new();
    for pin in [
        EpochPin::At(Epoch(0)),
        EpochPin::At(Epoch(1)),
        EpochPin::Latest,
    ] {
        for (i, algorithm) in [Algorithm::Kuw, Algorithm::Greedy].into_iter().enumerate() {
            let req = |id| {
                SolveRequest::for_graph(id)
                    .algorithm(algorithm.clone())
                    .seed(0xED17 + i as u64)
                    .pin(pin)
                    .build()
            };
            assert_eq!(
                runner.solve(&owned, &req(oid)).fingerprint(),
                runner.solve(&mapped, &req(mid)).fingerprint(),
                "pin {pin:?} diverged between storage tiers"
            );
        }
    }
    std::fs::remove_file(&path).ok();
}

/// Spill/page-in traffic mirrors into the executing workspace's ledger on
/// the sequential path: a zero byte cap forces a page-in per solve.
#[test]
fn batch_runner_mirrors_page_ins_into_the_workspace_ledger() {
    let path = temp_csr("batch-ledger");
    write_csr(&general_graph(), &path).unwrap();
    let mut registry = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
    let id = registry.open_mapped(&path).unwrap();
    assert!(registry.is_spilled(id));

    let mut runner = BatchRunner::new();
    let request = SolveRequest::for_graph(id)
        .algorithm(Algorithm::Greedy)
        .seed(1)
        .build();
    let first = runner.solve(&registry, &request).fingerprint();
    let second = runner.solve(&registry, &request).fingerprint();
    assert_eq!(first, second, "page-ins never change outcomes");

    // Each solve faulted the snapshot back in (and the zero cap re-spilled
    // it): one observed spill and one page-in per solve, mirrored into a
    // single ledger row keyed by the graph.
    let ws = runner.into_workspace();
    assert_eq!(ws.graph_spills().len(), 1);
    assert_eq!(ws.graph_spill_totals(), (2, 2));
    assert_eq!(registry.spills(id), 3); // the open_mapped spill + two re-spills
    assert_eq!(registry.page_ins(id), 2);
    std::fs::remove_file(&path).ok();
}

/// The same mirroring through the sharded runner: submission-time page-ins
/// ride the job to the executing shard, so the pool-wide ledger accounts for
/// every fault while outcomes stay identical to the unspilled registry.
#[test]
fn sharded_runner_mirrors_page_ins_and_preserves_outcomes() {
    let path = temp_csr("shard-ledger");
    write_csr(&general_graph(), &path).unwrap();

    let requests = |id: GraphId| -> Vec<SolveRequest> {
        (0..6)
            .map(|i| {
                SolveRequest::for_graph(id)
                    .algorithm(if i % 2 == 0 {
                        Algorithm::Kuw
                    } else {
                        Algorithm::Greedy
                    })
                    .seed(0x51A2 + i)
                    .tenant(TenantId(i % 2))
                    .build()
            })
            .collect()
    };

    let mut unspilled = ResidentRegistry::new();
    let uid = unspilled.register(general_graph());
    let reference = run(&unspilled, &requests(uid));

    let mut registry = ResidentRegistry::with_spill(SpillPolicy::max_bytes(0));
    let id = registry.open_mapped(&path).unwrap();
    let spilled_requests = requests(id);
    let mut runner = ShardedRunner::new(
        Arc::new(registry),
        &ServeConfig {
            shards: 2,
            threads_per_shard: Some(1),
            ..ServeConfig::default()
        },
    );
    let prints: Vec<SolveFingerprint> = runner
        .run_stream(spilled_requests)
        .iter()
        .map(|o| o.fingerprint())
        .collect();
    assert_eq!(prints, reference, "spilling must never change outcomes");

    // Every submission faulted the snapshot in: six observed spills and six
    // page-ins, distributed across the shard ledgers but summing exactly.
    let pool = runner.shutdown();
    assert_eq!(pool.graph_spill_totals(), (6, 6));
    std::fs::remove_file(&path).ok();
}
