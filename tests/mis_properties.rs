//! Property-based tests over random hypergraphs: the central invariants of
//! the paper — every algorithm returns a maximal independent set, SBL's
//! coloring is a certificate, and the analysis quantities relate to each other
//! the way the lemmas say — hold for arbitrary inputs, not just the seeded
//! workloads of the unit tests.

use hypergraph_mis::prelude::*;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Strategy: an arbitrary hypergraph on `n ≤ 40` vertices with up to 60 edges
/// of size 1..=6, plus an RNG seed.
fn instance() -> impl Strategy<Value = (Hypergraph, u64)> {
    (2usize..40, 0usize..60, any::<u64>()).prop_flat_map(|(n, m, seed)| {
        prop::collection::vec(
            prop::collection::btree_set(0u32..(n as u32), 1..=6usize.min(n)),
            0..=m,
        )
        .prop_map(move |edges| {
            let edges: Vec<Vec<u32>> = edges.into_iter().map(|s| s.into_iter().collect()).collect();
            (hypergraph::builder::hypergraph_from_edges(n, edges), seed)
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// SBL always returns a verified MIS with a complete coloring.
    #[test]
    fn sbl_always_returns_verified_mis((h, seed) in instance()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = sbl_mis(&h, &mut rng);
        prop_assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
        prop_assert!(out.coloring.is_complete());
        prop_assert_eq!(out.coloring.blues(), out.independent_set);
    }

    /// Beame–Luby always returns a verified MIS (dimension is ≤ 6 by
    /// construction of the strategy).
    #[test]
    fn bl_always_returns_verified_mis((h, seed) in instance()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = bl_mis(&h, &mut rng, &BlConfig::default());
        prop_assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
    }

    /// KUW always returns a verified MIS.
    #[test]
    fn kuw_always_returns_verified_mis((h, seed) in instance()) {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = kuw_mis(&h, &mut rng);
        prop_assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
    }

    /// Greedy and permutation greedy always return verified MISs, and greedy
    /// over the identity order equals permutation greedy over the identity
    /// permutation (differential check of the two implementations).
    #[test]
    fn greedy_variants_agree((h, seed) in instance()) {
        let out = greedy_mis(&h, None);
        prop_assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let perm = permutation_mis(&h, &mut rng);
        prop_assert_eq!(verify_mis(&h, &perm.independent_set), Ok(()));
        let order: Vec<u32> = (0..h.n_vertices() as u32).collect();
        let ordered = greedy_mis(&h, Some(&order));
        prop_assert_eq!(ordered.independent_set, out.independent_set);
    }

    /// Every MIS is also an MIS after dominated-edge removal and vice versa:
    /// the cleanup steps of the algorithms never change the problem.
    #[test]
    fn dominated_edge_removal_preserves_mis_property((h, seed) in instance()) {
        let mut active = ActiveHypergraph::from_hypergraph(&h);
        active.remove_dominated_edges();
        let (reduced, mapping) = active.compact();
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = sbl_mis(&reduced, &mut rng);
        // Map back to original ids and verify against the original hypergraph.
        let mapped: Vec<u32> = out
            .independent_set
            .iter()
            .map(|&v| mapping[v as usize])
            .collect();
        prop_assert_eq!(verify_mis(&h, &mapped), Ok(()));
    }

    /// The Kim–Vu migration bound never exceeds Kelsen's, for degree profiles
    /// read off real hypergraphs (Section 4's claim, checked on data rather
    /// than synthetic Δ values).
    #[test]
    fn kimvu_bound_dominated_by_kelsen((h, _seed) in instance()) {
        let n = h.n_vertices().max(4);
        if h.n_edges() == 0 { return Ok(()); }
        let table = hypergraph::degree::DegreeTable::build(&h);
        let dim = h.dimension();
        let deltas: Vec<f64> = (0..=dim).map(|i| table.delta_i(i)).collect();
        for j in 2..dim {
            let kel = concentration::kimvu::kelsen_migration_bound(n, j, &deltas);
            let kv = concentration::kimvu::kim_vu_migration_bound(n, j, &deltas);
            prop_assert!(kv <= kel + 1e-9,
                "Kim-Vu bound {} exceeds Kelsen bound {} at j={}", kv, kel, j);
        }
    }
}

/// Flat-vs-reference engine agreement, compiled only with the
/// `reference-engine` feature (on by default; the flat-engine-only
/// production configuration skips it).
#[cfg(feature = "reference-engine")]
mod engine_agreement {
    use super::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        /// The flat engine and the reference engine make the *same decisions*:
        /// every algorithm, driven by the same seed, returns the identical
        /// independent set, coloring, trace and cost totals on both engines.
        #[test]
        fn engines_agree_on_every_algorithm((h, seed) in instance()) {
            use hypergraph::{ActiveHypergraph, ReferenceActiveHypergraph};

            let fingerprint = |set: &[u32], cost: &CostTracker| {
                (set.to_vec(), cost.cost().work, cost.cost().depth, cost.rounds())
            };

            // SBL: set + coloring + full trace + cost.
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let flat = sbl_mis_with_engine::<ActiveHypergraph, _>(&h, &mut rng, &SblConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(seed);
            let reference =
                sbl_mis_with_engine::<ReferenceActiveHypergraph, _>(&h, &mut rng, &SblConfig::default());
            prop_assert_eq!(
                fingerprint(&flat.independent_set, &flat.cost),
                fingerprint(&reference.independent_set, &reference.cost)
            );
            prop_assert_eq!(flat.coloring.blues(), reference.coloring.blues());
            prop_assert_eq!(flat.coloring.reds(), reference.coloring.reds());
            prop_assert_eq!(format!("{:?}", flat.trace), format!("{:?}", reference.trace));
            prop_assert_eq!(verify_mis(&h, &flat.independent_set), Ok(()));

            // BL.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1);
            let flat = bl_mis_with_engine::<ActiveHypergraph, _>(&h, &mut rng, &BlConfig::default());
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1);
            let reference =
                bl_mis_with_engine::<ReferenceActiveHypergraph, _>(&h, &mut rng, &BlConfig::default());
            prop_assert_eq!(
                fingerprint(&flat.independent_set, &flat.cost),
                fingerprint(&reference.independent_set, &reference.cost)
            );
            prop_assert_eq!(&flat.trace, &reference.trace);

            // KUW.
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2);
            let flat = kuw_mis_with_engine::<ActiveHypergraph, _>(&h, &mut rng);
            let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2);
            let reference = kuw_mis_with_engine::<ReferenceActiveHypergraph, _>(&h, &mut rng);
            prop_assert_eq!(
                fingerprint(&flat.independent_set, &flat.cost),
                fingerprint(&reference.independent_set, &reference.cost)
            );

            // Linear (where it applies).
            if check_linear(&h).is_ok() {
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11);
                let flat = linear_mis_with_engine::<ActiveHypergraph, _>(&h, &mut rng).unwrap();
                let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11);
                let reference =
                    linear_mis_with_engine::<ReferenceActiveHypergraph, _>(&h, &mut rng).unwrap();
                prop_assert_eq!(
                    fingerprint(&flat.independent_set, &flat.cost),
                    fingerprint(&reference.independent_set, &reference.cost)
                );
            }

            // Greedy over the active view.
            let mut flat_cost = CostTracker::new();
            let flat_added = greedy_on_active(&ActiveHypergraph::from_hypergraph(&h), &mut flat_cost);
            let mut ref_cost = CostTracker::new();
            let ref_added =
                greedy_on_active(&ReferenceActiveHypergraph::from_hypergraph(&h), &mut ref_cost);
            prop_assert_eq!(
                fingerprint(&flat_added, &flat_cost),
                fingerprint(&ref_added, &ref_cost)
            );
        }
    }
}
