//! The `MISP 1` wire layer under test: codec round trips, hostile input
//! (truncation at every byte, single-bit flips, lying headers) and the
//! loopback contract — every outcome a [`Client`] receives over TCP is
//! byte-identical (by [`SolveOutcome::fingerprint`]) to what an in-process
//! [`BatchRunner::solve`] of the same request produces. Runs in both the
//! default and `--no-default-features` configurations.

use hypergraph_mis::net::codec::{
    decode_error_payload, decode_outcome_payload, decode_request_payload, encode_error_frame,
    encode_outcome_frame, encode_request_frame,
};
use hypergraph_mis::net::frame::{
    decode_frame, encode_frame, fnv1a, DEFAULT_MAX_PAYLOAD, HEADER_LEN, MAGIC, VERSION,
};
use hypergraph_mis::net::{Client, FrameError, FrameKind, NetConfig, Server};
use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::{DenyReason, SolveError, SolveOutcome, SolveTrace};
use mis_core::linear::LinearError;
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::{BTreeMap, BTreeSet};
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Two resident tenants of different shapes plus their ids.
fn registry() -> (Arc<ResidentRegistry>, GraphId, GraphId) {
    let mut registry = ResidentRegistry::new();
    let a = registry.register(generate::paper_regime(&mut rng(31), 200, 50, 8));
    let b = registry.register(generate::d_uniform(&mut rng(32), 120, 240, 3));
    (Arc::new(registry), a, b)
}

/// A deterministic pseudo-random query set against a graph with `n` ids.
fn query(n: usize, size: usize, seed: u64) -> Vec<u32> {
    let mut r = rng(0xBEEF ^ seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for k in 0..size.min(n) {
        let j = rand::Rng::gen_range(&mut r, k..n);
        ids.swap(k, j);
    }
    ids.truncate(size.min(n));
    ids.sort_unstable();
    ids
}

/// Requests exercising every target shape, all six algorithms, epoch pins
/// and a deliberate in-band failure (`Linear` on a non-linear instance).
fn mixed_requests(a: GraphId, b: GraphId, count: usize) -> Vec<SolveRequest> {
    let adhoc = Arc::new(generate::mixed_dimension(&mut rng(33), 90, 110, &[2, 3, 4]));
    let linear_graph = Arc::new(generate::linear(&mut rng(34), 90, 60, 3));
    (0..count)
        .map(|i| {
            let seed = 0x11E7_0000 + i as u64;
            let builder = match i % 8 {
                0 => SolveRequest::for_graph(a).algorithm(Algorithm::Sbl(SblConfig::default())),
                1 => SolveRequest::induced(b, query(120, 40, seed))
                    .algorithm(Algorithm::Bl(BlConfig::default())),
                2 => SolveRequest::adhoc(Arc::clone(&adhoc)).algorithm(Algorithm::Kuw),
                3 => SolveRequest::induced(a, query(200, 48, seed)).algorithm(Algorithm::Greedy),
                4 => SolveRequest::for_graph(b).algorithm(Algorithm::Permutation),
                5 => SolveRequest::adhoc(Arc::clone(&linear_graph)).algorithm(Algorithm::Linear),
                // Linear on a d-uniform instance with shared pairs: the
                // outcome carries a NotLinear error as data.
                6 => SolveRequest::for_graph(b).algorithm(Algorithm::Linear),
                _ => SolveRequest::induced(b, query(120, 24, seed))
                    .algorithm(Algorithm::Sbl(SblConfig::default()))
                    .pin(EpochPin::At(Epoch(0))),
            };
            builder.seed(seed).tenant(TenantId(i as u64 % 3)).build()
        })
        .collect()
}

fn algorithm_for(code: u8) -> Algorithm {
    match code % 6 {
        0 => Algorithm::Sbl(SblConfig::default()),
        1 => Algorithm::Bl(BlConfig::default()),
        2 => Algorithm::Kuw,
        3 => Algorithm::Greedy,
        4 => Algorithm::Permutation,
        _ => Algorithm::Linear,
    }
}

// ---------------------------------------------------------------------------
// Pinned wire codes: the compatibility promise of the protocol spec.

#[test]
fn wire_constants_are_pinned() {
    assert_eq!(&MAGIC, b"MISP");
    assert_eq!(VERSION, 1);
    assert_eq!(HEADER_LEN, 20);
    assert_eq!(FrameKind::Request.wire_code(), 1);
    assert_eq!(FrameKind::Outcome.wire_code(), 2);
    assert_eq!(FrameKind::Error.wire_code(), 3);
    assert!(FrameKind::from_wire_code(0).is_err(), "0 stays invalid");
}

#[test]
fn algorithm_wire_codes_are_pinned() {
    assert_eq!(Algorithm::Sbl(SblConfig::default()).wire_code(), 0);
    assert_eq!(Algorithm::Bl(BlConfig::default()).wire_code(), 1);
    assert_eq!(Algorithm::Kuw.wire_code(), 2);
    assert_eq!(Algorithm::Greedy.wire_code(), 3);
    assert_eq!(Algorithm::Permutation.wire_code(), 4);
    assert_eq!(Algorithm::Linear.wire_code(), 5);
}

#[test]
fn epoch_pin_wire_codes_are_pinned() {
    assert_eq!(EpochPin::Latest.wire_code(), 0);
    assert_eq!(EpochPin::At(Epoch(7)).wire_code(), 1);
}

// ---------------------------------------------------------------------------
// Round trips.

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Arbitrary requests survive encode → frame-decode → payload-decode
    /// exactly, through every target shape, algorithm, pin and tenant.
    #[test]
    fn request_frames_round_trip(
        correlation in any::<u64>(),
        tenant in any::<u64>(),
        seed in any::<u64>(),
        algo in any::<u8>(),
        pin_latest in any::<bool>(),
        pin_epoch in any::<u64>(),
        shape in 0u8..3,
        n in 2u32..40,
        raw_edges in prop::collection::vec(prop::collection::vec(any::<u16>(), 1..5), 1..10),
        raw_query in prop::collection::vec(any::<u16>(), 0..24),
    ) {
        let mut registry = ResidentRegistry::new();
        let id = registry.register(generate::d_uniform(&mut rng(35), 20, 12, 3));
        let builder = match shape {
            0 => {
                // Normalise the raw edges into a valid instance: in-range
                // vertices, no duplicates within or across edges.
                let edges: Vec<Vec<u32>> = raw_edges
                    .iter()
                    .map(|e| {
                        e.iter()
                            .map(|&v| u32::from(v) % n)
                            .collect::<BTreeSet<u32>>()
                            .into_iter()
                            .collect::<Vec<u32>>()
                    })
                    .collect::<BTreeSet<Vec<u32>>>()
                    .into_iter()
                    .collect();
                SolveRequest::adhoc(Arc::new(hypergraph::builder::hypergraph_from_edges(
                    n as usize, edges,
                )))
            }
            1 => SolveRequest::for_graph(id),
            _ => SolveRequest::induced(
                id,
                raw_query.iter().map(|&v| u32::from(v) % 20).collect::<Vec<u32>>(),
            ),
        };
        let request = builder
            .algorithm(algorithm_for(algo))
            .seed(seed)
            .pin(if pin_latest {
                EpochPin::Latest
            } else {
                EpochPin::At(Epoch(pin_epoch))
            })
            .tenant(TenantId(tenant))
            .build();

        let bytes = encode_request_frame(correlation, &request);
        let (frame, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame");
        prop_assert_eq!(consumed, bytes.len());
        prop_assert_eq!(frame.kind, FrameKind::Request);
        let (c, decoded) = decode_request_payload(frame.payload).expect("valid payload");
        prop_assert_eq!(c, correlation);
        prop_assert_eq!(decoded, request);
    }
}

/// Real outcomes — every trace variant the solvers produce, plus the
/// in-band `NotLinear` failure — survive the wire losslessly, down to the
/// `f64` trace fields ([`SolveOutcome::fingerprint`] equality).
#[test]
fn outcome_frames_round_trip_losslessly() {
    let (registry, a, b) = registry();
    let mut runner = BatchRunner::new();
    for (i, request) in mixed_requests(a, b, 16).iter().enumerate() {
        let outcome = runner.solve(&registry, request);
        let bytes = encode_outcome_frame(i as u64, &outcome);
        let (frame, consumed) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame");
        assert_eq!(consumed, bytes.len());
        assert_eq!(frame.kind, FrameKind::Outcome);
        let (c, decoded) = decode_outcome_payload(frame.payload).expect("valid payload");
        assert_eq!(c, i as u64);
        assert_eq!(decoded.fingerprint(), outcome.fingerprint(), "request {i}");
        assert_eq!(decoded.ticket, outcome.ticket);
        assert_eq!(decoded.shard, outcome.shard);
        assert_eq!(decoded.tenant, outcome.tenant);
    }
}

/// Every [`SolveError`] variant round-trips as outcome data with its stable
/// numeric code.
#[test]
fn solve_error_variants_round_trip() {
    let (_registry, a, _b) = registry();
    let errors: Vec<(SolveError, u16)> = vec![
        (
            SolveError::NotLinear(LinearError::NotLinear {
                first: 3,
                second: 9,
            }),
            201,
        ),
        (SolveError::UnknownGraph(a), 202),
        (
            SolveError::UnknownEpoch {
                graph: a,
                epoch: Epoch(42),
            },
            203,
        ),
        (
            SolveError::EpochEvicted {
                graph: a,
                epoch: Epoch(1),
                floor: Epoch(5),
            },
            204,
        ),
        (
            SolveError::SnapshotUnavailable {
                graph: a,
                detail: "snapshot file vanished".to_string(),
            },
            205,
        ),
        (
            SolveError::InvalidQuery {
                vertex: 7,
                duplicate: true,
            },
            206,
        ),
        (
            SolveError::AdmissionDenied {
                tenant: TenantId(3),
                reason: DenyReason::QuotaExhausted,
            },
            207,
        ),
        (
            SolveError::AdmissionDenied {
                tenant: TenantId(4),
                reason: DenyReason::InFlightCap,
            },
            208,
        ),
    ];
    for (i, (error, code)) in errors.into_iter().enumerate() {
        assert_eq!(error.code(), code, "pinned code of {error:?}");
        let outcome = SolveOutcome {
            ticket: i as u64,
            shard: i % 3,
            tenant: TenantId(i as u64),
            seed: 99 + i as u64,
            epoch: if i % 2 == 0 {
                Some(Epoch(i as u64))
            } else {
                None
            },
            independent_set: Vec::new(),
            work: 0,
            depth: 0,
            rounds: 0,
            trace: SolveTrace::Failed,
            error: Some(error),
        };
        let bytes = encode_outcome_frame(i as u64, &outcome);
        let (frame, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("valid frame");
        let (_, decoded) = decode_outcome_payload(frame.payload).expect("valid payload");
        assert_eq!(decoded.fingerprint(), outcome.fingerprint());
    }
}

// ---------------------------------------------------------------------------
// Hostile input: the codec never panics, never trusts a length.

/// A frame and its payload cut at *every* byte offset land in a structured
/// [`FrameError`] — never a panic, never a partial decode.
#[test]
fn truncation_at_every_byte_is_a_structured_error() {
    let (registry, a, b) = registry();
    let request = &mixed_requests(a, b, 8)[0];
    let outcome = BatchRunner::new().solve(&registry, request);
    for bytes in [
        encode_request_frame(5, request),
        encode_outcome_frame(5, &outcome),
        encode_error_frame(5, 104, "unknown frame kind 9"),
    ] {
        for cut in 0..bytes.len() {
            match decode_frame(&bytes[..cut], DEFAULT_MAX_PAYLOAD) {
                Err(FrameError::Truncated { needed, have }) => {
                    assert_eq!(have, cut);
                    assert_eq!(
                        needed,
                        if cut < HEADER_LEN {
                            HEADER_LEN
                        } else {
                            bytes.len()
                        }
                    );
                }
                other => panic!("cut at {cut}: expected Truncated, got {other:?}"),
            }
        }
        // Payload-level truncation (a lying length field that passed the
        // frame layer) is also always a structured error: the full payload
        // decodes by consuming every byte, so any proper prefix must fail.
        let (frame, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).unwrap();
        for cut in 0..frame.payload.len() {
            let prefix = &frame.payload[..cut];
            let failed = match frame.kind {
                FrameKind::Request => decode_request_payload(prefix).is_err(),
                FrameKind::Outcome => decode_outcome_payload(prefix).is_err(),
                FrameKind::Error => decode_error_payload(prefix).is_err(),
            };
            assert!(failed, "payload cut at {cut} decoded");
        }
        // And a frame must contain exactly one message: an extra byte after
        // a complete payload is TrailingBytes, not silently ignored.
        let mut padded = frame.payload.to_vec();
        padded.push(0);
        let failed = match frame.kind {
            FrameKind::Request => decode_request_payload(&padded).unwrap_err(),
            FrameKind::Outcome => decode_outcome_payload(&padded).unwrap_err(),
            FrameKind::Error => decode_error_payload(&padded).unwrap_err(),
        };
        assert_eq!(failed.code(), 109, "expected TrailingBytes, got {failed}");
    }
}

/// Flipping any single bit of a frame is detected. The one undetectable
/// header flip — the kind byte toggling between two *valid* kinds — is
/// caught by the dispatch layer instead (a server rejects non-request
/// frames, a client rejects request frames), which this test pins.
#[test]
fn single_bit_flips_never_pass_undetected() {
    let (_registry, a, b) = registry();
    let request = &mixed_requests(a, b, 8)[1];
    let bytes = encode_request_frame(9, request);
    for byte in 0..bytes.len() {
        for bit in 0..8 {
            let mut evil = bytes.clone();
            evil[byte] ^= 1 << bit;
            match decode_frame(&evil, DEFAULT_MAX_PAYLOAD) {
                Err(_) => {}
                Ok((frame, _)) => {
                    assert_eq!(byte, 6, "flip at byte {byte} bit {bit} decoded");
                    assert_ne!(frame.kind, FrameKind::Request);
                    assert_eq!(frame.payload, &bytes[HEADER_LEN..]);
                }
            }
        }
    }
}

/// Hand-crafted lying headers map to their promised error variants and
/// stable codes.
#[test]
fn lying_headers_are_rejected_with_stable_codes() {
    let mut valid = Vec::new();
    encode_frame(FrameKind::Request, b"payload", &mut valid);

    let err = decode_frame(b"XXXXYYYYZZZZWWWWVVVV", DEFAULT_MAX_PAYLOAD).unwrap_err();
    assert_eq!(err, FrameError::BadMagic { found: *b"XXXX" });
    assert_eq!(err.code(), 102);

    let mut v2 = valid.clone();
    v2[4..6].copy_from_slice(&2u16.to_le_bytes());
    let err = decode_frame(&v2, DEFAULT_MAX_PAYLOAD).unwrap_err();
    assert_eq!(
        err,
        FrameError::UnsupportedVersion {
            found: 2,
            supported: 1
        }
    );
    assert_eq!(err.code(), 103);

    for kind in [0u8, 4, 9, 255] {
        let mut bad = valid.clone();
        bad[6] = kind;
        let err = decode_frame(&bad, DEFAULT_MAX_PAYLOAD).unwrap_err();
        assert_eq!(err, FrameError::UnknownKind { found: kind });
        assert_eq!(err.code(), 104);
    }

    let mut reserved = valid.clone();
    reserved[7] = 0xA5;
    let err = decode_frame(&reserved, DEFAULT_MAX_PAYLOAD).unwrap_err();
    assert_eq!(err, FrameError::BadReserved { found: 0xA5 });
    assert_eq!(err.code(), 105);

    // A length over the receiver's cap is rejected before the buffer is
    // even consulted — the lying claim alone suffices, with no allocation.
    let err = decode_frame(&valid, 3).unwrap_err();
    assert_eq!(err, FrameError::Oversize { len: 7, cap: 3 });
    assert_eq!(err.code(), 106);

    // A length larger than the buffer holds: Truncated, sized from the
    // claim, still with no allocation.
    let mut long = valid.clone();
    long[8..12].copy_from_slice(&1000u32.to_le_bytes());
    let err = decode_frame(&long, DEFAULT_MAX_PAYLOAD).unwrap_err();
    assert_eq!(
        err,
        FrameError::Truncated {
            needed: HEADER_LEN + 1000,
            have: valid.len()
        }
    );
    assert_eq!(err.code(), 101);

    let mut corrupt = valid.clone();
    let stored = fnv1a(b"payload");
    corrupt[12..20].copy_from_slice(&(stored ^ 1).to_le_bytes());
    let err = decode_frame(&corrupt, DEFAULT_MAX_PAYLOAD).unwrap_err();
    assert_eq!(
        err,
        FrameError::ChecksumMismatch {
            stored: stored ^ 1,
            computed: stored
        }
    );
    assert_eq!(err.code(), 107);
}

// ---------------------------------------------------------------------------
// Loopback: the wire changes nothing.

fn loopback_config(shards: usize) -> NetConfig {
    NetConfig {
        serve: ServeConfig {
            shards,
            queue_depth: 8,
            threads_per_shard: Some(1),
            ..ServeConfig::default()
        },
        ..NetConfig::default()
    }
}

/// The headline contract: every outcome received over TCP is
/// fingerprint-identical to the in-process sequential path, across shard
/// counts, with the per-connection counters accounting for every frame.
fn loopback_matches_in_process(shards: usize) {
    let (registry, a, b) = registry();
    let requests = mixed_requests(a, b, 16);
    let server = Server::bind(
        "127.0.0.1:0",
        Arc::clone(&registry),
        &loopback_config(shards),
    )
    .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");

    let mut by_correlation = BTreeMap::new();
    for request in &requests {
        let c = client.submit(request).expect("submit");
        by_correlation.insert(c, request.clone());
    }
    let mut reference = BatchRunner::new();
    for _ in 0..requests.len() {
        let reply = client.recv().expect("recv");
        let request = by_correlation.remove(&reply.correlation).expect("known id");
        assert_eq!(
            reply.outcome.fingerprint(),
            reference.solve(&registry, &request).fingerprint(),
            "shards={shards}, correlation {}: wire outcome diverged",
            reply.correlation
        );
        assert_eq!(reply.outcome.tenant, request.tenant());
    }
    assert!(by_correlation.is_empty());

    let stats = server.shutdown();
    assert_eq!(stats.submitted, requests.len() as u64);
    assert_eq!(stats.delivered, requests.len() as u64);
    assert_eq!(stats.connections.len(), 1);
    assert_eq!(stats.connections[0].requests, requests.len() as u64);
    assert_eq!(stats.connections[0].responses, requests.len() as u64);
    assert_eq!(stats.connections[0].protocol_errors, 0);
}

#[test]
fn loopback_matches_in_process_one_shard() {
    loopback_matches_in_process(1);
}

#[test]
fn loopback_matches_in_process_four_shards() {
    loopback_matches_in_process(4);
}

/// Graceful shutdown completes every request the dispatcher has accepted
/// and flushes the responses; the client can still read them afterwards.
#[test]
fn shutdown_drains_in_flight_requests() {
    let (registry, a, b) = registry();
    let requests = mixed_requests(a, b, 12);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), &loopback_config(2))
        .expect("bind loopback");
    let mut client = Client::connect(server.local_addr()).expect("connect");
    for request in &requests {
        client.submit(request).expect("submit");
    }
    // Wait for the reply to the *last* request: the reader consumes frames
    // in order, so this proves all 12 were accepted — while earlier ones
    // may still be outstanding when the shutdown lands.
    let mut seen = BTreeSet::new();
    while !seen.contains(&(requests.len() as u64 - 1)) {
        seen.insert(client.recv().expect("recv before shutdown").correlation);
    }
    let stats = server.shutdown();
    assert_eq!(stats.delivered, requests.len() as u64, "nothing dropped");
    // The drained responses were flushed before shutdown returned; they
    // are sitting in the socket, readable after the server is gone.
    while seen.len() < requests.len() {
        let reply = client.recv().expect("drained reply after shutdown");
        assert!(seen.insert(reply.correlation), "duplicate reply");
    }
}

// ---------------------------------------------------------------------------
// Protocol errors over a live socket.

/// Reads one raw frame off a test socket (header, then the declared
/// payload) and decodes it.
fn read_raw_frame(stream: &mut TcpStream) -> (FrameKind, Vec<u8>) {
    let mut header = vec![0u8; HEADER_LEN];
    stream.read_exact(&mut header).expect("frame header");
    let len = u32::from_le_bytes([header[8], header[9], header[10], header[11]]) as usize;
    let mut bytes = header;
    bytes.resize(HEADER_LEN + len, 0);
    stream
        .read_exact(&mut bytes[HEADER_LEN..])
        .expect("frame payload");
    let (frame, _) = decode_frame(&bytes, DEFAULT_MAX_PAYLOAD).expect("well-formed error frame");
    (frame.kind, frame.payload.to_vec())
}

/// Hostile bytes on a live connection come back as one structured error
/// frame with the promised stable code, then the server closes the
/// connection (a byte stream cannot resynchronise after a framing error).
#[test]
fn hostile_connections_get_an_error_frame_then_close() {
    let (registry, _a, _b) = registry();
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), &loopback_config(1))
        .expect("bind loopback");

    // (code, raw bytes to send)
    let mut version2 = Vec::new();
    encode_frame(FrameKind::Request, b"", &mut version2);
    version2[4..6].copy_from_slice(&2u16.to_le_bytes());
    let outcome_kind = encode_error_frame(0, 101, "client should never send this");
    let cases: Vec<(u16, Vec<u8>)> = vec![
        (102, b"XXXXYYYYZZZZWWWWVVVV".to_vec()),
        // Version negotiation: the error frame names the supported version.
        (103, version2),
        // A well-formed frame of the wrong kind on a server connection.
        (108, outcome_kind),
    ];
    for (code, bytes) in cases {
        let mut raw = TcpStream::connect(server.local_addr()).expect("connect");
        raw.write_all(&bytes).expect("send hostile bytes");
        let (kind, payload) = read_raw_frame(&mut raw);
        assert_eq!(kind, FrameKind::Error);
        let remote = decode_error_payload(&payload).expect("decodable error payload");
        assert_eq!(remote.code, code, "got {remote:?}");
        assert_eq!(remote.correlation, 0, "unattributable failures use 0");
        if code == 103 {
            assert!(
                remote.message.contains("speaks 1"),
                "version error must advertise the supported version: {}",
                remote.message
            );
        }
        // The server closed its side after the error frame.
        let mut rest = Vec::new();
        raw.read_to_end(&mut rest).expect("read to close");
        assert!(rest.is_empty());
    }

    let stats = server.shutdown();
    assert_eq!(stats.submitted, 0, "nothing hostile reached the runner");
    assert_eq!(stats.connections.len(), 3);
    for conn in &stats.connections {
        assert_eq!(conn.requests, 0);
        assert_eq!(conn.responses, 1, "exactly the error frame");
        assert_eq!(conn.protocol_errors, 1);
    }
}

/// Two concurrent connections get their replies routed by ticket back to
/// the right socket, and both show up in the per-connection stats.
#[test]
fn replies_route_to_the_connection_that_asked() {
    let (registry, a, b) = registry();
    let requests = mixed_requests(a, b, 10);
    let server = Server::bind("127.0.0.1:0", Arc::clone(&registry), &loopback_config(2))
        .expect("bind loopback");
    let mut first = Client::connect(server.local_addr()).expect("connect first");
    let mut second = Client::connect(server.local_addr()).expect("connect second");

    let mut expected = Vec::new();
    for (i, request) in requests.iter().enumerate() {
        let client = if i % 2 == 0 { &mut first } else { &mut second };
        let c = client.submit(request).expect("submit");
        expected.push((i % 2 == 0, c, request.clone()));
    }
    let mut reference = BatchRunner::new();
    // Replies arrive per connection in completion order; stash the ones
    // received ahead of the correlation currently being checked.
    let mut stash: [BTreeMap<u64, SolveOutcome>; 2] = [BTreeMap::new(), BTreeMap::new()];
    for (on_first, correlation, request) in expected {
        let idx = usize::from(!on_first);
        let outcome = loop {
            if let Some(outcome) = stash[idx].remove(&correlation) {
                break outcome;
            }
            let client = if on_first { &mut first } else { &mut second };
            let reply = client.recv().expect("recv");
            stash[idx].insert(reply.correlation, reply.outcome);
        };
        assert_eq!(
            outcome.fingerprint(),
            reference.solve(&registry, &request).fingerprint()
        );
    }
    let stats = server.shutdown();
    assert_eq!(stats.connections.len(), 2);
    assert_eq!(
        stats.connections.iter().map(|c| c.requests).sum::<u64>(),
        requests.len() as u64
    );
    assert_eq!(
        stats.connections.iter().map(|c| c.responses).sum::<u64>(),
        requests.len() as u64
    );
}
