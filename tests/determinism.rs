//! Deterministic-reproducibility suite: every algorithm in the workspace is a
//! pure function of (hypergraph, RNG seed). Same `ChaCha8Rng` seed ⇒ the
//! identical independent set *and* identical cost-model accounting (work,
//! depth, rounds), run after run — including when the PRAM primitives execute
//! on multi-threaded rayon pools, and across different pool sizes.
//!
//! This is the foundation every experiment in EXPERIMENTS.md rests on: if a
//! seeded run is not bit-stable, no reported table is trustworthy.

use hypergraph_mis::hypergraph::Hypergraph;
use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Everything a run of an algorithm can observably produce, flattened for
/// equality comparison: the set itself plus the cost-model quantities.
type Fingerprint = (Vec<u32>, u64, u64, u64);

fn fingerprint(set: &[u32], cost: &CostTracker) -> Fingerprint {
    (
        set.to_vec(),
        cost.cost().work,
        cost.cost().depth,
        cost.rounds(),
    )
}

fn small_instance(seed: u64) -> Hypergraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generate::paper_regime(&mut rng, 400, 60, 10)
}

/// Large enough that `par_tabulate`/`par_map` cross the sequential cutoff
/// (4096) inside the PRAM primitives, so the parallel code paths really run.
fn large_instance(seed: u64) -> Hypergraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generate::paper_regime(&mut rng, 6000, 900, 12)
}

/// Also past the parallel cutoff in vertex count, but sparse: the
/// quadratic-ish per-stage work of BL/KUW stays cheap in debug builds while
/// the per-vertex primitives still run multi-threaded.
fn sparse_large_instance(seed: u64) -> Hypergraph {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    generate::d_uniform(&mut rng, 6000, 400, 4)
}

#[test]
fn sbl_same_seed_same_everything() {
    let h = small_instance(1);
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = sbl_mis(&h, &mut rng);
        assert!(verify_mis(&h, &out.independent_set).is_ok());
        (
            fingerprint(&out.independent_set, &out.cost),
            out.trace.n_rounds(),
        )
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(8), run(8));
}

#[test]
fn bl_same_seed_same_everything() {
    let h = small_instance(2);
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = bl_mis(&h, &mut rng, &BlConfig::default());
        assert!(verify_mis(&h, &out.independent_set).is_ok());
        fingerprint(&out.independent_set, &out.cost)
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(1234), run(1234));
}

#[test]
fn kuw_same_seed_same_everything() {
    let h = small_instance(3);
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = kuw_mis(&h, &mut rng);
        assert!(verify_mis(&h, &out.independent_set).is_ok());
        fingerprint(&out.independent_set, &out.cost)
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(99), run(99));
}

#[test]
fn greedy_is_deterministic_with_and_without_order() {
    let h = small_instance(4);
    let a = greedy_mis(&h, None);
    let b = greedy_mis(&h, None);
    assert_eq!(
        fingerprint(&a.independent_set, &a.cost),
        fingerprint(&b.independent_set, &b.cost)
    );
    let order: Vec<u32> = (0..h.n_vertices() as u32).rev().collect();
    let c = greedy_mis(&h, Some(&order));
    let d = greedy_mis(&h, Some(&order));
    assert_eq!(c.independent_set, d.independent_set);
}

#[test]
fn permutation_same_seed_same_everything() {
    let h = small_instance(5);
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = permutation_mis(&h, &mut rng);
        assert!(verify_mis(&h, &out.independent_set).is_ok());
        (
            fingerprint(&out.independent_set, &out.cost),
            out.permutation.clone(),
        )
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(31), run(31));
}

#[test]
fn linear_same_seed_same_everything() {
    let mut gen_rng = ChaCha8Rng::seed_from_u64(6);
    let h = generate::linear(&mut gen_rng, 300, 180, 3);
    assert!(check_linear(&h).is_ok());
    let run = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        let out = linear_mis(&h, &mut rng).expect("instance is linear");
        assert!(verify_mis(&h, &out.independent_set).is_ok());
        fingerprint(&out.independent_set, &out.cost)
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(70), run(70));
}

/// Seeded generation itself must be reproducible, or nothing downstream is.
#[test]
fn generators_are_reproducible() {
    assert_eq!(small_instance(11), small_instance(11));
    let mk = |seed| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        (
            generate::d_uniform(&mut rng, 120, 240, 4),
            generate::mixed_dimension(&mut rng, 100, 150, &[2, 3, 5]),
            generate::planted_independent(&mut rng, 90, 180, 3, 30),
        )
    };
    assert_eq!(mk(21), mk(21));
}

/// The same seeded run, executed under rayon pools of different sizes, must
/// produce identical results and identical cost accounting: the PRAM
/// primitives are order-preserving, so thread count is unobservable.
#[test]
fn sbl_is_thread_count_invariant() {
    let h = large_instance(12);
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut rng = ChaCha8Rng::seed_from_u64(424242);
            let out = sbl_mis(&h, &mut rng);
            assert!(verify_mis(&h, &out.independent_set).is_ok());
            fingerprint(&out.independent_set, &out.cost)
        })
    };
    let single = run(1);
    assert_eq!(single, run(2));
    assert_eq!(single, run(4));
    // And twice under the same pool size.
    assert_eq!(run(4), run(4));
}

#[test]
fn kuw_is_thread_count_invariant() {
    let h = sparse_large_instance(13);
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut rng = ChaCha8Rng::seed_from_u64(777);
            let out = kuw_mis(&h, &mut rng);
            fingerprint(&out.independent_set, &out.cost)
        })
    };
    assert_eq!(run(1), run(4));
}

#[test]
fn bl_is_thread_count_invariant() {
    let h = sparse_large_instance(14);
    let run = |threads: usize| {
        with_threads(threads, || {
            let mut rng = ChaCha8Rng::seed_from_u64(3141);
            let out = bl_mis(&h, &mut rng, &BlConfig::default());
            fingerprint(&out.independent_set, &out.cost)
        })
    };
    assert_eq!(run(1), run(3));
}

/// Different seeds should (overwhelmingly) explore different runs; guard
/// against an accidentally seed-independent code path. Checked on the
/// permutation algorithm, whose output is a direct function of the shuffle.
#[test]
fn different_seeds_actually_differ() {
    let h = small_instance(15);
    let perm_of = |seed: u64| {
        let mut rng = ChaCha8Rng::seed_from_u64(seed);
        permutation_mis(&h, &mut rng).permutation
    };
    assert_ne!(perm_of(1), perm_of(2));
}
