//! Cross-crate integration tests: every algorithm, on every workload family,
//! must return a verified maximal independent set, and the instrumentation
//! must be consistent with what the algorithms claim to have done.

use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Every algorithm on every workload family: the output must verify.
#[test]
fn all_algorithms_produce_valid_mis_on_all_families() {
    let mut r = rng(1);
    let workloads: Vec<(&str, Hypergraph)> = vec![
        ("2-uniform", generate::d_uniform(&mut r, 120, 260, 2)),
        ("3-uniform", generate::d_uniform(&mut r, 120, 300, 3)),
        (
            "mixed 2..6",
            generate::mixed_dimension(&mut r, 150, 280, &[2, 3, 4, 5, 6]),
        ),
        ("paper regime", generate::paper_regime(&mut r, 400, 60, 12)),
        ("linear", generate::linear(&mut r, 150, 90, 3)),
        (
            "planted",
            generate::planted_independent(&mut r, 150, 250, 4, 60),
        ),
        ("complete graph", generate::special::complete_graph(40)),
        ("star", generate::special::star(60)),
        ("sunflower", generate::special::sunflower(8, 4, 2)),
    ];

    for (name, h) in &workloads {
        let out = sbl_mis(h, &mut r);
        assert_eq!(verify_mis(h, &out.independent_set), Ok(()), "SBL on {name}");

        let out = kuw_mis(h, &mut r);
        assert_eq!(verify_mis(h, &out.independent_set), Ok(()), "KUW on {name}");

        let out = greedy_mis(h, None);
        assert_eq!(
            verify_mis(h, &out.independent_set),
            Ok(()),
            "greedy on {name}"
        );

        let out = permutation_rounds_mis(h, &mut r);
        assert_eq!(
            verify_mis(h, &out.independent_set),
            Ok(()),
            "permutation on {name}"
        );

        if h.dimension() <= 6 {
            let out = bl_mis(h, &mut r, &BlConfig::default());
            assert_eq!(verify_mis(h, &out.independent_set), Ok(()), "BL on {name}");
        }
        if check_linear(h).is_ok() {
            let out = linear_mis(h, &mut r).unwrap();
            assert_eq!(
                verify_mis(h, &out.independent_set),
                Ok(()),
                "linear-LS on {name}"
            );
        }
    }
}

/// SBL's coloring must be complete, consistent with the returned set, and the
/// per-round trace must account for every decided vertex.
#[test]
fn sbl_trace_accounts_for_every_vertex() {
    let mut r = rng(2);
    let h = generate::paper_regime(&mut r, 900, 120, 14);
    let out = sbl_mis(&h, &mut r);
    assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
    assert!(out.coloring.is_complete());
    assert_eq!(out.coloring.blues(), out.independent_set);
    assert_eq!(
        out.coloring.blues().len() + out.coloring.reds().len(),
        h.n_vertices()
    );
    if !out.trace.direct_bl {
        let decided_in_rounds: usize = out
            .trace
            .rounds
            .iter()
            .map(|round| round.added + round.rejected)
            .sum();
        // Vertices decided by sampling rounds + the tail (plus vertices culled
        // inside BL cleanups, which are counted as rejected) must cover
        // everything once the tail's vertices are added.
        assert!(decided_in_rounds <= h.n_vertices());
        assert!(decided_in_rounds + out.trace.tail_vertices >= out.coloring.blues().len());
    }
}

/// The PRAM cost model must show the parallel algorithms to be *shallow*:
/// depth far below work (that is the entire point of a parallel algorithm),
/// while greedy is sequential (depth = work).
#[test]
fn cost_model_shapes_match_algorithm_structure() {
    let mut r = rng(3);
    let h = generate::d_uniform(&mut r, 600, 1200, 3);

    let bl = bl_mis(&h, &mut r, &BlConfig::default());
    let bl_cost = bl.cost.cost();
    assert!(bl_cost.depth > 0 && bl_cost.work > 0);
    assert!(
        (bl_cost.depth as f64) < 0.25 * bl_cost.work as f64,
        "BL depth {} not ≪ work {}",
        bl_cost.depth,
        bl_cost.work
    );

    let g = greedy_mis(&h, None);
    let g_cost = g.cost.cost();
    assert_eq!(g_cost.depth, g_cost.work, "greedy is sequential");

    let sbl = sbl_mis(&h, &mut r);
    let sbl_cost = sbl.cost.cost();
    assert!((sbl_cost.depth as f64) < 0.25 * sbl_cost.work as f64);
}

/// Deterministic reproducibility across the whole pipeline: same seed, same
/// workload, same result — regardless of which crate the pieces come from.
#[test]
fn full_pipeline_is_reproducible() {
    let build = || {
        let mut r = rng(77);
        let h = generate::paper_regime(&mut r, 500, 80, 10);
        let out = sbl_mis(&h, &mut r);
        (h, out.independent_set, out.trace.n_rounds())
    };
    let (h1, set1, rounds1) = build();
    let (h2, set2, rounds2) = build();
    assert_eq!(h1, h2);
    assert_eq!(set1, set2);
    assert_eq!(rounds1, rounds2);
}

/// Round-trip through the text format preserves algorithm behaviour.
#[test]
fn io_round_trip_preserves_results() {
    let mut r = rng(4);
    let h = generate::mixed_dimension(&mut r, 100, 200, &[2, 3, 4]);
    let text = hypergraph::io::to_string(&h);
    let back = hypergraph::io::from_str(&text).unwrap();
    assert_eq!(h, back);
    let a = sbl_mis(&h, &mut rng(9)).independent_set;
    let b = sbl_mis(&back, &mut rng(9)).independent_set;
    assert_eq!(a, b);
}

/// The planted independent set must be extendable to the MIS any algorithm
/// finds: i.e. algorithms never "lose" the planted certificate's independence.
#[test]
fn planted_certificates_remain_consistent() {
    let mut r = rng(5);
    let planted = 50;
    let h = generate::planted_independent(&mut r, 200, 400, 4, planted);
    let cert: Vec<u32> = (0..planted as u32).collect();
    assert!(h.is_independent(&cert));
    // Any MIS must block every planted vertex it excludes.
    let out = sbl_mis(&h, &mut r);
    assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
}

/// SBL respects the paper's parameter shapes: the dimension cap passed to BL
/// stays within the practical formula's value and the sampled sub-hypergraphs
/// recorded in the trace respect it (modulo the documented retry-exhaustion
/// escape hatch).
#[test]
fn sbl_parameters_match_formulas() {
    let n = 3_000usize;
    let params = hypergraph::params::SblParams::practical_default(n);
    let mut r = rng(6);
    let h = generate::paper_regime(&mut r, n, 200, 16);
    let out = sbl_mis(&h, &mut r);
    assert_eq!(out.params.dimension_cap, params.d_cap().min(20));
    assert!((out.params.p - params.p).abs() < 1e-12);
    assert_eq!(verify_mis(&h, &out.independent_set), Ok(()));
}
