//! Cross-algorithm conformance suite: on randomized sweeps over every
//! generator family, every algorithm's output passes [`verify_mis`], and the
//! sequential greedy algorithm serves as the maximality oracle — scanning the
//! claimed set first and the remaining vertices afterwards must reproduce the
//! claimed set exactly (anything extra greedy can add disproves maximality;
//! anything it drops disproves independence).

use hypergraph_mis::hypergraph::Hypergraph;
use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Greedy-based maximality oracle: an MIS, scanned first by greedy, is
/// returned unchanged.
fn assert_greedy_oracle(h: &Hypergraph, claimed: &[u32], algo: &str) {
    let mut order: Vec<u32> = claimed.to_vec();
    let in_set: std::collections::BTreeSet<u32> = claimed.iter().copied().collect();
    order.extend((0..h.n_vertices() as u32).filter(|v| !in_set.contains(v)));
    let replay = greedy_mis(h, Some(&order));
    let mut expected = claimed.to_vec();
    expected.sort_unstable();
    let mut got = replay.independent_set.clone();
    got.sort_unstable();
    assert_eq!(
        got, expected,
        "{algo}: greedy oracle disagrees (claimed set is not a maximal independent set)"
    );
}

/// Runs every general-hypergraph algorithm on `h` and checks each output
/// against `verify_mis` and the greedy oracle. `seed` controls all RNGs.
fn check_all_algorithms(h: &Hypergraph, seed: u64, family: &str) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let sbl = sbl_mis(h, &mut rng);
    verify_mis(h, &sbl.independent_set)
        .unwrap_or_else(|e| panic!("{family}: SBL output failed verification: {e:?}"));
    assert_greedy_oracle(h, &sbl.independent_set, "sbl");

    // BL is a small-dimension algorithm: its marking probability is
    // 1/(2^{d+1}Δ), so beyond d ≈ 10 a stage essentially never marks anything
    // (that regime is exactly what SBL's sampling exists for).
    if h.dimension() <= 10 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1);
        let bl = bl_mis(h, &mut rng, &BlConfig::default());
        verify_mis(h, &bl.independent_set)
            .unwrap_or_else(|e| panic!("{family}: BL output failed verification: {e:?}"));
        assert_greedy_oracle(h, &bl.independent_set, "bl");
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2);
    let kuw = kuw_mis(h, &mut rng);
    verify_mis(h, &kuw.independent_set)
        .unwrap_or_else(|e| panic!("{family}: KUW output failed verification: {e:?}"));
    assert_greedy_oracle(h, &kuw.independent_set, "kuw");

    let greedy = greedy_mis(h, None);
    verify_mis(h, &greedy.independent_set)
        .unwrap_or_else(|e| panic!("{family}: greedy output failed verification: {e:?}"));
    assert_greedy_oracle(h, &greedy.independent_set, "greedy");

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xE5);
    let perm = permutation_mis(h, &mut rng);
    verify_mis(h, &perm.independent_set)
        .unwrap_or_else(|e| panic!("{family}: permutation output failed verification: {e:?}"));
    assert_greedy_oracle(h, &perm.independent_set, "permutation");

    // The linear-hypergraph specialist only claims linear inputs.
    if check_linear(h).is_ok() {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11);
        let lin = linear_mis(h, &mut rng).expect("check_linear passed");
        verify_mis(h, &lin.independent_set)
            .unwrap_or_else(|e| panic!("{family}: linear output failed verification: {e:?}"));
        assert_greedy_oracle(h, &lin.independent_set, "linear");
    }
}

#[test]
fn d_uniform_sweep() {
    for seed in 0..4u64 {
        for d in [2usize, 3, 5] {
            let mut rng = ChaCha8Rng::seed_from_u64(1000 + seed);
            let h = generate::d_uniform(&mut rng, 60 + 10 * d, 150, d);
            check_all_algorithms(&h, 5000 + seed * 10 + d as u64, "d_uniform");
        }
    }
}

#[test]
fn mixed_dimension_sweep() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(2000 + seed);
        let h = generate::mixed_dimension(&mut rng, 80, 160, &[2, 3, 4, 6]);
        check_all_algorithms(&h, 6000 + seed, "mixed_dimension");
    }
}

#[test]
fn paper_regime_sweep() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(3000 + seed);
        let h = generate::paper_regime(&mut rng, 150, 30, 9);
        check_all_algorithms(&h, 7000 + seed, "paper_regime");
    }
}

#[test]
fn linear_sweep() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(4000 + seed);
        let h = generate::linear(&mut rng, 90, 60, 3);
        assert!(
            check_linear(&h).is_ok(),
            "generator produced non-linear output"
        );
        check_all_algorithms(&h, 8000 + seed, "linear");
    }
}

#[test]
fn planted_independent_sweep() {
    for seed in 0..4u64 {
        let mut rng = ChaCha8Rng::seed_from_u64(5000 + seed);
        let planted = 25usize;
        let h = generate::planted_independent(&mut rng, 75, 150, 4, planted);
        // The planted set must be independent by construction...
        let cert: Vec<u32> = (0..planted as u32).collect();
        assert!(h.is_independent(&cert), "planted certificate violated");
        check_all_algorithms(&h, 9000 + seed, "planted_independent");
    }
}

#[test]
fn special_classes_sweep() {
    let cases: Vec<(&str, Hypergraph)> = vec![
        ("complete_graph", generate::special::complete_graph(12)),
        ("path", generate::special::path(20)),
        ("cycle", generate::special::cycle(17)),
        ("star", generate::special::star(10)),
        ("sunflower", generate::special::sunflower(5, 4, 2)),
    ];
    for (name, h) in cases {
        check_all_algorithms(&h, 0xC0FFEE, name);
    }
}

/// Runs every algorithm on both the flat and the reference engine and checks
/// that the engines agree exactly, on top of the usual `verify_mis` + greedy
/// oracle checks (which run via [`check_all_algorithms`] on the flat engine).
/// Without the `reference-engine` feature (the flat-engine-only production
/// configuration), only the flat-engine checks run.
#[cfg(not(feature = "reference-engine"))]
fn check_all_algorithms_on_both_engines(h: &Hypergraph, seed: u64, family: &str) {
    check_all_algorithms(h, seed, family);
}

#[cfg(feature = "reference-engine")]
fn check_all_algorithms_on_both_engines(h: &Hypergraph, seed: u64, family: &str) {
    use hypergraph::{ActiveHypergraph, ReferenceActiveHypergraph};

    check_all_algorithms(h, seed, family);

    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let flat = sbl_mis_with_engine::<ActiveHypergraph, _>(h, &mut rng, &SblConfig::default());
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let reference =
        sbl_mis_with_engine::<ReferenceActiveHypergraph, _>(h, &mut rng, &SblConfig::default());
    assert_eq!(
        flat.independent_set, reference.independent_set,
        "{family}: SBL engines disagree"
    );
    assert_eq!(
        flat.coloring.blues(),
        reference.coloring.blues(),
        "{family}: SBL colorings disagree"
    );

    if h.dimension() <= 10 {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1);
        let flat = bl_mis_with_engine::<ActiveHypergraph, _>(h, &mut rng, &BlConfig::default());
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xB1);
        let reference =
            bl_mis_with_engine::<ReferenceActiveHypergraph, _>(h, &mut rng, &BlConfig::default());
        assert_eq!(
            flat.independent_set, reference.independent_set,
            "{family}: BL engines disagree"
        );
    }

    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2);
    let flat = kuw_mis_with_engine::<ActiveHypergraph, _>(h, &mut rng);
    let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0xD2);
    let reference = kuw_mis_with_engine::<ReferenceActiveHypergraph, _>(h, &mut rng);
    assert_eq!(
        flat.independent_set, reference.independent_set,
        "{family}: KUW engines disagree"
    );

    if check_linear(h).is_ok() {
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11);
        let flat = linear_mis_with_engine::<ActiveHypergraph, _>(h, &mut rng).unwrap();
        let mut rng = ChaCha8Rng::seed_from_u64(seed ^ 0x11);
        let reference =
            linear_mis_with_engine::<ReferenceActiveHypergraph, _>(h, &mut rng).unwrap();
        assert_eq!(
            flat.independent_set, reference.independent_set,
            "{family}: linear engines disagree"
        );
    }
}

/// Adversarial families: shapes chosen to stress the trimming, domination,
/// singleton and sampling machinery rather than look like random workloads.
/// All must pass `verify_mis`, the greedy maximality oracle, and exact
/// flat/reference engine agreement.
#[test]
fn adversarial_families() {
    // Sunflowers: maximal petal overlap through a shared core.
    for (k, d, c) in [(8usize, 4usize, 2usize), (6, 5, 1), (10, 3, 2)] {
        let h = generate::special::sunflower(k, d, c);
        check_all_algorithms_on_both_engines(
            &h,
            0xADA0 + (k * 100 + d * 10 + c) as u64,
            "sunflower",
        );
    }

    // One giant edge plus stars: the giant edge exceeds every practical
    // dimension cap, so SBL has to reach it through sampling.
    for (g, k) in [(18usize, 12usize), (30, 5)] {
        let h = generate::special::giant_edge_with_stars(g, k);
        assert!(h.dimension() == g);
        check_all_algorithms_on_both_engines(&h, 0xADA1 + g as u64, "giant_edge_with_stars");
    }

    // All-singleton edges: the unique MIS is empty.
    let h = generate::special::all_singletons(11);
    check_all_algorithms_on_both_engines(&h, 0xADA2, "all_singletons");
    let out = sbl_mis(&h, &mut ChaCha8Rng::seed_from_u64(1));
    assert!(out.independent_set.is_empty());

    // Duplicate edges in the input: the builder deduplicates them, and edges
    // that *become* duplicates after trimming must both survive.
    let mut b = hypergraph::HypergraphBuilder::new(8);
    for _ in 0..3 {
        b.add_edge([0u32, 1, 2]);
        b.add_edge([2u32, 3]);
    }
    b.add_edge([0u32, 1, 7]);
    b.add_edge([4u32, 5, 6]);
    let h = b.build();
    assert_eq!(h.n_edges(), 4, "builder must deduplicate exact duplicates");
    check_all_algorithms_on_both_engines(&h, 0xADA3, "duplicate_edges");

    // Empty and edgeless instances.
    let h = hypergraph::builder::hypergraph_from_edges::<Vec<u32>>(0, vec![]);
    check_all_algorithms_on_both_engines(&h, 0xADA4, "empty");
    let h = hypergraph::builder::hypergraph_from_edges::<Vec<u32>>(13, vec![]);
    check_all_algorithms_on_both_engines(&h, 0xADA5, "edgeless");
    let all: Vec<u32> = (0..13).collect();
    assert!(verify_mis(&h, &all).is_ok());
}

/// Degenerate shapes every algorithm must survive: no vertices is not a valid
/// hypergraph per the builder, but no edges, singleton edges (which force
/// vertices out of every MIS) and fully-covered instances are.
#[test]
fn degenerate_shapes() {
    // Edgeless: the unique MIS is everything.
    let h = hypergraph::builder::hypergraph_from_edges(9, Vec::<Vec<u32>>::new());
    check_all_algorithms(&h, 1, "edgeless");
    let all: Vec<u32> = (0..9).collect();
    assert!(verify_mis(&h, &all).is_ok());

    // A singleton edge forbids its vertex outright.
    let h = hypergraph::builder::hypergraph_from_edges(6, vec![vec![2u32], vec![0, 1]]);
    check_all_algorithms(&h, 2, "singleton_edge");
    let mut rng = ChaCha8Rng::seed_from_u64(5);
    let out = sbl_mis(&h, &mut rng);
    assert!(!out.independent_set.contains(&2));
}
