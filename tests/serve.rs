//! Deterministic stream semantics of the sharded serving subsystem.
//!
//! The contract under test: a request's outcome is a pure function of
//! `(graph, algorithm, seed)`. Shard count, queue depth, scheduling and pool
//! generation may change wall time but never an independent set, trace or
//! cost total — every configuration must agree outcome-for-outcome with the
//! sequential [`BatchRunner::solve`] path, and `collect_ordered` must
//! deliver in submission order regardless of completion order. Runs in both
//! the default and `--no-default-features` configurations (it only touches
//! the flat engine).

use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::{SolveError, SolveFingerprint, SolveOutcome};
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::sync::Arc;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Two resident tenants of different shapes plus their ids.
fn registry() -> (Arc<ResidentRegistry>, GraphId, GraphId) {
    let mut registry = ResidentRegistry::new();
    let a = registry.register(generate::paper_regime(&mut rng(11), 240, 60, 10));
    let b = registry.register(generate::d_uniform(&mut rng(12), 150, 300, 3));
    (Arc::new(registry), a, b)
}

/// A deterministic pseudo-random query set against a graph with `n` ids.
fn query(n: usize, size: usize, seed: u64) -> Arc<Vec<u32>> {
    let mut r = rng(0xC0FFEE ^ seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for k in 0..size.min(n) {
        let j = rand::Rng::gen_range(&mut r, k..n);
        ids.swap(k, j);
    }
    ids.truncate(size.min(n));
    ids.sort_unstable();
    Arc::new(ids)
}

/// An interleaved multi-tenant stream exercising every request shape: full
/// solves (resident and ad-hoc) and induced queries, across all six
/// algorithms, against both tenants.
fn mixed_stream(a: GraphId, b: GraphId, count: usize) -> Vec<SolveRequest> {
    let adhoc = Arc::new(generate::mixed_dimension(
        &mut rng(13),
        120,
        150,
        &[2, 3, 4],
    ));
    let linear_graph = Arc::new(generate::linear(&mut rng(14), 120, 80, 3));
    (0..count)
        .map(|i| {
            let seed = 0x5EED_0000 + i as u64;
            let (target, algorithm) = match i % 9 {
                0 => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 64, seed),
                    },
                    Algorithm::Bl(BlConfig::default()),
                ),
                1 => (Target::Resident(b), Algorithm::Sbl(SblConfig::default())),
                2 => (
                    Target::Induced {
                        graph: b,
                        vertices: query(150, 40, seed),
                    },
                    Algorithm::Greedy,
                ),
                3 => (Target::Adhoc(Arc::clone(&adhoc)), Algorithm::Kuw),
                4 => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 48, seed),
                    },
                    Algorithm::Sbl(SblConfig::default()),
                ),
                5 => (Target::Resident(a), Algorithm::Permutation),
                6 => (Target::Adhoc(Arc::clone(&linear_graph)), Algorithm::Linear),
                7 => (
                    Target::Induced {
                        graph: b,
                        vertices: query(150, 32, seed),
                    },
                    Algorithm::Kuw,
                ),
                _ => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 36, seed),
                    },
                    Algorithm::Permutation,
                ),
            };
            SolveRequest {
                target,
                algorithm,
                seed,
            }
        })
        .collect()
}

/// The sequential reference: the same requests through a plain
/// [`BatchRunner`] — the single-shard special case, no threads, no queues.
fn sequential(registry: &ResidentRegistry, requests: &[SolveRequest]) -> Vec<SolveFingerprint> {
    let mut runner = BatchRunner::new();
    requests
        .iter()
        .map(|r| runner.solve(registry, r).fingerprint())
        .collect()
}

fn config(shards: usize, queue_depth: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_depth,
        threads_per_shard: Some(1),
    }
}

/// The headline invariance: for every request, the independent set, trace
/// and cost totals are identical across 1/2/4/8 shards and identical to the
/// sequential `BatchRunner` path, and tickets come back in submission order.
#[test]
fn outcomes_are_shard_count_invariant() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 36);
    let reference = sequential(&registry, &requests);
    for shards in [1usize, 2, 4, 8] {
        let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(shards, 8));
        let outcomes = runner.run_stream(requests.clone());
        assert_eq!(outcomes.len(), reference.len());
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.ticket, i as u64, "shards={shards}: delivery order");
            assert!(out.shard < shards);
            assert_eq!(
                out.fingerprint(),
                reference[i],
                "shards={shards}, request {i}: outcome diverged from the sequential path"
            );
        }
    }
}

/// Checks an induced answer against an independently derived sub-instance.
fn verify_induced(registry: &ResidentRegistry, id: GraphId, q: &[u32], set: &[u32]) {
    let engine = registry.engine(id);
    let mut marked = vec![false; engine.id_space()];
    for &v in q {
        marked[v as usize] = true;
    }
    let sub = engine.induced_by(&marked);
    let (hc, map) = sub.compact();
    let cset: Vec<u32> = set
        .iter()
        .map(|&v| map.binary_search(&v).expect("answer outside query set") as u32)
        .collect();
    verify_mis(&hc, &cset).expect("induced answer is not a maximal independent set");
}

/// Interleaved multi-tenant streams: answers are genuine MIS's of the right
/// instance (full solves against their graph, induced answers against an
/// independently derived sub-instance).
#[test]
fn interleaved_multi_tenant_answers_are_valid() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 27);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(3, 4));
    let outcomes = runner.run_stream(requests.clone());
    for (req, out) in requests.iter().zip(&outcomes) {
        assert_eq!(out.seed, req.seed);
        match (&req.target, &out.error) {
            (Target::Resident(id), None) => {
                verify_mis(registry.graph(*id), &out.independent_set).unwrap()
            }
            (Target::Adhoc(h), None) => verify_mis(h, &out.independent_set).unwrap(),
            (Target::Induced { graph, vertices }, None) => {
                verify_induced(&registry, *graph, vertices, &out.independent_set)
            }
            (_, Some(e)) => panic!("unexpected request failure: {e:?}"),
        }
    }
}

/// Backpressure: with queue depth 1 the submitter repeatedly blocks on full
/// shard queues; the stream still completes, in order, with outcomes
/// identical to the sequential path.
#[test]
fn depth_one_queues_backpressure_without_reordering() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 24);
    let reference = sequential(&registry, &requests);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 1));
    let outcomes = runner.run_stream(requests);
    let got: Vec<SolveFingerprint> = outcomes.iter().map(SolveOutcome::fingerprint).collect();
    assert_eq!(got, reference);
}

/// Pool generations: shutting a runner down checks every shard's workspace
/// back in; a second runner over the same pool replays the same stream with
/// identical outcomes and **zero** new allocations — per-shard affinity
/// means every shard rewarms exactly its own buffers.
#[test]
fn pool_generations_rewarm_shard_locally() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 18);
    let cfg = config(3, 8);

    let mut gen1 = ShardedRunner::new(Arc::clone(&registry), &cfg);
    let first = gen1.run_stream(requests.clone());
    let pool = gen1.shutdown();
    assert_eq!(pool.parked(), 3);
    let warm = pool.fresh_allocations();
    assert!(warm > 0, "generation 1 must have populated the pools");

    let mut gen2 = ShardedRunner::with_pool(Arc::clone(&registry), &cfg, pool);
    let second = gen2.run_stream(requests);
    let pool = gen2.shutdown();
    assert_eq!(
        pool.fresh_allocations(),
        warm,
        "an identical warm generation must not allocate on any shard"
    );
    assert_eq!(pool.overflow_checkouts(), 0);
    for (x, y) in first.iter().zip(&second) {
        assert_eq!(x.fingerprint(), y.fingerprint());
    }
}

/// Request-level failures are data, not shard panics — and they are
/// deterministic like any other outcome.
#[test]
fn failures_come_back_as_outcomes() {
    let (registry, _a, b) = registry();
    // A second registry with enough tenants that `b`'s *index* would be in
    // range here too: only the GraphId's registry tag can reject it.
    let foreign = {
        let mut f = ResidentRegistry::new();
        f.register(generate::d_uniform(&mut rng(21), 40, 60, 3));
        f.register(generate::d_uniform(&mut rng(22), 40, 60, 3));
        Arc::new(f)
    };

    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 4));
    // Linear on a non-linear tenant (d-uniform with shared pairs).
    runner.submit(SolveRequest {
        target: Target::Resident(b),
        algorithm: Algorithm::Linear,
        seed: 1,
    });
    // Out-of-range and duplicate induced queries.
    runner.submit(SolveRequest {
        target: Target::Induced {
            graph: b,
            vertices: Arc::new(vec![1, 2, 100_000]),
        },
        algorithm: Algorithm::Bl(BlConfig::default()),
        seed: 2,
    });
    runner.submit(SolveRequest {
        target: Target::Induced {
            graph: b,
            vertices: Arc::new(vec![5, 9, 5]),
        },
        algorithm: Algorithm::Greedy,
        seed: 3,
    });
    let outcomes = runner.collect_ordered(3);
    assert!(matches!(outcomes[0].error, Some(SolveError::NotLinear(_))));
    assert!(matches!(
        outcomes[1].error,
        Some(SolveError::InvalidQuery {
            vertex: 100_000,
            duplicate: false
        })
    ));
    assert!(matches!(
        outcomes[2].error,
        Some(SolveError::InvalidQuery {
            vertex: 5,
            duplicate: true
        })
    ));
    for out in &outcomes {
        assert!(out.independent_set.is_empty());
    }
    drop(runner);

    // A foreign GraphId: `b`'s index exists in the foreign registry, but the
    // id's registry tag doesn't match — it must never resolve to another
    // tenant's graph.
    let mut runner = ShardedRunner::new(Arc::clone(&foreign), &config(1, 4));
    runner.submit(SolveRequest {
        target: Target::Resident(b),
        algorithm: Algorithm::Greedy,
        seed: 4,
    });
    let out = runner.collect_ordered(1);
    assert!(matches!(out[0].error, Some(SolveError::UnknownGraph(_))));

    // An invalid query never corrupts shard state: a single shard serves a
    // poison request and then a well-formed one on the *same* workspace
    // (exercising the error-path unwind of the trusted-clean mark buffer on
    // reuse), still matching the sequential path.
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(1, 4));
    let req = SolveRequest {
        target: Target::Induced {
            graph: b,
            vertices: query(150, 30, 99),
        },
        algorithm: Algorithm::Bl(BlConfig::default()),
        seed: 5,
    };
    // Warm the shard's induced-query scratch, poison it with a duplicate
    // (partial-mark unwind), then solve the real request.
    runner.submit(req.clone());
    runner.submit(SolveRequest {
        target: Target::Induced {
            graph: b,
            vertices: Arc::new(vec![0, 7, 0]),
        },
        algorithm: Algorithm::Bl(BlConfig::default()),
        seed: 6,
    });
    runner.submit(req.clone());
    let outcomes = runner.collect_ordered(3);
    assert!(matches!(
        outcomes[1].error,
        Some(SolveError::InvalidQuery {
            vertex: 0,
            duplicate: true
        })
    ));
    let mut reference = BatchRunner::new();
    let expected = reference.solve(&registry, &req).fingerprint();
    assert_eq!(outcomes[0].fingerprint(), expected);
    assert_eq!(outcomes[2].fingerprint(), expected);
}

/// Partial collection: interleaved submit/collect phases still deliver
/// strictly ticket-ordered outcomes.
#[test]
fn partial_collects_preserve_submission_order() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 15);
    let reference = sequential(&registry, &requests);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(4, 4));
    let mut iter = requests.into_iter();
    for req in iter.by_ref().take(10) {
        runner.submit(req);
    }
    let mut outcomes = runner.collect_ordered(3);
    assert_eq!(runner.outstanding(), 7);
    for req in iter {
        runner.submit(req);
    }
    outcomes.extend(runner.collect_outstanding());
    assert_eq!(runner.outstanding(), 0);
    let got: Vec<SolveFingerprint> = outcomes.iter().map(SolveOutcome::fingerprint).collect();
    assert_eq!(got, reference);
}

/// Asking for more outcomes than are outstanding is a caller bug, reported
/// loudly instead of deadlocking.
#[test]
#[should_panic(expected = "outstanding")]
fn overcollecting_panics_instead_of_deadlocking() {
    let (registry, _a, _b) = registry();
    let mut runner = ShardedRunner::new(registry, &config(1, 2));
    let _ = runner.collect_ordered(1);
}

/// A dying worker shard (here: BL's documented panic on dimension > 20) must
/// surface as a collector panic naming the shard — even while *other* shards
/// are still alive and keeping the result channel open — never as a hang.
#[test]
#[should_panic(expected = "died")]
fn dead_worker_panics_the_collector_instead_of_hanging() {
    let (registry, _a, _b) = registry();
    // One edge of size 24 > MAX_ENUMERABLE_DIMENSION: bl_mis panics.
    let oversized = Arc::new(hypergraph::builder::hypergraph_from_edges(
        30,
        vec![(0u32..24).collect::<Vec<_>>()],
    ));
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 4));
    runner.submit(SolveRequest {
        target: Target::Adhoc(oversized),
        algorithm: Algorithm::Bl(BlConfig::default()),
        seed: 1,
    });
    let _ = runner.collect_ordered(1);
}
