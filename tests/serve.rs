//! Deterministic stream semantics of the sharded serving subsystem.
//!
//! The contract under test: a request's outcome is a pure function of
//! `(snapshot, algorithm, seed)`. Shard count, queue depth, scheduling and pool
//! generation may change wall time but never an independent set, trace or
//! cost total — every configuration must agree outcome-for-outcome with the
//! sequential [`BatchRunner::solve`] path, and `collect_ordered` must
//! deliver in submission order regardless of completion order. Runs in both
//! the default and `--no-default-features` configurations (it only touches
//! the flat engine).

use hypergraph_mis::prelude::*;
use hypergraph_mis::serve::{
    affinity_shard, DenyReason, SolveError, SolveFingerprint, SolveOutcome, TenantStats,
};
use proptest::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;
use std::collections::BTreeSet;
use std::sync::Arc;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

/// Two resident tenants of different shapes plus their ids.
fn registry() -> (Arc<ResidentRegistry>, GraphId, GraphId) {
    let mut registry = ResidentRegistry::new();
    let a = registry.register(generate::paper_regime(&mut rng(11), 240, 60, 10));
    let b = registry.register(generate::d_uniform(&mut rng(12), 150, 300, 3));
    (Arc::new(registry), a, b)
}

/// A deterministic pseudo-random query set against a graph with `n` ids.
fn query(n: usize, size: usize, seed: u64) -> Arc<Vec<u32>> {
    let mut r = rng(0xC0FFEE ^ seed);
    let mut ids: Vec<u32> = (0..n as u32).collect();
    for k in 0..size.min(n) {
        let j = rand::Rng::gen_range(&mut r, k..n);
        ids.swap(k, j);
    }
    ids.truncate(size.min(n));
    ids.sort_unstable();
    Arc::new(ids)
}

/// An interleaved multi-tenant stream exercising every request shape: full
/// solves (resident and ad-hoc) and induced queries, across all six
/// algorithms, against both tenants.
fn mixed_stream(a: GraphId, b: GraphId, count: usize) -> Vec<SolveRequest> {
    let adhoc = Arc::new(generate::mixed_dimension(
        &mut rng(13),
        120,
        150,
        &[2, 3, 4],
    ));
    let linear_graph = Arc::new(generate::linear(&mut rng(14), 120, 80, 3));
    (0..count)
        .map(|i| {
            let seed = 0x5EED_0000 + i as u64;
            let (target, algorithm) = match i % 9 {
                0 => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 64, seed),
                    },
                    Algorithm::Bl(BlConfig::default()),
                ),
                1 => (Target::Resident(b), Algorithm::Sbl(SblConfig::default())),
                2 => (
                    Target::Induced {
                        graph: b,
                        vertices: query(150, 40, seed),
                    },
                    Algorithm::Greedy,
                ),
                3 => (Target::Adhoc(Arc::clone(&adhoc)), Algorithm::Kuw),
                4 => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 48, seed),
                    },
                    Algorithm::Sbl(SblConfig::default()),
                ),
                5 => (Target::Resident(a), Algorithm::Permutation),
                6 => (Target::Adhoc(Arc::clone(&linear_graph)), Algorithm::Linear),
                7 => (
                    Target::Induced {
                        graph: b,
                        vertices: query(150, 32, seed),
                    },
                    Algorithm::Kuw,
                ),
                _ => (
                    Target::Induced {
                        graph: a,
                        vertices: query(240, 36, seed),
                    },
                    Algorithm::Permutation,
                ),
            };
            // Several interleaved tenants, so every suite exercises the
            // tenant bookkeeping alongside the original semantics.
            SolveRequest::for_target(target)
                .algorithm(algorithm)
                .seed(seed)
                .tenant(TenantId(i as u64 % 5))
                .build()
        })
        .collect()
}

/// The sequential reference: the same requests through a plain
/// [`BatchRunner`] — the single-shard special case, no threads, no queues.
fn sequential(registry: &ResidentRegistry, requests: &[SolveRequest]) -> Vec<SolveFingerprint> {
    let mut runner = BatchRunner::new();
    requests
        .iter()
        .map(|r| runner.solve(registry, r).fingerprint())
        .collect()
}

fn config(shards: usize, queue_depth: usize) -> ServeConfig {
    ServeConfig {
        shards,
        queue_depth,
        threads_per_shard: Some(1),
        ..ServeConfig::default()
    }
}

/// The headline invariance: for every request, the independent set, trace
/// and cost totals are identical across 1/2/4/8 shards and identical to the
/// sequential `BatchRunner` path, and tickets come back in submission order.
#[test]
fn outcomes_are_shard_count_invariant() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 36);
    let reference = sequential(&registry, &requests);
    for shards in [1usize, 2, 4, 8] {
        let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(shards, 8));
        let outcomes = runner.run_stream(requests.clone());
        assert_eq!(outcomes.len(), reference.len());
        for (i, out) in outcomes.iter().enumerate() {
            assert_eq!(out.ticket, i as u64, "shards={shards}: delivery order");
            assert!(out.shard < shards);
            assert_eq!(
                out.fingerprint(),
                reference[i],
                "shards={shards}, request {i}: outcome diverged from the sequential path"
            );
        }
    }
}

/// Checks an induced answer against an independently derived sub-instance.
fn verify_induced(registry: &ResidentRegistry, id: GraphId, q: &[u32], set: &[u32]) {
    let snap = registry.latest(id);
    let engine = snap.engine();
    let mut marked = vec![false; engine.id_space()];
    for &v in q {
        marked[v as usize] = true;
    }
    let sub = engine.induced_by(&marked);
    let (hc, map) = sub.compact();
    let cset: Vec<u32> = set
        .iter()
        .map(|&v| map.binary_search(&v).expect("answer outside query set") as u32)
        .collect();
    verify_mis(&hc, &cset).expect("induced answer is not a maximal independent set");
}

/// Interleaved multi-tenant streams: answers are genuine MIS's of the right
/// instance (full solves against their graph, induced answers against an
/// independently derived sub-instance).
#[test]
fn interleaved_multi_tenant_answers_are_valid() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 27);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(3, 4));
    let outcomes = runner.run_stream(requests.clone());
    for (req, out) in requests.iter().zip(&outcomes) {
        assert_eq!(out.seed, req.seed());
        match (req.target(), &out.error) {
            (Target::Resident(id), None) => {
                verify_mis(registry.latest(*id).graph(), &out.independent_set).unwrap()
            }
            (Target::Adhoc(h), None) => verify_mis(h, &out.independent_set).unwrap(),
            (Target::Induced { graph, vertices }, None) => {
                verify_induced(&registry, *graph, vertices, &out.independent_set)
            }
            (_, Some(e)) => panic!("unexpected request failure: {e:?}"),
        }
    }
}

/// Backpressure: with queue depth 1 the submitter repeatedly blocks on full
/// shard queues; the stream still completes, in order, with outcomes
/// identical to the sequential path.
#[test]
fn depth_one_queues_backpressure_without_reordering() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 24);
    let reference = sequential(&registry, &requests);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 1));
    let outcomes = runner.run_stream(requests);
    let got: Vec<SolveFingerprint> = outcomes.iter().map(SolveOutcome::fingerprint).collect();
    assert_eq!(got, reference);
}

/// Pool generations: shutting a runner down checks every shard's workspace
/// back in; a second runner over the same pool replays the same stream with
/// identical outcomes and **zero** new allocations — per-shard affinity
/// means every shard rewarms exactly its own buffers.
#[test]
fn pool_generations_rewarm_shard_locally() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 18);
    let cfg = config(3, 8);

    let mut gen1 = ShardedRunner::new(Arc::clone(&registry), &cfg);
    let first = gen1.run_stream(requests.clone());
    let pool = gen1.shutdown();
    assert_eq!(pool.parked(), 3);
    let warm = pool.fresh_allocations();
    assert!(warm > 0, "generation 1 must have populated the pools");

    let mut gen2 = ShardedRunner::with_pool(Arc::clone(&registry), &cfg, pool);
    let second = gen2.run_stream(requests);
    let pool = gen2.shutdown();
    assert_eq!(
        pool.fresh_allocations(),
        warm,
        "an identical warm generation must not allocate on any shard"
    );
    assert_eq!(pool.overflow_checkouts(), 0);
    for (x, y) in first.iter().zip(&second) {
        assert_eq!(x.fingerprint(), y.fingerprint());
    }
}

/// Request-level failures are data, not shard panics — and they are
/// deterministic like any other outcome.
#[test]
fn failures_come_back_as_outcomes() {
    let (registry, _a, b) = registry();
    // A second registry with enough tenants that `b`'s *index* would be in
    // range here too: only the GraphId's registry tag can reject it.
    let foreign = {
        let mut f = ResidentRegistry::new();
        f.register(generate::d_uniform(&mut rng(21), 40, 60, 3));
        f.register(generate::d_uniform(&mut rng(22), 40, 60, 3));
        Arc::new(f)
    };

    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 4));
    // Linear on a non-linear tenant (d-uniform with shared pairs).
    runner.submit(
        SolveRequest::for_graph(b)
            .algorithm(Algorithm::Linear)
            .seed(1)
            .build(),
    );
    // Out-of-range and duplicate induced queries.
    runner.submit(
        SolveRequest::induced(b, vec![1, 2, 100_000])
            .algorithm(Algorithm::Bl(BlConfig::default()))
            .seed(2)
            .build(),
    );
    runner.submit(
        SolveRequest::induced(b, vec![5, 9, 5])
            .algorithm(Algorithm::Greedy)
            .seed(3)
            .build(),
    );
    let outcomes = runner.collect_ordered(3);
    assert!(matches!(outcomes[0].error, Some(SolveError::NotLinear(_))));
    assert!(matches!(
        outcomes[1].error,
        Some(SolveError::InvalidQuery {
            vertex: 100_000,
            duplicate: false
        })
    ));
    assert!(matches!(
        outcomes[2].error,
        Some(SolveError::InvalidQuery {
            vertex: 5,
            duplicate: true
        })
    ));
    for out in &outcomes {
        assert!(out.independent_set.is_empty());
    }
    drop(runner);

    // A foreign GraphId: `b`'s index exists in the foreign registry, but the
    // id's registry tag doesn't match — it must never resolve to another
    // tenant's graph.
    let mut runner = ShardedRunner::new(Arc::clone(&foreign), &config(1, 4));
    runner.submit(
        SolveRequest::for_graph(b)
            .algorithm(Algorithm::Greedy)
            .seed(4)
            .build(),
    );
    let out = runner.collect_ordered(1);
    assert!(matches!(out[0].error, Some(SolveError::UnknownGraph(_))));

    // An invalid query never corrupts shard state: a single shard serves a
    // poison request and then a well-formed one on the *same* workspace
    // (exercising the error-path unwind of the trusted-clean mark buffer on
    // reuse), still matching the sequential path.
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(1, 4));
    let req = SolveRequest::induced(b, query(150, 30, 99))
        .algorithm(Algorithm::Bl(BlConfig::default()))
        .seed(5)
        .build();
    // Warm the shard's induced-query scratch, poison it with a duplicate
    // (partial-mark unwind), then solve the real request.
    runner.submit(req.clone());
    runner.submit(
        SolveRequest::induced(b, vec![0, 7, 0])
            .algorithm(Algorithm::Bl(BlConfig::default()))
            .seed(6)
            .build(),
    );
    runner.submit(req.clone());
    let outcomes = runner.collect_ordered(3);
    assert!(matches!(
        outcomes[1].error,
        Some(SolveError::InvalidQuery {
            vertex: 0,
            duplicate: true
        })
    ));
    let mut reference = BatchRunner::new();
    let expected = reference.solve(&registry, &req).fingerprint();
    assert_eq!(outcomes[0].fingerprint(), expected);
    assert_eq!(outcomes[2].fingerprint(), expected);
}

/// Partial collection: interleaved submit/collect phases still deliver
/// strictly ticket-ordered outcomes.
#[test]
fn partial_collects_preserve_submission_order() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 15);
    let reference = sequential(&registry, &requests);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(4, 4));
    let mut iter = requests.into_iter();
    for req in iter.by_ref().take(10) {
        runner.submit(req);
    }
    let mut outcomes = runner.collect_ordered(3);
    assert_eq!(runner.outstanding(), 7);
    for req in iter {
        runner.submit(req);
    }
    outcomes.extend(runner.collect_outstanding());
    assert_eq!(runner.outstanding(), 0);
    let got: Vec<SolveFingerprint> = outcomes.iter().map(SolveOutcome::fingerprint).collect();
    assert_eq!(got, reference);
}

/// Asking for more outcomes than are outstanding is a caller bug, reported
/// loudly instead of deadlocking.
#[test]
#[should_panic(expected = "outstanding")]
fn overcollecting_panics_instead_of_deadlocking() {
    let (registry, _a, _b) = registry();
    let mut runner = ShardedRunner::new(registry, &config(1, 2));
    let _ = runner.collect_ordered(1);
}

/// A dying worker shard (here: BL's documented panic on dimension > 20) must
/// surface as a collector panic naming the shard — even while *other* shards
/// are still alive and keeping the result channel open — never as a hang.
#[test]
#[should_panic(expected = "died")]
fn dead_worker_panics_the_collector_instead_of_hanging() {
    let (registry, _a, _b) = registry();
    // One edge of size 24 > MAX_ENUMERABLE_DIMENSION: bl_mis panics.
    let oversized = Arc::new(hypergraph::builder::hypergraph_from_edges(
        30,
        vec![(0u32..24).collect::<Vec<_>>()],
    ));
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(2, 4));
    runner.submit(
        SolveRequest::adhoc(oversized)
            .algorithm(Algorithm::Bl(BlConfig::default()))
            .seed(1)
            .build(),
    );
    let _ = runner.collect_ordered(1);
}

/// The PR-5 headline pin: per-request outcomes are byte-identical across
/// `RoundRobin`/`TenantAffinity`/`LeastQueued` × 1/2/4/8 shards × ordered/
/// streaming collection, all against the sequential `BatchRunner` path.
/// Streaming may permute delivery, never a payload.
#[test]
fn outcomes_invariant_across_policies_shards_and_collection_modes() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 18);
    let reference = sequential(&registry, &requests);
    for policy in [
        RoutePolicy::RoundRobin,
        RoutePolicy::TenantAffinity,
        RoutePolicy::LeastQueued,
    ] {
        for shards in [1usize, 2, 4, 8] {
            for streaming in [false, true] {
                let mut cfg = config(shards, 8);
                cfg.route = policy;
                let mut runner = ShardedRunner::new(Arc::clone(&registry), &cfg);
                for r in requests.iter().cloned() {
                    runner.submit(r);
                }
                let mut outcomes: Vec<SolveOutcome> = if streaming {
                    runner.collect_streaming(requests.len()).collect()
                } else {
                    runner.collect_ordered(requests.len())
                };
                outcomes.sort_by_key(|o| o.ticket);
                assert_eq!(outcomes.len(), reference.len());
                for (i, out) in outcomes.iter().enumerate() {
                    assert_eq!(
                        out.ticket, i as u64,
                        "{policy:?} shards={shards} streaming={streaming}: ticket set"
                    );
                    assert!(out.shard < shards);
                    assert_eq!(
                        out.fingerprint(),
                        reference[i],
                        "{policy:?} shards={shards} streaming={streaming}, request {i}: \
                         outcome diverged from the sequential path"
                    );
                }
            }
        }
    }
}

/// Streaming and ordered collection interoperate on one runner: an ordered
/// collect after a partial streaming collect delivers exactly the
/// not-yet-streamed tickets, in ticket order, with unchanged payloads.
#[test]
fn streaming_interoperates_with_ordered_collection() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 15);
    let reference = sequential(&registry, &requests);
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(3, 8));
    for r in requests {
        runner.submit(r);
    }
    let streamed: Vec<SolveOutcome> = runner.collect_streaming(6).collect();
    assert_eq!(streamed.len(), 6);
    assert_eq!(runner.outstanding(), 9);
    let streamed_tickets: BTreeSet<u64> = streamed.iter().map(|o| o.ticket).collect();
    assert_eq!(
        streamed_tickets.len(),
        6,
        "streaming never duplicates a ticket"
    );

    let rest = runner.collect_outstanding();
    assert_eq!(runner.outstanding(), 0);
    let rest_tickets: Vec<u64> = rest.iter().map(|o| o.ticket).collect();
    let mut sorted = rest_tickets.clone();
    sorted.sort_unstable();
    assert_eq!(
        rest_tickets, sorted,
        "ordered collection stays ticket-ordered"
    );
    assert!(rest_tickets.iter().all(|t| !streamed_tickets.contains(t)));

    let mut all: Vec<&SolveOutcome> = streamed.iter().chain(&rest).collect();
    all.sort_by_key(|o| o.ticket);
    assert_eq!(all.len(), 15);
    for (i, out) in all.iter().enumerate() {
        assert_eq!(out.ticket, i as u64);
        assert_eq!(out.fingerprint(), reference[i]);
    }
}

/// Admission control: token-bucket denials are outcomes (never panics, never
/// dropped tickets), deterministic on replay, refilled on logical time; the
/// in-flight cap frees as outcomes are collected. `ServeStats` accounts for
/// every decision.
#[test]
fn admission_denials_are_data_and_deterministic() {
    let (registry, _a, b) = registry();
    // Tenant 0: bucket of 2, one token back every 4 submissions. Tenant 1
    // is unquoted (admit everything).
    let mut cfg = config(2, 8);
    cfg.admission = AdmissionConfig {
        default_quota: None,
        per_tenant: vec![(
            TenantId(0),
            TenantQuota {
                burst: 2,
                refill_every: 4,
                max_in_flight: None,
            },
        )],
    };
    let run = |cfg: &ServeConfig| {
        let mut runner = ShardedRunner::new(Arc::clone(&registry), cfg);
        for i in 0..12u64 {
            runner.submit(
                SolveRequest::induced(b, query(150, 20, i))
                    .algorithm(Algorithm::Greedy)
                    .seed(i)
                    .tenant(TenantId(i % 2))
                    .build(),
            );
        }
        let outs = runner.collect_ordered(12);
        let stats = runner.stats();
        (outs, stats)
    };
    let (outs, stats) = run(&cfg);

    // Tenant 0 submits at tickets 0,2,4,..: tokens 2 up front, +1 at ticket
    // 4 and 8 — so exactly tickets 6 and 10 are over quota.
    for (i, out) in outs.iter().enumerate() {
        let expect_denied = i == 6 || i == 10;
        assert_eq!(out.ticket, i as u64);
        if expect_denied {
            assert_eq!(
                out.error,
                Some(SolveError::AdmissionDenied {
                    tenant: TenantId(0),
                    reason: DenyReason::QuotaExhausted,
                }),
                "ticket {i} should be over quota"
            );
            assert!(out.independent_set.is_empty());
        } else {
            assert!(out.error.is_none(), "ticket {i} unexpectedly failed");
            verify_induced(
                &registry,
                b,
                &query(150, 20, i as u64),
                &out.independent_set,
            );
        }
    }
    assert_eq!(stats.submitted, 12);
    assert_eq!(stats.admitted, 10);
    assert_eq!(stats.denied, 2);
    assert_eq!(stats.delivered, 12);
    let t0 = &stats.per_tenant[0];
    assert_eq!(
        (
            t0.tenant,
            t0.submitted,
            t0.admitted,
            t0.denied_quota,
            t0.denied_in_flight,
            t0.delivered
        ),
        (TenantId(0), 6, 4, 2, 0, 6)
    );
    let t1 = &stats.per_tenant[1];
    assert_eq!((t1.submitted, t1.admitted, t1.denied()), (6, 6, 0));

    // Replay determinism: an identical submit/collect sequence makes
    // identical admission decisions and identical outcomes.
    let (outs2, stats2) = run(&cfg);
    assert_eq!(outs.len(), outs2.len());
    for (x, y) in outs.iter().zip(&outs2) {
        assert_eq!(x.fingerprint(), y.fingerprint());
    }
    assert_eq!(stats.per_tenant, stats2.per_tenant);

    // In-flight cap: capacity frees only as outcomes are delivered.
    let mut cfg = config(1, 4);
    cfg.admission = AdmissionConfig {
        default_quota: Some(TenantQuota {
            burst: u64::MAX,
            refill_every: 0,
            max_in_flight: Some(1),
        }),
        per_tenant: Vec::new(),
    };
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &cfg);
    let req = |seed: u64| {
        SolveRequest::for_graph(b)
            .algorithm(Algorithm::Permutation)
            .seed(seed)
            .tenant(TenantId(9))
            .build()
    };
    runner.submit(req(1));
    runner.submit(req(2)); // over the cap while ticket 0 is in flight
    let outs = runner.collect_ordered(2);
    assert!(outs[0].error.is_none());
    assert_eq!(
        outs[1].error,
        Some(SolveError::AdmissionDenied {
            tenant: TenantId(9),
            reason: DenyReason::InFlightCap,
        })
    );
    runner.submit(req(3)); // delivered outcomes freed the cap
    let outs = runner.collect_ordered(1);
    assert!(outs[0].error.is_none());
    let stats = runner.stats();
    assert_eq!(stats.per_tenant[0].denied_in_flight, 1);
    assert_eq!(stats.per_tenant[0].admitted, 2);
}

/// Token-bucket refill arithmetic must survive quotas with `refill_every`
/// near `u64::MAX`: the refill step multiplies `add * refill_every` onto
/// `last_refill_at`, which saturates instead of wrapping (a wrap would jump
/// `last_refill_at` backwards and mint tokens out of thin air). The denial
/// pattern stays sane: `burst` admissions, then every submission denied —
/// a refill period that long never elapses on the logical clock.
#[test]
fn token_refill_survives_refill_periods_near_u64_max() {
    let (registry, _a, b) = registry();
    for refill_every in [u64::MAX, u64::MAX - 1, u64::MAX / 2] {
        let mut cfg = config(1, 8);
        cfg.admission = AdmissionConfig {
            default_quota: Some(TenantQuota {
                burst: 1,
                refill_every,
                max_in_flight: None,
            }),
            per_tenant: Vec::new(),
        };
        let mut runner = ShardedRunner::new(Arc::clone(&registry), &cfg);
        for i in 0..8u64 {
            runner.submit(
                SolveRequest::for_graph(b)
                    .algorithm(Algorithm::Greedy)
                    .seed(i)
                    .tenant(TenantId(0))
                    .build(),
            );
        }
        let outs = runner.collect_ordered(8);
        assert!(
            outs[0].error.is_none(),
            "refill_every={refill_every}: the burst token admits the first request"
        );
        for out in &outs[1..] {
            assert_eq!(
                out.error,
                Some(SolveError::AdmissionDenied {
                    tenant: TenantId(0),
                    reason: DenyReason::QuotaExhausted,
                }),
                "refill_every={refill_every}: the bucket must never refill on this horizon"
            );
        }
    }
}

/// Tenant affinity pins every tenant to its stable hash shard, and the
/// pool's per-tenant rewarm report makes the win observable: one first-touch
/// miss per tenant under affinity vs scatter across shards under
/// round-robin.
#[test]
fn tenant_affinity_pins_tenants_and_rewarms_shard_locally() {
    let (registry, a, b) = registry();
    let requests = mixed_stream(a, b, 30); // tenants 0..5, 6 requests each
    let mut cfg = config(4, 8);
    cfg.route = RoutePolicy::TenantAffinity;
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &cfg);
    let outs = runner.run_stream(requests.clone());
    for out in &outs {
        assert_eq!(
            out.shard,
            affinity_shard(out.tenant, 4),
            "tenant {:?} strayed from its home shard",
            out.tenant
        );
    }
    let stats = runner.stats();
    assert_eq!(stats.policy, RoutePolicy::TenantAffinity);
    assert_eq!(stats.per_tenant.len(), 5);
    for t in &stats.per_tenant {
        assert_eq!(
            t.shards,
            vec![affinity_shard(t.tenant, 4)],
            "tenant {:?} routed to more than one shard",
            t.tenant
        );
    }
    let pool = runner.shutdown();
    let (hits_aff, misses_aff) = pool.tenant_rewarm_totals();
    assert_eq!(
        misses_aff, 5,
        "under affinity each tenant first-touches exactly one workspace"
    );
    assert_eq!(hits_aff, 25, "every later request rewarms its home shard");
    for &(tenant, hits, misses) in &pool.tenant_rewarms() {
        assert_eq!((misses, hits), (1, 5), "tenant {tenant}: affinity ledger");
    }

    // Round-robin scatters the same stream: tenant i (tickets i, i+5, ...)
    // first-touches all 4 shards.
    let mut runner = ShardedRunner::new(Arc::clone(&registry), &config(4, 8));
    let _ = runner.run_stream(requests);
    let pool = runner.shutdown();
    let (hits_rr, misses_rr) = pool.tenant_rewarm_totals();
    assert_eq!(
        misses_rr, 20,
        "round-robin: 5 tenants × 4 shards first touches"
    );
    assert_eq!(hits_rr + misses_rr, 30);
    assert!(misses_aff < misses_rr);
}

/// Strategy for the tenant-stream properties: a stream of (tenant, shape,
/// seed) triples plus a shard count, over cheap request shapes.
fn tenant_stream() -> impl Strategy<Value = (Vec<(u64, u8, u64)>, usize)> {
    (
        prop::collection::vec((0u64..4, 0u8..4, any::<u64>()), 1..25),
        1usize..=5,
    )
}

/// Materializes a stream spec against the shared two-tenant registry.
fn materialize(
    registry: &(Arc<ResidentRegistry>, GraphId, GraphId),
    spec: &[(u64, u8, u64)],
) -> Vec<SolveRequest> {
    let (_, a, b) = registry;
    spec.iter()
        .map(|&(tenant, shape, seed)| {
            let (target, algorithm) = match shape % 4 {
                0 => (Target::Resident(*b), Algorithm::Greedy),
                1 => (
                    Target::Induced {
                        graph: *b,
                        vertices: query(150, 24, seed),
                    },
                    Algorithm::Kuw,
                ),
                2 => (Target::Resident(*a), Algorithm::Permutation),
                _ => (
                    Target::Induced {
                        graph: *a,
                        vertices: query(240, 32, seed),
                    },
                    Algorithm::Bl(BlConfig::default()),
                ),
            };
            SolveRequest::for_target(target)
                .algorithm(algorithm)
                .seed(seed)
                .tenant(TenantId(tenant))
                .build()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// (a) `TenantAffinity` maps each tenant of a random tenant-tagged
    /// stream to exactly one shard — its stable hash shard.
    #[test]
    fn prop_affinity_maps_each_tenant_to_one_shard((spec, shards) in tenant_stream()) {
        let reg = registry();
        let requests = materialize(&reg, &spec);
        let mut cfg = config(shards, 8);
        cfg.route = RoutePolicy::TenantAffinity;
        let mut runner = ShardedRunner::new(Arc::clone(&reg.0), &cfg);
        let outs = runner.run_stream(requests);
        for out in &outs {
            prop_assert_eq!(out.shard, affinity_shard(out.tenant, shards));
        }
        for t in &runner.stats().per_tenant {
            prop_assert!(t.shards.len() <= 1);
        }
    }

    /// (b) Admission decisions are replay-deterministic: the same stream
    /// through the same quota config twice yields identical per-ticket
    /// admission decisions and outcomes.
    #[test]
    fn prop_admission_is_replay_deterministic(
        (spec, shards) in tenant_stream(),
        burst in 0u64..4,
        refill in 0u64..5,
        cap in 0u64..3,
        affinity in 0u8..2,
    ) {
        let reg = registry();
        let requests = materialize(&reg, &spec);
        let mut cfg = config(shards, 8);
        cfg.route = if affinity == 1 {
            RoutePolicy::TenantAffinity
        } else {
            RoutePolicy::RoundRobin
        };
        cfg.admission = AdmissionConfig {
            default_quota: Some(TenantQuota {
                burst,
                refill_every: refill,
                max_in_flight: if cap == 0 { None } else { Some(cap) },
            }),
            // Tenant 3 stays unquoted for contrast.
            per_tenant: vec![(TenantId(3), TenantQuota::unlimited())],
        };
        let mut first: Option<(Vec<SolveFingerprint>, Vec<TenantStats>)> = None;
        for _ in 0..2 {
            let mut runner = ShardedRunner::new(Arc::clone(&reg.0), &cfg);
            let outs = runner.run_stream(requests.clone());
            let fps: Vec<SolveFingerprint> = outs.iter().map(SolveOutcome::fingerprint).collect();
            let tenants = runner.stats().per_tenant;
            // Unquoted tenant is never denied.
            for t in &tenants {
                if t.tenant == TenantId(3) {
                    prop_assert_eq!(t.denied(), 0);
                }
            }
            match &first {
                None => first = Some((fps, tenants)),
                Some((f, s)) => {
                    prop_assert_eq!(f, &fps);
                    prop_assert_eq!(s, &tenants);
                }
            }
        }
    }

    /// (d) Streaming under **mutation**: with registry mutations interleaved
    /// at arbitrary submit positions, `collect_streaming` still yields a
    /// payload-identical permutation of `collect_ordered` — run against
    /// identically constructed registries mutated at identical stream
    /// positions (submit-time pinning makes the epoch assignment a pure
    /// function of the call sequence, so both runs see the same epochs).
    #[test]
    fn prop_streaming_with_mutations_matches_ordered(
        (spec, shards) in tenant_stream(),
        mut_positions in prop::collection::btree_set(0usize..25, 0..3),
    ) {
        let run = |streaming: bool| -> Vec<(u64, SolveFingerprint)> {
            let reg = registry();
            let requests = materialize(&reg, &spec);
            let n = requests.len();
            let mut runner = ShardedRunner::new(Arc::clone(&reg.0), &config(shards, 8));
            for (i, r) in requests.into_iter().enumerate() {
                if mut_positions.contains(&i) {
                    // A structural change that is valid at every epoch: two
                    // fresh vertices joined by a fresh edge.
                    let base = reg.0.latest(reg.1).graph().n_vertices() as u32;
                    reg.0
                        .apply(reg.1, &[
                            GraphEdit::GrowVertices(2),
                            GraphEdit::AddEdge(vec![base, base + 1]),
                        ])
                        .expect("valid mid-stream edit");
                }
                runner.submit(r);
            }
            let mut outs: Vec<SolveOutcome> = if streaming {
                runner.collect_streaming(n).collect()
            } else {
                runner.collect_ordered(n)
            };
            outs.sort_by_key(|o| o.ticket);
            outs.iter().map(|o| (o.ticket, o.fingerprint())).collect()
        };
        let ordered = run(false);
        let streamed = run(true);
        prop_assert_eq!(ordered, streamed);
    }

    /// (c) `collect_streaming` yields a permutation of `collect_ordered`
    /// with identical per-ticket outcomes, for arbitrary tenant streams and
    /// shard counts.
    #[test]
    fn prop_streaming_is_a_permutation_of_ordered((spec, shards) in tenant_stream()) {
        let reg = registry();
        let requests = materialize(&reg, &spec);
        let n = requests.len();

        let mut ordered_runner = ShardedRunner::new(Arc::clone(&reg.0), &config(shards, 8));
        let ordered = ordered_runner.run_stream(requests.clone());

        let mut streaming_runner = ShardedRunner::new(Arc::clone(&reg.0), &config(shards, 8));
        for r in requests {
            streaming_runner.submit(r);
        }
        let mut streamed: Vec<SolveOutcome> = streaming_runner.collect_streaming(n).collect();
        streamed.sort_by_key(|o| o.ticket);
        prop_assert_eq!(streamed.len(), ordered.len());
        for (s, o) in streamed.iter().zip(&ordered) {
            prop_assert_eq!(s.ticket, o.ticket);
            prop_assert_eq!(s.fingerprint(), o.fingerprint());
        }
    }
}
