//! Ablation studies over the design choices DESIGN.md calls out: the sampling
//! probability `p`, the dimension cap `d`, the choice of tail algorithm, and
//! the cleanup steps of the active-hypergraph machinery. These are integration
//! tests rather than benches because the claims are structural ("still a valid
//! MIS", "fewer rounds", "same distribution of outcomes"), not about
//! nanoseconds.

use hypergraph_mis::prelude::*;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

fn rng(seed: u64) -> ChaCha8Rng {
    ChaCha8Rng::seed_from_u64(seed)
}

fn workload(n: usize, seed: u64) -> Hypergraph {
    let mut r = rng(seed);
    generate::paper_regime(&mut r, n, n / 8, 14)
}

/// Ablation 1 — sampling probability. The analysis sets `p = n^{-α}`; the round
/// count behaves like `2 log n / p`, so a larger `p` must not *increase* the
/// number of sampling rounds (and the result stays a valid MIS either way).
#[test]
fn ablation_sampling_probability() {
    let h = workload(1_500, 1);
    let mut rounds = Vec::new();
    for (i, p) in [0.05f64, 0.15, 0.4].into_iter().enumerate() {
        let cfg = SblConfig {
            p: Some(p),
            dimension_cap: Some(4),
            tail_threshold: Some(30),
            ..SblConfig::default()
        };
        let mut r = rng(100 + i as u64);
        let out = sbl_mis_with(&h, &mut r, &cfg);
        assert_eq!(verify_mis(&h, &out.independent_set), Ok(()), "p = {p}");
        rounds.push(out.trace.n_rounds());
    }
    // Allow generous slack for randomness, but the trend must be there: the
    // aggressive sampler cannot need more rounds than the conservative one.
    assert!(
        rounds[2] <= rounds[0],
        "p=0.4 used {} rounds, p=0.05 used {}",
        rounds[2],
        rounds[0]
    );
}

/// Ablation 2 — dimension cap. A higher cap means fewer dimension-check
/// failures (event B) and never invalidates the output; a cap of 1 is the most
/// hostile setting and must still work because the retry-exhaustion escape
/// hatch raises it.
#[test]
fn ablation_dimension_cap() {
    let h = workload(1_000, 2);
    for cap in [1usize, 3, 6, 12] {
        let cfg = SblConfig {
            dimension_cap: Some(cap),
            max_round_retries: 4,
            ..SblConfig::default()
        };
        let mut r = rng(200 + cap as u64);
        let out = sbl_mis_with(&h, &mut r, &cfg);
        assert_eq!(
            verify_mis(&h, &out.independent_set),
            Ok(()),
            "dimension cap {cap}"
        );
    }
}

/// Ablation 3 — tail algorithm. Greedy tail and KUW tail must both produce
/// valid (generally different) MISs, and the choice must not affect the rounds
/// taken by the sampling phase when the randomness is shared.
#[test]
fn ablation_tail_choice() {
    let h = workload(1_200, 3);
    let mk = |tail| {
        let cfg = SblConfig {
            tail,
            ..SblConfig::default()
        };
        let mut r = rng(300);
        sbl_mis_with(&h, &mut r, &cfg)
    };
    let greedy_tail = mk(TailChoice::Greedy);
    let kuw_tail = mk(TailChoice::Kuw);
    assert_eq!(verify_mis(&h, &greedy_tail.independent_set), Ok(()));
    assert_eq!(verify_mis(&h, &kuw_tail.independent_set), Ok(()));
    // The sampling phase consumed the same random stream in both runs, so the
    // outer round structure is identical; only the tail differs.
    assert_eq!(greedy_tail.trace.n_rounds(), kuw_tail.trace.n_rounds());
    assert_eq!(
        greedy_tail.trace.tail_vertices,
        kuw_tail.trace.tail_vertices
    );
}

/// Ablation 4 — BL potential tracking. Turning the per-stage degree profiling
/// on must not change the algorithm's decisions (it only observes), so with a
/// shared seed the independent sets are identical.
#[test]
fn ablation_potential_tracking_is_observation_only() {
    let mut r = rng(4);
    let h = generate::d_uniform(&mut r, 300, 600, 3);
    let run = |track: bool| {
        let cfg = BlConfig {
            track_potentials: track,
            ..BlConfig::default()
        };
        let mut r = rng(400);
        bl_mis(&h, &mut r, &cfg)
    };
    let plain = run(false);
    let tracked = run(true);
    assert_eq!(plain.independent_set, tracked.independent_set);
    assert_eq!(plain.trace.n_stages(), tracked.trace.n_stages());
    assert!(tracked
        .trace
        .stages
        .iter()
        .all(|s| s.m == 0 || !s.deltas_by_dimension.is_empty()));
}

/// Ablation 5 — cleanup steps. Dominated-edge removal is an optimisation, not
/// a correctness requirement: an SBL run on a hypergraph whose dominated edges
/// were *not* pre-removed and one on the reduced hypergraph both verify
/// against the original.
#[test]
fn ablation_dominated_edges_do_not_affect_validity() {
    let mut r = rng(5);
    // Build a hypergraph with deliberate domination: every 3-edge also appears
    // extended by one extra vertex.
    let base = generate::d_uniform(&mut r, 200, 250, 3);
    let mut b = HypergraphBuilder::new(201);
    for e in base.edges() {
        b.add_edge(e.iter().copied());
        let mut bigger = e.to_vec();
        bigger.push(200);
        b.add_edge(bigger);
    }
    let h = b.build();

    let mut active = ActiveHypergraph::from_hypergraph(&h);
    let removed = active.remove_dominated_edges();
    assert!(removed > 0, "the construction must produce dominated edges");

    let out_full = sbl_mis(&h, &mut rng(500));
    assert_eq!(verify_mis(&h, &out_full.independent_set), Ok(()));

    let (reduced, mapping) = active.compact();
    let out_reduced = sbl_mis(&reduced, &mut rng(501));
    let mapped: Vec<u32> = out_reduced
        .independent_set
        .iter()
        .map(|&v| mapping[v as usize])
        .collect();
    assert_eq!(verify_mis(&h, &mapped), Ok(()));
}

/// Ablation 6 — MIS size across algorithms. Maximal ≠ maximum: different
/// algorithms may return different sizes, but none may return an empty set on
/// a hypergraph without singleton edges, and all sizes must be within the
/// trivial bounds `[1, n]`.
#[test]
fn ablation_mis_sizes_are_sane_across_algorithms() {
    let h = workload(800, 6);
    let mut r = rng(600);
    let sizes = [
        sbl_mis(&h, &mut r).independent_set.len(),
        kuw_mis(&h, &mut r).independent_set.len(),
        greedy_mis(&h, None).independent_set.len(),
        permutation_rounds_mis(&h, &mut r).independent_set.len(),
    ];
    for &s in &sizes {
        assert!(s >= 1 && s <= h.n_vertices());
    }
    // On these sparse instances every MIS keeps the vast majority of vertices;
    // a collapse to a tiny set would indicate an update-rule bug even if the
    // verifier (which only checks maximality) were satisfied.
    let min = *sizes.iter().min().unwrap();
    assert!(
        min * 2 > h.n_vertices(),
        "suspiciously small MIS: {min} of {}",
        h.n_vertices()
    );
}
