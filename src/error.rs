//! The crate-wide error type: every failure the facade can surface —
//! graph I/O, graph edits, wire framing, solve-time rejections, raw socket
//! I/O and peer-reported protocol errors — unified under one
//! [`enum@Error`] with `From` conversions from each subsystem's error and a
//! stable numeric code per variant.
//!
//! # Error codes — a compatibility promise
//!
//! [`Error::code`] maps every error to a `u16` that is **frozen**: codes
//! are never renumbered or reused, only appended. The wire protocol
//! ([`net`](crate::net)) transmits these codes in error frames and as the
//! variant tags of encoded [`SolveError`]s, so a `MISP 1` client built
//! today decodes the errors of any future server. The blocks:
//!
//! | block | meaning | source type |
//! |-------|---------|-------------|
//! | `1`   | socket / file I/O failure (local, never on the wire) | [`std::io::Error`] |
//! | `1xx` | frame/codec rejection | [`FrameError`] |
//! | `2xx` | solve-time rejection (reported as outcome data) | [`SolveError`] |
//! | `3xx` | graph read failure | [`ReadError`] |
//! | `4xx` | graph edit rejection | [`EditError`] |
//!
//! Per-code assignments live on the subsystem errors
//! ([`FrameError::code`], [`SolveError::code`]) and in the table on the
//! [`net` module docs](crate::net#error-codes); unit tests pin every
//! assignment.

use crate::net::{FrameError, RemoteError};
use crate::serve::SolveError;
use hypergraph::edit::EditError;
use hypergraph::io::ReadError;

/// Any failure the facade can surface, unified. See the
/// [module docs](self) for the stable numeric code mapping.
#[derive(Debug)]
pub enum Error {
    /// Reading a graph (file I/O or parse) failed.
    Read(ReadError),
    /// A graph edit was rejected.
    Edit(EditError),
    /// A wire frame or payload was rejected by the codec.
    Frame(FrameError),
    /// A solve request failed (the same rejection the serving layer reports
    /// as [`SolveOutcome::error`](crate::serve::SolveOutcome::error) data).
    Solve(SolveError),
    /// A raw socket operation failed (connect, read, write).
    Io(std::io::Error),
    /// The wire peer reported a protocol error (an error frame): *its*
    /// codec rejected something this side sent.
    Remote(RemoteError),
}

impl Error {
    /// The stable numeric code of this error — frozen as a compatibility
    /// promise (see the [module docs](self)). For [`Remote`](Self::Remote)
    /// this is the code the peer transmitted.
    pub fn code(&self) -> u16 {
        match self {
            Error::Io(_) => 1,
            Error::Frame(e) => e.code(),
            Error::Solve(e) => e.code(),
            Error::Read(ReadError::Io(_)) => 301,
            Error::Read(ReadError::Parse(_)) => 302,
            Error::Edit(EditError::VertexOutOfRange { .. }) => 401,
            Error::Edit(EditError::EmptyEdge) => 402,
            Error::Edit(EditError::DuplicateEdge(_)) => 403,
            Error::Edit(EditError::NoSuchEdge(_)) => 404,
            Error::Remote(e) => e.code,
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Error::Read(e) => write!(f, "graph read failed: {e}"),
            Error::Edit(e) => write!(f, "graph edit rejected: {e}"),
            Error::Frame(e) => write!(f, "wire frame rejected: {e}"),
            Error::Solve(e) => write!(f, "solve failed: {e}"),
            Error::Io(e) => write!(f, "socket i/o failed: {e}"),
            Error::Remote(e) => write!(f, "{e}"),
        }
    }
}

impl std::error::Error for Error {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            Error::Read(e) => Some(e),
            Error::Edit(e) => Some(e),
            Error::Frame(e) => Some(e),
            Error::Solve(e) => Some(e),
            Error::Io(e) => Some(e),
            Error::Remote(e) => Some(e),
        }
    }
}

impl From<ReadError> for Error {
    fn from(e: ReadError) -> Self {
        Error::Read(e)
    }
}

impl From<EditError> for Error {
    fn from(e: EditError) -> Self {
        Error::Edit(e)
    }
}

impl From<FrameError> for Error {
    fn from(e: FrameError) -> Self {
        Error::Frame(e)
    }
}

impl From<SolveError> for Error {
    fn from(e: SolveError) -> Self {
        Error::Solve(e)
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Self {
        Error::Io(e)
    }
}

impl From<RemoteError> for Error {
    fn from(e: RemoteError) -> Self {
        Error::Remote(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::serve::{DenyReason, Epoch, GraphId, TenantId};
    use mis_core::linear::LinearError;

    fn gid() -> GraphId {
        GraphId::from_wire_parts(7, 3)
    }

    /// The compatibility promise: every code assignment is frozen. A
    /// failure here means a renumbering that would break deployed wire
    /// peers — add new codes, never change these.
    #[test]
    fn error_codes_are_pinned() {
        use FrameError as F;
        let frame: [(F, u16); 9] = [
            (
                F::Truncated {
                    needed: 20,
                    have: 3,
                },
                101,
            ),
            (F::BadMagic { found: *b"XXXX" }, 102),
            (
                F::UnsupportedVersion {
                    found: 2,
                    supported: 1,
                },
                103,
            ),
            (F::UnknownKind { found: 9 }, 104),
            (F::BadReserved { found: 1 }, 105),
            (F::Oversize { len: 9, cap: 8 }, 106),
            (
                F::ChecksumMismatch {
                    stored: 1,
                    computed: 2,
                },
                107,
            ),
            (
                F::Malformed {
                    offset: 0,
                    detail: "x",
                },
                108,
            ),
            (
                F::TrailingBytes {
                    consumed: 1,
                    len: 2,
                },
                109,
            ),
        ];
        for (e, code) in frame {
            assert_eq!(e.code(), code, "{e:?}");
            assert_eq!(Error::from(e).code(), code);
        }
        let solve: [(SolveError, u16); 8] = [
            (
                SolveError::NotLinear(LinearError::NotLinear {
                    first: 0,
                    second: 1,
                }),
                201,
            ),
            (SolveError::UnknownGraph(gid()), 202),
            (
                SolveError::UnknownEpoch {
                    graph: gid(),
                    epoch: Epoch(4),
                },
                203,
            ),
            (
                SolveError::EpochEvicted {
                    graph: gid(),
                    epoch: Epoch(1),
                    floor: Epoch(3),
                },
                204,
            ),
            (
                SolveError::SnapshotUnavailable {
                    graph: gid(),
                    detail: "gone".into(),
                },
                205,
            ),
            (
                SolveError::InvalidQuery {
                    vertex: 9,
                    duplicate: false,
                },
                206,
            ),
            (
                SolveError::AdmissionDenied {
                    tenant: TenantId(1),
                    reason: DenyReason::QuotaExhausted,
                },
                207,
            ),
            (
                SolveError::AdmissionDenied {
                    tenant: TenantId(1),
                    reason: DenyReason::InFlightCap,
                },
                208,
            ),
        ];
        for (e, code) in solve {
            assert_eq!(e.code(), code, "{e:?}");
            assert_eq!(Error::from(e).code(), code);
        }
        assert_eq!(Error::Io(std::io::Error::other("x")).code(), 1);
        assert_eq!(
            Error::Remote(RemoteError {
                correlation: 0,
                code: 555,
                message: String::new(),
            })
            .code(),
            555
        );
    }

    /// `std::error::Error` is implemented end to end, with sources chained.
    #[test]
    fn sources_chain() {
        let e = Error::from(SolveError::NotLinear(LinearError::NotLinear {
            first: 2,
            second: 5,
        }));
        let source = std::error::Error::source(&e).expect("solve source");
        let inner = std::error::Error::source(source).expect("linear source");
        assert!(inner.to_string().contains("share at least two vertices"));
    }
}
