//! # hypergraph-mis
//!
//! A Rust implementation of *"On Computing Maximal Independent Sets of
//! Hypergraphs in Parallel"* (Bercea, Goyal, Harris, Srinivasan — SPAA 2014):
//! the **SBL** sampling algorithm for general hypergraphs, the Beame–Luby
//! subroutine it is built on, the Karp–Upfal–Wigderson and greedy baselines,
//! an EREW-PRAM-style cost model, and the full Kelsen / Kim–Vu analysis
//! machinery (concentration bounds, potential functions, migration bounds).
//!
//! This crate is a thin facade over the workspace members:
//!
//! * [`hypergraph`] — data structures, normalized degrees, generators, I/O;
//! * [`pram`] — work–depth cost model and rayon-backed parallel primitives;
//! * [`concentration`] — the analysis quantities of Sections 2.2, 3 and 4;
//! * [`mis_core`] — the algorithms (SBL, BL, KUW, greedy, permutation,
//!   linear-hypergraph), verification and instrumentation.
//!
//! ## Example
//!
//! ```
//! use hypergraph_mis::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//! // A general hypergraph: 400 vertices, edges of size 2..=10.
//! let h = generate::paper_regime(&mut rng, 400, 50, 10);
//!
//! // The paper's algorithm.
//! let out = sbl_mis(&h, &mut rng);
//! assert!(verify_mis(&h, &out.independent_set).is_ok());
//!
//! // Compare with the sequential greedy baseline.
//! let baseline = greedy_mis(&h, None);
//! assert!(verify_mis(&h, &baseline.independent_set).is_ok());
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;

pub use batch::BatchRunner;
pub use concentration;
pub use hypergraph;
pub use mis_core;
pub use pram;

/// One-stop imports for applications: hypergraph construction and generation,
/// every algorithm, verification, the cost model, and the batch runner.
pub mod prelude {
    pub use crate::batch::BatchRunner;
    pub use concentration::prelude::*;
    pub use hypergraph::prelude::*;
    pub use mis_core::prelude::*;
    pub use pram::prelude::*;
}
