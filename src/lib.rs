//! # hypergraph-mis
//!
//! A Rust implementation of *"On Computing Maximal Independent Sets of
//! Hypergraphs in Parallel"* (Bercea, Goyal, Harris, Srinivasan — SPAA 2014):
//! the **SBL** sampling algorithm for general hypergraphs, the Beame–Luby
//! subroutine it is built on, the Karp–Upfal–Wigderson and greedy baselines,
//! an EREW-PRAM-style cost model, and the full Kelsen / Kim–Vu analysis
//! machinery (concentration bounds, potential functions, migration bounds) —
//! grown into a serving system: resident graphs, amortized solve streams,
//! and a sharded worker-pool serve layer.
//!
//! ## The serving story
//!
//! The top of the API is the [`serve`] subsystem — a genuinely multi-tenant
//! service over the deterministic parallel-MIS engines. Register your graphs
//! in a [`ResidentRegistry`], spawn a
//! [`ShardedRunner`] over N worker shards, and stream
//! tenant-tagged [`SolveRequest`](serve::SolveRequest)s at it — full solves
//! of resident or ad-hoc instances, or induced queries against resident
//! graphs, with any of the six algorithms. Three per-tenant levers sit on
//! top of the shard fan-out:
//!
//! * **Routing** ([`RoutePolicy`](serve::RoutePolicy)) — round-robin,
//!   least-queued, or *tenant affinity*: a stable hash pins each tenant to
//!   one shard so its queries rewarm the same shard-local parked engines
//!   (observable via
//!   [`WorkspacePool::tenant_rewarms`](pram::WorkspacePool::tenant_rewarms)).
//! * **Admission control** ([`AdmissionConfig`](serve::AdmissionConfig)) —
//!   per-tenant token buckets over logical time plus in-flight caps on the
//!   bounded queues. Over-quota requests come back as
//!   [`AdmissionDenied`](serve::SolveError::AdmissionDenied) *outcomes* —
//!   rejection as data, never a panic or a dropped ticket.
//! * **Collection** — ordered
//!   ([`collect_ordered`](serve::ShardedRunner::collect_ordered): responses
//!   in submission order regardless of which shard finished first) or
//!   streaming
//!   ([`collect_streaming`](serve::ShardedRunner::collect_streaming): an
//!   iterator yielding outcomes as they complete, ticketed and out of
//!   order); the two interoperate on one runner.
//!
//! Resident graphs are **mutable mid-stream**: each one is epoch-versioned
//! behind an append-only [`GraphEdit`](hypergraph::GraphEdit) log, and
//! [`ResidentRegistry::apply`](serve::ResidentRegistry::apply) publishes the
//! next immutable [`ResidentSnapshot`](serve::ResidentSnapshot)
//! copy-on-write — no re-registering, no engine rebuild for readers, no
//! stalled queries. Every request pins the epoch it was submitted against
//! ([`EpochPin`](serve::EpochPin)), so in-flight queries on older epochs
//! keep returning byte-identical outcomes while the log grows, and replaying
//! any log prefix from any snapshot reproduces every outcome exactly.
//!
//! Each shard owns a warmed [`Workspace`](pram::Workspace) with parked
//! engines (the zero-reallocation pipeline), and every admitted request's
//! outcome is a pure function of `(snapshot, algorithm, seed)` — equivalently
//! `(snapshot, log-prefix, algorithm, seed)` — : routing policy,
//! shard count, scheduling and collection mode change wall time and
//! completion order, never a result. [`ServeStats`](serve::ServeStats)
//! reports the per-tenant/per-shard accounting.
//!
//! For a single-tenant, single-thread stream, [`BatchRunner`] is the same
//! machinery without the threads — the single-shard special case (see
//! `examples/serving.rs` for the multi-tenant version).
//!
//! Out-of-process callers speak **`MISP 1`**, the [`net`] subsystem's
//! versioned wire protocol: length-prefixed, checksummed binary frames
//! carrying the same [`SolveRequest`](serve::SolveRequest)s and
//! [`SolveOutcome`](serve::SolveOutcome)s losslessly, so a wire outcome is
//! byte-identical (by
//! [`fingerprint`](serve::SolveOutcome::fingerprint)) to an in-process
//! solve of the same request. [`Server`](net::Server) is a plain
//! `TcpListener` front-end over the [`ShardedRunner`] — blocking threads,
//! no async runtime — and [`Client`](net::Client) the matching connector;
//! hostile bytes (truncation, bit flips, lying headers) land in structured
//! [`FrameError`](net::FrameError)s, never a panic. Every failure in the
//! stack — socket, frame, solve, snapshot I/O, edit rejection — unifies
//! under [`Error`] with a stable numeric code table that doubles as the
//! wire's error vocabulary.
//!
//! The crate remains a thin facade over the workspace members:
//!
//! * [`hypergraph`] — data structures, normalized degrees, generators, I/O;
//! * [`pram`] — work–depth cost model, rayon-backed parallel primitives,
//!   workspaces and the per-shard [`WorkspacePool`](pram::WorkspacePool);
//! * [`concentration`] — the analysis quantities of Sections 2.2, 3 and 4;
//! * [`mis_core`] — the algorithms (SBL, BL, KUW, greedy, permutation,
//!   linear-hypergraph), verification and instrumentation.
//!
//! ## Example
//!
//! ```
//! use hypergraph_mis::prelude::*;
//! use rand::SeedableRng;
//! use rand_chacha::ChaCha8Rng;
//! use std::sync::Arc;
//!
//! let mut rng = ChaCha8Rng::seed_from_u64(42);
//!
//! // Keep a hypergraph resident: 400 vertices, edges of size 2..=10.
//! let mut registry = ResidentRegistry::new();
//! let tenant = registry.register(generate::paper_regime(&mut rng, 400, 50, 10));
//! let registry = Arc::new(registry);
//!
//! // Serve a stream across 2 worker shards with tenant-affinity routing: a
//! // full SBL solve of the resident graph, then an induced query solved
//! // with Beame–Luby.
//! let config = ServeConfig {
//!     shards: 2,
//!     queue_depth: 16,
//!     threads_per_shard: Some(1),
//!     route: RoutePolicy::TenantAffinity,
//!     ..ServeConfig::default()
//! };
//! let mut server = ShardedRunner::new(Arc::clone(&registry), &config);
//! server.submit(
//!     SolveRequest::for_graph(tenant)
//!         .algorithm(Algorithm::Sbl(SblConfig::default()))
//!         .seed(7)
//!         .tenant(TenantId(1))
//!         .build(),
//! );
//! server.submit(
//!     SolveRequest::induced(tenant, (0..128).collect::<Vec<_>>())
//!         .algorithm(Algorithm::Bl(BlConfig::default()))
//!         .seed(8)
//!         .tenant(TenantId(1))
//!         .build(),
//! );
//!
//! // Responses come back in submission order, whatever the scheduling.
//! let outcomes = server.collect_ordered(2);
//! let snap = registry.latest(tenant);
//! assert!(verify_mis(snap.graph(), &outcomes[0].independent_set).is_ok());
//! assert_eq!(outcomes[1].ticket, 1);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod batch;
pub mod error;
pub mod net;
pub mod serve;

pub use batch::BatchRunner;
pub use concentration;
pub use error::Error;
pub use hypergraph;
pub use mis_core;
pub use pram;
pub use serve::{ResidentRegistry, ServeConfig, ShardedRunner};

/// One-stop imports for applications: hypergraph construction and generation,
/// every algorithm, verification, the cost model, the batch runner and the
/// sharded serving subsystem.
pub mod prelude {
    pub use crate::batch::BatchRunner;
    pub use crate::error::Error;
    pub use crate::net::{Client, FrameError, NetConfig, RemoteError, Reply, Server};
    pub use crate::serve::{
        AdmissionConfig, Algorithm, ConnectionStats, Epoch, EpochPin, GraphId, ResidentRegistry,
        ResidentSnapshot, RetentionPolicy, RoutePolicy, ServeConfig, ServeStats, ShardedRunner,
        SolveOutcome, SolveRequest, SolveRequestBuilder, SpillPolicy, Target, TenantId,
        TenantQuota,
    };
    pub use concentration::prelude::*;
    pub use hypergraph::prelude::*;
    pub use mis_core::prelude::*;
    pub use pram::prelude::*;
}
